//! Narrative rendering of tuning-session traces — the library behind
//! the `locus-report` binary.
//!
//! A tuning run traced with [`locus_trace::Tracer`] leaves a flat event
//! stream: phase spans, per-evaluation instants, verifier prune events,
//! search-module decisions and a closing session summary. This module
//! replays that stream into a human-readable report: where the time
//! went (phase breakdown), how the memo cache and the persistent store
//! paid off (hit and prune rates), which variants won (top recipes) and
//! how the search converged. The same renderer also explains a
//! persistent [`TuningStore`] file directly, without a trace.
//!
//! Everything here is a pure function of its input, so reports over a
//! committed fixture trace are byte-stable — the property the golden
//! tests in `tests/report_golden.rs` pin down.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use locus_search::Objective;
use locus_store::TuningStore;
use locus_trace::{Event, Value};

/// Width of the phase-breakdown bar chart, in characters.
const BAR_WIDTH: usize = 32;

/// Validates that `events` form a replayable tuning trace: at least one
/// `phase` span and exactly one `session` summary event.
///
/// # Errors
///
/// Returns a description of the first missing ingredient.
pub fn check_trace(events: &[Event]) -> Result<(), String> {
    if events.is_empty() {
        return Err("trace is empty".to_string());
    }
    if !events
        .iter()
        .any(|e| e.cat == "phase" && e.dur_us.is_some())
    {
        return Err("trace has no phase spans".to_string());
    }
    match events
        .iter()
        .filter(|e| e.cat == "session" && e.name == "summary")
        .count()
    {
        0 => Err("trace has no session summary event".to_string()),
        1 => Ok(()),
        n => Err(format!("trace has {n} session summary events, expected 1")),
    }
}

/// Keeps only the events stamped with request id `id` (a `req` string
/// argument, as written by the `locusd` daemon via
/// `locus_trace::tag_events`). A daemon trace log interleaves many
/// requests; filtering first turns it back into a single-session trace
/// that [`check_trace`] and [`render_trace`] can replay.
pub fn filter_request(events: &[Event], id: &str) -> Vec<Event> {
    events
        .iter()
        .filter(|e| matches!(e.arg("req"), Some(Value::Str(s)) if s == id))
        .cloned()
        .collect()
}

/// Renders the full narrative report of one traced tuning session.
pub fn render_trace(events: &[Event]) -> String {
    let mut out = String::new();
    let summary = events
        .iter()
        .find(|e| e.cat == "session" && e.name == "summary");

    out.push_str("locus-report: tuning session\n");
    out.push_str("============================\n\n");

    if let Some(summary) = summary {
        render_summary(&mut out, summary);
    } else {
        out.push_str("(no session summary event: partial trace)\n\n");
    }
    render_phases(&mut out, events);
    if let Some(summary) = summary {
        render_rates(&mut out, summary);
    }
    render_prunes(&mut out, events);
    render_top_variants(&mut out, events);
    render_convergence(&mut out, events);
    out
}

/// Renders the session header from the `session`/`summary` event.
fn render_summary(out: &mut String, summary: &Event) {
    let field = |key: &str| -> String {
        summary
            .arg(key)
            .map(render_value)
            .unwrap_or_else(|| "?".to_string())
    };
    let _ = writeln!(out, "search module   {}", field("search"));
    let _ = writeln!(
        out,
        "budget          {} evaluations on {} thread(s)",
        field("budget"),
        field("threads")
    );
    let _ = writeln!(out, "space size      {} points", field("space_size"));
    let _ = writeln!(
        out,
        "machine         digest {}  space digest {}",
        field("machine_digest"),
        field("space_digest")
    );
    let baseline = summary.arg("baseline_ms").and_then(Value::as_f64);
    let best = summary.arg("best_ms").and_then(Value::as_f64);
    match (baseline, best) {
        (Some(b), Some(v)) if v > 1e-12 => {
            let _ = writeln!(
                out,
                "result          baseline {b:.4} ms -> best {v:.4} ms  (speedup {:.2}x)",
                (b / v).max(1.0)
            );
        }
        (Some(b), _) => {
            let _ = writeln!(
                out,
                "result          baseline {b:.4} ms, no improving variant"
            );
        }
        _ => {}
    }
    out.push('\n');
}

/// Renders the per-phase time breakdown (driver `phase` spans plus the
/// worker-side `machine` spans) as a bar chart.
fn render_phases(out: &mut String, events: &[Event]) {
    let mut driver: BTreeMap<&str, (u64, usize)> = BTreeMap::new();
    let mut worker: BTreeMap<&str, (u64, usize)> = BTreeMap::new();
    for e in events {
        let Some(dur) = e.dur_us else { continue };
        let table = match e.cat.as_str() {
            "phase" => &mut driver,
            "machine" => &mut worker,
            _ => continue,
        };
        let entry = table.entry(e.name.as_str()).or_insert((0, 0));
        entry.0 += dur;
        entry.1 += 1;
    }
    if driver.is_empty() && worker.is_empty() {
        return;
    }

    out.push_str("phase breakdown\n---------------\n");
    let total: u64 = driver.values().map(|(us, _)| *us).sum::<u64>().max(1);
    let mut rows: Vec<(&str, u64, usize)> = driver
        .into_iter()
        .map(|(name, (us, n))| (name, us, n))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (name, us, n) in rows {
        let frac = us as f64 / total as f64;
        let bar = "#".repeat(((frac * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH));
        let _ = writeln!(
            out,
            "{name:<16} {:>9.3} ms {:>5.1}%  x{n:<4} {bar}",
            us as f64 / 1e3,
            frac * 100.0
        );
    }
    if !worker.is_empty() {
        out.push_str("worker time (inside measure, summed over threads)\n");
        for (name, (us, n)) in worker {
            let _ = writeln!(out, "  {name:<16} {:>9.3} ms  x{n}", us as f64 / 1e3);
        }
    }
    out.push('\n');
}

/// Renders memo / store / prune rates from the summary counters.
fn render_rates(out: &mut String, summary: &Event) {
    let count = |key: &str| summary.arg(key).and_then(Value::as_u64).unwrap_or(0);
    let proposed = count("proposed");
    if proposed == 0 {
        return;
    }
    let rate = |n: u64| n as f64 * 100.0 / proposed as f64;
    out.push_str("evaluation accounting\n---------------------\n");
    let _ = writeln!(out, "proposed        {proposed}");
    for (label, key) in [
        ("measured", "evaluations"),
        ("memo hits", "memo_hits"),
        ("store hits", "store_hits"),
        ("pruned illegal", "pruned_illegal"),
    ] {
        let n = count(key);
        let _ = writeln!(out, "{label:<15} {n:<6} ({:.1}%)", rate(n));
    }
    let (rehydrated, seeded, appended) = (count("rehydrated"), count("seeded"), count("appended"));
    if rehydrated + seeded + appended > 0 {
        let _ = writeln!(
            out,
            "store           rehydrated {rehydrated}, warm-start seeds {seeded}, appended {appended}"
        );
    }
    out.push('\n');
}

/// Renders the verifier's prune events, grouped by refusal category.
fn render_prunes(out: &mut String, events: &[Event]) {
    let prunes: Vec<&Event> = events
        .iter()
        .filter(|e| e.cat == "verify" && e.name == "prune")
        .collect();
    if prunes.is_empty() {
        return;
    }
    let mut by_category: BTreeMap<&str, (usize, &str)> = BTreeMap::new();
    for e in &prunes {
        let category = e.arg("category").and_then(Value::as_str).unwrap_or("other");
        let reason = e.arg("reason").and_then(Value::as_str).unwrap_or("?");
        let entry = by_category.entry(category).or_insert((0, reason));
        entry.0 += 1;
    }
    out.push_str("statically pruned points\n------------------------\n");
    for (category, (n, example)) in by_category {
        let _ = writeln!(out, "{category:<12} {n:<4} e.g. {example}");
    }
    // Verdict provenance (exact polyhedral engine vs conservative
    // fallback) — only traces written after the engine landed carry the
    // key, and older traces render unchanged.
    let mut exact = 0usize;
    let mut conservative = 0usize;
    for e in &prunes {
        match e.arg("provenance").and_then(Value::as_str) {
            Some("exact") => exact += 1,
            Some(_) => conservative += 1,
            None => {}
        }
    }
    if exact + conservative > 0 {
        let _ = writeln!(
            out,
            "provenance   {exact} exact / {conservative} conservative"
        );
    }
    out.push('\n');
}

/// Renders the top variants with their shippable direct recipes.
fn render_top_variants(out: &mut String, events: &[Event]) {
    let mut tops: Vec<&Event> = events
        .iter()
        .filter(|e| e.cat == "eval" && e.name == "top-variant")
        .collect();
    if tops.is_empty() {
        return;
    }
    tops.sort_by_key(|e| e.arg("rank").and_then(Value::as_u64).unwrap_or(u64::MAX));
    out.push_str("top variants\n------------\n");
    for e in tops {
        let rank = e.arg("rank").and_then(Value::as_u64).unwrap_or(0);
        let point = e.arg("point").and_then(Value::as_str).unwrap_or("?");
        let ms = e.arg("ms").and_then(Value::as_f64).unwrap_or(f64::NAN);
        let _ = writeln!(out, "#{rank}  {ms:.4} ms  {point}");
        if let Some(recipe) = e.arg("recipe").and_then(Value::as_str) {
            for line in recipe.lines() {
                let _ = writeln!(out, "      {line}");
            }
        }
    }
    out.push('\n');
}

/// Renders the convergence curve: every evaluation that improved the
/// best-so-far, in merge order.
fn render_convergence(out: &mut String, events: &[Event]) {
    let mut best = f64::INFINITY;
    let mut steps: Vec<String> = Vec::new();
    let mut evals = 0usize;
    for e in events {
        if e.cat != "eval" || e.name != "point" {
            continue;
        }
        evals += 1;
        let Some(ms) = e.arg("ms").and_then(Value::as_f64) else {
            continue;
        };
        if ms < best {
            best = ms;
            let index = e.arg("index").and_then(Value::as_u64).unwrap_or(0);
            let origin = e.arg("origin").and_then(Value::as_str).unwrap_or("?");
            steps.push(format!("eval {index:<4} best -> {ms:.4} ms  ({origin})"));
        }
    }
    if steps.is_empty() {
        return;
    }
    out.push_str("convergence\n-----------\n");
    const SHOWN: usize = 12;
    let elided = steps.len().saturating_sub(SHOWN);
    for step in steps.iter().take(SHOWN) {
        out.push_str(step);
        out.push('\n');
    }
    if elided > 0 {
        let _ = writeln!(out, "... {elided} further improvement(s)");
    }
    let _ = writeln!(out, "({evals} evaluations merged in total)");
    out.push('\n');
}

/// Renders a value for the report (floats get a compact fixed format).
fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => format!("{x:.4}"),
        Value::Bool(b) => b.to_string(),
    }
}

/// Explains a persistent [`TuningStore`] file: per tuning context, the
/// record counts and best stored result; then every session summary
/// with its winning recipe.
pub fn render_store(store: &TuningStore) -> String {
    let mut out = String::new();
    out.push_str("locus-report: tuning store\n");
    out.push_str("==========================\n\n");
    let _ = writeln!(
        out,
        "{} evaluation record(s) across {} context(s); {} malformed line(s) skipped\n",
        store.len(),
        store.keys().len(),
        store.skipped_lines()
    );

    for key in store.keys() {
        let regions: Vec<&str> = key.regions.iter().map(|(id, _)| id.as_str()).collect();
        let _ = writeln!(
            out,
            "context [{}]  machine {:016x}  space {:016x}",
            regions.join(", "),
            key.machine,
            key.space
        );
        let evals = store.evals(key);
        let prunes = store.prunes(key);
        let valid = evals
            .iter()
            .filter(|r| matches!(r.objective, Objective::Value(_)))
            .count();
        let _ = writeln!(
            out,
            "  {} eval(s) ({valid} valid), {} prune(s)",
            evals.len(),
            prunes.len()
        );
        let best = evals
            .iter()
            .filter_map(|r| match r.objective {
                Objective::Value(ms) => Some((ms, r)),
                _ => None,
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.point_key.cmp(&b.1.point_key)));
        if let Some((ms, record)) = best {
            let _ = writeln!(
                out,
                "  best {ms:.4} ms at {} (search: {})",
                record.point_key, record.search
            );
        }
        out.push('\n');
    }

    let sessions: Vec<_> = store.sessions().collect();
    if !sessions.is_empty() {
        out.push_str("sessions\n--------\n");
        for (_, s) in sessions {
            let _ = writeln!(
                out,
                "region {}  best {:.4} ms at {}  (search: {})",
                s.region, s.best_ms, s.best_point, s.search
            );
            for line in s.recipe.lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out.push('\n');
    }
    out
}
