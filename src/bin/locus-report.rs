//! `locus-report` — explains a traced tuning session or a persistent
//! tuning store.
//!
//! Input is auto-detected: a file starting with the `#locus-store v1`
//! header is opened as a [`locus::store::TuningStore`] and summarized
//! per tuning context; anything else is parsed as the JSONL trace a
//! [`locus::trace::Tracer`] exports, and replayed into a narrative —
//! phase time breakdown, memo/store hit and prune rates, top variants
//! with their shippable recipes, and the convergence curve.
//!
//! Usage: `locus-report [--check] [--request <id>] <trace.jsonl | store file>`
//!
//! With `--check` the input is only validated (trace completeness or
//! store readability), printing one status line. With `--request <id>`
//! the trace is first narrowed to the events the `locusd` daemon
//! stamped with that request id, so one request can be replayed out of
//! an interleaved service log. Stores are opened read-only, so a report
//! never contends with a live writer. Exit status: 0 on success, 1 when
//! `--check` fails, 2 on usage or I/O errors.

use std::process::ExitCode;

use locus::report::{check_trace, filter_request, render_store, render_trace};
use locus::store::TuningStore;
use locus::trace::from_jsonl;

fn main() -> ExitCode {
    let mut check = false;
    let mut request: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--request" => {
                let Some(id) = args.next() else {
                    eprintln!("--request needs an id argument");
                    return ExitCode::from(2);
                };
                request = Some(id);
            }
            "--help" | "-h" => {
                println!(
                    "usage: locus-report [--check] [--request <id>] <trace.jsonl | store file>"
                );
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }
    let [path] = paths.as_slice() else {
        eprintln!("usage: locus-report [--check] [--request <id>] <trace.jsonl | store file>");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{path}: cannot read: {e}");
            return ExitCode::from(2);
        }
    };

    if text.lines().next() == Some("#locus-store v1") {
        if request.is_some() {
            eprintln!("{path}: --request applies to trace logs, not stores");
            return ExitCode::from(2);
        }
        let store = match TuningStore::open_read_only(path) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("{path}: cannot open store: {e}");
                return ExitCode::from(2);
            }
        };
        if check {
            if store.is_empty() {
                eprintln!("{path}: store holds no evaluation records");
                return ExitCode::from(1);
            }
            println!(
                "ok: store with {} record(s) across {} context(s)",
                store.len(),
                store.keys().len()
            );
            return ExitCode::SUCCESS;
        }
        print!("{}", render_store(&store));
        return ExitCode::SUCCESS;
    }

    let mut events = match from_jsonl(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("{path}: not a store and not a trace: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(id) = &request {
        events = filter_request(&events, id);
        if events.is_empty() {
            eprintln!("{path}: no events tagged with request `{id}`");
            return ExitCode::from(1);
        }
    }
    if check {
        return match check_trace(&events) {
            Ok(()) => {
                println!("ok: trace with {} event(s)", events.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::from(1)
            }
        };
    }
    print!("{}", render_trace(&events));
    ExitCode::SUCCESS
}
