//! `locus-lint` — static safety diagnostics for mini-C sources.
//!
//! Runs the `locus-verify` analyses over whole files, outside any tuning
//! session: IR well-formedness (undefined variables, misplaced or
//! duplicate pragmas), data-race detection for every `#pragma omp
//! parallel for` already present in the source (including nested
//! parallelism), and `#pragma ivdep` assertions checked against the
//! dependence analysis.
//!
//! Usage: `locus-lint [--explain] <file.c>...`
//!
//! With `--explain`, every `omp parallel for` / `ivdep` verdict is
//! followed by `note:` lines showing the dependence evidence: the
//! offending dependence with its direction vector, the iteration-domain
//! constraints, and whether the verdict came from the exact polyhedral
//! engine or the conservative fallback. Notes are not diagnostics — the
//! exit status is the same with and without the flag.
//!
//! Exit status: 0 when every file is clean, 1 when any diagnostic was
//! emitted, 2 on usage or I/O errors.

use std::process::ExitCode;

use locus::analysis::deps::analyze_region;
use locus::srcir::ast::{OmpClause, Pragma, Program, Stmt};
use locus::srcir::parse_program;
use locus::srcir::HierIndex;
use locus::verify::{analyze_parallel_for, explain, validate_program, RaceFix, TransformStep};

fn main() -> ExitCode {
    let mut explain_mode = false;
    let files: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| {
            if arg == "--explain" {
                explain_mode = true;
                false
            } else {
                true
            }
        })
        .collect();
    if files.is_empty() {
        eprintln!("usage: locus-lint [--explain] <file.c>...");
        return ExitCode::from(2);
    }

    let mut diagnostics = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::from(2);
            }
        };
        let program = match parse_program(&text) {
            Ok(program) => program,
            Err(e) => {
                eprintln!("{path}: parse error: {e}");
                return ExitCode::from(2);
            }
        };
        diagnostics += lint_file(path, &program, explain_mode);
    }

    if diagnostics > 0 {
        eprintln!(
            "locus-lint: {diagnostics} diagnostic{} in {} file{}",
            if diagnostics == 1 { "" } else { "s" },
            files.len(),
            if files.len() == 1 { "" } else { "s" },
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Lints one parsed file, printing diagnostics; returns how many.
fn lint_file(path: &str, program: &Program, explain_mode: bool) -> usize {
    let mut count = 0;
    for issue in validate_program(program) {
        println!("{path}: error: {issue}");
        count += 1;
    }
    for function in program.functions() {
        for stmt in &function.body {
            lint_stmt(path, &function.name, stmt, false, explain_mode, &mut count);
        }
    }
    count
}

/// Prints the `--explain` notes for one pragma-annotated loop: the
/// verdict provenance, the offending dependence (direction vector and
/// per-dependence provenance), and the iteration-domain constraints.
fn print_explanation(path: &str, fname: &str, stmt: &Stmt, step: &TransformStep) {
    let ex = explain(stmt, step);
    let verdict = if ex.verdict.is_legal() {
        "legal".to_string()
    } else {
        format!("illegal ({})", ex.verdict.reason().unwrap_or("?"))
    };
    println!(
        "{path}: note: {fname}: verdict {verdict}; provenance {}",
        ex.provenance
    );
    if let Some(dep) = &ex.offending {
        println!("{path}: note: {fname}: offending dependence: {dep}");
    }
    if !ex.domain.is_empty() {
        println!(
            "{path}: note: {fname}: iteration domain: {}",
            ex.domain.join("; ")
        );
    }
}

/// Recursively lints a statement tree. `in_parallel` is true inside the
/// body of an enclosing `omp parallel for` loop.
fn lint_stmt(
    path: &str,
    fname: &str,
    stmt: &Stmt,
    in_parallel: bool,
    explain_mode: bool,
    count: &mut usize,
) {
    let omp_clauses = stmt.pragmas.iter().find_map(|p| match p {
        Pragma::OmpParallelFor { clauses, .. } => Some(clauses),
        _ => None,
    });
    let is_parallel = omp_clauses.is_some();

    if let (Some(clauses), true) = (omp_clauses, stmt.is_for()) {
        if in_parallel {
            println!(
                "{path}: error: {fname}: `omp parallel for` nested inside another \
                 parallel loop"
            );
            *count += 1;
        }
        let report = analyze_parallel_for(stmt);
        if !report.available {
            println!(
                "{path}: error: {fname}: cannot prove `omp parallel for` safe — \
                 dependence information unavailable (non-affine subscripts?)"
            );
            *count += 1;
        }
        // A race is only reported when the pragma does not already
        // carry the clause that fixes it.
        for race in &report.races {
            let fixed = match &race.fix {
                RaceFix::Refuse => false,
                RaceFix::Reduction { var, op } => clauses.contains(&OmpClause::Reduction {
                    op: *op,
                    var: var.clone(),
                }),
                RaceFix::Privatize { var } => {
                    clauses.contains(&OmpClause::Private { var: var.clone() })
                }
            };
            if !fixed {
                println!("{path}: error: {fname}: {race}");
                *count += 1;
            }
        }
        if explain_mode {
            print_explanation(
                path,
                fname,
                stmt,
                &TransformStep::ParallelFor {
                    target: HierIndex::root(),
                },
            );
        }
    }

    if stmt.pragmas.iter().any(|p| matches!(p, Pragma::Ivdep)) && stmt.is_for() {
        let info = analyze_region(stmt);
        if !info.vectorizable() {
            println!(
                "{path}: error: {fname}: `#pragma ivdep` asserts no loop-carried \
                 dependences, but the analysis finds (or cannot rule out) one"
            );
            *count += 1;
        }
        if explain_mode {
            print_explanation(
                path,
                fname,
                stmt,
                &TransformStep::Vectorize {
                    target: HierIndex::root(),
                },
            );
        }
    }

    for child in children(stmt) {
        lint_stmt(
            path,
            fname,
            child,
            in_parallel || is_parallel,
            explain_mode,
            count,
        );
    }
}

/// The sub-statements of `stmt`, for the lint walk.
fn children(stmt: &Stmt) -> Vec<&Stmt> {
    use locus::srcir::ast::StmtKind;
    match &stmt.kind {
        StmtKind::Block(stmts) => stmts.iter().collect(),
        StmtKind::For(f) => vec![f.body.as_ref()],
        StmtKind::While { body, .. } => vec![body.as_ref()],
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            let mut out = vec![then_branch.as_ref()];
            if let Some(e) = else_branch {
                out.push(e.as_ref());
            }
            out
        }
        _ => Vec::new(),
    }
}
