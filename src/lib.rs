//! Locus — a system and a language for program optimization.
//!
//! This is a Rust reproduction of the CGO 2019 paper *"Locus: A System and
//! a Language for Program Optimization"* by Teixeira, Ancourt, Padua and
//! Gropp. The crate is a facade that re-exports the workspace:
//!
//! * [`srcir`] — the mini-C source front-end (lexer, parser, unparser,
//!   `#pragma @Locus` regions, hierarchical indexing, region hashing);
//! * [`analysis`] — loop queries and data-dependence analysis;
//! * [`verify`] — the static safety analyzer: race detection for
//!   `omp parallel for` insertion, the unified transformation legality
//!   engine, and the IR well-formedness validator behind `locus-lint`;
//! * [`transform`] — the transformation module collections (`RoseLocus`,
//!   `Pips`, `Pragma`, `BuiltIn` equivalents);
//! * [`machine`] — the execution substrate (interpreter + cache simulator
//!   + cost model standing in for the paper's Xeon/ICC testbed);
//! * [`lang`] — the Locus DSL itself;
//! * [`space`] — the optimization-space representation;
//! * [`search`] — search modules (exhaustive, random, bandit ensemble,
//!   annealing);
//! * [`store`] — the persistent tuning-results store (cross-session
//!   memoization, warm-started search, recipe retrieval);
//! * [`trace`] — zero-dependency structured tracing of tuning sessions
//!   (phase spans, per-evaluation events, JSONL and Chrome exporters),
//!   with [`report`] rendering a trace or store into the `locus-report`
//!   narrative;
//! * [`system`] — the orchestrator tying everything together;
//! * [`baselines`] — Pluto-like / MKL-like comparators;
//! * [`corpus`] — the evaluation kernels and synthetic loop-nest corpus;
//! * [`daemon`] — `locusd`, the tuning-as-a-service daemon: concurrent
//!   clients over a line protocol, one shared sharded store, fair
//!   scheduling, and per-request fault isolation.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: annotate a kernel,
//! write a Locus program with a search space, and let the system find the
//! best variant on the simulated machine.

pub use locus_analysis as analysis;
pub use locus_baselines as baselines;
pub use locus_core as system;
pub use locus_corpus as corpus;
pub use locus_daemon as daemon;
pub use locus_lang as lang;
pub use locus_machine as machine;
pub use locus_search as search;
pub use locus_space as space;
pub use locus_srcir as srcir;
pub use locus_store as store;
pub use locus_trace as trace;
pub use locus_transform as transform;
pub use locus_verify as verify;

pub mod report;
