//! The paper's closing "ongoing work": helping users design optimization
//! sequences. `locus::system::suggest_program` analyzes a region and
//! emits a tailored Locus recipe — which can then be tuned directly.
//!
//! Run with: `cargo run --release --example suggest_recipe`

use locus::machine::{Machine, MachineConfig};
use locus::search::BanditTuner;
use locus::srcir::region::{extract_region, find_regions};
use locus::system::{suggest_program, LocusSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, src) in [
        (
            "perfect depth-3 matmul",
            r#"double C[48][48]; double A[48][48]; double B[48][48];
            void kernel() {
                #pragma @Locus loop=scop
                for (int i = 0; i < 48; i++)
                    for (int j = 0; j < 48; j++)
                        for (int k = 0; k < 48; k++)
                            C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        ),
        (
            "indirect scatter (non-affine)",
            r#"double A[512]; int idx[512];
            void kernel() {
                #pragma @Locus loop=scop
                for (int i = 0; i < 512; i++)
                    A[idx[i]] = A[idx[i]] + 1.0;
            }"#,
        ),
    ] {
        let program = locus::srcir::parse_program(src)?;
        let regions = find_regions(&program);
        let stmt = extract_region(&program, &regions[0]).expect("region").stmt;

        let recipe = suggest_program("scop", &stmt);
        println!("=== {label} — suggested recipe =============================");
        println!("{recipe}");

        let locus_program = locus::lang::parse(&recipe)?;
        let system = LocusSystem::new(Machine::new(MachineConfig::scaled_small()));
        let mut search = BanditTuner::new(1);
        let result = system.tune(&program, &locus_program, &mut search, 12)?;
        println!(
            "tuned: space {} variants, {} evaluated, speedup {:.2}x\n",
            result.space_size,
            result.outcome.evaluations,
            result.speedup()
        );
    }
    Ok(())
}
