//! The paper's Sec. VII future work, implemented: combining multiple
//! search modules in the same run. The portfolio races the bandit
//! (OpenTuner-like), the annealer (Hyperopt-like), uniform random,
//! Monte-Carlo tree search and the probabilistic trace sampler over
//! one shared memo table, shifting budget toward whichever module
//! keeps improving the shared best.
//!
//! Run with: `cargo run --release --example portfolio_search`

use locus::machine::{Machine, MachineConfig};
use locus::search::{
    AnnealTuner, BanditTuner, MctsTuner, PortfolioSearch, RandomSearch, SearchModule, TraceSampler,
};
use locus::system::LocusSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = locus::corpus::dgemm_program(48);
    let locus_program = locus::lang::parse(
        r#"CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            tileI = poweroftwo(2..32);
            tileK = poweroftwo(2..32);
            tileJ = poweroftwo(2..32);
            Pips.Tiling(loop="0", factor=[tileI, tileK, tileJ]);
            {
                Pragma.OMPFor(loop="0");
            } OR {
                Pragma.OMPFor(loop="0", schedule=enum("static", "dynamic"),
                              chunk=integer(1..32));
            }
        }"#,
    )?;
    let system = LocusSystem::new(Machine::new(MachineConfig::scaled_small().with_cores(4)));

    let budget = 30;
    println!("module                      speedup  evals  dups");
    let run = |name: &str, search: &mut dyn SearchModule| {
        let result = system
            .tune(&source, &locus_program, search, budget)
            .expect("tuning runs");
        println!(
            "{name:<27} {:>6.2}x  {:>5}  {:>4}",
            result.speedup(),
            result.outcome.evaluations,
            result.outcome.duplicates
        );
    };
    run("portfolio (all five)", &mut PortfolioSearch::new(7));
    run("bandit alone", &mut BanditTuner::new(7));
    run("annealing alone", &mut AnnealTuner::new(7));
    run("random alone", &mut RandomSearch::new(7));
    run("mcts alone", &mut MctsTuner::new(7));
    run("trace sampler alone", &mut TraceSampler::new(7));
    Ok(())
}
