//! Quickstart: annotate a kernel, write a tiny optimization program, and
//! apply it with the direct workflow (Fig. 2, top path of the paper).
//!
//! Run with: `cargo run --release --example quickstart`

use locus::machine::{Machine, MachineConfig};
use locus::system::LocusSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application source. The developer marks the region of
    //    interest with `#pragma @Locus loop=<name>` and keeps the code
    //    readable — no architecture-specific tricks.
    let source = locus::srcir::parse_program(
        r#"
        double A[128][128];
        double B[128][128];
        void kernel() {
            #pragma @Locus loop=transpose_sum
            for (int i = 0; i < 128; i++)
                for (int j = 0; j < 128; j++)
                    A[i][j] = A[i][j] + B[j][i];
        }
        "#,
    )?;

    // 2. The optimization program lives in a separate file, written in
    //    the Locus DSL: tile the loop nest and vectorize the innermost
    //    loop.
    let locus_program = locus::lang::parse(
        r#"
        CodeReg transpose_sum {
            Pips.Tiling(loop="0", factor=[16, 16]);
            Pragma.Ivdep(loop=innermost);
            Pragma.Vector(loop=innermost);
        }
        "#,
    )?;

    // 3. The system applies the sequence and the simulated machine
    //    measures both versions.
    let system = LocusSystem::new(Machine::new(MachineConfig::scaled_small()));
    let optimized = system.apply_direct(&source, &locus_program)?;

    let before = system.measure(&source)?;
    let after = system.measure(&optimized)?;

    println!("--- optimized region ---------------------------------------");
    println!("{}", locus::srcir::print_program(&optimized));
    println!(
        "baseline : {:>10.0} cycles ({} memory accesses)",
        before.cycles, before.cache.memory_accesses
    );
    println!(
        "optimized: {:>10.0} cycles ({} memory accesses)",
        after.cycles, after.cache.memory_accesses
    );
    println!("speedup  : {:.2}x", before.cycles / after.cycles);
    assert_eq!(
        before.checksum, after.checksum,
        "the transformed code computes the same result"
    );
    Ok(())
}
