//! The paper's stencil experiment (Sec. V-B) on Heat 2D: skewed generic
//! tiling (`Pips.GenericTiling` with the Skewing-1 matrix of Fig. 9),
//! searching the skew factor empirically.
//!
//! Run with: `cargo run --release --example stencil_heat2d`

use locus::corpus::{stencil_program, Stencil};
use locus::machine::{Machine, MachineConfig};
use locus::search::ExhaustiveSearch;
use locus::system::LocusSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = stencil_program(Stencil::Heat2d, 48, 8);

    // Fig. 9, with the skew-factor range scaled to the simulated grid.
    let locus_program = locus::lang::parse(
        r#"
        Search {
            buildcmd = "make clean; make";
            runcmd = "./heat-2d";
        }
        CodeReg heat2d {
            skew1 = poweroftwo(4..32);
            tmat = [[skew1, 0, 0],
                    [0 - skew1, skew1, 0],
                    [0 - skew1, 0, skew1]];
            Pips.GenericTiling(loop="0", factor=tmat);
            Pragma.Ivdep(loop=innermost);
            Pragma.Vector(loop=innermost);
        }
        "#,
    )?;

    let system = LocusSystem::new(Machine::new(MachineConfig::scaled_small()));
    let mut search = ExhaustiveSearch::default();
    let result = system.tune(&source, &locus_program, &mut search, 8)?;

    println!(
        "skew factors tried: {} (space size {})",
        result.outcome.evaluations, result.space_size
    );
    println!("baseline : {:.3} simulated ms", result.baseline.time_ms);
    if let Some((point, program, best)) = &result.best {
        println!(
            "best     : {:.3} simulated ms ({:.2}x)",
            best.time_ms,
            result.speedup()
        );
        println!("chosen   : {:?}", point.get("skew1"));
        assert_eq!(best.checksum, result.baseline.checksum, "tiling is exact");
        println!("\n--- time-skewed tile loops (excerpt) -----------------------");
        for line in locus::srcir::print_program(program)
            .lines()
            .skip_while(|l| !l.contains("kernel"))
            .take(12)
        {
            println!("{line}");
        }
    }
    Ok(())
}
