//! The generic optimization program of Fig. 13 (Sec. V-D): a single
//! 37-line Locus program that adapts itself — via queries, conditionals
//! and search constructs — to loop nests whose structure is unknown in
//! advance. Also demonstrates the region-hash coherence check of Sec. II.
//!
//! Run with: `cargo run --release --example arbitrary_loops`

use locus::machine::{Machine, MachineConfig};
use locus::search::BanditTuner;
use locus::system::{check_coherence, region_hashes, LocusSystem};

const FIG13: &str = r#"
CodeReg scop {
    perfect = BuiltIn.IsPerfectLoopNest();
    depth = BuiltIn.LoopNestDepth();
    if (RoseLocus.IsDepAvailable()) {
        if (perfect && depth > 1) {
            permorder = permutation(seq(0, depth));
            RoseLocus.Interchange(order=permorder);
        }
        {
            if (perfect) {
                indexT1 = integer(1..depth);
                T1fac = poweroftwo(2..32);
                RoseLocus.Tiling(loop=indexT1, factor=T1fac);
            }
        } OR {
            if (depth > 1) {
                indexUAJ = integer(1..depth-1);
                UAJfac = poweroftwo(2..4);
                RoseLocus.UnrollAndJam(loop=indexUAJ, factor=UAJfac);
            }
        } OR {
            None; # No tiling, interchange, or unroll and jam.
        }
        innerloops = BuiltIn.ListInnerLoops();
        *RoseLocus.Distribute(loop=innerloops);
    }
    innerloops = BuiltIn.ListInnerLoops();
    RoseLocus.Unroll(loop=innerloops, factor=poweroftwo(2..8));
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let locus_program = locus::lang::parse(FIG13)?;
    let system = LocusSystem::new(Machine::new(MachineConfig::scaled_small()));

    println!("nest                        depth perfect affine  space   best speedup");
    for nest in locus::corpus::generate_corpus(2026, 1).into_iter().take(8) {
        let mut search = BanditTuner::new(7);
        match system.tune(&nest.program, &locus_program, &mut search, 10) {
            Ok(result) => println!(
                "{:<27} {:>5} {:>7} {:>6} {:>6}  {:>6.2}x",
                nest.name,
                nest.depth,
                nest.perfect,
                nest.affine,
                result.space_size,
                result.speedup()
            ),
            Err(e) => println!("{:<27} failed: {e}", nest.name),
        }
    }

    // Coherence: hash the regions now, edit the source, get warned.
    let nest = locus::corpus::generate_corpus(2026, 1).remove(0);
    let hashes = region_hashes(&nest.program);
    let mut edited = nest.program.clone();
    if let Some(f) = edited.function_mut("kernel") {
        f.body.push(locus::srcir::ast::Stmt::new(
            locus::srcir::ast::StmtKind::Empty,
        ));
    }
    // Adding a statement outside the region leaves the hash intact:
    assert!(check_coherence(&edited, &hashes).is_empty());
    println!("\nregion hashes verified: stored optimization program still applies");
    Ok(())
}
