//! The search workflow on DGEMM (the paper's Sec. V-A): run the Fig. 7
//! optimization program, let the OpenTuner-like bandit explore tile
//! sizes and OpenMP schedules, and report the best variant.
//!
//! Run with: `cargo run --release --example matmul_tuning`

use locus::machine::{Machine, MachineConfig};
use locus::search::BanditTuner;
use locus::system::LocusSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 48;
    let source = locus::corpus::dgemm_program(n);

    // The paper's Fig. 7 program: interchange + two-level hierarchical
    // tiling with dependent ranges + an OR block over OpenMP schedules.
    let locus_program = locus::lang::parse(
        r#"
        Search {
            buildcmd = "make clean; make";
            runcmd = "./matmul";
        }
        CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            tileI = poweroftwo(2..512);
            tileK = poweroftwo(2..512);
            tileJ = poweroftwo(2..512);
            Pips.Tiling(loop="0", factor=[tileI, tileK, tileJ]);
            tileI_2 = poweroftwo(2..tileI);
            tileK_2 = poweroftwo(2..tileK);
            tileJ_2 = poweroftwo(2..tileJ);
            Pips.Tiling(loop="0.0.0.0", factor=[tileI_2, tileK_2, tileJ_2]);
            {
                Pragma.OMPFor(loop="0");
            } OR {
                Pragma.OMPFor(loop="0",
                              schedule=enum("static", "dynamic"),
                              chunk=integer(1..32));
            }
        }
        "#,
    )?;

    let system = LocusSystem::new(Machine::new(MachineConfig::scaled_small().with_cores(8)));

    let budget = 40;
    println!("searching {budget} of the space's variants with the bandit ensemble...");
    let mut search = BanditTuner::new(42);
    let result = system.tune(&source, &locus_program, &mut search, budget)?;

    println!("space size      : {} variants", result.space_size);
    println!(
        "evaluated       : {} distinct variants",
        result.outcome.evaluations
    );
    println!(
        "invalid points  : {} (dependent-range violations)",
        result.outcome.invalid
    );
    println!(
        "duplicates      : {} (skipped via memoization)",
        result.outcome.duplicates
    );
    println!(
        "baseline        : {:.3} simulated ms",
        result.baseline.time_ms
    );
    if let Some((point, _, best)) = &result.best {
        println!("best variant    : {:.3} simulated ms", best.time_ms);
        println!("speedup         : {:.2}x", result.speedup());
        println!("best point      :");
        for (id, value) in point.iter() {
            println!("    {id} = {value:?}");
        }
    }
    println!("\nbest-so-far trajectory (evaluation -> simulated ms):");
    for (eval, value) in &result.outcome.history {
        println!("    {eval:>4}  {value:.3}");
    }

    // The artifact the paper ships with the baseline (Sec. II): a
    // *direct* Locus program reproducing the winning variant, with every
    // search construct replaced by its chosen value.
    if let Some((point, _, _)) = &result.best {
        let prepared = system.prepare(&source, &locus_program)?;
        println!("\n--- shipped direct program ----------------------------------");
        println!("{}", system.direct_program(&prepared, point));
    }
    Ok(())
}
