//! Observability demo: tune DGEMM with a tracer attached, export the
//! trace, and render the `locus-report` narrative.
//!
//! Run with: `cargo run --release --example traced_session [trace.jsonl [trace.chrome.json]]`
//!
//! With path arguments the trace is also written as JSONL (the format
//! `locus-report` replays) and as a Chrome `trace_event` file that
//! `chrome://tracing` / Perfetto load directly.

use locus::machine::{Machine, MachineConfig};
use locus::search::BanditTuner;
use locus::system::LocusSystem;
use locus::trace::Tracer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = locus::corpus::dgemm_program(32);
    let locus_program = locus::lang::parse(
        r#"
        CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            tileI = poweroftwo(4..16);
            tileK = poweroftwo(4..16);
            tileJ = poweroftwo(4..16);
            Pips.Tiling(loop="0", factor=[tileI, tileK, tileJ]);
        }
        "#,
    )?;

    let system = LocusSystem::new(Machine::new(MachineConfig::scaled_small().with_cores(4)));
    let tracer = Tracer::enabled();
    let mut search = BanditTuner::new(42);
    let (result, report) =
        system.tune_parallel_with_tracer(&source, &locus_program, &mut search, 24, 4, &tracer)?;

    println!(
        "tuned: baseline {:.3} ms, speedup {:.2}x, {} evaluations ({} proposals)",
        result.baseline.time_ms,
        result.speedup(),
        report.evaluations(),
        report.proposed,
    );

    let events = tracer.events();
    let mut args = std::env::args().skip(1);
    if let Some(path) = args.next() {
        std::fs::write(&path, locus::trace::to_jsonl(&events))?;
        println!("trace written to {path}");
    }
    if let Some(path) = args.next() {
        std::fs::write(&path, locus::trace::to_chrome(&events))?;
        println!("chrome trace written to {path}");
    }

    println!("\n{}", locus::report::render_trace(&events));
    Ok(())
}
