/* A clean kernel: `locus-lint` exits 0 on this file.
 *
 * The parallel loop writes a distinct A[i] per iteration, and the ivdep
 * assertion on the inner loop holds (no loop-carried dependence).
 */
double A[256];
double B[256];
double C[16][16];

void kernel() {
    int i;
    int j;
    #pragma omp parallel for
    for (i = 0; i < 256; i++)
        A[i] = B[i] * 2.0 + 1.0;

    for (i = 0; i < 16; i++) {
        #pragma ivdep
        for (j = 0; j < 16; j++)
            C[i][j] = C[i][j] * 0.5;
    }
}
