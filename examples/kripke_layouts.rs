//! The Kripke experiment (Sec. V-C): one kernel skeleton + six address
//! snippets replace six hand-written kernel versions. The Locus program
//! splices the layout's address computation (`BuiltIn.Altdesc`), orders
//! the loops for the layout (`RoseLocus.Interchange`), hoists the
//! invariant address parts (`RoseLocus.LICM`), introduces accumulators
//! (`RoseLocus.ScalarRepl`), and parallelizes (`Pragma.OMPFor`).
//!
//! Run with: `cargo run --release --example kripke_layouts`

use locus::corpus::{
    kripke_hand_optimized, kripke_skeleton, kripke_snippets, KripkeKernel, LAYOUTS,
};
use locus::machine::{Machine, MachineConfig};
use locus::space::{ParamValue, Point};
use locus::system::LocusSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = KripkeKernel::Scattering;
    let skeleton = kripke_skeleton(kernel);
    println!("--- single skeleton (replaces 6 hand-written versions) -----");
    println!("{}", locus::srcir::print_program(&skeleton));

    let locus_program = locus_bench_program(kernel)?;
    let machine = Machine::new(MachineConfig::scaled_small().with_cores(4));
    let mut system = LocusSystem::new(machine.clone());
    system.snippets = kripke_snippets(kernel);
    // The mix of symbolic addresses defeats the dependence tests; the
    // expert forces the (known legal) interchanges, as Sec. II allows.
    system.check_legality = false;
    system.verify_results = false;
    let prepared = system.prepare(&skeleton, &locus_program)?;

    println!("layout   Locus(ms)   hand(ms)   ratio   same result");
    for (i, layout) in LAYOUTS.iter().enumerate() {
        let mut point = Point::new();
        point.set("datalayout", ParamValue::Choice(i));
        let variant = system
            .build_variant(&skeleton, &prepared, &point)
            .map_err(|e| format!("{e:?}"))?;
        let locus_m = machine.run(&variant, "kernel")?;
        let hand_m = machine.run(&kripke_hand_optimized(kernel, layout), "kernel")?;
        println!(
            "{layout}   {:>9.4}   {:>8.4}   {:>5.2}   {}",
            locus_m.time_ms,
            hand_m.time_ms,
            locus_m.time_ms / hand_m.time_ms,
            locus_m.checksum == hand_m.checksum
        );
    }
    Ok(())
}

/// The Fig. 11-style program for a kernel, generated from the layout
/// loop-order table.
fn locus_bench_program(
    kernel: KripkeKernel,
) -> Result<locus::lang::LocusProgram, Box<dyn std::error::Error>> {
    use locus::corpus::kripke::{layout_loop_order, placeholder_index};
    let name = kernel.name();
    let placeholder = placeholder_index(kernel);
    let mut branches = String::new();
    for (i, layout) in LAYOUTS.iter().enumerate() {
        let order: Vec<String> = layout_loop_order(kernel, layout)
            .iter()
            .map(|v| v.to_string())
            .collect();
        let kw = if i == 0 { "if" } else { "} elif" };
        branches.push_str(&format!(
            "    {kw} (datalayout == \"{layout}\") {{\n        looporder = [{}];\n",
            order.join(", ")
        ));
    }
    branches.push_str("    }\n");
    let src = format!(
        r#"
datalayout = enum("DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD");
CodeReg {name} {{
{branches}
    sourcepath = "{name}_" + datalayout + ".txt";
    BuiltIn.Altdesc(stmt="{placeholder}", source=sourcepath);
    RoseLocus.Interchange(order=looporder);
    RoseLocus.LICM();
    RoseLocus.ScalarRepl();
    Pragma.OMPFor(loop="0");
}}
"#
    );
    Ok(locus::lang::parse(&src)?)
}
