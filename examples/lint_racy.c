/* A racy kernel: `locus-lint` exits 1 on this file.
 *
 * The first parallel loop is a loop-carried recurrence (A[i] depends on
 * A[i-1]) — no clause fixes it. The second is a scalar sum without a
 * reduction clause; the lint names the fix. The ivdep assertion on the
 * last loop is false: it carries a flow dependence at distance 1.
 */
double A[256];
double B[256];
double s;

void kernel() {
    int i;
    #pragma omp parallel for
    for (i = 1; i < 256; i++)
        A[i] = A[i - 1] + B[i];

    #pragma omp parallel for
    for (i = 0; i < 256; i++)
        s = s + B[i];

    #pragma ivdep
    for (i = 1; i < 256; i++)
        B[i] = B[i - 1] * 0.5;
}
