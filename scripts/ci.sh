#!/usr/bin/env bash
# Tier-1 gate. The workspace has no external dependencies, so everything
# runs with --offline: a build that reaches for the network is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The store round-trip named explicitly: write, drop, reopen, warm-start
# to the identical best point with zero re-measurements.
cargo test -q --offline --test store_persistence
cargo clippy --offline --workspace --all-targets -- -D warnings
