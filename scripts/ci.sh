#!/usr/bin/env bash
# Tier-1 gate. The workspace has no external dependencies, so everything
# runs with --offline: a build that reaches for the network is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The store round-trip named explicitly: write, drop, reopen, warm-start
# to the identical best point with zero re-measurements.
cargo test -q --offline --test store_persistence
# Verifier-pruned search named explicitly: racy points are refused before
# the machine ever simulates them, bit-identically to the sequential run.
cargo test -q --offline --test verify_pruning
# Engine differential suite named explicitly: the bytecode VM must return
# bit-identical measurements to the tree interpreter on the whole corpus.
cargo test -q --offline --test vm_equivalence
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Engine bench smoke in check mode: refuses to pass unless every kernel
# is bit-identical across engines and the VM clears the 5x speedup floor.
./target/release/bench_interp /tmp/locus_bench_interp.json --check

# locus-lint smoke: the clean example lints clean, the racy one is
# refused with a nonzero exit.
./target/release/locus-lint examples/lint_clean.c
if ./target/release/locus-lint examples/lint_racy.c; then
    echo "locus-lint accepted examples/lint_racy.c — it must refuse it" >&2
    exit 1
fi
