#!/usr/bin/env bash
# Tier-1 gate. The workspace has no external dependencies, so everything
# runs with --offline: a build that reaches for the network is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
