#!/usr/bin/env bash
# Tier-1 gate. The workspace has no external dependencies, so everything
# runs with --offline: a build that reaches for the network is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The store round-trip named explicitly: write, drop, reopen, warm-start
# to the identical best point with zero re-measurements.
cargo test -q --offline --test store_persistence
# Verifier-pruned search named explicitly: racy points are refused before
# the machine ever simulates them, bit-identically to the sequential run.
cargo test -q --offline --test verify_pruning
# Engine differential suite named explicitly: the bytecode VM must return
# bit-identical measurements to the tree interpreter on the whole corpus.
cargo test -q --offline --test vm_equivalence
# Deterministic fuzz suite (pinned seeds): parse(print(ast)) is a fixpoint
# for randomly generated mini-C programs, pragmas and omp clauses included.
cargo test -q --offline --test srcir_fuzz
# Legality-vs-dependence differential: no transform may be declared legal
# that a reported dependence forbids — now swept over the whole corpus
# registry, triangular PolyBench entries included — plus the one-sided
# precision invariant (exact refusals ⊆ conservative refusals) and
# checksum-identical execution of every newly-legal variant.
cargo test -q --offline --test legality_vs_deps
# Fourier–Motzkin property suite (pinned seeds): the engine's 3-valued
# feasibility verdict against brute-force enumeration over boxed and
# triangular integer domains, and decidedness on unimodular systems.
cargo test -q --offline --test polyhedron_props
# Corpus registry conformance: every entry round-trips the printer,
# prepares into a non-empty space, runs on every machine profile, and
# restructuring a non-rectangular region is refused or checksum-preserving.
cargo test -q --offline --test corpus_conformance
# Tracing layer: golden locus-report output, observation-only invariants,
# and counter accounting (proposed == memo + store + fresh + pruned).
cargo test -q --offline --test report_golden
cargo test -q --offline --test parallel_determinism
# Search-module conformance: every module passes the shared trait suite
# (per-seed determinism, batch ≡ repeated propose, seeded priors and
# refused points never re-proposed, NaN robustness, tiny-space
# termination) plus the trace-sampler model properties and pinned fit.
cargo test -q --offline --test search_conformance
cargo test -q --offline --test trace_sampler_props
# Tuning service: N concurrent daemon clients bit-identical to direct
# library calls, a poisoned request isolated by the supervisor, and the
# wire protocol surviving seeded fuzz without ever dropping a reply.
cargo test -q --offline --test daemon_service
cargo test -q --offline --test daemon_protocol
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Engine bench smoke in check mode: refuses to pass unless every kernel
# is bit-identical across tree, stack VM, register VM *and* the batched
# register path, the register VM clears its speedup floors (7x geomean
# batched, 6x sequential), the stack VM holds its historical 5x floor,
# and the disabled-tracer run_traced path stays under 1% overhead.
./target/release/bench_interp /tmp/locus_bench_interp.json --check

# Cross-machine corpus sweep smoke: two entries over two profiles;
# every non-donor row must transfer its recipe from the store.
./target/release/bench_corpus --check

# Verdict-precision smoke: at least one triangular registry entry must
# admit a legal restructuring the conservative engine refused.
./target/release/bench_verify --check

# Search shoot-out in check mode: MCTS or the trace sampler must beat
# both the bandit and the annealer on evaluations-to-best-known for at
# least one corpus family, and the extended portfolio must not regress
# against its pre-extension composition on any family.
./target/release/bench_search --check

# Daemon bench smoke in check mode: zero error replies, the warm phase
# re-measures nothing and beats the cold wall-clock, and a poisoned
# request is refused as a structured panic while the daemon lives on.
./target/release/bench_daemon /tmp/locus_bench_daemon.json --check

# locus-report smoke: the committed fixture traces validate, and a
# malformed input is refused with a nonzero exit.
./target/release/locus-report --check tests/fixtures/session_trace.jsonl
./target/release/locus-report --check tests/fixtures/synthetic_trace.jsonl
if ./target/release/locus-report --check /dev/null; then
    echo "locus-report accepted an empty trace — it must refuse it" >&2
    exit 1
fi

# locus-lint smoke: the clean example lints clean, the racy one is
# refused with a nonzero exit.
./target/release/locus-lint examples/lint_clean.c
if ./target/release/locus-lint examples/lint_racy.c; then
    echo "locus-lint accepted examples/lint_racy.c — it must refuse it" >&2
    exit 1
fi
