//! Golden-file tests for the `locus-report` renderer.
//!
//! Two committed fixture traces pin the narrative output byte-for-byte:
//!
//! * `tests/fixtures/session_trace.jsonl` — a real trace captured from
//!   `examples/traced_session.rs` (DGEMM, bandit search, 4 threads);
//! * `tests/fixtures/synthetic_trace.jsonl` — a hand-written trace that
//!   exercises the sections a lucky real run may skip (statically pruned
//!   points, store rehydrate/seed/append counters, invalid verdicts).
//!
//! Regenerate a golden after an intentional renderer change with
//! `cargo run --bin locus-report -- tests/fixtures/<trace> > tests/fixtures/<report>`.

use locus::report::{check_trace, render_trace};
use locus::trace::from_jsonl;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn assert_golden(trace_file: &str, report_file: &str) {
    let events = from_jsonl(&fixture(trace_file)).expect("fixture trace parses");
    check_trace(&events).expect("fixture trace is complete");
    let rendered = render_trace(&events);
    let golden = fixture(report_file);
    if rendered != golden {
        // A plain assert_eq! on multi-kilobyte strings is unreadable;
        // point at the first diverging line instead.
        for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
            assert_eq!(got, want, "first divergence at line {}", i + 1);
        }
        assert_eq!(
            rendered.lines().count(),
            golden.lines().count(),
            "rendered report and golden differ in length"
        );
        panic!("report differs from golden {report_file} (trailing bytes?)");
    }
}

#[test]
fn session_trace_renders_the_committed_golden() {
    assert_golden("session_trace.jsonl", "session_report.txt");
}

#[test]
fn synthetic_trace_renders_the_committed_golden() {
    assert_golden("synthetic_trace.jsonl", "synthetic_report.txt");
}

#[test]
fn synthetic_golden_covers_the_optional_sections() {
    // Guard the fixture itself: if it ever stops exercising the prune and
    // store paths the golden test would silently lose coverage.
    let golden = fixture("synthetic_report.txt");
    assert!(golden.contains("statically pruned points"));
    assert!(golden.contains("race"));
    assert!(golden.contains("dependence"));
    assert!(golden.contains("rehydrated 1, warm-start seeds 1, appended 2"));
    assert!(golden.contains("provenance   2 exact / 1 conservative"));
}

#[test]
fn check_trace_rejects_incomplete_traces() {
    assert!(check_trace(&[]).is_err(), "empty trace must fail --check");

    // A trace with phases but no session summary is incomplete.
    let events =
        from_jsonl(r#"{"cat":"phase","name":"prepare","ts_us":0,"dur_us":5,"lane":0,"args":{}}"#)
            .expect("single span parses");
    let err = check_trace(&events).expect_err("summary-less trace must fail");
    assert!(err.contains("summary"), "unexpected message: {err}");
}

#[test]
fn rendering_is_deterministic() {
    let events = from_jsonl(&fixture("session_trace.jsonl")).unwrap();
    assert_eq!(render_trace(&events), render_trace(&events));
}
