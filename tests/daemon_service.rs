//! Integration suite for `locusd`, the tuning-as-a-service daemon.
//!
//! The load-bearing properties, each pinned by a test below:
//!
//! * **bit-identity** — N concurrent clients tuning registry kernels
//!   through the daemon get byte- and bit-identical results (best
//!   point, best milliseconds as an exact `f64` bit pattern, checksum)
//!   to direct `tune_parallel_with_store` library calls;
//! * **fault isolation** — a deliberately poisoned request (the
//!   `debug-panic` op) is answered with a structured `panic` error
//!   while sibling requests on other connections complete normally and
//!   the daemon keeps serving;
//! * **shared warm store** — a repeat tune re-measures nothing
//!   (`evaluations == 0`) because every client's evaluations land in
//!   the one process-wide sharded store, and `suggest` retrieves the
//!   recorded winning recipe;
//! * **per-request deadlines and budget clamping** — the daemon's cost
//!   and latency controls are enforced per request;
//! * **request-tagged tracing** — any single request can be replayed
//!   out of the interleaved daemon trace log with
//!   `filter_request` + `check_trace` (the engine behind
//!   `locus-report --request`).

use std::collections::BTreeMap;
use std::path::PathBuf;

use locus::daemon::{codes, Client, Daemon, DaemonConfig, Op, Request};
use locus::machine::Machine;
use locus::report::{check_trace, filter_request};
use locus::search::SearchModule;
use locus::store::TuningStore;
use locus::system::LocusSystem;
use locus::trace::{from_jsonl, Tracer};

/// A fresh scratch directory for one test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "locus-daemon-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The tuning cases the concurrency tests drive: kernel, search, seed,
/// budget. Two clients share the `dgemm`/`exhaustive` case on purpose —
/// concurrent same-key sessions must agree.
const CASES: &[(&str, &str, u64, usize)] = &[
    ("dgemm", "exhaustive", 0, 10),
    ("dgemm", "exhaustive", 0, 10),
    ("stencil-jacobi1d", "bandit", 7, 8),
    ("poly-syrk", "random", 7, 8),
];

fn tune_request(id: &str, kernel: &str, search: &str, seed: u64, budget: usize) -> Request {
    let mut request = Request::new(id, Op::Tune);
    request.kernel = kernel.to_string();
    request.search = search.to_string();
    request.seed = seed;
    request.budget = budget;
    request
}

/// Builds the search module a case names, seeded like the daemon does.
fn make_search(name: &str, seed: u64) -> Box<dyn SearchModule> {
    match name {
        "exhaustive" => Box::new(locus::search::ExhaustiveSearch::new()),
        "random" => Box::new(locus::search::RandomSearch::new(seed)),
        "bandit" => Box::new(locus::search::BanditTuner::new(seed)),
        _ => panic!("unknown search `{name}`"),
    }
}

/// Runs one case directly through the library against a fresh
/// single-file store, returning `(best_point, best_ms_bits, checksum)`.
fn direct_result(
    dir: &std::path::Path,
    kernel: &str,
    search_name: &str,
    seed: u64,
    budget: usize,
) -> (String, u64, String) {
    let entry = locus::corpus::registry::all_programs()
        .into_iter()
        .find(|e| e.name == kernel)
        .unwrap();
    let profile = locus::machine::profiles::all_profiles()
        .into_iter()
        .find(|p| p.name == "scaled-xeon")
        .unwrap();
    let system = LocusSystem::new(Machine::new(profile.config));
    let mut store =
        TuningStore::open(dir.join(format!("direct-{kernel}-{search_name}.jsonl"))).unwrap();
    let mut search = make_search(search_name, seed);
    let (result, _report) = system
        .tune_parallel_with_store(
            &entry.program,
            &entry.locus_program(),
            search.as_mut(),
            budget,
            1,
            &mut store,
        )
        .unwrap();
    let (point, _, measurement) = result.best.expect("registry kernels find a best variant");
    (
        point.canonical_key(),
        measurement.time_ms.to_bits(),
        format!("{:016x}", measurement.checksum),
    )
}

#[test]
fn concurrent_clients_are_bit_identical_to_direct_library_calls() {
    let dir = scratch("bitident");
    let trace_log = dir.join("trace.jsonl");
    let mut config = DaemonConfig::new(dir.join("store.d"));
    config.trace_log = Some(trace_log.clone());
    let mut daemon = Daemon::start(config).unwrap();
    let addr = daemon.addr();

    // One thread (connection) per case, all tuning concurrently.
    let daemon_results: Vec<(String, String, u64, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = CASES
            .iter()
            .enumerate()
            .map(|(i, &(kernel, search, seed, budget))| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let id = format!("req-{i}");
                    let response = client
                        .request(&tune_request(&id, kernel, search, seed, budget))
                        .unwrap();
                    assert!(response.ok, "case {i}: {response:?}");
                    (
                        id,
                        response.get_str("best_point").unwrap().to_string(),
                        response.get_f64("best_ms").unwrap().to_bits(),
                        response.get_str("checksum").unwrap().to_string(),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Direct library runs over fresh stores, one per unique case.
    type Case = (&'static str, &'static str, u64, usize);
    let mut direct: BTreeMap<Case, (String, u64, String)> = BTreeMap::new();
    for &(kernel, search, seed, budget) in CASES {
        direct
            .entry((kernel, search, seed, budget))
            .or_insert_with(|| direct_result(&dir, kernel, search, seed, budget));
    }
    for (i, &(kernel, search, seed, budget)) in CASES.iter().enumerate() {
        let expected = &direct[&(kernel, search, seed, budget)];
        let (_, point, ms_bits, checksum) = &daemon_results[i];
        assert_eq!(point, &expected.0, "case {i} ({kernel}/{search}): point");
        assert_eq!(
            *ms_bits, expected.1,
            "case {i} ({kernel}/{search}): best_ms bits"
        );
        assert_eq!(
            checksum, &expected.2,
            "case {i} ({kernel}/{search}): checksum"
        );
    }

    // Every request replays individually out of the interleaved trace
    // log — the engine behind `locus-report --request <id>`.
    daemon.stop();
    let text = std::fs::read_to_string(&trace_log).unwrap();
    let events = from_jsonl(&text).unwrap();
    for (id, ..) in &daemon_results {
        let mine = filter_request(&events, id);
        assert!(!mine.is_empty(), "request {id} left no tagged events");
        check_trace(&mine).unwrap_or_else(|e| panic!("request {id} does not replay: {e}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_request_is_isolated_from_siblings() {
    let dir = scratch("poison");
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).unwrap();
    let addr = daemon.addr();

    std::thread::scope(|scope| {
        // Two well-behaved siblings...
        let good: Vec<_> = [
            ("dgemm", "exhaustive", 0u64, 10usize),
            ("stencil-jacobi1d", "bandit", 7, 8),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, (kernel, search, seed, budget))| {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let response = client
                    .request(&tune_request(
                        &format!("good-{i}"),
                        kernel,
                        search,
                        seed,
                        budget,
                    ))
                    .unwrap();
                assert!(response.ok, "sibling {i}: {response:?}");
                (
                    response.get_str("best_point").unwrap().to_string(),
                    response.get_f64("best_ms").unwrap().to_bits(),
                )
            })
        })
        .collect();
        // ...and one deliberately poisoned request in between.
        let poisoned = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client
                .request(&Request::new("boom", Op::DebugPanic))
                .unwrap()
        });

        let response = poisoned.join().unwrap();
        assert!(!response.ok);
        assert_eq!(response.error_code(), Some(codes::PANIC));
        assert!(
            response.get_str("message").unwrap().contains("panicked"),
            "{response:?}"
        );

        // Siblings completed bit-identically to direct library calls.
        let results: Vec<_> = good.into_iter().map(|h| h.join().unwrap()).collect();
        let d0 = direct_result(&dir, "dgemm", "exhaustive", 0, 10);
        let d1 = direct_result(&dir, "stencil-jacobi1d", "bandit", 7, 8);
        assert_eq!(results[0], (d0.0, d0.1));
        assert_eq!(results[1], (d1.0, d1.1));
    });

    // The daemon survived: same connection limits, fresh client, ping.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.ping("after").unwrap());
    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shared_store_warms_repeat_sessions_and_feeds_suggest() {
    let dir = scratch("warm");
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();

    let cold = client
        .request(&tune_request("cold", "dgemm", "exhaustive", 0, 10))
        .unwrap();
    assert!(cold.ok, "{cold:?}");
    assert!(cold.get_u64("evaluations").unwrap() > 0);

    // Same kernel, same space, new connection: everything rehydrates.
    let mut second = Client::connect(daemon.addr()).unwrap();
    let warm = second
        .request(&tune_request("warm", "dgemm", "exhaustive", 0, 10))
        .unwrap();
    assert!(warm.ok, "{warm:?}");
    assert_eq!(warm.get_u64("evaluations"), Some(0), "warm re-measured");
    assert!(warm.get_u64("rehydrated").unwrap() > 0);
    assert_eq!(
        warm.get_f64("best_ms").unwrap().to_bits(),
        cold.get_f64("best_ms").unwrap().to_bits(),
        "warm result drifted from cold"
    );

    // The recorded session feeds recipe retrieval.
    let mut suggest = Request::new("sug", Op::Suggest);
    suggest.kernel = "dgemm".to_string();
    let suggested = client.request(&suggest).unwrap();
    assert!(suggested.ok, "{suggested:?}");
    assert_eq!(suggested.get_u64("retrieved"), Some(1), "{suggested:?}");
    assert!(suggested
        .get_str("program")
        .unwrap()
        .contains("retrieved from tuning store"));

    // Store maintenance ops work over the same connection.
    let stats = client.request(&Request::new("st", Op::Stats)).unwrap();
    assert!(stats.get_u64("evals").unwrap() > 0);
    let compacted = client.request(&Request::new("cp", Op::Compact)).unwrap();
    assert!(compacted.ok, "{compacted:?}");
    assert!(
        compacted.get_u64("bytes_after").unwrap() <= compacted.get_u64("bytes_before").unwrap()
    );

    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budgets_are_clamped_and_deadlines_enforced() {
    let dir = scratch("limits");
    let mut config = DaemonConfig::new(dir.join("store.d"));
    config.max_budget = 4;
    let mut daemon = Daemon::start(config).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();

    // A greedy budget request is clamped to the daemon's ceiling.
    let response = client
        .request(&tune_request("greedy", "dgemm", "exhaustive", 0, 10_000))
        .unwrap();
    assert!(response.ok, "{response:?}");
    assert_eq!(response.get_u64("budget"), Some(4));
    assert!(response.get_u64("evaluations").unwrap() <= 4);

    // A zero deadline has always expired by the time a worker looks.
    let mut hasty = tune_request("hasty", "dgemm", "exhaustive", 0, 4);
    hasty.deadline_ms = Some(0);
    let response = client.request(&hasty).unwrap();
    assert!(!response.ok);
    assert_eq!(response.error_code(), Some(codes::DEADLINE));

    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_op_stops_the_daemon() {
    let dir = scratch("shutdown");
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();
    let response = client.shutdown("bye").unwrap();
    assert!(response.ok);
    // join returns because a client-initiated shutdown tears the
    // service threads down.
    daemon.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The daemon's supervised result path and the tracer interact: a
/// traced daemon still answers bit-identically (tracing must never
/// perturb tuning).
#[test]
fn tracing_does_not_perturb_results() {
    let dir = scratch("traceident");
    let mut traced_config = DaemonConfig::new(dir.join("traced.d"));
    traced_config.trace_log = Some(dir.join("trace.jsonl"));
    let mut traced = Daemon::start(traced_config).unwrap();
    let mut untraced = Daemon::start(DaemonConfig::new(dir.join("plain.d"))).unwrap();

    let mut a = Client::connect(traced.addr()).unwrap();
    let mut b = Client::connect(untraced.addr()).unwrap();
    let request = tune_request("t", "poly-syrk", "random", 7, 8);
    let ra = a.request(&request).unwrap();
    let rb = b.request(&request).unwrap();
    assert!(ra.ok && rb.ok);
    assert_eq!(ra.get_str("best_point"), rb.get_str("best_point"));
    assert_eq!(
        ra.get_f64("best_ms").unwrap().to_bits(),
        rb.get_f64("best_ms").unwrap().to_bits()
    );

    traced.stop();
    untraced.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Sixteen concurrent clients, mixed kernels, one shared store — the
/// acceptance-scale smoke: every request answered, no panic leaks, and
/// same-case responses agree bit-for-bit with each other.
#[test]
fn sixteen_concurrent_clients_all_complete() {
    let dir = scratch("sixteen");
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).unwrap();
    let addr = daemon.addr();
    let kernels = ["dgemm", "stencil-jacobi1d", "poly-syrk", "poly-trmm"];

    let results: Vec<(usize, String, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|i| {
                scope.spawn(move || {
                    let kernel = kernels[i % kernels.len()];
                    let mut client = Client::connect(addr).unwrap();
                    let response = client
                        .request(&tune_request(&format!("c{i}"), kernel, "exhaustive", 0, 6))
                        .unwrap();
                    assert!(response.ok, "client {i}: {response:?}");
                    (
                        i % kernels.len(),
                        response.get_str("best_point").unwrap().to_string(),
                        response.get_f64("best_ms").unwrap().to_bits(),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All clients of the same kernel agree bit-for-bit.
    let mut by_kernel: BTreeMap<usize, (String, u64)> = BTreeMap::new();
    for (kernel_idx, point, bits) in results {
        match by_kernel.get(&kernel_idx) {
            None => {
                by_kernel.insert(kernel_idx, (point, bits));
            }
            Some((p, b)) => {
                assert_eq!(&point, p, "kernel {kernel_idx} disagreed on point");
                assert_eq!(bits, *b, "kernel {kernel_idx} disagreed on best_ms");
            }
        }
    }
    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// A tracer-equipped direct library call and the daemon both exist to
/// serve the same workflows; this pins that `Tracer::disabled` stays
/// zero-cost in the daemon path (no trace log → no events buffered).
#[test]
fn untraced_daemon_writes_no_trace_log() {
    let dir = scratch("notrace");
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();
    let response = client
        .request(&tune_request("r", "dgemm", "exhaustive", 0, 4))
        .unwrap();
    assert!(response.ok);
    daemon.stop();
    assert!(!dir.join("trace.jsonl").exists());
    // Sanity: the disabled tracer really buffers nothing.
    let tracer = Tracer::disabled();
    tracer.instant("x", "y", Vec::new);
    assert!(tracer.events().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
