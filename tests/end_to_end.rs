//! Integration tests spanning the whole workspace: source front-end →
//! Locus DSL → transformation modules → simulated machine → search.

use locus::machine::{Machine, MachineConfig};
use locus::search::{AnnealTuner, BanditTuner, ExhaustiveSearch, RandomSearch, SearchModule};
use locus::system::LocusSystem;

fn small_machine(cores: usize) -> Machine {
    Machine::new(MachineConfig::scaled_small().with_cores(cores))
}

#[test]
fn fig5_program_end_to_end() {
    // The paper's first example: 2D-vs-3D tiling alternative with pow2
    // tile ranges and an unroll conditional on the chosen alternative.
    let source = locus::corpus::dgemm_program(32);
    let locus_program = locus::lang::parse(
        r#"
        import "RoseLocus";
        def printstatus(type) {
            print "Tiling selected: " + type;
        }
        OptSeq Tiling2D() {
            tileI = poweroftwo(2..32);
            tileJ = poweroftwo(2..32);
            RoseLocus.Tiling(loop="0", factor=[tileI, tileJ]);
            return "2D";
        }
        OptSeq Tiling3D() {
            RoseLocus.Tiling(loop="0", factor=[4, 4, 8]);
            return "3D";
        }
        CodeReg matmul {
            tiledim = 4;
            tiletype = Tiling2D() OR Tiling3D();
            printstatus(tiletype);
            if (tiletype == "2D") {
                RoseLocus.Unroll(loop=innermost, factor=tiledim);
            }
        }
        "#,
    )
    .unwrap();
    let system = LocusSystem::new(small_machine(1));
    let prepared = system.prepare(&source, &locus_program).unwrap();
    // tileI (5) * tileJ (5) * OR (2) = 50 assignments, covering the
    // paper's 25 + 1 semantic variants.
    assert_eq!(prepared.space.size(), 50);

    let mut search = ExhaustiveSearch::default();
    let result = system
        .tune(&source, &locus_program, &mut search, 64)
        .unwrap();
    // Every assignment is a valid, correct variant.
    assert_eq!(result.outcome.evaluations, 50);
    assert!(result.best.is_some());
    assert!(result.speedup() >= 1.0);
}

#[test]
fn all_search_modules_tune_the_same_space() {
    let source = locus::corpus::dgemm_program(24);
    let locus_program = locus::lang::parse(
        r#"CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            t = poweroftwo(2..16);
            Pips.Tiling(loop="0", factor=[t, t, t]);
        }"#,
    )
    .unwrap();
    let system = LocusSystem::new(small_machine(1));
    let mut modules: Vec<Box<dyn SearchModule>> = vec![
        Box::new(ExhaustiveSearch::default()),
        Box::new(RandomSearch::new(1)),
        Box::new(BanditTuner::new(1)),
        Box::new(AnnealTuner::new(1)),
    ];
    let mut bests = Vec::new();
    for m in &mut modules {
        let result = system.tune(&source, &locus_program, m.as_mut(), 8).unwrap();
        let (_, _, best) = result.best.expect("found a variant");
        bests.push(best.time_ms);
    }
    // Exhaustive covers the whole 4-point space; every module must land
    // on the same optimum given budget >= space.
    for b in &bests {
        assert!((b - bests[0]).abs() < 1e-9, "{bests:?}");
    }
}

#[test]
fn variant_checksum_guard_rejects_wrong_code() {
    // Force an illegal interchange with legality checks off: the
    // dependence reverses and the checksum diverges, so the system
    // counts the variant as failed rather than reporting wrong results.
    let source = locus::srcir::parse_program(
        r#"
        double A[64][64];
        void kernel() {
            #pragma @Locus loop=rec
            for (int i = 1; i < 64; i++)
                for (int j = 0; j < 63; j++)
                    A[i][j] = A[i - 1][j + 1] * 0.5;
        }
        "#,
    )
    .unwrap();
    let locus_program = locus::lang::parse(
        r#"CodeReg rec {
            RoseLocus.Interchange(order=[1, 0]);
        }"#,
    )
    .unwrap();
    let mut system = LocusSystem::new(small_machine(1));
    system.check_legality = false; // expert override...
    let mut search = ExhaustiveSearch::default();
    let result = system
        .tune(&source, &locus_program, &mut search, 4)
        .unwrap();
    // ...but the empirical result check catches the broken variant.
    assert!(result.best.is_none());
    assert_eq!(result.outcome.evaluations, 1);

    // With legality checks on, the module itself refuses.
    let mut strict = LocusSystem::new(small_machine(1));
    strict.check_legality = true;
    let mut search = ExhaustiveSearch::default();
    let result = strict
        .tune(&source, &locus_program, &mut search, 4)
        .unwrap();
    assert!(result.best.is_none());
}

#[test]
fn multiple_regions_with_the_same_id_get_the_same_sequence() {
    let source = locus::srcir::parse_program(
        r#"
        double A[128];
        double B[128];
        void kernel() {
            #pragma @Locus loop=init
            for (int i = 0; i < 128; i++)
                A[i] = 1.0;
            #pragma @Locus loop=init
            for (int j = 0; j < 128; j++)
                B[j] = 2.0;
        }
        "#,
    )
    .unwrap();
    let locus_program = locus::lang::parse(
        r#"CodeReg init {
            RoseLocus.Unroll(loop="0", factor=4);
        }"#,
    )
    .unwrap();
    let system = LocusSystem::new(small_machine(1));
    let optimized = system.apply_direct(&source, &locus_program).unwrap();
    let printed = locus::srcir::print_program(&optimized);
    assert!(printed.contains("A[i + 3]"), "{printed}");
    assert!(printed.contains("B[j + 3]"), "{printed}");
}

#[test]
fn or_statement_alternatives_produce_distinct_variants() {
    let source = locus::corpus::dgemm_program(16);
    let locus_program = locus::lang::parse(
        r#"
        OptSeq A2() { RoseLocus.Unroll(loop=innermost, factor=2); return 2; }
        OptSeq A4() { RoseLocus.Unroll(loop=innermost, factor=4); return 4; }
        CodeReg matmul {
            A2() OR A4();
        }
        "#,
    )
    .unwrap();
    let system = LocusSystem::new(small_machine(1));
    let prepared = system.prepare(&source, &locus_program).unwrap();
    assert_eq!(prepared.space.size(), 2);
    let a = system
        .build_variant(&source, &prepared, &prepared.space.point_at(0))
        .unwrap();
    let b = system
        .build_variant(&source, &prepared, &prepared.space.point_at(1))
        .unwrap();
    assert_ne!(
        locus::srcir::print_program(&a),
        locus::srcir::print_program(&b)
    );
}

#[test]
fn search_block_configuration_is_exposed() {
    let locus_program = locus::lang::parse(
        r#"
        Search {
            buildcmd = "make clean; make";
            runcmd = "./matmul";
        }
        CodeReg matmul { RoseLocus.Unroll(loop="0", factor=2); }
        "#,
    )
    .unwrap();
    let mut host = NullHost;
    let point = locus::space::Point::new();
    let ids = std::collections::HashMap::new();
    let mut interp = locus::lang::Interp::new(&locus_program, &mut host, &point, &ids);
    interp.run_search_block().unwrap();
    let out = interp.into_output();
    assert_eq!(
        out.search_config.get("buildcmd").map(ToString::to_string),
        Some("make clean; make".to_string())
    );
}

struct NullHost;

impl locus::lang::TransformHost for NullHost {
    fn call(
        &mut self,
        _module: &str,
        _func: &str,
        _args: &[(Option<String>, locus::lang::Value)],
    ) -> Result<locus::lang::Value, locus::lang::HostError> {
        Ok(locus::lang::Value::None)
    }
}
