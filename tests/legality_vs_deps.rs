//! Differential test: the unified legality engine (`locus-verify`)
//! against the raw dependence analysis (`locus-analysis`).
//!
//! The two layers answer the same question through different code paths —
//! `verify::legal` adds target resolution, nest reconstruction, race
//! classification and clause synthesis on top of the direction-vector
//! predicates. The invariant checked here is one-directional and safety
//! critical: **no transformation may be declared legal that a reported
//! dependence forbids**. (The converse — the engine being *more*
//! conservative than the raw predicates — is allowed by design.)
//!
//! The sweep covers hand-written nests spanning the interesting dependence
//! shapes (matmul, recurrences, skewed stencils, reductions, privatizable
//! temporaries, triangular nests, fusable/unfusable sequences, non-affine
//! subscripts) plus every loop of the committed fuzz corpus under
//! `tests/fixtures/fuzz_corpus/`.

use locus::analysis::deps::{analyze_region, analyze_region_conservative};
use locus::srcir::ast::{OmpClause, Stmt};
use locus::srcir::visit::{child, child_count};
use locus::srcir::{parse_program, HierIndex};
use locus::verify::{legal, parallel_for_clauses, TransformStep};

// ---- helpers -----------------------------------------------------------

fn region(src: &str) -> Stmt {
    let p = parse_program(src).unwrap();
    let s = p.functions().next().unwrap().body[0].clone();
    s
}

fn block_region(src: &str) -> Stmt {
    let p = parse_program(src).unwrap();
    let s = Stmt::block(p.functions().next().unwrap().body.clone());
    s
}

/// All hierarchical indices of `for` loops in the region, root first.
fn loop_targets(root: &Stmt) -> Vec<HierIndex> {
    fn rec(stmt: &Stmt, index: HierIndex, out: &mut Vec<HierIndex>) {
        if stmt.is_for() {
            out.push(index.clone());
        }
        for i in 0..child_count(stmt) {
            if let Some(c) = child(stmt, i) {
                rec(c, index.push(i), out);
            }
        }
    }
    let mut out = Vec::new();
    rec(root, HierIndex::root(), &mut out);
    out
}

/// Permutations (as `order[new] = old`) worth sweeping at the root.
const PERMS: &[&[usize]] = &[
    &[0, 1],
    &[1, 0],
    &[0, 1, 2],
    &[0, 2, 1],
    &[1, 0, 2],
    &[1, 2, 0],
    &[2, 0, 1],
    &[2, 1, 0],
];

/// Checks every one-directional consistency invariant for one region.
/// Returns the number of (target, step) pairs the engine declared legal,
/// so callers can assert the sweep was not vacuous.
fn check_region(root: &Stmt, label: &str) -> usize {
    let mut legal_count = 0;

    // Interchange is judged at the region root against the root's own
    // dependence info, extended to the analyzed nest depth exactly as the
    // engine extends it.
    let root_info = analyze_region(root);
    for &perm in PERMS {
        let verdict = legal(
            root,
            &TransformStep::Interchange {
                order: perm.to_vec(),
            },
        );
        let identity = perm.iter().enumerate().all(|(i, &o)| i == o);
        if verdict.is_legal() {
            legal_count += 1;
            if identity {
                continue; // legal by definition, no analysis consulted
            }
            assert!(
                root_info.available,
                "{label}: interchange {perm:?} declared legal with unavailable dependence info"
            );
            let full: Vec<usize> = perm
                .iter()
                .copied()
                .chain(perm.len()..root_info.loop_vars.len())
                .collect();
            assert!(
                root_info.interchange_legal(&full),
                "{label}: interchange {perm:?} declared legal but a dependence forbids it"
            );
        } else {
            assert!(!identity, "{label}: the identity permutation must be legal");
        }
    }

    for target in loop_targets(root) {
        let loop_stmt = target.resolve(root).expect("loop target resolves");
        let info = analyze_region(loop_stmt);

        for width in 1..=3usize {
            let verdict = legal(
                root,
                &TransformStep::Tile {
                    target: target.clone(),
                    width,
                },
            );
            if verdict.is_legal() {
                legal_count += 1;
                let band: Vec<usize> = (0..width).collect();
                assert!(
                    info.available && info.band_permutable(&band),
                    "{label}@{target}: tiling width {width} declared legal but the band \
                     is not permutable"
                );
            }
        }

        if legal(
            root,
            &TransformStep::UnrollAndJam {
                target: target.clone(),
            },
        )
        .is_legal()
        {
            legal_count += 1;
            assert!(
                info.available && info.band_permutable(&[0, 1]),
                "{label}@{target}: unroll-and-jam declared legal but the loop pair \
                 is not permutable"
            );
        }

        if legal(
            root,
            &TransformStep::Vectorize {
                target: target.clone(),
            },
        )
        .is_legal()
        {
            legal_count += 1;
            assert!(
                info.available && info.vectorizable(),
                "{label}@{target}: vectorization declared legal but a loop-carried \
                 dependence exists"
            );
        }

        if legal(
            root,
            &TransformStep::Distribute {
                target: target.clone(),
            },
        )
        .is_legal()
        {
            legal_count += 1;
            assert!(
                info.available && info.distribution_legal(),
                "{label}@{target}: distribution declared legal but a backward \
                 dependence exists"
            );
        }

        // Parallelization: when the engine hands out a clause list, every
        // dependence the raw analysis reports as carried by the candidate
        // loop (level 0 of the loop-rooted nest) must be a scalar the
        // clauses fix. An array dependence carried by a "legal" parallel
        // loop would be a miscompile.
        if let Ok(clauses) = parallel_for_clauses(root, &target) {
            legal_count += 1;
            if info.available {
                let fixed: Vec<&str> = clauses
                    .iter()
                    .map(|c| match c {
                        OmpClause::Reduction { var, .. } => var.as_str(),
                        OmpClause::Private { var } => var.as_str(),
                    })
                    .collect();
                for dep in &info.deps {
                    if dep.carrier_level() == Some(0) {
                        assert!(
                            fixed.contains(&dep.array.as_str()),
                            "{label}@{target}: parallel-for declared legal but a {:?} \
                             dependence on `{}` is carried by the parallel loop and no \
                             clause fixes it (clauses: {clauses:?})",
                            dep.kind,
                            dep.array
                        );
                    }
                }
            }
        }

        // The conservative direction for the predicates implemented
        // directly on `analyze_region`: unavailable info must refuse.
        if !info.available {
            for step in [
                TransformStep::Tile {
                    target: target.clone(),
                    width: 1,
                },
                TransformStep::Distribute {
                    target: target.clone(),
                },
                TransformStep::Vectorize {
                    target: target.clone(),
                },
            ] {
                assert!(
                    !legal(root, &step).is_legal(),
                    "{label}@{target}: {step:?} declared legal without dependence info"
                );
            }
        }
    }
    legal_count
}

// ---- hand-written nests ------------------------------------------------

fn hand_written_nests() -> Vec<(&'static str, Stmt)> {
    vec![
        (
            "matmul",
            region(
                r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++)
                        for (int k = 0; k < n; k++)
                            C[i][j] = C[i][j] + A[i][k] * B[k][j];
                }"#,
            ),
        ),
        (
            "first-order-recurrence",
            region(
                r#"void f(int n, double A[64]) {
                for (int i = 1; i < n; i++)
                    A[i] = A[i - 1] + 1.0;
                }"#,
            ),
        ),
        (
            "skewed-stencil",
            region(
                r#"void f(int n, double A[8][8]) {
                for (int i = 1; i < n; i++)
                    for (int j = 0; j < n - 1; j++)
                        A[i][j] = A[i - 1][j + 1];
                }"#,
            ),
        ),
        (
            "jacobi-style",
            region(
                r#"void f(int n, double A[64][64], double B[64][64]) {
                for (int i = 1; i < n - 1; i++)
                    for (int j = 1; j < n - 1; j++)
                        B[i][j] = A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1];
                }"#,
            ),
        ),
        (
            "sum-reduction",
            block_region(
                r#"void f(int n, double s, double r, double A[64]) {
                for (int i = 0; i < n; i++)
                    s = s + A[i];
                r = s;
                }"#,
            ),
        ),
        (
            "privatizable-temp",
            block_region(
                r#"void f(int n, double t, double A[64], double B[64]) {
                for (int i = 0; i < n; i++) {
                    t = A[i] * 2.0;
                    B[i] = t + 1.0;
                }
                }"#,
            ),
        ),
        (
            "live-out-temp",
            block_region(
                r#"void f(int n, double t, double A[64], double B[64]) {
                for (int i = 0; i < n; i++) {
                    t = A[i] * 2.0;
                    B[i] = t + 1.0;
                }
                B[0] = t;
                }"#,
            ),
        ),
        (
            "triangular",
            region(
                r#"void f(int n, double L[32][32], double x[32]) {
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < i; j++)
                        x[i] = x[i] - L[i][j] * x[j];
                }"#,
            ),
        ),
        (
            "fusable-sequence",
            block_region(
                r#"void f(int n, double A[64], double B[64]) {
                for (int i = 0; i < 64; i++) A[i] = 1.0;
                for (int j = 0; j < 64; j++) B[j] = A[j] * 2.0;
                }"#,
            ),
        ),
        (
            "fusion-preventing-sequence",
            block_region(
                r#"void f(int n, double A[66], double B[64]) {
                for (int i = 0; i < 64; i++) A[i] = 1.0;
                for (int j = 0; j < 64; j++) B[j] = A[j + 1];
                }"#,
            ),
        ),
        (
            "backward-distribution",
            region(
                r#"void f(int n, double A[8], double B[8], double C[8]) {
                for (int i = 1; i < n; i++) {
                    B[i] = A[i - 1];
                    A[i] = C[i] + 1.0;
                }
                }"#,
            ),
        ),
        (
            "non-affine",
            region(
                r#"void f(int n, double A[64], int idx[64]) {
                for (int i = 0; i < n; i++)
                    A[idx[i]] = 1.0;
                }"#,
            ),
        ),
    ]
}

// ---- the differential sweeps -------------------------------------------

#[test]
fn hand_written_nests_are_judged_consistently() {
    let mut legal_total = 0;
    for (label, root) in hand_written_nests() {
        legal_total += check_region(&root, label);
    }
    // The sweep must actually exercise the legal path, not refuse
    // everything: matmul alone contributes interchange + tiling +
    // parallelization verdicts.
    assert!(
        legal_total >= 10,
        "sweep looks vacuous: only {legal_total} legal verdicts"
    );
}

#[test]
fn corpus_registry_regions_are_judged_consistently() {
    // Every registry entry's tagged region goes through the same
    // one-directional sweep — this is where the triangular PolyBench
    // factorizations, the data-dependent SpMV bounds and the guarded
    // stencil meet the legality engine. Rectangular entries must keep
    // contributing legal verdicts; triangular ones are allowed to refuse
    // everything (the engine may be more conservative than the raw
    // predicates, never less).
    use locus::srcir::region::{extract_region, find_regions};
    let mut legal_total = 0;
    for entry in locus::corpus::all_programs() {
        let regions = find_regions(&entry.program);
        let region = regions
            .iter()
            .find(|r| r.id == entry.region)
            .unwrap_or_else(|| panic!("{}: region `{}` missing", entry.name, entry.region));
        let root = extract_region(&entry.program, region)
            .unwrap_or_else(|| panic!("{}: region not extractable", entry.name))
            .stmt;
        let count = check_region(&root, entry.name);
        if entry.rectangular {
            assert!(
                count > 0,
                "{}: rectangular entry produced no legal verdicts",
                entry.name
            );
        }
        legal_total += count;
    }
    assert!(
        legal_total >= 10,
        "registry sweep looks vacuous: only {legal_total} legal verdicts"
    );
}

#[test]
fn fusion_verdicts_respect_the_reconstructed_dependences() {
    // Fusion is judged on a privately fused candidate; re-do the engine's
    // construction through the public analysis API and compare verdicts.
    let fusable = block_region(
        r#"void f(int n, double A[64], double B[64]) {
        for (int i = 0; i < 64; i++) A[i] = 1.0;
        for (int j = 0; j < 64; j++) B[j] = A[j] * 2.0;
        }"#,
    );
    assert!(legal(
        &fusable,
        &TransformStep::Fuse {
            first: "0.0".parse().unwrap()
        }
    )
    .is_legal());

    let preventing = block_region(
        r#"void f(int n, double A[66], double B[64]) {
        for (int i = 0; i < 64; i++) A[i] = 1.0;
        for (int j = 0; j < 64; j++) B[j] = A[j + 1];
        }"#,
    );
    let verdict = legal(
        &preventing,
        &TransformStep::Fuse {
            first: "0.0".parse().unwrap(),
        },
    );
    assert!(!verdict.is_legal());
    // The raw analysis agrees there is a dependence between the two
    // bodies through `A` (the engine saw it point backward after fusing).
    let info = analyze_region(&preventing);
    assert!(info.available);
    assert!(
        info.deps.iter().any(|d| d.array == "A"),
        "analysis reports no dependence on A at all: {:?}",
        info.deps
    );
}

#[test]
fn known_dependences_are_reported_and_refused() {
    // Both layers must agree on the classic recurrence — this guards
    // against the *analysis* silently going permissive, which would make
    // the one-directional sweep above vacuous.
    let root = region(
        r#"void f(int n, double A[64]) {
        for (int i = 1; i < n; i++)
            A[i] = A[i - 1] + 1.0;
        }"#,
    );
    let info = analyze_region(&root);
    assert!(info.available);
    assert!(
        info.deps.iter().any(|d| d.carrier_level() == Some(0)),
        "analysis must report the carried dependence: {:?}",
        info.deps
    );
    assert!(!legal(
        &root,
        &TransformStep::Vectorize {
            target: HierIndex::root()
        }
    )
    .is_legal());
    assert!(parallel_for_clauses(&root, &HierIndex::root()).is_err());
}

/// Collects every region this suite sweeps: the hand-written nests plus
/// each registry entry's tagged region.
fn all_swept_regions() -> Vec<(String, Stmt)> {
    use locus::srcir::region::{extract_region, find_regions};
    let mut out: Vec<(String, Stmt)> = hand_written_nests()
        .into_iter()
        .map(|(label, root)| (label.to_string(), root))
        .collect();
    for entry in locus::corpus::all_programs() {
        let regions = find_regions(&entry.program);
        let region = regions
            .iter()
            .find(|r| r.id == entry.region)
            .unwrap_or_else(|| panic!("{}: region `{}` missing", entry.name, entry.region));
        let root = extract_region(&entry.program, region)
            .unwrap_or_else(|| panic!("{}: region not extractable", entry.name))
            .stmt;
        out.push((entry.name.to_string(), root));
    }
    out
}

#[test]
fn exact_refusals_are_a_subset_of_conservative_refusals() {
    // The polyhedral engine may only *admit* more than the conservative
    // subscript tests, never less: any direction-vector predicate that
    // holds under the conservative dependence set must hold under the
    // exact one. A violation means the exact engine invented a
    // dependence — the one failure mode that would make its "legal"
    // verdicts unsound to trust over the old ones.
    let mut compared = 0usize;
    for (label, root) in all_swept_regions() {
        let exact = analyze_region(&root);
        let cons = analyze_region_conservative(&root);
        assert_eq!(
            exact.available, cons.available,
            "{label}: engines disagree on availability"
        );
        if !exact.available {
            continue;
        }
        let depth = exact.loop_vars.len();
        for &perm in PERMS {
            let full: Vec<usize> = perm.iter().copied().chain(perm.len()..depth).collect();
            if cons.interchange_legal(&full) {
                assert!(
                    exact.interchange_legal(&full),
                    "{label}: conservative admits interchange {perm:?}, exact refuses"
                );
            }
            compared += 1;
        }
        for width in 1..=depth.min(3) {
            let band: Vec<usize> = (0..width).collect();
            if cons.band_permutable(&band) {
                assert!(
                    exact.band_permutable(&band),
                    "{label}: conservative admits band {band:?}, exact refuses"
                );
            }
            compared += 1;
        }
        if cons.vectorizable() {
            assert!(
                exact.vectorizable(),
                "{label}: conservative admits vectorization, exact refuses"
            );
        }
        if cons.distribution_legal() {
            assert!(
                exact.distribution_legal(),
                "{label}: conservative admits distribution, exact refuses"
            );
        }
        compared += 2;
    }
    assert!(compared > 100, "sweep looks vacuous: {compared} predicates");
}

#[test]
fn newly_legal_variants_execute_checksum_identically() {
    // Every restructuring the polyhedral engine newly admits — legal
    // under `verify::legal`, refused by the conservative predicate or by
    // the old rectangular-band structural gate — is applied for real and
    // executed on both engines. The variant's checksum must be
    // bit-identical to the untransformed oracle's: a "newly legal" point
    // that changes the result would be the exact engine miscompiling.
    use locus::machine::{ExecEngine, Machine, MachineConfig};
    use locus::srcir::ast::Expr;
    use locus::srcir::region::{extract_region, find_regions, replace_region};
    use locus::srcir::visit::walk_exprs;
    use locus::transform;

    /// The old structural gate: every bound in the width-`width`
    /// perfectly nested band must not reference another band variable.
    fn rectangular_band(loop_stmt: &Stmt, width: usize) -> bool {
        use locus::analysis::loops::canonicalize;
        let mut band = Vec::new();
        let mut cur = loop_stmt;
        for level in 0..width {
            let Some(canon) = canonicalize(cur) else {
                return false;
            };
            band.push(canon);
            if level + 1 < width {
                let body = cur.as_for().expect("canonical loop").body.body_stmts();
                if body.len() != 1 || !body[0].is_for() {
                    return false;
                }
                cur = &body[0];
            }
        }
        band.iter().all(|canon| {
            [&canon.lower, &canon.upper].iter().all(|bound| {
                let mut ok = true;
                walk_exprs(bound, &mut |e| {
                    if let Expr::Ident(n) = e {
                        if band.iter().any(|l| &l.var == n && l.var != canon.var) {
                            ok = false;
                        }
                    }
                });
                ok
            })
        })
    }

    let config = MachineConfig::scaled_small();
    let mut executed = 0usize;
    for entry in locus::corpus::all_programs() {
        let regions = find_regions(&entry.program);
        let Some(region) = regions.iter().find(|r| r.id == entry.region) else {
            continue;
        };
        let root = extract_region(&entry.program, region).expect("region").stmt;
        let cons = analyze_region_conservative(&root);
        let depth = analyze_region(&root).loop_vars.len();

        // Candidate steps and whether the old engine (conservative deps
        // + rectangular band gate) would have admitted them.
        let mut candidates: Vec<(TransformStep, bool)> = Vec::new();
        for &perm in PERMS {
            if perm.len() > depth {
                continue;
            }
            let full: Vec<usize> = perm.iter().copied().chain(perm.len()..depth).collect();
            let old = cons.available
                && cons.interchange_legal(&full)
                && rectangular_band(&root, perm.len());
            candidates.push((
                TransformStep::Interchange {
                    order: perm.to_vec(),
                },
                old,
            ));
        }
        for width in 2..=depth.min(3) {
            let band: Vec<usize> = (0..width).collect();
            let old =
                cons.available && cons.band_permutable(&band) && rectangular_band(&root, width);
            candidates.push((
                TransformStep::Tile {
                    target: HierIndex::root(),
                    width,
                },
                old,
            ));
        }

        for (step, old_legal) in candidates {
            if old_legal || !legal(&root, &step).is_legal() {
                continue; // not *newly* legal
            }
            let mut stmt = root.clone();
            let applied = match &step {
                TransformStep::Interchange { order } => {
                    transform::interchange::interchange(&mut stmt, order, true).is_ok()
                }
                TransformStep::Tile { width, .. } => {
                    transform::tiling::tile(&mut stmt, &HierIndex::root(), &vec![4; *width], true)
                        .is_ok()
                }
                _ => false,
            };
            if !applied {
                continue;
            }
            let mut variant = entry.program.clone();
            replace_region(&mut variant, region, stmt);
            let oracle = Machine::new(config.clone().with_engine(ExecEngine::Tree))
                .run(&entry.program, "kernel")
                .unwrap_or_else(|e| panic!("{}: oracle failed: {e:?}", entry.name));
            for engine in [
                ExecEngine::Tree,
                ExecEngine::Bytecode,
                ExecEngine::RegisterVm,
            ] {
                let m = Machine::new(config.clone().with_engine(engine))
                    .run(&variant, "kernel")
                    .unwrap_or_else(|e| {
                        panic!(
                            "{}: newly-legal {step:?} failed on {engine:?}: {e:?}",
                            entry.name
                        )
                    });
                assert_eq!(
                    m.checksum, oracle.checksum,
                    "{}: newly-legal {step:?} changed the checksum on {engine:?}",
                    entry.name
                );
            }
            executed += 1;
        }
    }
    // SYRK's triangular band alone must contribute (interchange and/or
    // hull tiling); if nothing executed the precision story is vacuous.
    assert!(executed >= 1, "no newly-legal variant was executed");
}

#[test]
fn fuzz_corpus_loops_are_judged_consistently() {
    let dir = format!("{}/tests/fixtures/fuzz_corpus", env!("CARGO_MANIFEST_DIR"));
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{dir}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "fuzz corpus is missing");

    let mut regions = 0;
    for path in entries {
        let src = std::fs::read_to_string(&path).unwrap();
        let program = parse_program(&src).unwrap();
        for f in program.functions() {
            // Judge each function body as one region, exactly like the
            // tuning driver does with annotated regions.
            let root = Stmt::block(f.body.clone());
            check_region(&root, &format!("{}:{}", path.display(), f.name));
            regions += 1;
        }
    }
    assert!(regions > 0, "corpus contained no functions");
}
