//! Property tests for the integer Fourier–Motzkin engine.
//!
//! A SplitMix64-driven generator builds random small affine systems —
//! every variable boxed into `0 <= x_i < B` so brute-force enumeration
//! of the box is complete ground truth — and checks the engine's
//! three-valued verdict against it:
//!
//! * `Empty` must mean no integer point satisfies the system;
//! * `NonEmpty` must mean at least one does;
//! * `Unknown` is always allowed (the dark-shadow gap).
//!
//! Shapes mirror what the dependence engine actually builds: plain boxes
//! with random extra inequalities/equalities, triangular chains
//! (`x_{i+1} <= x_i`, `x_{i+1} >= x_i + 1`), and paired-copy systems
//! with subscript-style equalities. Seeds are pinned so failures
//! reproduce byte-for-byte.

use locus::analysis::{Feasibility, PolySystem};

/// SplitMix64 — tiny, statistically solid, and trivially seedable.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// Uniform value in `lo..=hi`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// One randomly generated system plus the box that makes enumeration
/// complete: every constraint row, and the exclusive per-variable bound.
struct Case {
    nvars: usize,
    box_hi: i64,
    /// `(coeffs, constant, is_equality)` for the extra rows.
    rows: Vec<(Vec<i64>, i64, bool)>,
}

impl Case {
    fn build(&self) -> PolySystem {
        let mut sys = PolySystem::new(self.nvars);
        for v in 0..self.nvars {
            let mut r = vec![0i64; self.nvars];
            r[v] = 1;
            sys.ge0(r, 0); // x_v >= 0
            let mut r = vec![0i64; self.nvars];
            r[v] = -1;
            sys.ge0(r, self.box_hi - 1); // x_v <= box_hi - 1
        }
        for (coeffs, k, eq) in &self.rows {
            if *eq {
                sys.eq0(coeffs.clone(), *k);
            } else {
                sys.ge0(coeffs.clone(), *k);
            }
        }
        sys
    }

    /// Ground truth by complete enumeration of the box.
    fn has_integer_point(&self) -> bool {
        let mut point = vec![0i64; self.nvars];
        self.enumerate(0, &mut point)
    }

    fn enumerate(&self, var: usize, point: &mut Vec<i64>) -> bool {
        if var == self.nvars {
            return self.rows.iter().all(|(coeffs, k, eq)| {
                let v: i64 = coeffs
                    .iter()
                    .zip(point.iter())
                    .map(|(c, x)| c * x)
                    .sum::<i64>()
                    + k;
                if *eq {
                    v == 0
                } else {
                    v >= 0
                }
            });
        }
        (0..self.box_hi).any(|x| {
            point[var] = x;
            self.enumerate(var + 1, point)
        })
    }
}

/// Checks one case; panics with the reproducing description on mismatch.
fn check(case: &Case, seed_info: &str) {
    let truth = case.has_integer_point();
    match case.build().feasibility() {
        Feasibility::Empty => assert!(
            !truth,
            "{seed_info}: engine says Empty but {:?} has a point (box {}, rows {:?})",
            case.nvars, case.box_hi, case.rows
        ),
        Feasibility::NonEmpty => assert!(
            truth,
            "{seed_info}: engine says NonEmpty but box {} rows {:?} has no point",
            case.box_hi, case.rows
        ),
        Feasibility::Unknown => {}
    }
}

#[test]
fn random_boxed_systems_agree_with_enumeration() {
    let mut rng = SplitMix64(0x1ce_b00da);
    let mut nonempty = 0usize;
    let mut empty = 0usize;
    for trial in 0..600 {
        let nvars = rng.range(1, 3) as usize;
        let box_hi = rng.range(1, 6);
        let nrows = rng.range(0, 4) as usize;
        let rows = (0..nrows)
            .map(|_| {
                let coeffs: Vec<i64> = (0..nvars).map(|_| rng.range(-2, 2)).collect();
                (coeffs, rng.range(-4, 4), rng.chance(25))
            })
            .collect();
        let case = Case {
            nvars,
            box_hi,
            rows,
        };
        if case.has_integer_point() {
            nonempty += 1;
        } else {
            empty += 1;
        }
        check(&case, &format!("boxed trial {trial}"));
    }
    // The generator must actually exercise both outcomes.
    assert!(nonempty > 50, "degenerate generator: {nonempty} nonempty");
    assert!(empty > 50, "degenerate generator: {empty} empty");
}

#[test]
fn random_triangular_systems_agree_with_enumeration() {
    let mut rng = SplitMix64(0x7e1a_0b5e);
    for trial in 0..600 {
        let nvars = rng.range(2, 3) as usize;
        let box_hi = rng.range(2, 6);
        let mut rows: Vec<(Vec<i64>, i64, bool)> = Vec::new();
        // Triangular chain: each deeper variable sits strictly below or
        // strictly above its parent, the SYRK/TRMM bound shapes.
        for v in 1..nvars {
            let mut coeffs = vec![0i64; nvars];
            if rng.chance(50) {
                // x_v <= x_{v-1} + c  ⇔  x_{v-1} - x_v + c >= 0
                coeffs[v - 1] = 1;
                coeffs[v] = -1;
            } else {
                // x_v >= x_{v-1} + c  ⇔  x_v - x_{v-1} - c >= 0
                coeffs[v] = 1;
                coeffs[v - 1] = -1;
            }
            rows.push((coeffs, rng.range(-2, 1), false));
        }
        for _ in 0..rng.range(0, 2) {
            let coeffs: Vec<i64> = (0..nvars).map(|_| rng.range(-2, 2)).collect();
            rows.push((coeffs, rng.range(-4, 4), rng.chance(30)));
        }
        let case = Case {
            nvars,
            box_hi,
            rows,
        };
        check(&case, &format!("triangular trial {trial}"));
    }
}

#[test]
fn random_dependence_shaped_systems_agree_with_enumeration() {
    // Two copies of a depth-d iteration vector with subscript-style
    // equalities between them and a direction constraint on the first
    // level — the exact shape `test_pair_exact` builds.
    let mut rng = SplitMix64(0xdeadc0de);
    for trial in 0..400 {
        let d = rng.range(1, 2) as usize;
        let nvars = 2 * d;
        let box_hi = rng.range(2, 6);
        let mut rows: Vec<(Vec<i64>, i64, bool)> = Vec::new();
        // Subscript equality: a*x_l + c = a'*y_l' + c'.
        for _ in 0..rng.range(1, 2) {
            let mut coeffs = vec![0i64; nvars];
            coeffs[rng.below(d as u64) as usize] = rng.range(-2, 2);
            coeffs[d + rng.below(d as u64) as usize] -= rng.range(-2, 2);
            rows.push((coeffs, rng.range(-3, 3), true));
        }
        // Direction constraint on level 0: y_0 - x_0 - 1 >= 0 (Lt) or
        // x_0 = y_0 (Eq).
        let mut coeffs = vec![0i64; nvars];
        if rng.chance(50) {
            coeffs[d] = 1;
            coeffs[0] = -1;
            rows.push((coeffs, -1, false));
        } else {
            coeffs[0] = 1;
            coeffs[d] = -1;
            rows.push((coeffs, 0, true));
        }
        let case = Case {
            nvars,
            box_hi,
            rows,
        };
        check(&case, &format!("dependence trial {trial}"));
    }
}

#[test]
fn unit_coefficient_systems_are_always_decided() {
    // With every coefficient in {-1, 0, 1} the dark shadow equals the
    // real shadow, so the engine must never answer Unknown — the reason
    // the dependence systems (unit direction rows, unit bound rows) are
    // decidable in practice.
    let mut rng = SplitMix64(0x5eed_cafe);
    for trial in 0..400 {
        let nvars = rng.range(1, 3) as usize;
        let box_hi = rng.range(1, 6);
        let nrows = rng.range(0, 4) as usize;
        let rows: Vec<(Vec<i64>, i64, bool)> = (0..nrows)
            .map(|_| {
                let coeffs: Vec<i64> = (0..nvars).map(|_| rng.range(-1, 1)).collect();
                (coeffs, rng.range(-4, 4), rng.chance(25))
            })
            .collect();
        let case = Case {
            nvars,
            box_hi,
            rows,
        };
        let verdict = case.build().feasibility();
        assert!(
            verdict != Feasibility::Unknown,
            "unit trial {trial}: Unknown on a totally unimodular system: box {}, rows {:?}",
            case.box_hi,
            case.rows
        );
        check(&case, &format!("unit trial {trial}"));
    }
}
