//! Differential suite for the three execution engines: the tree
//! interpreter (the reference oracle), the stack-bytecode VM (a second
//! oracle) and the register VM (the production path) must return
//! *bit-identical* [`Measurement`]s — cycles compared by f64 bit
//! pattern, not approximately — and identical [`RuntimeError`]s,
//! across the corpus, transformed variants, and every error path.
//! Batched evaluation ([`CompiledVariant`]) must match per-variant
//! [`Machine::run`] point for point.
//!
//! Like `transform_semantics.rs`, the randomized sweeps are hand-rolled
//! over the in-tree [`SplitMix64`] generator (offline-only build, no
//! property-testing framework); every trial is a pure function of the
//! fixed seed, and a failing program is printed next to the trial
//! number.

use locus::corpus::{self, KripkeKernel, Stencil};
use locus::machine::{
    CompiledVariant, ExecEngine, Machine, MachineConfig, Measurement, RuntimeError,
};
use locus::space::SplitMix64;
use locus::srcir::ast::{OmpSchedule, OmpScheduleKind, Program};
use locus::srcir::index::HierIndex;
use locus::srcir::region::{extract_region, find_regions, replace_region};
use locus::transform;
use locus::transform::selector::LoopSel;

/// The compiled engines, each checked against the tree oracle.
const COMPILED_ENGINES: [ExecEngine; 2] = [ExecEngine::Bytecode, ExecEngine::RegisterVm];

/// Runs `program` on all three engines under `config` and asserts the
/// results are bit-identical: either the same [`Measurement`] field for
/// field (floats by bit pattern) or the same [`RuntimeError`].
fn assert_engines_agree(label: &str, config: &MachineConfig, program: &Program) {
    let tree = Machine::new(config.clone().with_engine(ExecEngine::Tree)).run(program, "kernel");
    for engine in COMPILED_ENGINES {
        let vm = Machine::new(config.clone().with_engine(engine)).run(program, "kernel");
        match (&tree, &vm) {
            (Ok(t), Ok(v)) => {
                assert_measurements_identical(&format!("{label}/{engine:?}"), program, t, v)
            }
            (tree, vm) => assert_eq!(
                tree,
                vm,
                "{label}: tree and {engine:?} disagree on outcome\n{}",
                locus::srcir::print_program(program)
            ),
        }
    }
}

fn assert_measurements_identical(label: &str, program: &Program, t: &Measurement, v: &Measurement) {
    let src = || locus::srcir::print_program(program);
    assert_eq!(
        t.cycles.to_bits(),
        v.cycles.to_bits(),
        "{label}: cycles differ (tree {} vs vm {})\n{}",
        t.cycles,
        v.cycles,
        src()
    );
    assert_eq!(
        t.time_ms.to_bits(),
        v.time_ms.to_bits(),
        "{label}: time_ms differ\n{}",
        src()
    );
    assert_eq!(t.ops, v.ops, "{label}: ops differ\n{}", src());
    assert_eq!(t.flops, v.flops, "{label}: flops differ\n{}", src());
    assert_eq!(t.cache, v.cache, "{label}: cache stats differ\n{}", src());
    assert_eq!(
        t.checksum,
        v.checksum,
        "{label}: checksums differ\n{}",
        src()
    );
}

fn parse(src: &str) -> Program {
    locus::srcir::parse_program(src).expect("test program parses")
}

/// DGEMM, the six stencils and a spread of Kripke kernels/layouts, on
/// the default parallel machine (10 cores, auto-vectorizer on) — the
/// exact configuration the tuner evaluates variants with.
#[test]
fn corpus_kernels_are_bit_identical() {
    let config = MachineConfig::scaled_small();
    assert_engines_agree("dgemm", &config, &corpus::dgemm_program(12));
    for s in Stencil::ALL {
        assert_engines_agree(
            &format!("{s:?}"),
            &config,
            &corpus::stencil_program(s, 12, 3),
        );
    }
    for kernel in KripkeKernel::ALL {
        assert_engines_agree(
            &format!("kripke-skeleton-{kernel:?}"),
            &config,
            &corpus::kripke_skeleton(kernel),
        );
    }
    for (kernel, layout) in [
        (KripkeKernel::LTimes, "DGZ"),
        (KripkeKernel::Scattering, "ZGD"),
        (KripkeKernel::Sweep, "GZD"),
    ] {
        assert_engines_agree(
            &format!("kripke-opt-{kernel:?}-{layout}"),
            &config,
            &corpus::kripke_hand_optimized(kernel, layout),
        );
    }
    // The tiny-cache preset exercises a different miss structure.
    assert_engines_agree(
        "heat2d-tiny",
        &MachineConfig::scaled_tiny(),
        &corpus::stencil_program(Stencil::Heat2d, 16, 3),
    );
}

/// The whole corpus registry — dgemm, the stencils and every PolyBench
/// kernel (triangular, imperfect, data-dependent bounds, guarded) —
/// must be bit-identical across the engines on *every* machine profile:
/// the profiles change cache geometry, core count and vectorization
/// policy, and none of that may open a gap between tree and VM.
#[test]
fn corpus_registry_is_bit_identical_on_every_profile() {
    for profile in locus::machine::all_profiles() {
        for entry in corpus::all_programs() {
            assert_engines_agree(
                &format!("{}/{}", entry.name, profile.name),
                &profile.config,
                &entry.program,
            );
        }
    }
}

/// The synthetic Table-I corpus: one generated nest per suite covers
/// perfect/imperfect nests and affine/non-affine accesses.
#[test]
fn generated_corpus_is_bit_identical() {
    let config = MachineConfig::scaled_small();
    for nest in corpus::generate_corpus(0xD1FF, 1) {
        assert_engines_agree(&nest.name, &config, &nest.program);
    }
}

/// Seeded sweep of legality-checked transformation sequences (the
/// variants the search actually generates): tiling, interchange,
/// unrolling, unroll-and-jam, distribution/fusion, LICM, scalar
/// replacement, plus `omp parallel for` and `vector always` pragma
/// insertion. Engines must agree on every variant, applied or not.
#[test]
fn transformed_variants_are_bit_identical() {
    let config = MachineConfig::scaled_small().with_cores(4);
    let mut kernels = vec![("dgemm".to_string(), corpus::dgemm_program(10))];
    for s in [Stencil::Jacobi1d, Stencil::Heat2d, Stencil::Seidel2d] {
        kernels.push((format!("{s:?}"), corpus::stencil_program(s, 10, 3)));
    }
    // The PolyBench registry entries put triangular and imperfect nests
    // (and data-dependent bounds) under the same randomized transform
    // sweep: most restructurings are refused there, and the ones that
    // apply must still agree bit-for-bit.
    for entry in corpus::all_programs() {
        if matches!(entry.family, corpus::Family::PolyBench) {
            kernels.push((entry.name.to_string(), entry.program.clone()));
        }
    }
    let mut rng = SplitMix64::new(0xbead);
    for trial in 0..60 {
        let (label, program) = &kernels[rng.below_usize(kernels.len())];
        let mut variant = program.clone();
        let regions = find_regions(&variant);
        let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
        for _ in 0..(1 + rng.below_usize(3)) {
            let _ = match rng.below(9) {
                0 => transform::interchange::interchange(&mut stmt, &[1, 0], true).is_ok(),
                1 => {
                    let a = rng.range_i64(1, 11);
                    let b = rng.range_i64(1, 11);
                    transform::tiling::tile(&mut stmt, &HierIndex::root(), &[a, b], true).is_ok()
                }
                2 => {
                    let f = rng.range_i64(2, 6) as u64;
                    let inner = locus::analysis::loops::loop_nest_info(&stmt).inner_loops;
                    transform::unroll::unroll_all(&mut stmt, &inner, f).is_ok()
                }
                3 => {
                    let f = rng.range_i64(2, 4) as u64;
                    transform::unroll_jam::unroll_and_jam(&mut stmt, &HierIndex::root(), f, true)
                        .is_ok()
                }
                4 => {
                    let inner = locus::analysis::loops::loop_nest_info(&stmt).inner_loops;
                    transform::distribution::distribute_all(&mut stmt, &inner, true).is_ok()
                }
                5 => transform::licm::licm(&mut stmt).is_ok(),
                6 => transform::scalar_repl::scalar_replacement(&mut stmt).is_ok(),
                7 => {
                    let schedule = if rng.chance(0.5) {
                        Some(OmpSchedule {
                            kind: if rng.chance(0.5) {
                                OmpScheduleKind::Static
                            } else {
                                OmpScheduleKind::Dynamic
                            },
                            chunk: if rng.chance(0.5) {
                                Some(rng.range_i64(1, 9) as u32)
                            } else {
                                None
                            },
                        })
                    } else {
                        None
                    };
                    transform::pragmas::insert_omp_for(
                        &mut stmt,
                        &LoopSel::Outermost,
                        schedule,
                        true,
                    )
                    .is_ok()
                }
                _ => {
                    transform::pragmas::insert_vector_always(&mut stmt, &LoopSel::Innermost).is_ok()
                }
            };
        }
        replace_region(&mut variant, &regions[0], stmt);
        assert_engines_agree(&format!("{label} trial {trial}"), &config, &variant);
    }
}

/// Hand-written programs exercising the whole performance-model surface
/// in one place: omp schedules (including nested pragmas, which
/// serialize), reductions, vectorization pragmas, while loops, builtins,
/// casts, compound assignment, short-circuit logic, local arrays and an
/// early `return` inside a parallel loop.
#[test]
fn language_and_model_surface_is_bit_identical() {
    let sources: &[(&str, &str)] = &[
        (
            "omp-schedules",
            r#"double A[64][16];
            void kernel() {
                #pragma omp parallel for
                for (int i = 0; i < 64; i++)
                    for (int j = 0; j < 16; j++)
                        A[i][j] = A[i][j] + 1.0;
                #pragma omp parallel for schedule(static, 4)
                for (int i = 0; i < 64; i++)
                    A[i][0] = A[i][0] * 2.0;
                #pragma omp parallel for schedule(dynamic, 8)
                for (int i = 0; i < 64; i++)
                    A[i][1] = A[i][1] - 0.5;
            }"#,
        ),
        (
            "omp-nested-serializes",
            r#"double A[32][32];
            void kernel() {
                #pragma omp parallel for
                for (int i = 0; i < 32; i++) {
                    #pragma omp parallel for
                    for (int j = 0; j < 32; j++)
                        A[i][j] = A[i][j] * 2.0;
                }
            }"#,
        ),
        (
            "omp-reduction",
            r#"double A[128];
            double S[1];
            void kernel() {
                double s = 0.0;
                #pragma omp parallel for reduction(+:s)
                for (int i = 0; i < 128; i++)
                    s += A[i];
                S[0] = s;
            }"#,
        ),
        (
            "vector-pragmas",
            r#"double A[256];
            double B[256];
            void kernel() {
                #pragma vector always
                for (int i = 0; i < 256; i++)
                    A[i] = A[i] * 0.5 + B[i];
                #pragma ivdep
                for (int i = 1; i < 256; i++)
                    B[i] = B[i - 1] + 1.0;
            }"#,
        ),
        (
            "while-and-builtins",
            r#"double A[64];
            void kernel() {
                int i = 0;
                while (i < 64) {
                    A[i] = sqrt(fabs(A[i])) + min(i, 10) + max(2.0, floor(A[i]))
                         + ceil(A[i] * 0.3) + abs(0 - i);
                    i = i + 1;
                }
            }"#,
        ),
        (
            "casts-compound-logic",
            r#"int A[64];
            double B[64];
            void kernel() {
                for (int i = 0; i < 64; i++) {
                    int k = (int)(B[i] * 3.0);
                    double x = (double)A[i];
                    A[i] += k % 7 + 1;
                    A[i] -= 2;
                    A[i] *= 2;
                    B[i] /= 1.5;
                    if (i > 3 && A[i] > 0 || !(i % 2))
                        B[i] = x - 1.0;
                }
            }"#,
        ),
        (
            "local-arrays-and-shadowing",
            r#"double G[32];
            void kernel() {
                double T[32];
                for (int i = 0; i < 32; i++)
                    T[i] = G[i] * 2.0;
                int n = 8;
                double T2[8];
                for (int i = 0; i < n; i++)
                    T2[i] = T[i] + T[i + 1];
                for (int i = 0; i < n; i++)
                    G[i] = T2[i];
            }"#,
        ),
        (
            "early-return-in-parallel-loop",
            r#"double A[64];
            void kernel() {
                #pragma omp parallel for
                for (int i = 0; i < 64; i++) {
                    A[i] = A[i] + 1.0;
                    if (i == 40)
                        return;
                }
            }"#,
        ),
        (
            "global-scalar-init",
            r#"int N = 16;
            double SCALE = 0.5;
            double A[16];
            void kernel() {
                for (int i = 0; i < N; i++)
                    A[i] = A[i] * SCALE;
            }"#,
        ),
    ];
    for cores in [1usize, 4] {
        let config = MachineConfig::scaled_small().with_cores(cores);
        for (label, src) in sources {
            assert_engines_agree(&format!("{label}/cores={cores}"), &config, &parse(src));
        }
    }
}

/// Every runtime-error path: both engines must return the *same* error
/// (variant and payload), including errors that only manifest after
/// partial execution.
#[test]
fn runtime_errors_are_identical() {
    let config = MachineConfig::scaled_small();
    let cases: &[(&str, &str)] = &[
        (
            "oob-read",
            r#"double A[8];
            void kernel() {
                for (int i = 0; i < 16; i++)
                    A[0] = A[i];
            }"#,
        ),
        (
            "oob-write",
            r#"double A[8];
            void kernel() {
                for (int i = 0; i < 16; i++)
                    A[i] = 1.0;
            }"#,
        ),
        (
            "oob-negative",
            r#"double A[8];
            void kernel() { A[0 - 1] = 1.0; }"#,
        ),
        (
            "div-by-zero",
            r#"int A[4];
            void kernel() {
                int z = 0;
                A[0] = 1 / z;
            }"#,
        ),
        (
            "mod-by-zero",
            r#"int A[4];
            void kernel() {
                int z = 0;
                A[0] = 1 % z;
            }"#,
        ),
        (
            "compound-div-by-zero",
            r#"int A[4];
            void kernel() {
                int z = 0;
                A[0] /= z;
            }"#,
        ),
        (
            "undefined-variable",
            r#"double A[4];
            void kernel() { A[0] = nope; }"#,
        ),
        (
            "undefined-function",
            r#"double A[4];
            void kernel() { A[0] = frobnicate(1.0); }"#,
        ),
        (
            "wrong-arity-builtin",
            r#"double A[4];
            void kernel() { A[0] = sqrt(1.0, 2.0); }"#,
        ),
        (
            "wrong-rank",
            r#"double A[4][4];
            void kernel() { A[0] = 1.0; }"#,
        ),
        (
            "undeclared-array",
            r#"double A[4];
            void kernel() { B[0] = 1.0; }"#,
        ),
        (
            "bad-local-dim",
            r#"double A[4];
            void kernel() {
                int n = 0;
                double T[n];
                A[0] = 1.0;
            }"#,
        ),
        (
            "pointer-unsupported",
            r#"double A[4];
            void kernel() {
                int x = 1;
                A[0] = *x;
            }"#,
        ),
        (
            // Element count exceeds the allocation cap (2^28) without
            // overflowing the multiply.
            "alloc-too-large",
            r#"double A[4];
            void kernel() {
                int n = 70000;
                double T[n][n][n];
                A[0] = 1.0;
            }"#,
        ),
        (
            // Element count overflows usize: the size multiply itself
            // must be checked, not just the final bound.
            "alloc-size-overflow",
            r#"double A[4];
            void kernel() {
                int n = 2000000000;
                double T[n][n][n];
                A[0] = 1.0;
            }"#,
        ),
        (
            "error-inside-omp-loop",
            r#"double A[8];
            void kernel() {
                #pragma omp parallel for
                for (int i = 0; i < 8; i++)
                    A[i] = A[i] / (4 - i) / 0.0 + 1 / (4 - i);
            }"#,
        ),
    ];
    for (label, src) in cases {
        let program = parse(src);
        let tree =
            Machine::new(config.clone().with_engine(ExecEngine::Tree)).run(&program, "kernel");
        assert!(tree.is_err(), "{label}: tree unexpectedly succeeded");
        for engine in COMPILED_ENGINES {
            let vm = Machine::new(config.clone().with_engine(engine)).run(&program, "kernel");
            assert_eq!(
                tree, vm,
                "{label}: tree and {engine:?} disagree on the error"
            );
        }
    }

    // Fuel exhaustion: same budget, same tick sequence, same error.
    let mut tiny = MachineConfig::scaled_small();
    tiny.max_ops = 1_000;
    let runaway = parse(
        r#"double A[4];
        void kernel() {
            for (int i = 0; i < 100000; i++)
                A[0] = A[0] + 1.0;
        }"#,
    );
    let tree = Machine::new(tiny.clone().with_engine(ExecEngine::Tree)).run(&runaway, "kernel");
    assert_eq!(tree, Err(RuntimeError::FuelExhausted));
    for engine in COMPILED_ENGINES {
        let vm = Machine::new(tiny.clone().with_engine(engine)).run(&runaway, "kernel");
        assert_eq!(tree, vm, "fuel exhaustion differs on {engine:?}");
    }

    // A missing entry point and a bad entry signature are pre-execution
    // errors; they must match too.
    let no_entry = parse("double A[4];\nvoid other() { A[0] = 1.0; }");
    let tree = Machine::new(MachineConfig::scaled_small().with_engine(ExecEngine::Tree))
        .run(&no_entry, "kernel");
    assert!(tree.is_err());
    for engine in COMPILED_ENGINES {
        let vm = Machine::new(MachineConfig::scaled_small().with_engine(engine))
            .run(&no_entry, "kernel");
        assert_eq!(tree, vm, "missing entry differs on {engine:?}");
    }
}

/// The one construct where static slot resolution is insufficient: a
/// *bare* declaration as an `if` branch binds a name into the enclosing
/// scope only when the branch executes. The VM handles it with guarded
/// slot chains; both engines must agree on every dynamic outcome —
/// bound, unbound (error), shadowing an outer binding, and re-entry of
/// a loop iteration that re-unbinds the name.
#[test]
fn conditional_bare_declarations_match_dynamic_scoping() {
    let config = MachineConfig::scaled_small().with_cores(1);
    let cases: &[(&str, &str)] = &[
        (
            "bound-when-branch-runs",
            r#"double A[4];
            void kernel() {
                if (1) int x = 7;
                A[0] = x;
            }"#,
        ),
        (
            "unbound-when-branch-skipped",
            r#"double A[4];
            void kernel() {
                if (0) int x = 7;
                A[0] = x;
            }"#,
        ),
        (
            "shadows-outer-binding",
            r#"double A[4];
            void kernel() {
                int x = 1;
                if (1) int x = 9;
                A[0] = x;
            }"#,
        ),
        (
            "falls-back-to-outer-binding",
            r#"double A[4];
            void kernel() {
                int x = 1;
                if (0) int x = 9;
                A[0] = x;
            }"#,
        ),
        (
            "loop-reentry-unbinds",
            r#"double A[8];
            void kernel() {
                for (int i = 0; i < 8; i++) {
                    if (i == 0) int t = 5;
                    if (i < 4)
                        A[i] = 1.0;
                    A[i] = A[i] + t;
                }
            }"#,
        ),
        (
            "nested-guards-innermost-wins",
            r#"double A[4];
            void kernel() {
                int x = 1;
                if (1) {
                    if (1) int x = 2;
                    if (1) int x = 3;
                    A[0] = x;
                }
                A[1] = x;
            }"#,
        ),
        (
            "else-branch-bare-decl",
            r#"double A[4];
            void kernel() {
                if (0) int x = 1; else int x = 2;
                A[0] = x;
            }"#,
        ),
        (
            "write-through-chain",
            r#"double A[4];
            void kernel() {
                if (1) int x = 0;
                x = 3;
                x += 2;
                A[0] = x;
            }"#,
        ),
    ];
    for (label, src) in cases {
        assert_engines_agree(label, &config, &parse(src));
    }
}

/// An unusable cache geometry is an [`RuntimeError::InvalidConfig`] on
/// both engines — and takes precedence over any program error.
#[test]
fn invalid_cache_geometry_matches() {
    let mut config = MachineConfig::scaled_small();
    config.cache.levels[0].capacity = 3000; // not a power-of-two set count
    let program = parse("double A[4];\nvoid kernel() { A[0] = undefined_name; }");
    let tree = Machine::new(config.clone().with_engine(ExecEngine::Tree)).run(&program, "kernel");
    assert!(
        matches!(tree, Err(RuntimeError::InvalidConfig(_))),
        "expected InvalidConfig, got {tree:?}"
    );
    for engine in COMPILED_ENGINES {
        let vm = Machine::new(config.clone().with_engine(engine)).run(&program, "kernel");
        assert_eq!(tree, vm, "invalid-config error differs on {engine:?}");
    }
}

/// Batched evaluation must be indistinguishable from per-variant
/// evaluation: for every corpus-registry program, one
/// [`CompiledVariant`] swept across every machine profile (compiling
/// once per distinct compile key) returns exactly what a fresh
/// [`Machine::run`] returns at each point — measurements bit for bit,
/// errors included. This is the contract that lets tuning drivers
/// route memo misses through the batched path.
#[test]
fn batched_evaluation_matches_sequential() {
    let profiles = locus::machine::all_profiles();
    for entry in corpus::all_programs() {
        let variant = CompiledVariant::new(entry.program.clone(), "kernel");
        for profile in &profiles {
            for engine in [
                ExecEngine::Tree,
                ExecEngine::Bytecode,
                ExecEngine::RegisterVm,
            ] {
                let config = profile.config.clone().with_engine(engine);
                let batched = variant.run(&config);
                let sequential = Machine::new(config).run(&entry.program, "kernel");
                match (&batched, &sequential) {
                    (Ok(b), Ok(s)) => assert_measurements_identical(
                        &format!("batched {}/{}/{engine:?}", entry.name, profile.name),
                        &entry.program,
                        s,
                        b,
                    ),
                    _ => assert_eq!(
                        batched, sequential,
                        "batched vs sequential outcome differs for {}/{}/{engine:?}",
                        entry.name, profile.name
                    ),
                }
            }
        }
    }

    // `Machine::run_batched` is the one-call wrapper over the same
    // machinery; error points (fuel exhaustion on a tiny budget) must
    // round-trip identically too.
    let mut tiny = MachineConfig::scaled_small();
    tiny.max_ops = 1_000;
    let configs = [
        MachineConfig::scaled_small(),
        tiny,
        MachineConfig::scaled_tiny(),
    ];
    let program = corpus::dgemm_program(12);
    let batched = Machine::run_batched(&program, "kernel", &configs);
    for (cfg, got) in configs.iter().zip(&batched) {
        let want = Machine::new(cfg.clone()).run(&program, "kernel");
        match (got, &want) {
            (Ok(b), Ok(s)) => assert_measurements_identical("run_batched", &program, s, b),
            _ => assert_eq!(got, &want, "run_batched outcome differs"),
        }
    }
}
