//! Deterministic fuzzing of the srcir round trip.
//!
//! A SplitMix64-driven generator builds random mini-C programs directly as
//! ASTs — including `#pragma @Locus` annotations and `omp parallel for`
//! clause lists — and asserts the unparser/parser fixpoint
//! `parse(print(ast)) == ast` for every one of them. The generator only
//! emits ASTs in the parser's normal form (loop bodies are pragma-free
//! blocks, integer literals are non-negative with negation as a unary
//! node, single-name declarations, ...), which is exactly the form every
//! transformation in this workspace produces and consumes.
//!
//! Seeds are pinned so failures reproduce byte-for-byte; a printed corpus
//! is additionally committed under `tests/fixtures/fuzz_corpus/` and
//! re-checked from disk, guarding against generator drift. Regenerate it
//! with `LOCUS_FUZZ_REGEN=1 cargo test --test srcir_fuzz`.

use locus::srcir::ast::*;
use locus::srcir::{parse_program, print_program};

// ---- deterministic PRNG (no external crates) --------------------------

/// SplitMix64 — tiny, statistically solid, and trivially seedable.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

// ---- AST generator ----------------------------------------------------

/// Identifier pool. None of these collide with the parser's keywords
/// (`int double float char void for while if else return`) or with each
/// other's prefixes in a way the lexer could mis-split.
const NAMES: &[&str] = &[
    "a", "b", "c", "i", "j", "k", "n", "m", "x", "y", "s", "t", "acc", "tmp", "val", "idx", "buf",
    "arr", "sum", "w",
];

/// Raw pragma payloads that `parse_pragma` keeps verbatim — they must not
/// collide with the recognized forms (`@Locus...`, `ivdep`,
/// `vector always`, `omp parallel for...`).
const RAW_PRAGMAS: &[&str] = &[
    "unroll(2)",
    "unroll(8)",
    "nounroll",
    "prefetch arr",
    "GCC ivdep",
];

fn ident(rng: &mut SplitMix64) -> String {
    NAMES[rng.below(NAMES.len() as u64) as usize].to_string()
}

fn scalar_type(rng: &mut SplitMix64) -> Type {
    match rng.below(3) {
        0 => Type::Int,
        1 => Type::Double,
        _ => Type::Float,
    }
}

fn gen_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 {
        return match rng.below(3) {
            0 => Expr::IntLit(rng.below(1000) as i64),
            1 => {
                // Integral values and dyadic fractions print and re-lex
                // exactly; anything else could lose bits in decimal.
                let whole = rng.below(64) as f64;
                let frac = rng.below(4) as f64 / 4.0;
                Expr::FloatLit(whole + frac)
            }
            _ => Expr::ident(ident(rng)),
        };
    }
    match rng.below(10) {
        0 | 1 => gen_expr(rng, 0),
        2 => Expr::index(
            Expr::ident(ident(rng)),
            (0..1 + rng.below(3)).map(|_| gen_expr(rng, depth - 1)),
        ),
        3 => Expr::Call {
            callee: ident(rng),
            args: (0..rng.below(3))
                .map(|_| gen_expr(rng, depth - 1))
                .collect(),
        },
        4 => {
            let op = match rng.below(4) {
                0 => UnOp::Neg,
                1 => UnOp::Not,
                2 => UnOp::Deref,
                _ => UnOp::Addr,
            };
            // `--x` and `&&x` would re-lex as single tokens, so the
            // operand of a unary must not start with the same symbol:
            // keep operands to leaves and parenthesized-on-print forms.
            let operand = match op {
                UnOp::Deref | UnOp::Addr => Expr::ident(ident(rng)),
                _ => match rng.below(3) {
                    0 => Expr::IntLit(rng.below(100) as i64),
                    1 => Expr::ident(ident(rng)),
                    _ => Expr::bin(BinOp::Add, gen_expr(rng, 0), gen_expr(rng, 0)),
                },
            };
            Expr::Unary {
                op,
                operand: Box::new(operand),
            }
        }
        5 | 6 => {
            let op = match rng.below(13) {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                4 => BinOp::Rem,
                5 => BinOp::Lt,
                6 => BinOp::Le,
                7 => BinOp::Gt,
                8 => BinOp::Ge,
                9 => BinOp::Eq,
                10 => BinOp::Ne,
                11 => BinOp::And,
                _ => BinOp::Or,
            };
            Expr::bin(op, gen_expr(rng, depth - 1), gen_expr(rng, depth - 1))
        }
        7 => {
            let op = match rng.below(5) {
                0 => AssignOp::Assign,
                1 => AssignOp::AddAssign,
                2 => AssignOp::SubAssign,
                3 => AssignOp::MulAssign,
                _ => AssignOp::DivAssign,
            };
            Expr::Assign {
                op,
                lhs: Box::new(gen_lvalue(rng, depth - 1)),
                rhs: Box::new(gen_expr(rng, depth - 1)),
            }
        }
        8 => Expr::Cast {
            ty: scalar_type(rng),
            expr: Box::new(gen_expr(rng, depth - 1)),
        },
        _ => Expr::StrLit(format!("msg{}", rng.below(10))),
    }
}

fn gen_lvalue(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth > 0 && rng.chance(40) {
        Expr::index(
            Expr::ident(ident(rng)),
            (0..1 + rng.below(2)).map(|_| gen_expr(rng, depth - 1)),
        )
    } else {
        Expr::ident(ident(rng))
    }
}

fn gen_pragma(rng: &mut SplitMix64) -> Pragma {
    match rng.below(6) {
        0 => Pragma::LocusLoop(format!("loop{}", rng.below(8))),
        1 => Pragma::LocusBlock(format!("blk{}", rng.below(8))),
        2 => Pragma::Ivdep,
        3 => Pragma::VectorAlways,
        4 => Pragma::Raw(RAW_PRAGMAS[rng.below(RAW_PRAGMAS.len() as u64) as usize].to_string()),
        _ => {
            let schedule = if rng.chance(60) {
                Some(OmpSchedule {
                    kind: if rng.chance(50) {
                        OmpScheduleKind::Static
                    } else {
                        OmpScheduleKind::Dynamic
                    },
                    chunk: if rng.chance(50) {
                        Some(1 + rng.below(64) as u32)
                    } else {
                        None
                    },
                })
            } else {
                None
            };
            let clauses = (0..rng.below(3))
                .map(|_| {
                    if rng.chance(50) {
                        OmpClause::Reduction {
                            op: match rng.below(3) {
                                0 => BinOp::Add,
                                1 => BinOp::Sub,
                                _ => BinOp::Mul,
                            },
                            var: ident(rng),
                        }
                    } else {
                        OmpClause::Private { var: ident(rng) }
                    }
                })
                .collect();
            Pragma::OmpParallelFor { schedule, clauses }
        }
    }
}

fn with_pragmas(rng: &mut SplitMix64, mut stmt: Stmt) -> Stmt {
    if rng.chance(30) {
        stmt.pragmas = (0..1 + rng.below(2)).map(|_| gen_pragma(rng)).collect();
    }
    stmt
}

/// A loop body in the parser's normal form: a pragma-free block.
fn gen_body(rng: &mut SplitMix64, depth: u32) -> Stmt {
    Stmt::block(
        (0..1 + rng.below(3))
            .map(|_| gen_stmt(rng, depth))
            .collect(),
    )
}

fn gen_stmt(rng: &mut SplitMix64, depth: u32) -> Stmt {
    let kind = if depth == 0 {
        match rng.below(3) {
            0 => StmtKind::Expr(Expr::assign(gen_lvalue(rng, 1), gen_expr(rng, 1))),
            1 => StmtKind::Empty,
            _ => StmtKind::Expr(gen_expr(rng, 1)),
        }
    } else {
        match rng.below(10) {
            0 | 1 => StmtKind::Expr(Expr::assign(gen_lvalue(rng, 2), gen_expr(rng, 2))),
            2 => StmtKind::Decl {
                ty: scalar_type(rng),
                name: ident(rng),
                dims: (0..rng.below(3))
                    .map(|_| Expr::IntLit(1 + rng.below(64) as i64))
                    .collect(),
                init: if rng.chance(50) {
                    Some(gen_expr(rng, 1))
                } else {
                    None
                },
            },
            3 => StmtKind::Block(
                (0..rng.below(3))
                    .map(|_| gen_stmt(rng, depth - 1))
                    .collect(),
            ),
            4 => StmtKind::If {
                cond: gen_expr(rng, 2),
                // Branches are always blocks: a brace-less `if` inside an
                // `if`/`else` would re-associate the `else` on reparse.
                then_branch: Box::new(gen_body(rng, depth - 1)),
                else_branch: if rng.chance(50) {
                    Some(Box::new(gen_body(rng, depth - 1)))
                } else {
                    None
                },
            },
            5 | 6 => {
                let iv = ident(rng);
                let init = match rng.below(3) {
                    // A declaration in for-init position carries no dims.
                    0 => Some(Box::new(Stmt::new(StmtKind::Decl {
                        ty: Type::Int,
                        name: iv.clone(),
                        dims: Vec::new(),
                        init: Some(Expr::int(0)),
                    }))),
                    1 => Some(Box::new(Stmt::expr(Expr::assign(
                        Expr::ident(iv.clone()),
                        Expr::int(0),
                    )))),
                    _ => None,
                };
                StmtKind::For(ForLoop {
                    init,
                    cond: if rng.chance(85) {
                        Some(Expr::bin(
                            BinOp::Lt,
                            Expr::ident(iv.clone()),
                            gen_expr(rng, 1),
                        ))
                    } else {
                        None
                    },
                    step: if rng.chance(85) {
                        Some(Expr::Assign {
                            op: AssignOp::AddAssign,
                            lhs: Box::new(Expr::ident(iv)),
                            rhs: Box::new(Expr::int(1)),
                        })
                    } else {
                        None
                    },
                    body: Box::new(gen_body(rng, depth - 1)),
                })
            }
            7 => StmtKind::While {
                cond: gen_expr(rng, 2),
                body: Box::new(gen_body(rng, depth - 1)),
            },
            8 => StmtKind::Return(if rng.chance(70) {
                Some(gen_expr(rng, 1))
            } else {
                None
            }),
            _ => StmtKind::Empty,
        }
    };
    with_pragmas(rng, Stmt::new(kind))
}

fn gen_program(rng: &mut SplitMix64) -> Program {
    let mut items = Vec::new();
    for gi in 0..rng.below(3) {
        let decl = Stmt::new(StmtKind::Decl {
            ty: if rng.chance(30) {
                Type::Ptr(Box::new(scalar_type(rng)))
            } else {
                scalar_type(rng)
            },
            name: format!("g{gi}"),
            dims: (0..rng.below(3))
                .map(|_| Expr::IntLit(1 + rng.below(128) as i64))
                .collect(),
            init: None,
        });
        items.push(Item::Global(with_pragmas(rng, decl)));
    }
    for fi in 0..1 + rng.below(2) {
        let params = (0..rng.below(4))
            .map(|pi| Param {
                ty: if rng.chance(25) {
                    Type::Ptr(Box::new(scalar_type(rng)))
                } else {
                    scalar_type(rng)
                },
                name: format!("p{pi}"),
                // IntLit(0) is the parser's encoding of an empty `[]`
                // leading dimension.
                dims: match rng.below(4) {
                    0 => vec![Expr::IntLit(0), Expr::IntLit(1 + rng.below(64) as i64)],
                    1 => vec![Expr::IntLit(1 + rng.below(64) as i64)],
                    _ => Vec::new(),
                },
            })
            .collect();
        items.push(Item::Function(Function {
            ret: if rng.chance(50) {
                Type::Void
            } else {
                scalar_type(rng)
            },
            name: format!("fn{fi}"),
            params,
            body: (0..1 + rng.below(5)).map(|_| gen_stmt(rng, 3)).collect(),
        }));
    }
    Program { items }
}

// ---- the property -----------------------------------------------------

fn assert_round_trip(program: &Program, seed: u64) {
    let printed = print_program(program);
    let reparsed = parse_program(&printed)
        .unwrap_or_else(|e| panic!("seed {seed}: printed program fails to parse: {e}\n{printed}"));
    assert_eq!(
        &reparsed, program,
        "seed {seed}: parse(print(ast)) != ast\nprinted source:\n{printed}"
    );
    // The fixpoint must also be stable under a second trip.
    assert_eq!(
        print_program(&reparsed),
        printed,
        "seed {seed}: printing is not a fixpoint"
    );
}

/// Seeds are pinned: every run fuzzes the identical program set, so a
/// failure in CI reproduces locally byte-for-byte.
const PINNED_SEEDS: &[u64] = &[
    0,
    1,
    2,
    3,
    5,
    8,
    13,
    21,
    34,
    55,
    89,
    0xdead_beef,
    0xcafe_babe,
    0x1234_5678_9abc_def0,
];

const PROGRAMS_PER_SEED: u64 = 64;

#[test]
fn printed_programs_reparse_to_the_same_ast() {
    for &seed in PINNED_SEEDS {
        let mut rng = SplitMix64(seed);
        for _ in 0..PROGRAMS_PER_SEED {
            let program = gen_program(&mut rng);
            assert_round_trip(&program, seed);
        }
    }
}

#[test]
fn pragma_heavy_programs_round_trip() {
    // Force pragmas onto every statement of a loop nest: the attachment
    // and clause-list printing paths get dense coverage.
    for &seed in PINNED_SEEDS {
        let mut rng = SplitMix64(seed ^ 0x5eed);
        let mut stmt = Stmt::new(StmtKind::For(ForLoop {
            init: Some(Box::new(Stmt::new(StmtKind::Decl {
                ty: Type::Int,
                name: "i".into(),
                dims: Vec::new(),
                init: Some(Expr::int(0)),
            }))),
            cond: Some(Expr::bin(BinOp::Lt, Expr::ident("i"), Expr::int(64))),
            step: Some(Expr::Assign {
                op: AssignOp::AddAssign,
                lhs: Box::new(Expr::ident("i")),
                rhs: Box::new(Expr::int(1)),
            }),
            body: Box::new(Stmt::block(vec![Stmt::expr(Expr::assign(
                Expr::index(Expr::ident("a"), [Expr::ident("i")]),
                gen_expr(&mut rng, 2),
            ))])),
        }));
        stmt.pragmas = (0..4).map(|_| gen_pragma(&mut rng)).collect();
        let program = Program {
            items: vec![
                Item::Global(Stmt::new(StmtKind::Decl {
                    ty: Type::Double,
                    name: "a".into(),
                    dims: vec![Expr::IntLit(64)],
                    init: None,
                })),
                Item::Function(Function {
                    ret: Type::Void,
                    name: "fn0".into(),
                    params: Vec::new(),
                    body: vec![stmt],
                }),
            ],
        };
        assert_round_trip(&program, seed);
    }
}

// ---- committed corpus --------------------------------------------------

const CORPUS_DIR: &str = "tests/fixtures/fuzz_corpus";
const CORPUS_SEEDS: &[u64] = &[11, 42, 1009, 777_777, 0xfeed_f00d];

fn corpus_path(seed: u64) -> String {
    format!("{}/{CORPUS_DIR}/seed_{seed}.c", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn committed_corpus_round_trips_from_disk() {
    if std::env::var_os("LOCUS_FUZZ_REGEN").is_some() {
        for &seed in CORPUS_SEEDS {
            let mut rng = SplitMix64(seed);
            let program = gen_program(&mut rng);
            std::fs::write(corpus_path(seed), print_program(&program)).unwrap();
        }
    }
    for &seed in CORPUS_SEEDS {
        let path = corpus_path(seed);
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let parsed = parse_program(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
        // The committed file is the generator's printed output, so parsing
        // and reprinting must reproduce it exactly.
        assert_eq!(
            print_program(&parsed),
            src,
            "{path} is not a printer fixpoint"
        );
        // And it must still match the in-memory generator for its seed:
        // if the generator drifts, regenerate the corpus deliberately.
        let mut rng = SplitMix64(seed);
        assert_eq!(
            parsed,
            gen_program(&mut rng),
            "{path} no longer matches the generator (run with LOCUS_FUZZ_REGEN=1)"
        );
    }
}
