//! Property tests: legality-checked transformations never change program
//! semantics. The simulated machine's checksum (quantized to absorb
//! floating-point reassociation) is the oracle.

use proptest::prelude::*;

use locus::machine::{Machine, MachineConfig};
use locus::srcir::index::HierIndex;
use locus::srcir::region::{extract_region, find_regions, replace_region};
use locus::transform;

fn machine() -> Machine {
    Machine::new(MachineConfig::scaled_small().with_cores(1))
}

/// A small family of generated loop-nest programs.
fn arb_program() -> impl Strategy<Value = locus::srcir::ast::Program> {
    let bodies = prop_oneof![
        Just("A[i][j] = A[i][j] + B[i][j];"),
        Just("A[i][j] = B[j][i] * 0.5;"),
        Just("A[i][j] = A[i][j] + B[i][j] * B[i][j];"),
        Just("A[i][j] = B[i][j] + C[0];"),
    ];
    (bodies, 4usize..20, 4usize..20).prop_map(|(body, ni, nj)| {
        let src = format!(
            r#"
            double A[32][32];
            double B[32][32];
            double C[4];
            void kernel() {{
                #pragma @Locus loop=scop
                for (int i = 0; i < {ni}; i++)
                    for (int j = 0; j < {nj}; j++)
                        {body}
            }}
            "#
        );
        locus::srcir::parse_program(&src).expect("generated program parses")
    })
}

/// A transformation choice with its parameters.
#[derive(Debug, Clone)]
enum Tx {
    Interchange,
    Tile(i64, i64),
    Unroll(u64),
    UnrollAndJam(u64),
    Distribute,
    Licm,
    ScalarRepl,
}

fn arb_tx() -> impl Strategy<Value = Tx> {
    prop_oneof![
        Just(Tx::Interchange),
        (1i64..12, 1i64..12).prop_map(|(a, b)| Tx::Tile(a, b)),
        (2u64..7).prop_map(Tx::Unroll),
        (2u64..5).prop_map(Tx::UnrollAndJam),
        Just(Tx::Distribute),
        Just(Tx::Licm),
        Just(Tx::ScalarRepl),
    ]
}

fn apply(stmt: &mut locus::srcir::ast::Stmt, tx: &Tx) -> bool {
    let root = HierIndex::root();
    let result = match tx {
        Tx::Interchange => transform::interchange::interchange(stmt, &[1, 0], true),
        Tx::Tile(a, b) => transform::tiling::tile(stmt, &root, &[*a, *b], true),
        Tx::Unroll(f) => {
            let inner = locus::analysis::loops::loop_nest_info(stmt).inner_loops;
            transform::unroll::unroll_all(stmt, &inner, *f)
        }
        Tx::UnrollAndJam(f) => transform::unroll_jam::unroll_and_jam(stmt, &root, *f, true),
        Tx::Distribute => {
            let inner = locus::analysis::loops::loop_nest_info(stmt).inner_loops;
            transform::distribution::distribute_all(stmt, &inner, true)
        }
        Tx::Licm => transform::licm::licm(stmt),
        Tx::ScalarRepl => transform::scalar_repl::scalar_replacement(stmt),
    };
    result.is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of up to three legality-checked transformations
    /// preserves the checksum.
    #[test]
    fn checked_transform_sequences_preserve_semantics(
        program in arb_program(),
        txs in prop::collection::vec(arb_tx(), 1..4),
    ) {
        let m = machine();
        let baseline = m.run(&program, "kernel").expect("baseline runs");

        let mut variant = program.clone();
        let regions = find_regions(&variant);
        let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
        let mut applied = Vec::new();
        for tx in &txs {
            if apply(&mut stmt, tx) {
                applied.push(format!("{tx:?}"));
            }
        }
        replace_region(&mut variant, &regions[0], stmt);

        let transformed = m.run(&variant, "kernel").unwrap_or_else(|e| {
            panic!(
                "variant crashed after {applied:?}: {e}\n{}",
                locus::srcir::print_program(&variant)
            )
        });
        prop_assert_eq!(
            baseline.checksum,
            transformed.checksum,
            "sequence {:?} changed semantics:\n{}",
            applied,
            locus::srcir::print_program(&variant)
        );
    }

    /// Skewed (generic) tiling is exact for stencil-style nests, for any
    /// valid skew factor.
    #[test]
    fn skewed_tiling_preserves_stencil_semantics(
        s in prop_oneof![Just(2i64), Just(4), Just(8), Just(16)],
        n in 8usize..40,
        t in 2usize..8,
    ) {
        let stencil = locus::corpus::stencil_program(locus::corpus::Stencil::Heat1d, n, t);
        let m = machine();
        let baseline = m.run(&stencil, "kernel").expect("baseline runs");

        let mut variant = stencil.clone();
        let regions = find_regions(&variant);
        let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
        transform::generic_tiling::generic_tile(
            &mut stmt,
            &HierIndex::root(),
            &transform::generic_tiling::skewing1_matrix(2, s),
            None,
        )
        .expect("skewed tiling applies");
        replace_region(&mut variant, &regions[0], stmt);

        let transformed = m.run(&variant, "kernel").expect("variant runs");
        prop_assert_eq!(baseline.checksum, transformed.checksum);
    }

    /// The unroll remainder logic is exact for arbitrary bounds/factors.
    #[test]
    fn unroll_is_exact_for_any_trip_count(
        n in 1usize..70,
        factor in 2u64..9,
    ) {
        let src = format!(
            r#"
            double A[80];
            double B[80];
            void kernel() {{
                #pragma @Locus loop=scop
                for (int i = 0; i < {n}; i++)
                    A[i] = A[i] * 0.5 + B[i];
            }}
            "#
        );
        let program = locus::srcir::parse_program(&src).expect("parses");
        let m = machine();
        let baseline = m.run(&program, "kernel").expect("baseline");

        let mut variant = program.clone();
        let regions = find_regions(&variant);
        let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
        transform::unroll::unroll(&mut stmt, &HierIndex::root(), factor).expect("unrolls");
        replace_region(&mut variant, &regions[0], stmt);
        let transformed = m.run(&variant, "kernel").expect("variant");
        prop_assert_eq!(baseline.checksum, transformed.checksum);
    }

    /// Rectangular tiling is exact for non-divisible bounds.
    #[test]
    fn tiling_is_exact_for_any_shape(
        ni in 3usize..40,
        nj in 3usize..40,
        ti in 2i64..17,
        tj in 2i64..17,
    ) {
        let src = format!(
            r#"
            double A[40][40];
            double B[40][40];
            void kernel() {{
                #pragma @Locus loop=scop
                for (int i = 0; i < {ni}; i++)
                    for (int j = 0; j < {nj}; j++)
                        A[i][j] = A[i][j] + B[j][i];
            }}
            "#
        );
        let program = locus::srcir::parse_program(&src).expect("parses");
        let m = machine();
        let baseline = m.run(&program, "kernel").expect("baseline");

        let mut variant = program.clone();
        let regions = find_regions(&variant);
        let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
        transform::tiling::tile(&mut stmt, &HierIndex::root(), &[ti, tj], true)
            .expect("tiles");
        replace_region(&mut variant, &regions[0], stmt);
        let transformed = m.run(&variant, "kernel").expect("variant");
        prop_assert_eq!(baseline.checksum, transformed.checksum);
    }
}
