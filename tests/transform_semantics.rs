//! Property tests: legality-checked transformations never change program
//! semantics. The simulated machine's checksum (quantized to absorb
//! floating-point reassociation) is the oracle.
//!
//! The loops are hand-rolled over the in-tree [`SplitMix64`] generator
//! instead of a property-testing framework (the build is offline-only;
//! see README "Testing"). Every trial is a pure function of the fixed
//! seed, so a failure reproduces exactly and the failing program is
//! printed alongside the trial number.

use locus::corpus::{self, KripkeKernel, Stencil};
use locus::machine::{Machine, MachineConfig};
use locus::space::SplitMix64;
use locus::srcir::ast::{Program, Stmt};
use locus::srcir::index::HierIndex;
use locus::srcir::region::{extract_region, find_regions, replace_region};
use locus::transform;

/// Seeded trials per transform / per scenario.
const TRIALS: usize = 50;

fn machine() -> Machine {
    Machine::new(MachineConfig::scaled_small().with_cores(1))
}

/// The corpus kernels every transform is exercised on: DGEMM, the six
/// Fig. 6 stencils, and two Kripke layout variants.
fn corpus_kernels() -> Vec<(String, Program)> {
    let mut kernels = vec![("dgemm".to_string(), corpus::dgemm_program(10))];
    for s in Stencil::ALL {
        kernels.push((format!("{s:?}"), corpus::stencil_program(s, 10, 3)));
    }
    kernels.push((
        "kripke-ltimes-dgz".to_string(),
        with_region(corpus::kripke_hand_optimized(KripkeKernel::LTimes, "DGZ")),
    ));
    kernels.push((
        "kripke-scattering-zgd".to_string(),
        with_region(corpus::kripke_hand_optimized(
            KripkeKernel::Scattering,
            "ZGD",
        )),
    ));
    kernels
}

/// The hand-optimized Kripke programs ship without a `@Locus` region
/// annotation; add one on the outermost loop so the transforms have a
/// region to aim at.
fn with_region(program: Program) -> Program {
    let printed = locus::srcir::print_program(&program);
    let mut out = String::new();
    let mut added = false;
    for line in printed.lines() {
        let trimmed = line.trim_start();
        if !added && trimmed.starts_with("for (") {
            let indent = &line[..line.len() - trimmed.len()];
            out.push_str(indent);
            out.push_str("#pragma @Locus loop=kripke\n");
            added = true;
        }
        out.push_str(line);
        out.push('\n');
    }
    assert!(added, "no loop found in kripke program");
    locus::srcir::parse_program(&out).expect("annotated kripke program parses")
}

/// Applies one legality-checked transformation to the first region of
/// `program` and, when it applied, checks the checksum against the
/// baseline. Returns whether it applied.
fn check_transform(
    m: &Machine,
    label: &str,
    trial: usize,
    program: &Program,
    baseline_checksum: u64,
    apply: impl FnOnce(&mut Stmt) -> bool,
) -> bool {
    let mut variant = program.clone();
    let regions = find_regions(&variant);
    let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
    if !apply(&mut stmt) {
        return false;
    }
    replace_region(&mut variant, &regions[0], stmt);
    let transformed = m.run(&variant, "kernel").unwrap_or_else(|e| {
        panic!(
            "{label} trial {trial}: variant crashed: {e}\n{}",
            locus::srcir::print_program(&variant)
        )
    });
    assert_eq!(
        baseline_checksum,
        transformed.checksum,
        "{label} trial {trial} changed semantics:\n{}",
        locus::srcir::print_program(&variant)
    );
    true
}

/// Runs `TRIALS` seeded trials of one transform across the corpus
/// kernels and asserts it both preserves semantics and actually applied
/// a reasonable number of times.
fn transform_property(
    name: &str,
    seed: u64,
    min_applied: usize,
    mut make: impl FnMut(&mut SplitMix64) -> Box<dyn FnOnce(&mut Stmt) -> bool>,
) {
    let m = machine();
    let kernels = corpus_kernels();
    let baselines: Vec<u64> = kernels
        .iter()
        .map(|(label, p)| {
            m.run(p, "kernel")
                .unwrap_or_else(|e| panic!("{label} baseline: {e}"))
                .checksum
        })
        .collect();
    let mut rng = SplitMix64::new(seed);
    let mut applied = 0usize;
    for trial in 0..TRIALS {
        let ki = rng.below_usize(kernels.len());
        let (label, program) = &kernels[ki];
        let apply = make(&mut rng);
        if check_transform(
            &m,
            &format!("{name}/{label}"),
            trial,
            program,
            baselines[ki],
            apply,
        ) {
            applied += 1;
        }
    }
    assert!(
        applied >= min_applied,
        "{name}: only {applied}/{TRIALS} trials applied — the property is vacuous"
    );
}

#[test]
fn interchange_preserves_semantics() {
    transform_property("interchange", 101, 10, |rng| {
        // A random permutation of a random prefix depth.
        let depth = 2 + rng.below_usize(2);
        let mut order: Vec<usize> = (0..depth).collect();
        rng.shuffle(&mut order);
        Box::new(move |stmt| transform::interchange::interchange(stmt, &order, true).is_ok())
    });
}

#[test]
fn tiling_preserves_semantics() {
    transform_property("tile", 102, 10, |rng| {
        let a = rng.range_i64(1, 11);
        let b = rng.range_i64(1, 11);
        Box::new(move |stmt| {
            transform::tiling::tile(stmt, &HierIndex::root(), &[a, b], true).is_ok()
        })
    });
}

#[test]
fn unroll_preserves_semantics() {
    transform_property("unroll", 103, 10, |rng| {
        let f = rng.range_i64(2, 6) as u64;
        Box::new(move |stmt| {
            let inner = locus::analysis::loops::loop_nest_info(stmt).inner_loops;
            transform::unroll::unroll_all(stmt, &inner, f).is_ok()
        })
    });
}

#[test]
fn unroll_and_jam_preserves_semantics() {
    // Most stencils reject unroll-and-jam (loop-carried dependences on
    // the time loop), so exercise it on DGEMM, where the outer loops
    // are permutable and jamming is always legal.
    let m = machine();
    let mut rng = SplitMix64::new(104);
    let mut applied = 0usize;
    for trial in 0..TRIALS {
        let n = rng.range_i64(6, 14) as usize;
        let f = rng.range_i64(2, 5) as u64;
        let program = corpus::dgemm_program(n);
        let baseline = m.run(&program, "kernel").expect("baseline").checksum;
        if check_transform(
            &m,
            "unroll-and-jam/dgemm",
            trial,
            &program,
            baseline,
            |stmt| transform::unroll_jam::unroll_and_jam(stmt, &HierIndex::root(), f, true).is_ok(),
        ) {
            applied += 1;
        }
    }
    assert!(
        applied >= TRIALS / 2,
        "unroll-and-jam: only {applied}/{TRIALS} trials applied — the property is vacuous"
    );
}

#[test]
fn distribution_and_fusion_preserve_semantics() {
    // Distribution first; when it applied, fusing the distributed pair
    // back is also checked (fusion needs adjacent sibling loops, which
    // the corpus kernels lack until distribution creates them).
    transform_property("distribute+fuse", 105, 5, |rng| {
        let fuse_back = rng.chance(0.5);
        Box::new(move |stmt| {
            let inner = locus::analysis::loops::loop_nest_info(stmt).inner_loops;
            if transform::distribution::distribute_all(stmt, &inner, true).is_err() {
                return false;
            }
            if fuse_back {
                // Fuse whatever pair of adjacent loops distribution
                // left behind; failure to re-fuse is not an error.
                let _ = transform::fusion::fuse(stmt, &HierIndex::root(), true);
            }
            true
        })
    });
}

#[test]
fn licm_preserves_semantics() {
    transform_property("licm", 106, 25, |_rng| {
        Box::new(|stmt| transform::licm::licm(stmt).is_ok())
    });
}

#[test]
fn scalar_replacement_preserves_semantics() {
    transform_property("scalar-replacement", 107, 25, |_rng| {
        Box::new(|stmt| transform::scalar_repl::scalar_replacement(stmt).is_ok())
    });
}

/// Any sequence of up to three legality-checked transformations
/// preserves the checksum on generated 2D loop nests.
#[test]
fn checked_transform_sequences_preserve_semantics() {
    const BODIES: [&str; 4] = [
        "A[i][j] = A[i][j] + B[i][j];",
        "A[i][j] = B[j][i] * 0.5;",
        "A[i][j] = A[i][j] + B[i][j] * B[i][j];",
        "A[i][j] = B[i][j] + C[0];",
    ];
    let m = machine();
    let mut rng = SplitMix64::new(0x5e9);
    for trial in 0..TRIALS {
        let body = BODIES[rng.below_usize(BODIES.len())];
        let ni = rng.range_i64(4, 19);
        let nj = rng.range_i64(4, 19);
        let src = format!(
            r#"
            double A[32][32];
            double B[32][32];
            double C[4];
            void kernel() {{
                #pragma @Locus loop=scop
                for (int i = 0; i < {ni}; i++)
                    for (int j = 0; j < {nj}; j++)
                        {body}
            }}
            "#
        );
        let program = locus::srcir::parse_program(&src).expect("generated program parses");
        let baseline = m.run(&program, "kernel").expect("baseline runs");

        let mut variant = program.clone();
        let regions = find_regions(&variant);
        let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
        let steps = 1 + rng.below_usize(3);
        let mut applied = Vec::new();
        for _ in 0..steps {
            let ok = match rng.below(7) {
                0 => transform::interchange::interchange(&mut stmt, &[1, 0], true).is_ok(),
                1 => {
                    let a = rng.range_i64(1, 11);
                    let b = rng.range_i64(1, 11);
                    transform::tiling::tile(&mut stmt, &HierIndex::root(), &[a, b], true).is_ok()
                }
                2 => {
                    let f = rng.range_i64(2, 6) as u64;
                    let inner = locus::analysis::loops::loop_nest_info(&stmt).inner_loops;
                    transform::unroll::unroll_all(&mut stmt, &inner, f).is_ok()
                }
                3 => {
                    let f = rng.range_i64(2, 4) as u64;
                    transform::unroll_jam::unroll_and_jam(&mut stmt, &HierIndex::root(), f, true)
                        .is_ok()
                }
                4 => {
                    let inner = locus::analysis::loops::loop_nest_info(&stmt).inner_loops;
                    transform::distribution::distribute_all(&mut stmt, &inner, true).is_ok()
                }
                5 => transform::licm::licm(&mut stmt).is_ok(),
                _ => transform::scalar_repl::scalar_replacement(&mut stmt).is_ok(),
            };
            if ok {
                applied.push(trial);
            }
        }
        replace_region(&mut variant, &regions[0], stmt);
        let transformed = m.run(&variant, "kernel").unwrap_or_else(|e| {
            panic!(
                "trial {trial}: variant crashed after {applied:?}: {e}\n{}",
                locus::srcir::print_program(&variant)
            )
        });
        assert_eq!(
            baseline.checksum,
            transformed.checksum,
            "trial {trial} changed semantics:\n{}",
            locus::srcir::print_program(&variant)
        );
    }
}

/// Skewed (generic) tiling is exact for stencil-style nests, for any
/// valid skew factor.
#[test]
fn skewed_tiling_preserves_stencil_semantics() {
    let m = machine();
    let mut rng = SplitMix64::new(0x5caf);
    for (trial, s) in [2i64, 4, 8, 16].into_iter().enumerate() {
        for _ in 0..4 {
            let n = rng.range_i64(8, 39) as usize;
            let t = rng.range_i64(2, 7) as usize;
            let stencil = corpus::stencil_program(Stencil::Heat1d, n, t);
            let baseline = m.run(&stencil, "kernel").expect("baseline runs");

            let mut variant = stencil.clone();
            let regions = find_regions(&variant);
            let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
            transform::generic_tiling::generic_tile(
                &mut stmt,
                &HierIndex::root(),
                &transform::generic_tiling::skewing1_matrix(2, s),
                None,
            )
            .expect("skewed tiling applies");
            replace_region(&mut variant, &regions[0], stmt);

            let transformed = m.run(&variant, "kernel").expect("variant runs");
            assert_eq!(
                baseline.checksum, transformed.checksum,
                "skew {s} trial {trial} (n={n}, t={t})"
            );
        }
    }
}

/// The unroll remainder logic is exact for arbitrary bounds/factors.
#[test]
fn unroll_is_exact_for_any_trip_count() {
    let m = machine();
    let mut rng = SplitMix64::new(0x0411);
    for trial in 0..TRIALS {
        let n = rng.range_i64(1, 69);
        let factor = rng.range_i64(2, 8) as u64;
        let src = format!(
            r#"
            double A[80];
            double B[80];
            void kernel() {{
                #pragma @Locus loop=scop
                for (int i = 0; i < {n}; i++)
                    A[i] = A[i] * 0.5 + B[i];
            }}
            "#
        );
        let program = locus::srcir::parse_program(&src).expect("parses");
        let baseline = m.run(&program, "kernel").expect("baseline");

        let mut variant = program.clone();
        let regions = find_regions(&variant);
        let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
        transform::unroll::unroll(&mut stmt, &HierIndex::root(), factor).expect("unrolls");
        replace_region(&mut variant, &regions[0], stmt);
        let transformed = m.run(&variant, "kernel").expect("variant");
        assert_eq!(
            baseline.checksum, transformed.checksum,
            "trial {trial}: n={n} factor={factor}"
        );
    }
}

/// Rectangular tiling is exact for non-divisible bounds.
#[test]
fn tiling_is_exact_for_any_shape() {
    let m = machine();
    let mut rng = SplitMix64::new(0x711e);
    for trial in 0..TRIALS {
        let ni = rng.range_i64(3, 39);
        let nj = rng.range_i64(3, 39);
        let ti = rng.range_i64(2, 16);
        let tj = rng.range_i64(2, 16);
        let src = format!(
            r#"
            double A[40][40];
            double B[40][40];
            void kernel() {{
                #pragma @Locus loop=scop
                for (int i = 0; i < {ni}; i++)
                    for (int j = 0; j < {nj}; j++)
                        A[i][j] = A[i][j] + B[j][i];
            }}
            "#
        );
        let program = locus::srcir::parse_program(&src).expect("parses");
        let baseline = m.run(&program, "kernel").expect("baseline");

        let mut variant = program.clone();
        let regions = find_regions(&variant);
        let mut stmt = extract_region(&variant, &regions[0]).expect("region").stmt;
        transform::tiling::tile(&mut stmt, &HierIndex::root(), &[ti, tj], true).expect("tiles");
        replace_region(&mut variant, &regions[0], stmt);
        let transformed = m.run(&variant, "kernel").expect("variant");
        assert_eq!(
            baseline.checksum, transformed.checksum,
            "trial {trial}: {ni}x{nj} tiled {ti}x{tj}"
        );
    }
}
