//! Conformance suite for the corpus registry: every entry in
//! [`locus::corpus::all_programs`] must hold the contract the rest of
//! the workspace assumes — it parses, survives a print/parse round
//! trip, its recipe prepares into a well-formed optimization space, and
//! its baseline runs cleanly on *every* machine profile.
//!
//! The second half is the safety property the PolyBench expansion
//! exists to test: restructuring transforms on non-rectangular
//! iteration spaces (triangular factorizations, data-dependent bounds)
//! either produce a legal, checksum-preserving variant or are refused
//! with a typed error — never a silently wrong [`Measurement`].

use locus::corpus::{self, CorpusEntry};
use locus::machine::{all_profiles, ExecEngine, Machine, MachineConfig};
use locus::space::SplitMix64;
use locus::srcir::index::HierIndex;
use locus::srcir::region::{extract_region, find_regions, replace_region};
use locus::system::LocusSystem;
use locus::transform;

fn entry_region_stmt(entry: &CorpusEntry) -> locus::srcir::ast::Stmt {
    let regions = find_regions(&entry.program);
    let region = regions
        .iter()
        .find(|r| r.id == entry.region)
        .unwrap_or_else(|| panic!("{}: region `{}` missing", entry.name, entry.region));
    extract_region(&entry.program, region)
        .unwrap_or_else(|| panic!("{}: region not extractable", entry.name))
        .stmt
}

/// Print → parse → print must be a fixpoint for every corpus program:
/// the printer is the canonical form the fuzzers, the store and the
/// report all rely on.
#[test]
fn every_entry_round_trips_through_the_printer() {
    for entry in corpus::all_programs() {
        let printed = locus::srcir::print_program(&entry.program);
        let reparsed = locus::srcir::parse_program(&printed)
            .unwrap_or_else(|e| panic!("{}: printed form does not re-parse: {e}", entry.name));
        let reprinted = locus::srcir::print_program(&reparsed);
        assert_eq!(
            printed, reprinted,
            "{}: print/parse round trip is not a fixpoint",
            entry.name
        );
    }
}

/// Every recipe parses, names the entry's region, and prepares into a
/// non-empty optimization space on the default machine.
#[test]
fn every_recipe_prepares_into_a_well_formed_space() {
    let system = LocusSystem::new(Machine::new(MachineConfig::scaled_small()));
    for entry in corpus::all_programs() {
        let locus = entry.locus_program();
        let prepared = system
            .prepare(&entry.program, &locus)
            .unwrap_or_else(|e| panic!("{}: prepare failed: {e}", entry.name));
        assert!(
            prepared.space.size() >= 1,
            "{}: empty optimization space",
            entry.name
        );
    }
}

/// The untransformed baseline of every entry runs without a runtime
/// error on every machine profile (the cross-machine acceptance floor:
/// at least three distinct profiles).
#[test]
fn every_baseline_runs_on_every_profile() {
    let profiles = all_profiles();
    assert!(profiles.len() >= 3, "need at least three machine profiles");
    for profile in &profiles {
        let machine = Machine::new(profile.config.clone());
        for entry in corpus::all_programs() {
            let m = machine.run(&entry.program, "kernel").unwrap_or_else(|e| {
                panic!("{}/{}: baseline failed: {e}", entry.name, profile.name)
            });
            assert!(m.cycles > 0.0, "{}/{}", entry.name, profile.name);
        }
    }
}

/// Restructuring a non-rectangular region either succeeds legally —
/// in which case the variant's checksum matches the baseline on both
/// engines, bit for bit — or fails with a typed error. A transform that
/// "succeeds" but changes the checksum would be a silent miscompile;
/// one that panics would take the whole search driver down.
#[test]
fn non_rectangular_transforms_are_refused_or_checksum_preserving() {
    let config = MachineConfig::scaled_small();
    let entries: Vec<CorpusEntry> = corpus::all_programs()
        .into_iter()
        .filter(|e| !e.rectangular)
        .collect();
    assert!(
        !entries.is_empty(),
        "no non-rectangular entries in the registry"
    );

    let mut rng = SplitMix64::new(0x771a);
    let mut applied = 0usize;
    let mut refused = 0usize;
    for trial in 0..60 {
        let entry = &entries[rng.below_usize(entries.len())];
        let baseline = Machine::new(config.clone())
            .run(&entry.program, "kernel")
            .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", entry.name));

        let mut variant = entry.program.clone();
        let regions = find_regions(&variant);
        let region = regions
            .iter()
            .find(|r| r.id == entry.region)
            .expect("region exists");
        let mut stmt = extract_region(&variant, region).expect("extractable").stmt;

        let outcome = match rng.below(3) {
            0 => {
                let a = rng.range_i64(2, 9);
                let b = rng.range_i64(2, 9);
                transform::tiling::tile(&mut stmt, &HierIndex::root(), &[a, b], true)
            }
            1 => transform::interchange::interchange(&mut stmt, &[1, 0], true),
            _ => {
                let f = rng.range_i64(2, 4) as u64;
                transform::unroll_jam::unroll_and_jam(&mut stmt, &HierIndex::root(), f, true)
            }
        };
        match outcome {
            Err(e) => {
                // A typed refusal: the error message must be
                // descriptive, not a bare panic payload.
                assert!(
                    !e.to_string().is_empty(),
                    "{} trial {trial}: empty refusal",
                    entry.name
                );
                refused += 1;
            }
            Ok(()) => {
                applied += 1;
                let region = find_regions(&variant)
                    .into_iter()
                    .find(|r| r.id == entry.region)
                    .expect("region exists");
                replace_region(&mut variant, &region, stmt);
                for engine in [
                    ExecEngine::Tree,
                    ExecEngine::Bytecode,
                    ExecEngine::RegisterVm,
                ] {
                    let m = Machine::new(config.clone().with_engine(engine))
                        .run(&variant, "kernel")
                        .unwrap_or_else(|e| {
                            panic!(
                                "{} trial {trial}: transformed variant failed: {e}",
                                entry.name
                            )
                        });
                    assert_eq!(
                        m.checksum,
                        baseline.checksum,
                        "{} trial {trial}: transform changed the checksum ({engine:?})\n{}",
                        entry.name,
                        locus::srcir::print_program(&variant)
                    );
                }
            }
        }
    }
    // The triangular entries must actually route through the refusal
    // path, and at least some transforms (e.g. width-irrelevant ones on
    // deeper rectangular sub-bands) are allowed to apply — both sides of
    // the property need coverage to be meaningful.
    assert!(refused > 0, "no transform was ever refused");
    let _ = applied; // zero is acceptable: triangular nests may refuse everything
}

/// The registry's `rectangular` classification matches what the
/// legality engine concludes: tiling the full band of a rectangular
/// entry's region is never refused *for rectangularity reasons*, and
/// every non-rectangular entry is refused exactly that way somewhere.
#[test]
fn rectangularity_classification_matches_the_verifier() {
    for entry in corpus::all_programs() {
        let stmt = entry_region_stmt(&entry);
        let depth = locus::analysis::loops::loop_nest_info(&stmt).depth;
        if depth < 2 {
            continue;
        }
        let verdict = locus::verify::legal(
            &stmt,
            &locus::verify::TransformStep::Tile {
                target: HierIndex::root(),
                width: 2,
            },
        );
        let refused_for_shape = verdict
            .reason()
            .is_some_and(|r| r.contains("not rectangular") || r.contains("not perfectly nested"));
        if entry.rectangular {
            assert!(
                !refused_for_shape,
                "{}: rectangular entry refused for shape: {verdict:?}",
                entry.name
            );
        }
    }
}
