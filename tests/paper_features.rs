//! Integration tests for the remaining paper features: shippable direct
//! programs (Sec. II), block regions with `Altdesc` algorithm selection
//! (Sec. II / IV-A.4), `Search` blocks with control flow (Sec. III), the
//! portfolio search (Sec. VII future work), and `Query` definitions.

use std::collections::HashMap;

use locus::machine::{Machine, MachineConfig};
use locus::search::{BanditTuner, PortfolioSearch};
use locus::space::Point;
use locus::system::LocusSystem;

fn machine(cores: usize) -> Machine {
    Machine::new(MachineConfig::scaled_small().with_cores(cores))
}

#[test]
fn shipped_direct_program_reproduces_the_tuned_variant() {
    let source = locus::corpus::dgemm_program(32);
    let locus_program = locus::lang::parse(
        r#"CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            tileI = poweroftwo(2..32);
            tileK = poweroftwo(2..32);
            Pips.Tiling(loop="0", factor=[tileI, tileK, 8]);
            *Pragma.Vector(loop=innermost);
        }"#,
    )
    .unwrap();
    let system = LocusSystem::new(machine(1));
    let mut search = BanditTuner::new(11);
    let result = system
        .tune(&source, &locus_program, &mut search, 12)
        .unwrap();
    let (point, _, best_measurement) = result.best.expect("found a variant");

    // Render the direct program and run it through the direct workflow:
    // the measurement must be identical to the tuned best.
    let prepared = system.prepare(&source, &locus_program).unwrap();
    let direct_src = system.direct_program(&prepared, &point);
    assert!(
        !direct_src.contains("poweroftwo") && !direct_src.contains(" OR "),
        "direct programs contain no search constructs:\n{direct_src}"
    );
    let direct = locus::lang::parse(&direct_src).unwrap();
    let rebuilt = system.apply_direct(&source, &direct).unwrap();
    let m = system.measure(&rebuilt).unwrap();
    assert_eq!(m.checksum, best_measurement.checksum);
    assert_eq!(m.cycles, best_measurement.cycles, "identical variant");
}

#[test]
fn block_region_algorithm_selection_via_altdesc() {
    // Sec. II: "block annotations for alternative algorithm selections".
    // The block region holds a naive summation; Altdesc swaps in an
    // unrolled alternative from the snippet store, chosen by an OR.
    let source = locus::srcir::parse_program(
        r#"
        double A[256];
        double total[1];
        void kernel() {
            #pragma @Locus block=reduce
            {
                total[0] = 0.0;
                for (int i = 0; i < 256; i++)
                    total[0] = total[0] + A[i];
            }
        }
        "#,
    )
    .unwrap();
    let locus_program = locus::lang::parse(
        r#"CodeReg reduce {
            {
                None; # keep the baseline algorithm
            } OR {
                BuiltIn.Altdesc(stmt="0", source="pairwise.txt");
            }
        }"#,
    )
    .unwrap();
    let mut system = LocusSystem::new(machine(1));
    system.snippets.insert(
        "pairwise.txt".to_string(),
        r#"{
            double partial[4];
            for (int p = 0; p < 4; p++) partial[p] = 0.0;
            for (int i = 0; i < 256; i += 4) {
                partial[0] = partial[0] + A[i];
                partial[1] = partial[1] + A[i + 1];
                partial[2] = partial[2] + A[i + 2];
                partial[3] = partial[3] + A[i + 3];
            }
            total[0] = partial[0] + partial[1] + partial[2] + partial[3];
        }"#
        .to_string(),
    );
    let prepared = system.prepare(&source, &locus_program).unwrap();
    assert_eq!(prepared.space.size(), 2, "baseline OR alternative");

    let base = system
        .build_variant(&source, &prepared, &prepared.space.point_at(0))
        .unwrap();
    let alt = system
        .build_variant(&source, &prepared, &prepared.space.point_at(1))
        .unwrap();
    let base_m = system.measure(&base).unwrap();
    let alt_m = system.measure(&alt).unwrap();
    assert_eq!(
        base_m.checksum, alt_m.checksum,
        "both algorithms compute the same sum"
    );
    assert_ne!(
        locus::srcir::print_program(&base),
        locus::srcir::print_program(&alt)
    );
}

#[test]
fn search_block_supports_control_flow() {
    // Sec. III: "The statements in the search block may include flow
    // statements and take actions based on variable selections made in
    // the global scope."
    let locus_program = locus::lang::parse(
        r#"
        compiler = "icc";
        Search {
            if (compiler == "icc") {
                buildcmd = "icc -O3 -xHost";
            } else {
                buildcmd = "gcc -O3";
            }
            runcmd = "./kernel";
        }
        CodeReg r { A.X(); }
        "#,
    )
    .unwrap();
    struct Null;
    impl locus::lang::TransformHost for Null {
        fn call(
            &mut self,
            _m: &str,
            _f: &str,
            _a: &[(Option<String>, locus::lang::Value)],
        ) -> Result<locus::lang::Value, locus::lang::HostError> {
            Ok(locus::lang::Value::None)
        }
    }
    let mut host = Null;
    let point = Point::new();
    let ids = HashMap::new();
    let mut interp = locus::lang::Interp::new(&locus_program, &mut host, &point, &ids);
    interp.run_search_block().unwrap();
    let out = interp.into_output();
    assert_eq!(
        out.search_config.get("buildcmd").map(ToString::to_string),
        Some("icc -O3 -xHost".to_string())
    );
}

#[test]
fn portfolio_search_drives_the_full_system() {
    let source = locus::corpus::dgemm_program(24);
    let locus_program = locus::lang::parse(
        r#"CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            t = poweroftwo(2..16);
            Pips.Tiling(loop="0", factor=[t, t, t]);
        }"#,
    )
    .unwrap();
    let system = LocusSystem::new(machine(1));
    let mut search = PortfolioSearch::new(3);
    let result = system
        .tune(&source, &locus_program, &mut search, 4)
        .unwrap();
    assert_eq!(result.outcome.evaluations, 4, "whole 4-point space covered");
    assert!(result.best.is_some());
}

#[test]
fn user_defined_queries_work_like_optseqs() {
    // `Query NAME(args) { ... }` defines a reusable analysis procedure.
    let source = locus::corpus::dgemm_program(16);
    let locus_program = locus::lang::parse(
        r#"
        Query tile_for_depth(d) {
            if (d > 2) { return 8; }
            return 16;
        }
        CodeReg matmul {
            depth = BuiltIn.LoopNestDepth();
            t = tile_for_depth(depth);
            Pips.Tiling(loop="0", factor=[t, t, t]);
        }
        "#,
    )
    .unwrap();
    let system = LocusSystem::new(machine(1));
    let optimized = system.apply_direct(&source, &locus_program).unwrap();
    let printed = locus::srcir::print_program(&optimized);
    // depth 3 > 2 -> tile 8.
    assert!(printed.contains("+ 8"), "tile 8 chosen:\n{printed}");
}

#[test]
fn import_and_module_declarations_are_accepted() {
    let locus_program = locus::lang::parse(
        r#"
        import "RoseLocus";
        Module MyTools {
            x = 1;
        }
        CodeReg r { RoseLocus.LICM(); }
        "#,
    )
    .unwrap();
    assert_eq!(locus_program.codereg_names(), vec!["r"]);
}

#[test]
fn fusion_merges_adjacent_loops_end_to_end() {
    // Pips.Fusion (Sec. IV-A.1) exercised through the whole stack.
    let source = locus::srcir::parse_program(
        r#"
        double A[2048];
        double B[2048];
        void kernel() {
            #pragma @Locus block=streams
            {
                for (int i = 0; i < 2048; i++)
                    A[i] = A[i] * 0.5;
                for (int j = 0; j < 2048; j++)
                    B[j] = B[j] + A[j];
            }
        }
        "#,
    )
    .unwrap();
    let locus_program = locus::lang::parse(
        r#"CodeReg streams {
            Pips.Fusion(loop="0.0");
        }"#,
    )
    .unwrap();
    let system = LocusSystem::new(machine(1));
    let base = system.measure(&source).unwrap();
    let fused = system.apply_direct(&source, &locus_program).unwrap();
    let fused_m = system.measure(&fused).unwrap();
    assert_eq!(base.checksum, fused_m.checksum);
    let printed = locus::srcir::print_program(&fused);
    assert_eq!(printed.matches("for (").count(), 1, "one loop:\n{printed}");
    // Fusion reuses A[i] while its line is still in L1: more L1 hits,
    // fewer cycles (cold DRAM misses tie, so compare hits).
    assert!(
        fused_m.cache.hits[0] > base.cache.hits[0],
        "L1 hits: fused {} vs unfused {}",
        fused_m.cache.hits[0],
        base.cache.hits[0]
    );
    assert!(fused_m.cycles < base.cycles);
}

#[test]
fn fusion_or_distribution_is_searchable() {
    // Choose between the fused and distributed forms empirically.
    let source = locus::srcir::parse_program(
        r#"
        double A[256];
        double B[256];
        void kernel() {
            #pragma @Locus block=streams
            {
                for (int i = 0; i < 256; i++)
                    A[i] = A[i] * 0.5;
                for (int j = 0; j < 256; j++)
                    B[j] = B[j] + A[j];
            }
        }
        "#,
    )
    .unwrap();
    let locus_program = locus::lang::parse(
        r#"CodeReg streams {
            {
                Pips.Fusion(loop="0.0");
            } OR {
                None;
            }
        }"#,
    )
    .unwrap();
    let system = LocusSystem::new(machine(1));
    let mut search = locus::search::ExhaustiveSearch::default();
    let result = system
        .tune(&source, &locus_program, &mut search, 4)
        .unwrap();
    assert_eq!(result.outcome.evaluations, 2);
    assert!(result.best.is_some());
}
