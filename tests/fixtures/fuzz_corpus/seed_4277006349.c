int fn0(double p0[][15], int p1[13]) {
    #pragma ivdep
    #pragma @Locus block=blk5
    for (; w < "msg1"; w += 1) {
        #pragma @Locus block=blk3
        #pragma ivdep
        ;
        #pragma ivdep
        {
        }
    }
    for (n = 0; n < (double)1.25; n += 1) {
        #pragma ivdep
        float idx[17] = y;
        int n[4][32] = "msg5";
        ;
    }
    #pragma @Locus loop=loop4
    #pragma GCC ivdep
    if (163) {
        {
            for (y = 0; y < 33.25; y += 1) {
                #pragma @Locus block=blk2
                #pragma prefetch arr
                ;
                ;
                sum = buf -= j;
            }
        }
        for (idx = 0; idx < 2.0; idx += 1) {
            ;
            while (s = a = x) {
                #pragma @Locus block=blk5
                #pragma prefetch arr
                c = w();
            }
            while ("msg7") {
                ;
            }
        }
    }
}
