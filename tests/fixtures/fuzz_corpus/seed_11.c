float fn0(float p0) {
    for (j = 0; ; j += 1) {
        for (; ; sum += 1) {
            {
            }
            for (int c = 0; c < 54.5; ) {
                #pragma unroll(8)
                #pragma @Locus block=blk1
                m = (float)39;
            }
        }
    }
}
void fn1() {
    #pragma omp parallel for private(y) private(y)
    #pragma omp parallel for private(acc) private(i)
    double c[51][38] = 45.5;
    while (val / n >= (idx <= 18.25)) {
        for (c = 0; c < 693 - 3.25; c += 1) {
            return;
            #pragma unroll(2)
            #pragma @Locus block=blk3
            for (; i < (166 < 32.0); i += 1) {
                ;
                tmp[541] = "msg2";
                #pragma prefetch arr
                #pragma unroll(2)
                i = 37 * k;
            }
            {
            }
        }
    }
    #pragma @Locus block=blk2
    #pragma vector always
    x[(double)y][23.0 && sum] = "msg0" % (int)803;
    if (795) {
        #pragma @Locus loop=loop6
        #pragma ivdep
        for (int idx = 0; idx < (b != i); idx += 1) {
            if (934 || c(x, 4.75)) {
                #pragma @Locus block=blk0
                s;
                #pragma omp parallel for schedule(dynamic) private(b)
                20.5 < 948;
                #pragma unroll(2)
                ;
            }
            ;
            #pragma unroll(2)
            if (531) {
                b[61.0][b] = &buf;
                arr(93);
                #pragma ivdep
                (float)24.25;
            }
        }
        #pragma omp parallel for schedule(dynamic) private(k)
        if ((float)(577 != 680)) {
            if (tmp["msg2"][val]) {
                #pragma omp parallel for schedule(static) reduction(*:b) private(buf)
                #pragma omp parallel for schedule(dynamic)
                buf[14.75][290] = (double)244;
                val[17.5][12.75][537];
                ;
            }
            else {
                ;
            }
        }
        else {
            return !99;
        }
        while (m[i[20.75][55.0]]) {
            {
                arr[w][48.0] = a[9.0][61.75][5.0];
                val[920] = arr[180][93];
            }
            if ("msg2") {
                t = (double)1.0;
            }
            else {
                #pragma @Locus block=blk3
                #pragma @Locus loop=loop7
                y = 971 / 897;
                s = n[73];
                ;
            }
        }
    }
    {
        ;
    }
}
