void fn0(double p0) {
    for (; x < (s -= a); x += 1) {
        for (int n = 0; n < (int)781; n += 1) {
            #pragma @Locus block=blk7
            #pragma nounroll
            {
                #pragma nounroll
                #pragma vector always
                ;
            }
            m[j[750][b]][c[738][c][43.0]] = x;
            for (acc = 0; acc < 913; acc += 1) {
                ;
                buf = 967 < 700;
                (int)488;
            }
        }
    }
    {
        float c[64];
        #pragma @Locus block=blk2
        #pragma @Locus loop=loop5
        for (; ; y += 1) {
            while (10.25 + -11) {
                ;
                arr = (float)52.75;
                #pragma ivdep
                #pragma prefetch arr
                j(824);
            }
            return c[39.5][236];
            if (*t) {
                !12;
            }
            else {
                #pragma @Locus block=blk3
                #pragma @Locus block=blk1
                buf[5.25][46.75] = y -= sum;
                j = 81;
                #pragma ivdep
                w = k = 433;
            }
        }
    }
    #pragma @Locus loop=loop1
    int j[26] = *t;
}
double fn1(double* p0, int p1[30]) {
    for (int t = 0; t < (double)189; t += 1) {
        for (; buf < 11.25; buf += 1) {
            i = a(22.0 <= 39.5);
        }
        {
        }
    }
}
