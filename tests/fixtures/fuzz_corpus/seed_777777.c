#pragma @Locus loop=loop2
double g0[117][89];
void fn0(float p0, int p1, int* p2[10]) {
    ;
    ;
    {
    }
}
