int g0;
void fn0(double* p0) {
    return;
    #pragma prefetch arr
    #pragma unroll(2)
    b = b *= k / 31.75;
}
