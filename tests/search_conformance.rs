//! Trait-level conformance suite for every [`SearchModule`]: seeded
//! determinism, batch/sequential proposal equivalence, warm-start
//! hygiene, hostile-objective robustness, and termination on exhausted
//! spaces. Each test runs over all seven built-in modules, so a new
//! module added to the crate inherits the whole contract by adding one
//! line to [`all_modules`].

use locus::search::{
    AnnealTuner, BanditTuner, ExhaustiveSearch, MctsTuner, Objective, PortfolioSearch,
    RandomSearch, SearchModule, TraceSampler,
};
use locus::space::{ParamDef, ParamKind, ParamValue, Point, Space};

type Factory = Box<dyn Fn(u64) -> Box<dyn SearchModule>>;

/// Every built-in module, by constructor. The seed is ignored by the
/// exhaustive sweep; everything else must honour it.
fn all_modules() -> Vec<(&'static str, Factory)> {
    vec![
        (
            "exhaustive",
            Box::new(|_| Box::new(ExhaustiveSearch::default())),
        ),
        ("random", Box::new(|s| Box::new(RandomSearch::new(s)))),
        ("bandit", Box::new(|s| Box::new(BanditTuner::new(s)))),
        ("anneal", Box::new(|s| Box::new(AnnealTuner::new(s)))),
        ("portfolio", Box::new(|s| Box::new(PortfolioSearch::new(s)))),
        ("mcts", Box::new(|s| Box::new(MctsTuner::new(s)))),
        ("sampler", Box::new(|s| Box::new(TraceSampler::new(s)))),
    ]
}

/// A mixed-kind space: 8 x 2 x 32 = 512 points, optimum at
/// (tile = 16, alg = "fast", n = 10).
fn bench_space() -> Space {
    vec![
        ParamDef::new("tile", ParamKind::PowerOfTwo { min: 2, max: 256 }),
        ParamDef::new("alg", ParamKind::Enum(vec!["slow".into(), "fast".into()])),
        ParamDef::new("n", ParamKind::Integer { min: 1, max: 32 }),
    ]
    .into_iter()
    .collect()
}

fn bench_objective(p: &Point) -> Objective {
    let tile = match p.get("tile") {
        Some(ParamValue::Int(v)) => *v as f64,
        _ => return Objective::Error,
    };
    let alg = match p.get("alg") {
        Some(ParamValue::Choice(c)) => *c as f64,
        _ => return Objective::Error,
    };
    let n = match p.get("n") {
        Some(ParamValue::Int(v)) => *v as f64,
        _ => return Objective::Error,
    };
    Objective::Value((tile.log2() - 4.0).powi(2) + (1.0 - alg) * 3.0 + (n - 10.0).powi(2) * 0.05)
}

/// Same seed, same budget, same objective: the outcome — best point,
/// best value, evaluation counts, improvement history — is identical.
#[test]
fn every_module_is_deterministic_per_seed() {
    let space = bench_space();
    for (name, make) in all_modules() {
        let mut f1 = bench_objective;
        let mut f2 = bench_objective;
        let a = make(41).search(&space, 50, &mut f1);
        let b = make(41).search(&space, 50, &mut f2);
        assert_eq!(a, b, "{name}: two identically-seeded runs diverged");
    }
}

/// `propose_batch(k)` is defined as `k` sequential `propose` calls: a
/// driver alternating batches with in-order observation must see the
/// exact proposal stream of the one-at-a-time driver.
#[test]
fn propose_batch_equals_repeated_propose() {
    let space = bench_space();
    for (name, make) in all_modules() {
        let mut batched = make(17);
        let mut sequential = make(17);
        batched.begin(&space, 60);
        sequential.begin(&space, 60);
        for round in 0..10 {
            let batch = batched.propose_batch(&space, 6);
            let mut singles = Vec::new();
            for _ in 0..6 {
                match sequential.propose(&space) {
                    Some(p) => singles.push(p),
                    None => break,
                }
            }
            let keys =
                |ps: &[Point]| -> Vec<String> { ps.iter().map(Point::canonical_key).collect() };
            assert_eq!(
                keys(&batch),
                keys(&singles),
                "{name}: round {round} batch diverged from repeated propose"
            );
            for p in &batch {
                let obj = bench_objective(p);
                batched.observe(p, obj, true);
                sequential.observe(p, obj, true);
            }
            if batch.is_empty() {
                break;
            }
        }
    }
}

/// Warm-starting must prime, not replay: after `seed_observations`, the
/// first proposal is never one of the seeded points, and the two
/// stateful trace modules never re-propose a seeded point at all.
#[test]
fn seeded_priors_are_not_reproposed() {
    let space = bench_space();
    // Mid-space elites: away from index 0 (exhaustive starts there) and
    // distinctive enough to check re-proposals against.
    let prior: Vec<(Point, f64)> = vec![
        (space.point_at(137), 2.5),
        (space.point_at(301), 3.75),
        (space.point_at(444), 9.0),
    ];
    let prior_keys: Vec<String> = prior.iter().map(|(p, _)| p.canonical_key()).collect();
    for (name, make) in all_modules() {
        let mut m = make(23);
        m.begin(&space, 60);
        m.seed_observations(&space, &prior);
        let first = m.propose(&space).expect("seeded module still proposes");
        assert!(
            !prior_keys.contains(&first.canonical_key()),
            "{name}: first proposal replays a seeded prior"
        );
        if name == "mcts" || name == "sampler" {
            let mut p = first;
            for _ in 0..120 {
                assert!(
                    !prior_keys.contains(&p.canonical_key()),
                    "{name}: re-proposed a seeded prior"
                );
                m.observe(&p, bench_objective(&p), true);
                match m.propose(&space) {
                    Some(next) => p = next,
                    None => break,
                }
            }
        }
    }
}

/// A previously-refused illegal point is never proposed again by the
/// dedup-tracking modules, and only boundedly often by the stateless
/// ones — an observation loop feeding `Invalid` back must always
/// terminate the search rather than spin on the refused region.
#[test]
fn refused_points_do_not_dominate_the_stream() {
    let space = bench_space();
    for (name, make) in all_modules() {
        let mut m = make(31);
        m.begin(&space, 80);
        let mut refusals: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        let mut rounds = 0;
        while let Some(p) = m.propose(&space) {
            rounds += 1;
            if rounds > 2000 {
                panic!("{name}: refused-point loop did not terminate");
            }
            // Refuse the whole `alg = slow` half of the space.
            let refused = matches!(p.get("alg"), Some(ParamValue::Choice(0)));
            if refused {
                *refusals.entry(p.canonical_key()).or_insert(0) += 1;
                m.observe(&p, Objective::Invalid, true);
            } else {
                m.observe(&p, bench_objective(&p), true);
            }
            if rounds >= 400 {
                break;
            }
        }
        let max_repeat = refusals.values().copied().max().unwrap_or(0);
        let bound = if name == "mcts" || name == "sampler" {
            1
        } else {
            12
        };
        assert!(
            max_repeat <= bound,
            "{name}: one refused point was proposed {max_repeat} times"
        );
    }
}

/// NaN, infinities, `Error` and `Invalid` feedback — in any mixture —
/// never panic a module, and never surface as the best value.
#[test]
fn hostile_objectives_never_panic_or_win() {
    let space = bench_space();
    for (name, make) in all_modules() {
        let mut i = 0usize;
        let mut f = |p: &Point| {
            i += 1;
            match i % 6 {
                0 => Objective::Value(f64::NAN),
                1 => Objective::Value(f64::INFINITY),
                2 => Objective::Value(f64::NEG_INFINITY),
                3 => Objective::Error,
                4 => Objective::Invalid,
                _ => bench_objective(p),
            }
        };
        let out = make(53).search(&space, 60, &mut f);
        if let Some((_, best)) = out.best {
            assert!(best.is_finite(), "{name}: non-finite best {best}");
        }
        assert!(out.evaluations <= 60, "{name}: overspent the budget");
    }
}

/// A two-point space is exhausted, not spun on: every module's
/// sequential driver returns with at most two evaluations.
#[test]
fn tiny_spaces_terminate_for_every_module() {
    let space: Space = vec![ParamDef::new("x", ParamKind::Bool)]
        .into_iter()
        .collect();
    for (name, make) in all_modules() {
        let mut f = |p: &Point| match p.get("x") {
            Some(ParamValue::Choice(1)) => Objective::Value(1.0),
            _ => Objective::Value(2.0),
        };
        let out = make(3).search(&space, 100, &mut f);
        assert_eq!(
            out.evaluations, 2,
            "{name}: expected the two distinct points, got {}",
            out.evaluations
        );
        let (best, v) = out.best.expect("best exists");
        assert_eq!(v, 1.0, "{name}: wrong optimum");
        assert_eq!(best.get("x"), Some(&ParamValue::Choice(1)));
    }
}
