//! Property tests on the language layers: the mini-C printer/parser
//! round trip and space/point invariants.

use proptest::prelude::*;

// ---- mini-C round trip ------------------------------------------------------

/// Generates small mini-C programs compositionally.
fn arb_minic() -> impl Strategy<Value = String> {
    let stmts = prop_oneof![
        Just("A[i] = A[i] + 1.0;"),
        Just("A[i] = B[i] * 2.0 - 1.0;"),
        Just("x = x + i;"),
        Just("if (i % 2 == 0) { A[i] = 0.0; }"),
        Just("A[i] = (double)(i * 3 % 7);"),
    ];
    (stmts, 1usize..30, prop::bool::ANY).prop_map(|(stmt, n, pragma)| {
        let p = if pragma { "#pragma @Locus loop=r\n" } else { "" };
        format!(
            r#"
            double A[32];
            double B[32];
            int x;
            void kernel() {{
                {p}for (int i = 0; i < {n}; i++) {{
                    {stmt}
                }}
            }}
            "#
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(parse(x)) re-parses to the same AST.
    #[test]
    fn minic_print_parse_is_a_fixpoint(src in arb_minic()) {
        let p1 = locus::srcir::parse_program(&src).expect("generated source parses");
        let printed = locus::srcir::print_program(&p1);
        let p2 = locus::srcir::parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(p1, p2, "printed:\n{}", printed);
    }

    /// Expression printing preserves evaluation (via the machine).
    #[test]
    fn minic_reprint_preserves_execution(src in arb_minic()) {
        let machine = locus::machine::Machine::new(
            locus::machine::MachineConfig::scaled_small(),
        );
        let p1 = locus::srcir::parse_program(&src).expect("parses");
        let m1 = machine.run(&p1, "kernel").expect("runs");
        let p2 = locus::srcir::parse_program(&locus::srcir::print_program(&p1))
            .expect("reparses");
        let m2 = machine.run(&p2, "kernel").expect("reruns");
        prop_assert_eq!(m1.checksum, m2.checksum);
        prop_assert_eq!(m1.cycles, m2.cycles, "costs must be deterministic");
    }
}

// ---- space / point invariants ------------------------------------------------

fn arb_space() -> impl Strategy<Value = locus::space::Space> {
    use locus::space::{ParamDef, ParamKind};
    let kinds = prop_oneof![
        (1i64..20, 20i64..40).prop_map(|(lo, hi)| ParamKind::Integer { min: lo, max: hi }),
        (1i64..8, 16i64..128).prop_map(|(lo, hi)| ParamKind::PowerOfTwo { min: lo, max: hi }),
        (2usize..5).prop_map(ParamKind::Permutation),
        Just(ParamKind::Bool),
        (2usize..6).prop_map(|n| ParamKind::Enum(
            (0..n).map(|i| format!("v{i}")).collect()
        )),
    ];
    prop::collection::vec(kinds, 1..5).prop_map(|kinds| {
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| ParamDef::new(format!("p{i}"), kind))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every lexicographic index decodes to a distinct in-domain point.
    #[test]
    fn space_point_at_is_injective_and_in_domain(space in arb_space()) {
        let size = space.size();
        let sample = size.min(64);
        let mut seen = std::collections::HashSet::new();
        for k in 0..sample {
            // Spread indices over the whole range.
            let idx = if sample == size { k } else { k * (size / sample) };
            let point = space.point_at(idx);
            prop_assert_eq!(point.len(), space.len());
            seen.insert(point.dedup_key());
        }
        prop_assert_eq!(seen.len() as u128, sample);
    }

    /// Random points and mutations stay inside the domain.
    #[test]
    fn random_and_mutated_points_stay_in_domain(space in arb_space(), seed in 0u64..1000) {
        use locus::space::{ParamKind, ParamValue};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = space.random_point(&mut rng);
        let q = space.mutate(&p, 2, &mut rng);
        for point in [&p, &q] {
            for def in space.params() {
                let v = point.get(&def.id).expect("assigned");
                match (&def.kind, v) {
                    (ParamKind::Integer { min, max }, ParamValue::Int(x)) => {
                        prop_assert!(x >= min && x <= max);
                    }
                    (ParamKind::PowerOfTwo { min, max }, ParamValue::Int(x)) => {
                        prop_assert!(x >= min && x <= max && x.count_ones() == 1);
                    }
                    (ParamKind::Permutation(n), ParamValue::Perm(perm)) => {
                        let mut sorted = perm.clone();
                        sorted.sort_unstable();
                        prop_assert_eq!(sorted, (0..*n).collect::<Vec<_>>());
                    }
                    (ParamKind::Bool, ParamValue::Choice(c)) => prop_assert!(*c < 2),
                    (ParamKind::Enum(labels), ParamValue::Choice(c)) => {
                        prop_assert!(*c < labels.len());
                    }
                    other => prop_assert!(false, "mismatched kind/value {other:?}"),
                }
            }
        }
    }
}

// ---- Locus DSL determinism ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interpreting the same program twice under the same point produces
    /// identical module-call sequences (determinism of the pipeline).
    #[test]
    fn locus_interpretation_is_deterministic(seed in 0u64..500) {
        use rand::SeedableRng;
        let source = locus::corpus::dgemm_program(8);
        let locus_program = locus::lang::parse(
            r#"CodeReg matmul {
                t = poweroftwo(2..8);
                u = integer(1..4);
                {
                    Pips.Tiling(loop="0", factor=[t, t, t]);
                } OR {
                    RoseLocus.Unroll(loop=innermost, factor=u);
                }
            }"#,
        ).expect("parses");
        let system = locus::system::LocusSystem::new(locus::machine::Machine::new(
            locus::machine::MachineConfig::scaled_small(),
        ));
        let prepared = system.prepare(&source, &locus_program).expect("prepares");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let point = prepared.space.random_point(&mut rng);
        let a = system.build_variant(&source, &prepared, &point);
        let b = system.build_variant(&source, &prepared, &point);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(
                locus::srcir::print_program(&x),
                locus::srcir::print_program(&y)
            ),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "divergent outcomes {other:?}"),
        }
    }
}
