//! Property tests on the language layers: the mini-C printer/parser
//! round trip, space/point invariants, and — the part the parallel
//! engine's memo cache leans on — Locus DSL printer↔parser round trips
//! for every figure program and for the direct programs emitted during
//! tuning.
//!
//! All loops are hand-rolled over the in-tree [`SplitMix64`] generator
//! (offline-only build; see README "Testing"): every trial derives from
//! a fixed seed and reproduces exactly.

use locus::lang::LocusProgram;
use locus::space::SplitMix64;

/// Seeded trials per scenario.
const TRIALS: usize = 64;

// ---- mini-C round trip ------------------------------------------------------

/// Generates a small mini-C program from the trial's RNG.
fn random_minic(rng: &mut SplitMix64) -> String {
    const STMTS: [&str; 5] = [
        "A[i] = A[i] + 1.0;",
        "A[i] = B[i] * 2.0 - 1.0;",
        "x = x + i;",
        "if (i % 2 == 0) { A[i] = 0.0; }",
        "A[i] = (double)(i * 3 % 7);",
    ];
    let stmt = STMTS[rng.below_usize(STMTS.len())];
    let n = rng.range_i64(1, 29);
    let p = if rng.chance(0.5) {
        "#pragma @Locus loop=r\n"
    } else {
        ""
    };
    format!(
        r#"
        double A[32];
        double B[32];
        int x;
        void kernel() {{
            {p}for (int i = 0; i < {n}; i++) {{
                {stmt}
            }}
        }}
        "#
    )
}

/// print(parse(x)) re-parses to the same AST.
#[test]
fn minic_print_parse_is_a_fixpoint() {
    let mut rng = SplitMix64::new(0xc001);
    for trial in 0..TRIALS {
        let src = random_minic(&mut rng);
        let p1 = locus::srcir::parse_program(&src).expect("generated source parses");
        let printed = locus::srcir::print_program(&p1);
        let p2 = locus::srcir::parse_program(&printed)
            .unwrap_or_else(|e| panic!("trial {trial}: reparse failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "trial {trial}: printed:\n{printed}");
    }
}

/// Expression printing preserves evaluation (via the machine).
#[test]
fn minic_reprint_preserves_execution() {
    let machine = locus::machine::Machine::new(locus::machine::MachineConfig::scaled_small());
    let mut rng = SplitMix64::new(0xc002);
    for trial in 0..TRIALS {
        let src = random_minic(&mut rng);
        let p1 = locus::srcir::parse_program(&src).expect("parses");
        let m1 = machine.run(&p1, "kernel").expect("runs");
        let p2 = locus::srcir::parse_program(&locus::srcir::print_program(&p1)).expect("reparses");
        let m2 = machine.run(&p2, "kernel").expect("reruns");
        assert_eq!(m1.checksum, m2.checksum, "trial {trial}");
        assert_eq!(
            m1.cycles, m2.cycles,
            "trial {trial}: costs must be deterministic"
        );
    }
}

// ---- space / point invariants ------------------------------------------------

fn random_space(rng: &mut SplitMix64) -> locus::space::Space {
    use locus::space::{ParamDef, ParamKind};
    let count = 1 + rng.below_usize(4);
    (0..count)
        .map(|i| {
            let kind = match rng.below(5) {
                0 => ParamKind::Integer {
                    min: rng.range_i64(1, 19),
                    max: rng.range_i64(20, 39),
                },
                1 => ParamKind::PowerOfTwo {
                    min: rng.range_i64(1, 7),
                    max: rng.range_i64(16, 127),
                },
                2 => ParamKind::Permutation(2 + rng.below_usize(3)),
                3 => ParamKind::Bool,
                _ => {
                    let n = 2 + rng.below_usize(4);
                    ParamKind::Enum((0..n).map(|i| format!("v{i}")).collect())
                }
            };
            ParamDef::new(format!("p{i}"), kind)
        })
        .collect()
}

/// Every lexicographic index decodes to a distinct in-domain point.
#[test]
fn space_point_at_is_injective_and_in_domain() {
    let mut rng = SplitMix64::new(0x5ace);
    for trial in 0..2 * TRIALS {
        let space = random_space(&mut rng);
        let size = space.size();
        let sample = size.min(64);
        let mut seen = std::collections::HashSet::new();
        for k in 0..sample {
            // Spread indices over the whole range.
            let idx = if sample == size {
                k
            } else {
                k * (size / sample)
            };
            let point = space.point_at(idx);
            assert_eq!(point.len(), space.len(), "trial {trial}");
            seen.insert(point.canonical_key());
        }
        assert_eq!(seen.len() as u128, sample, "trial {trial}");
    }
}

/// Random points and mutations stay inside the domain.
#[test]
fn random_and_mutated_points_stay_in_domain() {
    use locus::space::{ParamKind, ParamValue};
    let mut rng = SplitMix64::new(0xd0d0);
    for trial in 0..2 * TRIALS {
        let space = random_space(&mut rng);
        let p = space.random_point(&mut rng);
        let q = space.mutate(&p, 2, &mut rng);
        for point in [&p, &q] {
            for def in space.params() {
                let v = point.get(&def.id).expect("assigned");
                match (&def.kind, v) {
                    (ParamKind::Integer { min, max }, ParamValue::Int(x)) => {
                        assert!(x >= min && x <= max, "trial {trial}");
                    }
                    (ParamKind::PowerOfTwo { min, max }, ParamValue::Int(x)) => {
                        assert!(x >= min && x <= max && x.count_ones() == 1, "trial {trial}");
                    }
                    (ParamKind::Permutation(n), ParamValue::Perm(perm)) => {
                        let mut sorted = perm.clone();
                        sorted.sort_unstable();
                        assert_eq!(sorted, (0..*n).collect::<Vec<_>>(), "trial {trial}");
                    }
                    (ParamKind::Bool, ParamValue::Choice(c)) => {
                        assert!(*c < 2, "trial {trial}")
                    }
                    (ParamKind::Enum(labels), ParamValue::Choice(c)) => {
                        assert!(*c < labels.len(), "trial {trial}");
                    }
                    other => panic!("trial {trial}: mismatched kind/value {other:?}"),
                }
            }
        }
    }
}

// ---- Locus DSL round trips ---------------------------------------------------

/// Asserts print→parse→print is a fixpoint, reporting the first
/// divergent line on failure.
fn assert_locus_round_trip(label: &str, program: &LocusProgram) {
    let printed = locus::lang::print_program(program);
    let reparsed = locus::lang::parse(&printed)
        .unwrap_or_else(|e| panic!("{label}: printed program failed to reparse: {e}\n{printed}"));
    let reprinted = locus::lang::print_program(&reparsed);
    if printed != reprinted {
        for (i, (a, b)) in printed.lines().zip(reprinted.lines()).enumerate() {
            if a != b {
                panic!(
                    "{label}: round trip diverged at line {}:\n  before: {a}\n  after:  {b}",
                    i + 1
                );
            }
        }
        panic!(
            "{label}: round trip diverged in length: {} vs {} lines\n--- before ---\n{printed}\n--- after ---\n{reprinted}",
            printed.lines().count(),
            reprinted.lines().count()
        );
    }
}

/// Every figure program of the paper round-trips through the printer.
#[test]
fn figure_programs_round_trip() {
    use locus::corpus::{KripkeKernel, Stencil};
    assert_locus_round_trip(
        "fig7(max_tile=64)",
        &locus_bench::fig6::fig7_locus_program(64),
    );
    assert_locus_round_trip(
        "fig7(max_tile=4)",
        &locus_bench::fig6::fig7_locus_program(4),
    );
    for stencil in Stencil::ALL {
        assert_locus_round_trip(
            &format!("fig9({stencil:?})"),
            &locus_bench::fig6::fig9_locus_program(stencil, 2, 16),
        );
    }
    for kernel in KripkeKernel::ALL {
        assert_locus_round_trip(
            &format!("fig11({kernel:?})"),
            &locus_bench::fig12::fig11_locus_program(kernel),
        );
    }
    let fig13 = locus::lang::parse(locus_bench::table1::FIG13_PROGRAM).expect("Fig. 13 parses");
    assert_locus_round_trip("fig13", &fig13);
}

/// The inline example programs from `examples/` round-trip too.
#[test]
fn example_programs_round_trip() {
    const EXAMPLES: [(&str, &str); 3] = [
        (
            "matmul-tuning",
            r#"CodeReg matmul {
                RoseLocus.Interchange(order=[0, 2, 1]);
                tileI = poweroftwo(4..16);
                tileK = poweroftwo(4..16);
                tileJ = poweroftwo(4..16);
                Pips.Tiling(loop="0", factor=[tileI, tileK, tileJ]);
            }"#,
        ),
        (
            "or-blocks-and-optionals",
            r#"CodeReg scop {
                t = poweroftwo(2..8);
                u = integer(1..4);
                {
                    Pips.Tiling(loop="0", factor=[t, t, t]);
                } OR {
                    RoseLocus.Unroll(loop=innermost, factor=u);
                }
            }"#,
        ),
        (
            "queries-and-permutations",
            r#"CodeReg matmul {
                depth = BuiltIn.LoopNestDepth();
                permorder = permutation(seq(0, depth));
                RoseLocus.Interchange(order=permorder);
            }"#,
        ),
    ];
    for (label, src) in EXAMPLES {
        let program = locus::lang::parse(src).expect(label);
        assert_locus_round_trip(label, &program);
    }
}

/// Every direct program emitted while tuning round-trips: the memo
/// cache of the parallel engine keys variants by the printed direct
/// program, so printing must be loss-free for all reachable points.
#[test]
fn direct_programs_round_trip_during_tuning() {
    let source = locus::corpus::dgemm_program(8);
    let locus_program = locus_bench::fig6::fig7_locus_program(8);
    let system = locus::system::LocusSystem::new(locus::machine::Machine::new(
        locus::machine::MachineConfig::scaled_tiny().with_cores(1),
    ));
    let prepared = system.prepare(&source, &locus_program).expect("prepares");

    // A stratified sweep of the space, plus random points: every direct
    // program printed must re-parse to a program that prints the same.
    let size = prepared.space.size();
    let mut rng = SplitMix64::new(0xd1ec7);
    let mut checked = 0usize;
    for k in 0..TRIALS as u128 {
        let idx = (k * size / TRIALS as u128).min(size - 1);
        let point = prepared.space.point_at(idx);
        let direct = system.direct_program(&prepared, &point);
        let reparsed = locus::lang::parse(&direct)
            .unwrap_or_else(|e| panic!("point {idx}: direct program unparseable: {e}\n{direct}"));
        assert_locus_round_trip(&format!("direct@{idx}"), &reparsed);
        checked += 1;

        let random = prepared.space.random_point(&mut rng);
        let direct = system.direct_program(&prepared, &random);
        let reparsed = locus::lang::parse(&direct)
            .unwrap_or_else(|e| panic!("random point: direct program unparseable: {e}\n{direct}"));
        assert_locus_round_trip("direct@random", &reparsed);
        checked += 1;
    }
    assert_eq!(checked, 2 * TRIALS);

    // And the direct program of an actual tuning winner.
    let mut search = locus::search::ExhaustiveSearch::default();
    let result = system
        .tune(&source, &locus_program, &mut search, 16)
        .expect("tunes");
    if let Some((point, _, _)) = &result.best {
        let direct = system.direct_program(&prepared, point);
        let reparsed = locus::lang::parse(&direct).expect("winner direct program parses");
        assert_locus_round_trip("direct@winner", &reparsed);
    }
}

// ---- Locus DSL determinism ---------------------------------------------------

/// Interpreting the same program twice under the same point produces
/// identical module-call sequences (determinism of the pipeline).
#[test]
fn locus_interpretation_is_deterministic() {
    let source = locus::corpus::dgemm_program(8);
    let locus_program = locus::lang::parse(
        r#"CodeReg matmul {
            t = poweroftwo(2..8);
            u = integer(1..4);
            {
                Pips.Tiling(loop="0", factor=[t, t, t]);
            } OR {
                RoseLocus.Unroll(loop=innermost, factor=u);
            }
        }"#,
    )
    .expect("parses");
    let system = locus::system::LocusSystem::new(locus::machine::Machine::new(
        locus::machine::MachineConfig::scaled_small(),
    ));
    let prepared = system.prepare(&source, &locus_program).expect("prepares");
    let mut rng = SplitMix64::new(0xde7e);
    for trial in 0..32 {
        let point = prepared.space.random_point(&mut rng);
        let a = system.build_variant(&source, &prepared, &point);
        let b = system.build_variant(&source, &prepared, &point);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(
                locus::srcir::print_program(&x),
                locus::srcir::print_program(&y),
                "trial {trial}"
            ),
            (Err(_), Err(_)) => {}
            other => panic!("trial {trial}: divergent outcomes {other:?}"),
        }
    }
}
