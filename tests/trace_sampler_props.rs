//! Seeded property tests for the [`TraceSampler`] generative model:
//! the per-site categorical distributions it fits are genuine
//! probability distributions, a degenerate (single-elite) history
//! reproduces the elite's trace exactly, and one pinned fit is frozen
//! as a fixture so distribution changes are deliberate, not drift.
//!
//! Regenerate the fixture after an intentional model change with:
//! `LOCUS_BLESS=1 cargo test --test trace_sampler_props`.

use locus::search::{Objective, SearchModule, TraceSampler};
use locus::space::{ParamDef, ParamKind, ParamValue, Point, Space};

/// A mixed-kind space exercising every decision-site arity class the
/// sampler sees in practice: binary, small enum, pow2 grid, integers.
fn mixed_space() -> Space {
    vec![
        ParamDef::new("unroll", ParamKind::Bool),
        ParamDef::new(
            "sched",
            ParamKind::Enum(vec!["static".into(), "dynamic".into(), "guided".into()]),
        ),
        ParamDef::new("tile", ParamKind::PowerOfTwo { min: 4, max: 128 }),
        ParamDef::new("chunk", ParamKind::Integer { min: 1, max: 12 }),
    ]
    .into_iter()
    .collect()
}

fn synthetic_objective(p: &Point) -> Objective {
    let tile = match p.get("tile") {
        Some(ParamValue::Int(v)) => *v as f64,
        _ => return Objective::Error,
    };
    let chunk = match p.get("chunk") {
        Some(ParamValue::Int(v)) => *v as f64,
        _ => return Objective::Error,
    };
    let sched = match p.get("sched") {
        Some(ParamValue::Choice(c)) => *c as f64,
        _ => return Objective::Error,
    };
    Objective::Value((tile.log2() - 5.0).powi(2) + (chunk - 6.0).powi(2) * 0.1 + sched * 0.5)
}

/// Across many seeds and observation histories: every fitted site
/// distribution sums to 1, carries only positive weights, only in-range
/// decision values, and every sampled trace decodes to an in-space
/// point.
#[test]
fn fitted_distributions_are_normalized_for_any_seed() {
    let space = mixed_space();
    let sites = space.decision_sites();
    for seed in 0..12u64 {
        let mut m = TraceSampler::new(seed).with_sync_block(4);
        m.begin(&space, 80);
        for i in 0..60 {
            let Some(p) = m.propose(&space) else { break };
            // A hostile mixture: valid values, invalids, errors, NaN.
            let obj = match i % 7 {
                0 => Objective::Invalid,
                1 => Objective::Error,
                2 => Objective::Value(f64::NAN),
                _ => synthetic_objective(&p),
            };
            m.observe(&p, obj, true);
        }
        for (site, dist) in m.site_distributions().iter().enumerate() {
            if dist.is_empty() {
                continue; // uniform sites carry no explicit table
            }
            let total: f64 = dist.values().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "seed {seed} site {site}: weights sum to {total}"
            );
            for (&value, &weight) in dist {
                assert!(weight > 0.0, "seed {seed} site {site}: zero weight kept");
                assert!(
                    value < sites[site].arity,
                    "seed {seed} site {site}: decision {value} out of range {}",
                    sites[site].arity
                );
            }
        }
        for _ in 0..20 {
            let trace = m.sample_trace();
            let point = space
                .point_from_trace(&trace)
                .expect("sampled trace decodes");
            assert_eq!(space.trace_of(&point), Some(trace), "trace round-trips");
        }
    }
}

/// A degenerate history — exactly one elite — makes every site
/// distribution a point mass: at generation zero (no exploration yet)
/// the sampler reproduces the elite's trace exactly, for any seed.
#[test]
fn single_elite_history_reproduces_the_elite_trace() {
    let space = mixed_space();
    let elite = {
        let mut p = Point::new();
        p.set("unroll", ParamValue::Choice(1));
        p.set("sched", ParamValue::Choice(2));
        p.set("tile", ParamValue::Int(32));
        p.set("chunk", ParamValue::Int(6));
        p
    };
    let elite_trace = space.trace_of(&elite).expect("elite is in-space");
    for seed in 0..12u64 {
        let mut m = TraceSampler::new(seed);
        m.begin(&space, 40);
        m.seed_observations(&space, &[(elite.clone(), 1.25)]);
        for dist in m.site_distributions() {
            assert_eq!(dist.len(), 1, "seed {seed}: not a point mass");
            let (_, w) = dist.iter().next().unwrap();
            assert!((w - 1.0).abs() < 1e-12);
        }
        for _ in 0..25 {
            assert_eq!(
                m.sample_trace(),
                elite_trace,
                "seed {seed}: degenerate model sampled a different trace"
            );
        }
    }
}

/// One pinned fit: a fixed seed and a fixed observation history produce
/// exactly the distributions recorded in
/// `tests/fixtures/trace_sampler_fit.txt`.
#[test]
fn pinned_fit_matches_the_fixture() {
    let space = mixed_space();
    let mut m = TraceSampler::new(0x10c5).with_sync_block(8);
    m.begin(&space, 64);
    // Deterministic history: the sampler's own proposal stream under
    // the synthetic objective.
    for _ in 0..48 {
        let Some(p) = m.propose(&space) else { break };
        m.observe(&p, synthetic_objective(&p), true);
    }
    let mut dump = String::new();
    let sites = space.decision_sites();
    for (site, dist) in m.site_distributions().iter().enumerate() {
        dump.push_str(&format!("site {} ({})", site, sites[site].id));
        for (value, weight) in dist {
            dump.push_str(&format!(" {value}:{weight:.6}"));
        }
        dump.push('\n');
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/trace_sampler_fit.txt");
    if std::env::var("LOCUS_BLESS").is_ok() {
        std::fs::write(&path, &dump).unwrap();
    }
    let want = std::fs::read_to_string(&path).expect("fixture exists (LOCUS_BLESS=1 to create)");
    assert_eq!(
        dump, want,
        "fitted distributions drifted from the pinned fixture"
    );
}
