//! Wire-protocol robustness for `locusd`.
//!
//! The contract (see `locus::daemon::protocol`): every malformed,
//! truncated, or oversized request line gets a structured error reply —
//! the daemon never panics, never drops the connection, and keeps
//! serving well-formed requests afterwards. A SplitMix64-driven fuzzer
//! (same idiom as `tests/srcir_fuzz.rs`, seeds pinned so failures
//! reproduce byte-for-byte) hammers one live daemon with mutated and
//! random request lines, interleaved with pings that must keep
//! answering.

use locus::daemon::{codes, Client, Daemon, DaemonConfig, Op, Request, Response, MAX_LINE};

// ---- deterministic PRNG (no external crates) --------------------------

/// SplitMix64 — tiny, statistically solid, and trivially seedable.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One printable-ASCII fuzz character; never a newline, so every fuzz
/// payload stays exactly one protocol line (one line, one reply).
fn fuzz_char(rng: &mut SplitMix64) -> char {
    char::from(0x20 + (rng.below(0x5f) as u8))
}

/// A structurally valid tune request line to mutate.
fn valid_line(rng: &mut SplitMix64) -> String {
    let mut request = Request::new(&format!("fz-{}", rng.below(1000)), Op::Tune);
    request.kernel = "dgemm".to_string();
    request.seed = rng.next();
    request.budget = 1 + rng.below(8) as usize;
    request.encode()
}

/// Applies one seeded mutation: truncate, byte flips, or junk splice.
fn mutate(rng: &mut SplitMix64, line: &str) -> String {
    let mut chars: Vec<char> = line.chars().collect();
    match rng.below(3) {
        // Truncate mid-line (also models a connection cut before the
        // newline: the daemon parses the prefix and refuses it).
        0 => {
            let keep = rng.below(chars.len() as u64) as usize;
            chars.truncate(keep);
        }
        // Flip 1..8 characters to arbitrary printable bytes — broken
        // quotes, braces, colons, binary-ish soup.
        1 => {
            for _ in 0..1 + rng.below(8) {
                let at = rng.below(chars.len() as u64) as usize;
                chars[at] = fuzz_char(rng);
            }
        }
        // Splice random junk into the middle.
        _ => {
            let at = rng.below(chars.len() as u64) as usize;
            let junk: String = (0..rng.below(24)).map(|_| fuzz_char(rng)).collect();
            chars.splice(at..at, junk.chars());
        }
    }
    chars.into_iter().collect()
}

/// Pure random printable soup.
fn random_line(rng: &mut SplitMix64) -> String {
    (0..1 + rng.below(120)).map(|_| fuzz_char(rng)).collect()
}

#[test]
fn fuzzed_lines_always_get_replies_and_never_kill_the_daemon() {
    let dir = std::env::temp_dir().join(format!("locus-proto-fuzz-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();

    let mut rng = SplitMix64(0x10c5_daed_0001);
    let mut error_replies = 0usize;
    for round in 0..300 {
        let line = match round % 3 {
            0 => {
                let valid = valid_line(&mut rng);
                mutate(&mut rng, &valid)
            }
            1 => random_line(&mut rng),
            _ => {
                // Structured-but-wrong: valid JSON, hostile fields.
                let n = rng.next();
                format!(r#"{{"id":"s-{round}","op":"tune","kernel":"dgemm","seed":"x{n}"}}"#)
            }
        };
        if line.trim().is_empty() {
            // Blank lines are skipped by the daemon, no reply due.
            continue;
        }
        client.send_raw(&line).unwrap();
        let reply = client
            .recv()
            .unwrap_or_else(|e| panic!("round {round}: no reply to {line:?}: {e}"));
        // A mutated line can, rarely, still parse as a valid request;
        // anything else must come back as a structured error.
        if !reply.ok {
            error_replies += 1;
            let code = reply.error_code().unwrap();
            assert!(
                [
                    codes::PARSE,
                    codes::OVERSIZED,
                    codes::UNKNOWN_OP,
                    codes::UNKNOWN_KERNEL,
                    codes::UNKNOWN_MACHINE,
                    codes::UNKNOWN_SEARCH,
                    codes::INTERNAL,
                ]
                .contains(&code),
                "round {round}: unexpected code {code} for {line:?}"
            );
        }
        // The daemon is still alive and well-formed requests still work.
        if round % 25 == 0 {
            assert!(client.ping(&format!("ping-{round}")).unwrap());
        }
    }
    assert!(
        error_replies > 200,
        "fuzzer produced too few malformed lines ({error_replies}) to mean anything"
    );
    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_lines_are_refused_with_a_structured_error() {
    let dir = std::env::temp_dir().join(format!("locus-proto-big-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();

    // Exactly at the limit: parse error (it is junk), not oversized.
    let at_limit = "x".repeat(MAX_LINE);
    client.send_raw(&at_limit).unwrap();
    assert_eq!(client.recv().unwrap().error_code(), Some(codes::PARSE));

    // One past the limit and far past it: both refused as oversized,
    // content discarded, connection intact.
    for size in [MAX_LINE + 1, 4 * MAX_LINE] {
        let big = "y".repeat(size);
        client.send_raw(&big).unwrap();
        let reply = client.recv().unwrap();
        assert_eq!(reply.error_code(), Some(codes::OVERSIZED), "size {size}");
    }
    assert!(client.ping("still-alive").unwrap());
    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_request_at_connection_close_is_parsed_and_refused() {
    let dir = std::env::temp_dir().join(format!("locus-proto-trunc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).unwrap();

    // Write a request prefix with no trailing newline, then half-close
    // the write side. The daemon parses the truncated line at EOF and
    // still answers with a structured error before closing.
    use std::io::{BufRead as _, BufReader, Write as _};
    let stream = std::net::TcpStream::connect(daemon.addr()).unwrap();
    let mut write_half = stream.try_clone().unwrap();
    write_half.write_all(br#"{"id":"cut","op":"tu"#).unwrap();
    write_half.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    let response = Response::parse(reply.trim_end()).unwrap();
    assert!(!response.ok);
    assert_eq!(response.error_code(), Some(codes::PARSE));
    assert_eq!(response.id, "cut");

    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn structured_field_errors_echo_the_request_id() {
    let dir = std::env::temp_dir().join(format!("locus-proto-id-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).unwrap();
    let mut client = Client::connect(daemon.addr()).unwrap();

    for (line, code) in [
        (r#"{"id":"a","op":"frobnicate"}"#, codes::UNKNOWN_OP),
        (
            r#"{"id":"b","op":"tune","kernel":"no-such"}"#,
            codes::UNKNOWN_KERNEL,
        ),
        (
            r#"{"id":"c","op":"tune","kernel":"dgemm","machine":"no-such"}"#,
            codes::UNKNOWN_MACHINE,
        ),
        (
            r#"{"id":"d","op":"tune","kernel":"dgemm","search":"no-such"}"#,
            codes::UNKNOWN_SEARCH,
        ),
        (r#"{"id":"e","op":"tune","budget":"NaN"}"#, codes::PARSE),
    ] {
        client.send_raw(line).unwrap();
        let reply = client.recv().unwrap();
        assert_eq!(reply.error_code(), Some(code), "{line}");
        assert!(!reply.id.is_empty(), "{line} lost its id");
    }
    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}
