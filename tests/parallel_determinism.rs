//! The contract of the parallel engine ([`LocusSystem::tune_parallel`]):
//! batched, multi-threaded variant evaluation with a shared memo cache
//! returns the *same* best point, best objective, and evaluation count
//! as the sequential driver, for any thread count.
//!
//! Why this holds: proposals are consumed in proposal order through the
//! shared `Bookkeeper`, the batch size is fixed (16) regardless of the
//! thread count, and threads only race on *measuring* — the merge loop
//! that feeds observations back to the search module is sequential and
//! deterministic.

use locus::corpus::dgemm_program;
use locus::machine::{Machine, MachineConfig};
use locus::search::{ExhaustiveSearch, RandomSearch, SearchModule};
use locus::system::LocusSystem;

fn tiny_system(cores: usize) -> LocusSystem {
    LocusSystem::new(Machine::new(MachineConfig::scaled_tiny().with_cores(cores)))
}

/// A small but non-trivial space: the Fig. 7 program with tiles capped
/// at 4 (two tiling levels + OR block over OMP schedules).
fn fig7_small() -> locus::lang::LocusProgram {
    locus_bench::fig6::fig7_locus_program(4)
}

#[derive(Debug, PartialEq)]
struct Fingerprint {
    best_key: Option<String>,
    best_value: Option<u64>,
    evaluations: usize,
    invalid: usize,
}

fn fingerprint(result: &locus::system::TuneResult) -> Fingerprint {
    Fingerprint {
        best_key: result.best.as_ref().map(|(p, _, _)| p.canonical_key()),
        best_value: result.outcome.best.as_ref().map(|(_, v)| v.to_bits()),
        evaluations: result.outcome.evaluations,
        invalid: result.outcome.invalid,
    }
}

/// `tune_parallel` with 1, 2, and 8 threads is bit-identical to the
/// sequential `tune` under exhaustive search.
#[test]
fn parallel_matches_sequential_exhaustive() {
    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);
    let budget = 48;

    let mut search = ExhaustiveSearch::default();
    let sequential = system.tune(&source, &locus, &mut search, budget).unwrap();
    let want = fingerprint(&sequential);
    assert!(sequential.best.is_some(), "sequential run found a variant");

    for threads in [1, 2, 8] {
        let mut search = ExhaustiveSearch::default();
        let parallel = system
            .tune_parallel(&source, &locus, &mut search, budget, threads)
            .unwrap();
        assert_eq!(
            fingerprint(&parallel),
            want,
            "threads={threads}: parallel driver diverged from sequential"
        );
    }
}

/// Same bit-identity under seeded random search: the proposal stream is
/// observation-independent, so the driver (batched or not) must not
/// perturb it.
#[test]
fn parallel_matches_sequential_random() {
    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);
    let budget = 40;
    let seed = 0xdead;

    let mut search = RandomSearch::new(seed);
    let sequential = system.tune(&source, &locus, &mut search, budget).unwrap();
    let want = fingerprint(&sequential);

    for threads in [1, 2, 8] {
        let mut search = RandomSearch::new(seed);
        let parallel = system
            .tune_parallel(&source, &locus, &mut search, budget, threads)
            .unwrap();
        assert_eq!(
            fingerprint(&parallel),
            want,
            "threads={threads}: parallel driver diverged from sequential"
        );
    }
}

/// Thread-count invariance holds for observation-*dependent* modules
/// too (bandit, anneal, portfolio): at a fixed batch size the
/// observation order is deterministic, so any two thread counts agree
/// with each other.
#[test]
fn thread_count_is_invariant_for_adaptive_modules() {
    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);
    let budget = 32;

    type MakeSearch = Box<dyn Fn() -> Box<dyn SearchModule>>;
    let mut make: Vec<(&str, MakeSearch)> = Vec::new();
    make.push((
        "bandit",
        Box::new(|| Box::new(locus::search::BanditTuner::new(7))),
    ));
    make.push((
        "anneal",
        Box::new(|| Box::new(locus::search::AnnealTuner::new(7))),
    ));
    make.push((
        "portfolio",
        Box::new(|| Box::new(locus::search::PortfolioSearch::new(7))),
    ));
    make.push((
        "mcts",
        Box::new(|| Box::new(locus::search::MctsTuner::new(7))),
    ));
    make.push((
        "sampler",
        Box::new(|| Box::new(locus::search::TraceSampler::new(7))),
    ));

    for (name, factory) in &mut make {
        let mut reference: Option<Fingerprint> = None;
        for threads in [1, 2, 8] {
            let mut search = factory();
            let result = system
                .tune_parallel(&source, &locus, search.as_mut(), budget, threads)
                .unwrap();
            let fp = fingerprint(&result);
            match &reference {
                None => reference = Some(fp),
                Some(want) => assert_eq!(
                    &fp, want,
                    "{name}: threads={threads} diverged from threads=1"
                ),
            }
        }
    }
}

/// Warm-start is deterministic: the same store file plus the same
/// search seed reproduce the same trajectory — proposal history, best
/// point and objective, bit for bit — and the warm replay of an
/// unchanged source re-measures nothing.
fn warm_start_roundtrip(module: &str, make: &dyn Fn() -> Box<dyn SearchModule>) {
    use locus::store::TuningStore;

    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);
    let budget = 32;

    let dir = std::env::temp_dir();
    let tag = format!("{}-warm-determinism-{module}", std::process::id());
    let cold_path = dir.join(format!("locus-{tag}-cold.jsonl"));
    std::fs::remove_file(&cold_path).ok();

    // Cold session builds the store.
    {
        let mut store = TuningStore::open(&cold_path).unwrap();
        let mut search = make();
        let (_, report) = system
            .tune_parallel_with_store(&source, &locus, search.as_mut(), budget, 4, &mut store)
            .unwrap();
        assert!(report.evaluations() > 0, "{module}: cold run evaluated");
    }

    // Two warm sessions, each against its own copy of the same file (a
    // warm run may append, so copies keep the starting state identical),
    // with different thread counts: same seed => same trajectory.
    let mut runs = Vec::new();
    for (i, threads) in [(0usize, 2usize), (1, 8)] {
        let path = dir.join(format!("locus-{tag}-warm{i}.jsonl"));
        std::fs::copy(&cold_path, &path).unwrap();
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = make();
        let (result, report) = system
            .tune_parallel_with_store(
                &source,
                &locus,
                search.as_mut(),
                budget,
                threads,
                &mut store,
            )
            .unwrap();
        std::fs::remove_file(&path).ok();
        runs.push((fingerprint(&result), result.outcome.history.clone(), report));
    }
    std::fs::remove_file(&cold_path).ok();

    let (fp_a, history_a, report_a) = &runs[0];
    let (fp_b, history_b, report_b) = &runs[1];
    assert_eq!(
        fp_a, fp_b,
        "{module}: same store + same seed must agree on the best"
    );
    let bits = |h: &[(usize, f64)]| -> Vec<(usize, u64)> {
        h.iter().map(|(i, v)| (*i, v.to_bits())).collect()
    };
    assert_eq!(
        bits(history_a),
        bits(history_b),
        "{module}: improvement trajectory must be bit-identical"
    );
    assert_eq!(report_a.seeded, report_b.seeded);
    assert!(
        report_a.seeded > 0,
        "{module}: warm sessions were seeded from the store"
    );
    assert_eq!(report_a.rehydrated, report_b.rehydrated);
}

#[test]
fn warm_start_from_one_store_file_is_deterministic() {
    warm_start_roundtrip("bandit", &|| {
        Box::new(locus::search::BanditTuner::new(0x5eed))
    });
}

/// The block-buffering modules warm-start deterministically too: store
/// elites force tree paths (MCTS) / fit distributions (sampler) the
/// same way at every thread count.
#[test]
fn warm_start_is_deterministic_for_block_modules() {
    warm_start_roundtrip("mcts", &|| Box::new(locus::search::MctsTuner::new(0x5eed)));
    warm_start_roundtrip("sampler", &|| {
        Box::new(locus::search::TraceSampler::new(0x5eed))
    });
}

/// The MCTS and trace-sampler modules integrate observations in blocks
/// of [`locus::search::OBSERVATION_BLOCK`] — exactly the parallel
/// driver's batch size — so their proposal streams are bit-identical
/// between the sequential `tune` driver and `tune_parallel` at every
/// thread count, not merely invariant across thread counts.
#[test]
fn block_modules_match_sequential_tune_exactly() {
    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);
    let budget = 32;

    type MakeSearch = Box<dyn Fn() -> Box<dyn SearchModule>>;
    let make: Vec<(&str, MakeSearch)> = vec![
        (
            "mcts",
            Box::new(|| Box::new(locus::search::MctsTuner::new(0xb10c))),
        ),
        (
            "sampler",
            Box::new(|| Box::new(locus::search::TraceSampler::new(0xb10c))),
        ),
    ];
    for (name, factory) in &make {
        let mut search = factory();
        let sequential = system
            .tune(&source, &locus, search.as_mut(), budget)
            .unwrap();
        let want = fingerprint(&sequential);
        assert!(
            sequential.best.is_some(),
            "{name}: sequential run found a variant"
        );
        for threads in [1, 2, 8] {
            let mut search = factory();
            let parallel = system
                .tune_parallel(&source, &locus, search.as_mut(), budget, threads)
                .unwrap();
            assert_eq!(
                fingerprint(&parallel),
                want,
                "{name} threads={threads}: parallel driver diverged from sequential"
            );
        }
    }
}

/// The shared memo cache actually dedups: exhaustive search over a
/// space whose OR-block dead parameters collapse to few distinct
/// variants must record variant-level hits, and duplicate points
/// proposed twice must record point-level hits.
#[test]
fn memo_cache_sees_hits_on_duplicate_proposals() {
    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);

    // A stride small enough to sweep the fast-varying OR-block params:
    // distinct points in the plain OR branch differ only in dead
    // schedule/chunk values, so their direct programs collide at the
    // variant level and are measured once.
    let mut search = ExhaustiveSearch::default();
    let (result, stats) = system
        .tune_parallel_with_cache(&source, &locus, &mut search, 512, 4)
        .unwrap();
    assert!(result.best.is_some());
    assert!(
        stats.hits() >= 1,
        "expected memo hits on duplicate variants, stats: {stats:?}"
    );
    assert!(
        stats.unique_variants <= stats.unique_points,
        "variant dedup can only shrink the measurement set: {stats:?}"
    );

    // A random walk re-proposing points also scores point-level hits.
    let mut search = RandomSearch::new(3);
    let (_, stats) = system
        .tune_parallel_with_cache(&source, &locus, &mut search, 96, 2)
        .unwrap();
    assert!(
        stats.hits() >= 1,
        "expected point or variant hits under random re-proposals, stats: {stats:?}"
    );
}

/// A caller-owned cache shared across a session replays earlier
/// measurements without perturbing outcomes: a random search run against
/// a cache pre-populated by an exhaustive sweep returns exactly what the
/// same run returns standalone.
#[test]
fn shared_cache_replays_without_perturbing_outcomes() {
    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);

    let mut search = RandomSearch::new(11);
    let standalone = system
        .tune_parallel(&source, &locus, &mut search, 32, 2)
        .unwrap();

    let shared = locus::system::MemoCache::new();
    let mut sweep = ExhaustiveSearch::default();
    system
        .tune_parallel_shared(&source, &locus, &mut sweep, 8192, 2, &shared)
        .unwrap();
    let before = shared.stats();

    let mut search = RandomSearch::new(11);
    let replayed = system
        .tune_parallel_shared(&source, &locus, &mut search, 32, 2, &shared)
        .unwrap();
    let after = shared.stats();

    assert_eq!(
        fingerprint(&replayed),
        fingerprint(&standalone),
        "cached replay must match the standalone run bit for bit"
    );
    assert_eq!(
        after.unique_variants, before.unique_variants,
        "the sweep covered the space; the replay must measure nothing new"
    );
    assert!(
        after.hits() > before.hits(),
        "the replay must hit the cache"
    );
}

/// Every proposed point is accounted for exactly once: as a memo hit, a
/// store hit, a fresh evaluation, or a statically pruned point. A counter
/// leak here would make the `locus-report` rate table lie.
#[test]
fn report_counters_sum_to_proposed_points() {
    use locus::search::BanditTuner;

    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);

    type MakeSearch = Box<dyn Fn() -> Box<dyn SearchModule>>;
    let make: Vec<(&str, MakeSearch)> = vec![
        (
            "exhaustive",
            Box::new(|| Box::new(ExhaustiveSearch::default())),
        ),
        ("random", Box::new(|| Box::new(RandomSearch::new(9)))),
        ("bandit", Box::new(|| Box::new(BanditTuner::new(9)))),
    ];
    for (name, factory) in &make {
        for threads in [1, 4] {
            let mut search = factory();
            let (result, report) = system
                .tune_parallel_with_report(&source, &locus, search.as_mut(), 48, threads)
                .unwrap();
            assert!(result.best.is_some(), "{name}: no best found");
            assert!(report.proposed > 0, "{name}: nothing proposed");
            assert_eq!(
                report.accounted(),
                report.proposed,
                "{name} threads={threads}: memo {} + store {} + fresh {} + pruned {} \
                 != proposed {}",
                report.memo_hits(),
                report.store_hits(),
                report.evaluations(),
                report.pruned_illegal,
                report.proposed
            );
        }
    }
}

/// Tracing is observation-only: a run with an enabled tracer returns a
/// `TuneResult` bit-identical to the same run without one, and the trace
/// itself is deterministic across thread counts (workers merge by
/// evaluation slot, not by scheduling order).
#[test]
fn traced_runs_are_bit_identical_to_untraced_runs() {
    use locus::search::BanditTuner;
    use locus::trace::Tracer;

    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);
    let budget = 32;
    let seed = 0x7ace;

    let mut search = BanditTuner::new(seed);
    let (untraced, untraced_report) = system
        .tune_parallel_with_report(&source, &locus, &mut search, budget, 4)
        .unwrap();

    let mut traces = Vec::new();
    for threads in [1, 4, 8] {
        let tracer = Tracer::enabled();
        let mut search = BanditTuner::new(seed);
        let (traced, traced_report) = system
            .tune_parallel_with_tracer(&source, &locus, &mut search, budget, threads, &tracer)
            .unwrap();
        assert_eq!(
            fingerprint(&traced),
            fingerprint(&untraced),
            "threads={threads}: tracing perturbed the tuning outcome"
        );
        assert_eq!(traced_report.evaluations(), untraced_report.evaluations());
        assert_eq!(traced_report.proposed, untraced_report.proposed);
        assert_eq!(traced_report.accounted(), traced_report.proposed);

        let events = tracer.events();
        assert!(
            locus::report::check_trace(&events).is_ok(),
            "threads={threads}: incomplete trace"
        );
        // Scrub wall-clock fields; everything else must be scheduling
        // independent.
        let shape: Vec<(String, String, u64)> = events
            .iter()
            .map(|e| (e.cat.clone(), e.name.clone(), e.lane))
            .collect();
        traces.push((threads, shape));
    }
    let eval_points = |shape: &[(String, String, u64)]| {
        shape
            .iter()
            .filter(|(c, n, _)| c == "eval" && n == "point")
            .count()
    };
    assert!(
        eval_points(&traces[0].1) > 0,
        "trace recorded no evaluations"
    );
    for (threads, shape) in &traces[1..] {
        assert_eq!(
            eval_points(shape),
            eval_points(&traces[0].1),
            "threads={threads}: merged evaluation stream diverged"
        );
    }
}

/// Same observation-only guarantee for the store-backed entry point, and
/// the disabled tracer records nothing.
#[test]
fn store_backed_tracing_is_observation_only() {
    use locus::search::BanditTuner;
    use locus::store::TuningStore;
    use locus::trace::Tracer;

    let source = dgemm_program(8);
    let locus = fig7_small();
    let system = tiny_system(1);
    let budget = 24;
    let seed = 0xace5;

    let dir = std::env::temp_dir();
    let tag = format!("{}-trace-store", std::process::id());
    let path_a = dir.join(format!("locus-{tag}-a.jsonl"));
    let path_b = dir.join(format!("locus-{tag}-b.jsonl"));
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();

    let mut store = TuningStore::open(&path_a).unwrap();
    let mut search = BanditTuner::new(seed);
    let (plain, _) = system
        .tune_parallel_with_store(&source, &locus, &mut search, budget, 4, &mut store)
        .unwrap();
    drop(store);

    let tracer = Tracer::enabled();
    let mut store = TuningStore::open(&path_b).unwrap();
    let mut search = BanditTuner::new(seed);
    let (traced, _) = system
        .tune_parallel_with_store_and_tracer(
            &source,
            &locus,
            &mut search,
            budget,
            4,
            &mut store,
            &tracer,
        )
        .unwrap();
    drop(store);

    assert_eq!(
        fingerprint(&traced),
        fingerprint(&plain),
        "tracing perturbed the store-backed run"
    );
    assert!(
        tracer
            .events()
            .iter()
            .any(|e| e.cat == "phase" && e.name == "store-append"),
        "store-backed trace must record the append phase"
    );

    // And the stores stayed identical, modulo the `wall_ms` field, which
    // records real (non-simulated) wall-clock time and differs between
    // any two runs, traced or not.
    let scrub = |text: String| -> String {
        text.lines()
            .map(|line| match line.split_once("\"wall_ms\":") {
                Some((head, tail)) => {
                    let rest = tail.find([',', '}']).map_or("", |i| &tail[i..]);
                    format!("{head}\"wall_ms\":0{rest}")
                }
                None => line.to_string(),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let a = scrub(std::fs::read_to_string(&path_a).unwrap());
    let b = scrub(std::fs::read_to_string(&path_b).unwrap());
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
    assert_eq!(a, b, "tracing changed what was persisted");

    // A disabled tracer stays empty no matter what ran through it.
    let disabled = Tracer::disabled();
    let mut search = BanditTuner::new(seed);
    system
        .tune_parallel_with_tracer(&source, &locus, &mut search, budget, 2, &disabled)
        .unwrap();
    assert!(disabled.events().is_empty());
}
