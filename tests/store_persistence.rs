//! The persistent tuning store's cross-session contract, round-tripped
//! through the serialized store file:
//!
//! * a store written by one session, dropped, and reopened by a fresh
//!   process-equivalent session warm-starts to the identical best point
//!   with **zero** re-measurements;
//! * editing one region between sessions invalidates exactly that
//!   region's store entries — sibling regions' entries stay live and
//!   keep answering proposals from disk — mirroring what
//!   [`check_coherence`] reports about the edit.
//!
//! [`check_coherence`]: locus::system::check_coherence

use std::path::PathBuf;

use locus::machine::{Machine, MachineConfig};
use locus::search::ExhaustiveSearch;
use locus::store::TuningStore;
use locus::system::{check_coherence, region_hashes, LocusSystem};

fn tiny_system() -> LocusSystem {
    LocusSystem::new(Machine::new(MachineConfig::scaled_tiny().with_cores(1)))
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "locus-store-persistence-{}-{tag}.jsonl",
        std::process::id()
    ))
}

/// Two independently tagged regions in one translation unit. The
/// `axpy` scale constant is the part the "edit" changes.
fn two_region_source(axpy_scale: &str) -> locus::srcir::ast::Program {
    locus::srcir::parse_program(&format!(
        r#"
        double C[16][16];
        double A[16][16];
        double B[16][16];
        double X[64];
        void kernel() {{
            #pragma @Locus loop=mm
            for (int i = 0; i < 16; i++)
                for (int j = 0; j < 16; j++)
                    for (int k = 0; k < 16; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            #pragma @Locus loop=axpy
            for (int i = 0; i < 64; i++)
                X[i] = X[i] * {axpy_scale};
        }}
        "#
    ))
    .expect("two-region source parses")
}

fn mm_program() -> locus::lang::LocusProgram {
    locus::lang::parse(
        r#"CodeReg mm {
            t = poweroftwo(2..8);
            Pips.Tiling(loop="0", factor=[t, t, t]);
        }"#,
    )
    .unwrap()
}

fn axpy_program() -> locus::lang::LocusProgram {
    locus::lang::parse(
        r#"CodeReg axpy {
            u = poweroftwo(2..8);
            RoseLocus.Unroll(loop=innermost, factor=u);
        }"#,
    )
    .unwrap()
}

/// Write, drop, reopen: the warm session answers every proposal from
/// disk and lands on the bit-identical best point. This is the store
/// round-trip the CI gate names explicitly.
#[test]
fn reopened_store_warm_starts_to_identical_best() {
    let source = two_region_source("1.5");
    let locus = mm_program();
    let system = tiny_system();
    let path = tmp_path("reopen");
    std::fs::remove_file(&path).ok();

    let (cold, cold_report) = {
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = ExhaustiveSearch::default();
        system
            .tune_parallel_with_store(&source, &locus, &mut search, 16, 2, &mut store)
            .unwrap()
        // The store is dropped here; everything lives in the file now.
    };
    assert!(cold_report.evaluations() > 0, "cold session measures");
    assert_eq!(cold_report.store_hits(), 0);
    assert_eq!(cold_report.appended, cold_report.evaluations());

    let (warm, warm_report) = {
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = ExhaustiveSearch::default();
        system
            .tune_parallel_with_store(&source, &locus, &mut search, 16, 2, &mut store)
            .unwrap()
    };
    assert_eq!(
        warm_report.evaluations(),
        0,
        "warm session re-measures nothing"
    );
    assert_eq!(
        warm_report.store_hits(),
        cold_report.evaluations() + cold_report.memo_hits()
    );
    assert_eq!(warm_report.rehydrated, cold_report.appended);

    let (cold_point, _, cold_m) = cold.best.as_ref().expect("cold best");
    let (warm_point, _, warm_m) = warm.best.as_ref().expect("warm best");
    assert_eq!(cold_point.canonical_key(), warm_point.canonical_key());
    assert_eq!(cold_m.time_ms.to_bits(), warm_m.time_ms.to_bits());
    std::fs::remove_file(&path).ok();
}

/// A region edited between sessions invalidates exactly its own store
/// entries; the sibling region's entries stay live, all through one
/// serialized store file. `check_coherence` flags the same edit.
#[test]
fn edited_region_invalidates_only_its_own_entries() {
    let original = two_region_source("1.5");
    let edited = two_region_source("2.5");
    let system = tiny_system();
    let path = tmp_path("coherence");
    std::fs::remove_file(&path).ok();

    // The coherence check agrees on what changed: `axpy` drifted, `mm`
    // did not.
    let stored_hashes = region_hashes(&original);
    let warnings = check_coherence(&edited, &stored_hashes);
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert!(warnings[0].contains("axpy"), "{warnings:?}");

    // Cold sessions populate the store for both regions.
    let (mm_cold, axpy_cold) = {
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = ExhaustiveSearch::default();
        let (_, mm_cold) = system
            .tune_parallel_with_store(&original, &mm_program(), &mut search, 16, 2, &mut store)
            .unwrap();
        let mut search = ExhaustiveSearch::default();
        let (_, axpy_cold) = system
            .tune_parallel_with_store(&original, &axpy_program(), &mut search, 16, 2, &mut store)
            .unwrap();
        (mm_cold, axpy_cold)
    };
    assert!(mm_cold.evaluations() > 0);
    assert!(axpy_cold.evaluations() > 0);

    // Session over the *unchanged* sibling after the edit: its entries
    // are live, so nothing is re-measured; the edited region's stale
    // records are the ones dropped by the coherence pass.
    let mm_warm = {
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = ExhaustiveSearch::default();
        let (_, report) = system
            .tune_parallel_with_store(&edited, &mm_program(), &mut search, 16, 2, &mut store)
            .unwrap();
        report
    };
    assert_eq!(mm_warm.evaluations(), 0, "sibling region replays from disk");
    assert_eq!(mm_warm.rehydrated, mm_cold.appended);
    assert_eq!(
        mm_warm.invalidated, axpy_cold.appended,
        "exactly the edited region's records are invalidated"
    );

    // Session over the *edited* region: its prior entries must not be
    // replayed — everything is re-measured and re-persisted.
    let axpy_warm = {
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = ExhaustiveSearch::default();
        let (_, report) = system
            .tune_parallel_with_store(&edited, &axpy_program(), &mut search, 16, 2, &mut store)
            .unwrap();
        report
    };
    assert_eq!(
        axpy_warm.store_hits(),
        0,
        "stale entries must never be replayed"
    );
    assert_eq!(axpy_warm.rehydrated, 0);
    assert!(axpy_warm.evaluations() > 0);
    assert_eq!(axpy_warm.invalidated, axpy_cold.appended);
    std::fs::remove_file(&path).ok();
}

/// Compaction round-trip through real tuning sessions: a store that
/// accumulated superseded records (an edited region's invalidated
/// entries) compacts to a smaller file whose index state is identical —
/// and a warm session over the compacted store still re-measures
/// nothing.
#[test]
fn compaction_round_trips_a_real_session_store() {
    let original = two_region_source("1.5");
    let edited = two_region_source("2.5");
    let system = tiny_system();
    let path = tmp_path("compact");
    std::fs::remove_file(&path).ok();

    // Populate both regions, then invalidate `axpy`'s records by
    // tuning the edited source: the log now carries dead weight, and
    // the live handle's index has already dropped the stale group.
    // Compacting through that handle rewrites only live state.
    let (stats, keys_before, len_before) = {
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = ExhaustiveSearch::default();
        system
            .tune_parallel_with_store(&original, &mm_program(), &mut search, 16, 2, &mut store)
            .unwrap();
        let mut search = ExhaustiveSearch::default();
        system
            .tune_parallel_with_store(&original, &axpy_program(), &mut search, 16, 2, &mut store)
            .unwrap();
        let mut search = ExhaustiveSearch::default();
        system
            .tune_parallel_with_store(&edited, &axpy_program(), &mut search, 16, 2, &mut store)
            .unwrap();
        let stats = store.compact().unwrap();
        let keys: Vec<_> = store.keys().into_iter().cloned().collect();
        let len = store.len();
        (stats, keys, len)
    };
    assert!(
        stats.bytes_after < stats.bytes_before,
        "compaction must shrink a store with invalidated records: {stats:?}"
    );

    // Reopened post-compaction store: identical index state.
    let mut store = TuningStore::open(&path).unwrap();
    let keys_after: Vec<_> = store.keys().into_iter().cloned().collect();
    assert_eq!(keys_after, keys_before);
    assert_eq!(store.len(), len_before);

    // And it still warms a session end to end.
    let mut search = ExhaustiveSearch::default();
    let (_, report) = system
        .tune_parallel_with_store(&edited, &mm_program(), &mut search, 16, 2, &mut store)
        .unwrap();
    assert_eq!(report.evaluations(), 0, "compacted store still replays");
    drop(store);
    std::fs::remove_file(&path).ok();
}

/// The advisory writer lock: a second concurrent writer open is refused
/// with `WouldBlock`, a read-only open coexists with the writer, and
/// the lock releases on drop.
#[test]
fn concurrent_store_opens_are_arbitrated_by_the_writer_lock() {
    let path = tmp_path("lock");
    std::fs::remove_file(&path).ok();

    let writer = TuningStore::open(&path).unwrap();
    let refused = TuningStore::open(&path).unwrap_err();
    assert_eq!(refused.kind(), std::io::ErrorKind::WouldBlock);
    assert!(
        refused.to_string().contains("locked by live process"),
        "{refused}"
    );

    // Readers never take the lock.
    let reader = TuningStore::open_read_only(&path).unwrap();
    assert!(reader.is_empty());
    drop(reader);

    drop(writer);
    let relocked = TuningStore::open(&path).unwrap();
    drop(relocked);
    std::fs::remove_file(&path).ok();
}

/// The daemon's sharded store and the single-file store answer the same
/// tuning session identically: a cold sharded session lands on the
/// bit-identical best point, and its own warm replay re-measures
/// nothing.
#[test]
fn sharded_store_sessions_match_single_file_sessions() {
    use locus::store::ShardedStore;
    use locus::trace::Tracer;

    let source = two_region_source("1.5");
    let locus = mm_program();
    let system = tiny_system();
    let path = tmp_path("sharded-single");
    let dir = std::env::temp_dir().join(format!(
        "locus-store-persistence-{}-sharded.d",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&dir).ok();

    let (single, _) = {
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = ExhaustiveSearch::default();
        system
            .tune_parallel_with_store(&source, &locus, &mut search, 16, 2, &mut store)
            .unwrap()
    };

    let sharded_store = ShardedStore::open(&dir, 4).unwrap();
    let mut search = ExhaustiveSearch::default();
    let (sharded, cold_report) = system
        .tune_parallel_with_sharded_store(
            &source,
            &locus,
            &mut search,
            16,
            2,
            &sharded_store,
            &Tracer::disabled(),
        )
        .unwrap();
    assert!(cold_report.evaluations() > 0);

    let (sp, _, sm) = single.best.as_ref().expect("single best");
    let (hp, _, hm) = sharded.best.as_ref().expect("sharded best");
    assert_eq!(sp.canonical_key(), hp.canonical_key());
    assert_eq!(sm.time_ms.to_bits(), hm.time_ms.to_bits());

    // Warm replay against the sharded store re-measures nothing.
    let mut search = ExhaustiveSearch::default();
    let (_, warm_report) = system
        .tune_parallel_with_sharded_store(
            &source,
            &locus,
            &mut search,
            16,
            2,
            &sharded_store,
            &Tracer::disabled(),
        )
        .unwrap();
    assert_eq!(warm_report.evaluations(), 0);
    assert_eq!(warm_report.rehydrated, cold_report.appended);

    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&dir).ok();
}
