//! Robustness: the front-ends must never panic on malformed input, the
//! interpreters must fail closed (errors, not UB), and less-traveled
//! constructs (float search values, log-scaled ranges, nested parallel
//! pragmas) behave sensibly.
//!
//! Fuzz loops are hand-rolled over the in-tree [`SplitMix64`] generator
//! (offline-only build; see README "Testing").

use locus::space::SplitMix64;

// ---- parsers never panic ----------------------------------------------------

/// A random string over a broad printable alphabet (plus newlines), the
/// deterministic stand-in for arbitrary fuzz input.
fn random_garbage(rng: &mut SplitMix64, max_len: usize) -> String {
    const ALPHABET: &[u8] = b"abcxyzXYZ0123456789 \t\n(){}[];,.+-*/=<>!&|%#@\"'_\\~^?:$";
    let len = rng.below_usize(max_len + 1);
    (0..len)
        .map(|_| ALPHABET[rng.below_usize(ALPHABET.len())] as char)
        .collect()
}

fn random_soup(rng: &mut SplitMix64, lexemes: &[&str], max_len: usize) -> String {
    let len = rng.below_usize(max_len + 1);
    (0..len)
        .map(|_| lexemes[rng.below_usize(lexemes.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Arbitrary bytes: the mini-C parser returns Ok or Err, never panics.
#[test]
fn minic_parser_is_panic_free() {
    let mut rng = SplitMix64::new(0xf022);
    for _ in 0..256 {
        let _ = locus::srcir::parse_program(&random_garbage(&mut rng, 120));
    }
}

/// Arbitrary token soup assembled from the language's own lexemes.
#[test]
fn minic_parser_survives_token_soup() {
    const LEXEMES: [&str; 24] = [
        "for",
        "if",
        "else",
        "while",
        "int",
        "double",
        "return",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        ",",
        "+",
        "*",
        "=",
        "==",
        "<",
        "x",
        "42",
        "1.5",
        "#pragma @Locus loop=r\n",
    ];
    let mut rng = SplitMix64::new(0x50a1);
    for _ in 0..256 {
        let _ = locus::srcir::parse_program(&random_soup(&mut rng, &LEXEMES, 60));
    }
}

/// The Locus parser is equally panic-free.
#[test]
fn locus_parser_is_panic_free() {
    let mut rng = SplitMix64::new(0xf0cb);
    for _ in 0..256 {
        let _ = locus::lang::parse(&random_garbage(&mut rng, 120));
    }
}

#[test]
fn locus_parser_survives_token_soup() {
    const LEXEMES: [&str; 27] = [
        "CodeReg",
        "OptSeq",
        "Search",
        "OR",
        "if",
        "elif",
        "else",
        "def",
        "poweroftwo",
        "integer",
        "enum",
        "permutation",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        ",",
        "..",
        ".",
        "=",
        "*",
        "x",
        "7",
        "\"s\"",
    ];
    let mut rng = SplitMix64::new(0x50a2);
    for _ in 0..256 {
        let _ = locus::lang::parse(&random_soup(&mut rng, &LEXEMES, 60));
    }
}

/// Hierarchical indices round-trip through their string form.
#[test]
fn hier_index_round_trips() {
    let mut rng = SplitMix64::new(0x41d3);
    for _ in 0..256 {
        let components: Vec<usize> = (0..1 + rng.below_usize(5))
            .map(|_| rng.below_usize(30))
            .collect();
        let idx = locus::srcir::HierIndex::new(components.clone());
        let parsed: locus::srcir::HierIndex = idx.to_string().parse().unwrap();
        assert_eq!(idx, parsed);
    }
}

/// Region hashing is stable across print/parse round trips.
#[test]
fn region_hash_is_print_stable() {
    for n in 1usize..40 {
        let src = format!(
            "double A[64];\nvoid kernel() {{\n#pragma @Locus loop=r\nfor (int i = 0; i < {n}; i++) A[i] = 1.0;\n}}"
        );
        let p1 = locus::srcir::parse_program(&src).unwrap();
        let p2 = locus::srcir::parse_program(&locus::srcir::print_program(&p1)).unwrap();
        let h = |p: &locus::srcir::ast::Program| {
            let regions = locus::srcir::region::find_regions(p);
            let stmt = locus::srcir::region::extract_region(p, &regions[0])
                .unwrap()
                .stmt;
            locus::srcir::hash::hash_region(&stmt)
        };
        assert_eq!(h(&p1), h(&p2), "n = {n}");
    }
}

// ---- less-traveled constructs -----------------------------------------------

#[test]
fn float_and_log_constructs_flow_through_the_space() {
    let program = locus::lang::parse(
        r#"CodeReg r {
            alpha = float(1..4);
            beta = logfloat(1..100);
            gamma = loginteger(1..1000);
            A.Use(a=alpha, b=beta, c=gamma);
        }"#,
    )
    .unwrap();
    let info = locus::lang::extract_space(&program).unwrap();
    assert_eq!(info.space.len(), 3);
    use locus::space::ParamKind;
    assert!(matches!(
        info.space.param("alpha").unwrap().kind,
        ParamKind::Float { .. }
    ));
    assert!(matches!(
        info.space.param("beta").unwrap().kind,
        ParamKind::LogFloat { .. }
    ));
    assert!(matches!(
        info.space.param("gamma").unwrap().kind,
        ParamKind::LogInteger { .. }
    ));

    // Random points decode through the interpreter.
    let mut rng = SplitMix64::new(1);
    struct Capture(Vec<String>);
    impl locus::lang::TransformHost for Capture {
        fn call(
            &mut self,
            _m: &str,
            _f: &str,
            args: &[(Option<String>, locus::lang::Value)],
        ) -> Result<locus::lang::Value, locus::lang::HostError> {
            self.0.extend(args.iter().map(|(_, v)| v.to_string()));
            Ok(locus::lang::Value::None)
        }
    }
    for _ in 0..20 {
        let point = info.space.random_point(&mut rng);
        let mut host = Capture(Vec::new());
        let mut interp = locus::lang::Interp::new(&program, &mut host, &point, &info.ids);
        interp.run_codereg("r").unwrap();
        assert_eq!(host.0.len(), 3);
    }
}

#[test]
fn nested_parallel_pragmas_are_serialized() {
    // Only the outer `omp parallel for` parallelizes; the inner pragma is
    // ignored (common OpenMP runtime default), so timing equals the
    // outer-only version.
    let nested = locus::srcir::parse_program(
        r#"double A[64][64];
        void kernel() {
            #pragma omp parallel for
            for (int i = 0; i < 64; i++) {
                #pragma omp parallel for
                for (int j = 0; j < 64; j++)
                    A[i][j] = A[i][j] * 2.0;
            }
        }"#,
    )
    .unwrap();
    let outer_only = locus::srcir::parse_program(
        r#"double A[64][64];
        void kernel() {
            #pragma omp parallel for
            for (int i = 0; i < 64; i++) {
                for (int j = 0; j < 64; j++)
                    A[i][j] = A[i][j] * 2.0;
            }
        }"#,
    )
    .unwrap();
    let machine =
        locus::machine::Machine::new(locus::machine::MachineConfig::scaled_small().with_cores(4));
    let a = machine.run(&nested, "kernel").unwrap();
    let b = machine.run(&outer_only, "kernel").unwrap();
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn scaled_tiny_machine_is_consistent() {
    let program = locus::corpus::stencil_program(locus::corpus::Stencil::Heat1d, 32, 4);
    let small = locus::machine::Machine::new(locus::machine::MachineConfig::scaled_small());
    let tiny = locus::machine::Machine::new(locus::machine::MachineConfig::scaled_tiny());
    let a = small.run(&program, "kernel").unwrap();
    let b = tiny.run(&program, "kernel").unwrap();
    assert_eq!(a.checksum, b.checksum, "cache size never changes results");
    assert!(b.cycles >= a.cycles, "smaller caches cannot be faster");
}

#[test]
fn runtime_errors_fail_closed_through_the_system() {
    // A variant that indexes out of bounds is a failed variant, not a
    // crash: the search continues and reports the valid ones.
    let source = locus::srcir::parse_program(
        r#"double A[32];
        void kernel() {
            #pragma @Locus loop=r
            for (int i = 0; i < 32; i++)
                A[i] = 1.0;
        }"#,
    )
    .unwrap();
    // Unrolling by 7 generates a remainder loop; forcing an interchange
    // on a depth-1 nest errors. Both failure kinds must surface cleanly.
    let locus_program = locus::lang::parse(
        r#"CodeReg r {
            {
                RoseLocus.Interchange(order=[1, 0]);
            } OR {
                RoseLocus.Unroll(loop="0", factor=7);
            }
        }"#,
    )
    .unwrap();
    let system = locus::system::LocusSystem::new(locus::machine::Machine::new(
        locus::machine::MachineConfig::scaled_small(),
    ));
    let mut search = locus::search::ExhaustiveSearch::default();
    let result = system
        .tune(&source, &locus_program, &mut search, 4)
        .unwrap();
    // Alternative 0 fails (interchange on depth-1), alternative 1 works.
    assert_eq!(result.outcome.evaluations, 2);
    assert!(result.best.is_some());
}
