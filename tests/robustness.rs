//! Robustness: the front-ends must never panic on malformed input, the
//! interpreters must fail closed (errors, not UB), and less-traveled
//! constructs (float search values, log-scaled ranges, nested parallel
//! pragmas) behave sensibly.

use proptest::prelude::*;

// ---- parsers never panic ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the mini-C parser returns Ok or Err, never
    /// panics.
    #[test]
    fn minic_parser_is_panic_free(src in "\\PC*") {
        let _ = locus::srcir::parse_program(&src);
    }

    /// Arbitrary token soup assembled from the language's own lexemes.
    #[test]
    fn minic_parser_survives_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("for"), Just("if"), Just("else"), Just("while"),
                Just("int"), Just("double"), Just("return"), Just("("),
                Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
                Just(";"), Just(","), Just("+"), Just("*"), Just("="),
                Just("=="), Just("<"), Just("x"), Just("42"), Just("1.5"),
                Just("#pragma @Locus loop=r\n"),
            ],
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        let _ = locus::srcir::parse_program(&src);
    }

    /// The Locus parser is equally panic-free.
    #[test]
    fn locus_parser_is_panic_free(src in "\\PC*") {
        let _ = locus::lang::parse(&src);
    }

    #[test]
    fn locus_parser_survives_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("CodeReg"), Just("OptSeq"), Just("Search"), Just("OR"),
                Just("if"), Just("elif"), Just("else"), Just("def"),
                Just("poweroftwo"), Just("integer"), Just("enum"),
                Just("permutation"), Just("("), Just(")"), Just("{"),
                Just("}"), Just("["), Just("]"), Just(";"), Just(","),
                Just(".."), Just("."), Just("="), Just("*"), Just("x"),
                Just("7"), Just("\"s\""),
            ],
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        let _ = locus::lang::parse(&src);
    }

    /// Hierarchical indices round-trip through their string form.
    #[test]
    fn hier_index_round_trips(components in prop::collection::vec(0usize..30, 1..6)) {
        let idx = locus::srcir::HierIndex::new(components.clone());
        let parsed: locus::srcir::HierIndex = idx.to_string().parse().unwrap();
        prop_assert_eq!(idx, parsed);
    }

    /// Region hashing is stable across print/parse round trips.
    #[test]
    fn region_hash_is_print_stable(n in 1usize..40) {
        let src = format!(
            "double A[64];\nvoid kernel() {{\n#pragma @Locus loop=r\nfor (int i = 0; i < {n}; i++) A[i] = 1.0;\n}}"
        );
        let p1 = locus::srcir::parse_program(&src).unwrap();
        let p2 = locus::srcir::parse_program(&locus::srcir::print_program(&p1)).unwrap();
        let h = |p: &locus::srcir::ast::Program| {
            let regions = locus::srcir::region::find_regions(p);
            let stmt = locus::srcir::region::extract_region(p, &regions[0]).unwrap().stmt;
            locus::srcir::hash::hash_region(&stmt)
        };
        prop_assert_eq!(h(&p1), h(&p2));
    }
}

// ---- less-traveled constructs -----------------------------------------------

#[test]
fn float_and_log_constructs_flow_through_the_space() {
    let program = locus::lang::parse(
        r#"CodeReg r {
            alpha = float(1..4);
            beta = logfloat(1..100);
            gamma = loginteger(1..1000);
            A.Use(a=alpha, b=beta, c=gamma);
        }"#,
    )
    .unwrap();
    let info = locus::lang::extract_space(&program).unwrap();
    assert_eq!(info.space.len(), 3);
    use locus::space::ParamKind;
    assert!(matches!(
        info.space.param("alpha").unwrap().kind,
        ParamKind::Float { .. }
    ));
    assert!(matches!(
        info.space.param("beta").unwrap().kind,
        ParamKind::LogFloat { .. }
    ));
    assert!(matches!(
        info.space.param("gamma").unwrap().kind,
        ParamKind::LogInteger { .. }
    ));

    // Random points decode through the interpreter.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    struct Capture(Vec<String>);
    impl locus::lang::TransformHost for Capture {
        fn call(
            &mut self,
            _m: &str,
            _f: &str,
            args: &[(Option<String>, locus::lang::Value)],
        ) -> Result<locus::lang::Value, locus::lang::HostError> {
            self.0
                .extend(args.iter().map(|(_, v)| v.to_string()));
            Ok(locus::lang::Value::None)
        }
    }
    for _ in 0..20 {
        let point = info.space.random_point(&mut rng);
        let mut host = Capture(Vec::new());
        let mut interp = locus::lang::Interp::new(&program, &mut host, &point, &info.ids);
        interp.run_codereg("r").unwrap();
        assert_eq!(host.0.len(), 3);
    }
}

#[test]
fn nested_parallel_pragmas_are_serialized() {
    // Only the outer `omp parallel for` parallelizes; the inner pragma is
    // ignored (common OpenMP runtime default), so timing equals the
    // outer-only version.
    let nested = locus::srcir::parse_program(
        r#"double A[64][64];
        void kernel() {
            #pragma omp parallel for
            for (int i = 0; i < 64; i++) {
                #pragma omp parallel for
                for (int j = 0; j < 64; j++)
                    A[i][j] = A[i][j] * 2.0;
            }
        }"#,
    )
    .unwrap();
    let outer_only = locus::srcir::parse_program(
        r#"double A[64][64];
        void kernel() {
            #pragma omp parallel for
            for (int i = 0; i < 64; i++) {
                for (int j = 0; j < 64; j++)
                    A[i][j] = A[i][j] * 2.0;
            }
        }"#,
    )
    .unwrap();
    let machine = locus::machine::Machine::new(
        locus::machine::MachineConfig::scaled_small().with_cores(4),
    );
    let a = machine.run(&nested, "kernel").unwrap();
    let b = machine.run(&outer_only, "kernel").unwrap();
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn scaled_tiny_machine_is_consistent() {
    let program = locus::corpus::stencil_program(locus::corpus::Stencil::Heat1d, 32, 4);
    let small = locus::machine::Machine::new(locus::machine::MachineConfig::scaled_small());
    let tiny = locus::machine::Machine::new(locus::machine::MachineConfig::scaled_tiny());
    let a = small.run(&program, "kernel").unwrap();
    let b = tiny.run(&program, "kernel").unwrap();
    assert_eq!(a.checksum, b.checksum, "cache size never changes results");
    assert!(b.cycles >= a.cycles, "smaller caches cannot be faster");
}

#[test]
fn runtime_errors_fail_closed_through_the_system() {
    // A variant that indexes out of bounds is a failed variant, not a
    // crash: the search continues and reports the valid ones.
    let source = locus::srcir::parse_program(
        r#"double A[32];
        void kernel() {
            #pragma @Locus loop=r
            for (int i = 0; i < 32; i++)
                A[i] = 1.0;
        }"#,
    )
    .unwrap();
    // Unrolling by 7 generates a remainder loop; forcing an interchange
    // on a depth-1 nest errors. Both failure kinds must surface cleanly.
    let locus_program = locus::lang::parse(
        r#"CodeReg r {
            {
                RoseLocus.Interchange(order=[1, 0]);
            } OR {
                RoseLocus.Unroll(loop="0", factor=7);
            }
        }"#,
    )
    .unwrap();
    let system = locus::system::LocusSystem::new(locus::machine::Machine::new(
        locus::machine::MachineConfig::scaled_small(),
    ));
    let mut search = locus::search::ExhaustiveSearch;
    let result = system.tune(&source, &locus_program, &mut search, 4).unwrap();
    // Alternative 0 fails (interchange on depth-1), alternative 1 works.
    assert_eq!(result.outcome.evaluations, 2);
    assert!(result.best.is_some());
}
