//! Acceptance tests for verifier-pruned search: a space containing
//! statically racy points never simulates them.
//!
//! The Locus program below parallelizes either the outer `i` loop of
//! DGEMM (legal: every iteration writes a distinct row of `C`) or the
//! inner `k` loop (a data race: all `k` iterations of one `(i, j)` pair
//! update the same `C[i][j]`). The race detector of `locus-verify` must
//! prune the `k` choice before the simulated machine ever runs it, the
//! search must still converge on the legal choice, and the outcome must
//! be bit-identical to a sequential run — pruning changes *cost*, never
//! the result.

use locus::corpus::dgemm_program;
use locus::machine::{Machine, MachineConfig};
use locus::search::{ExhaustiveSearch, SearchModule};
use locus::store::TuningStore;
use locus::system::LocusSystem;

fn tiny_system() -> LocusSystem {
    LocusSystem::new(Machine::new(MachineConfig::scaled_tiny().with_cores(2)))
}

/// Parallelize the outer loop ("0", legal) or the k loop ("0.0.0",
/// racy: every iteration accumulates into the same `C[i][j]`).
fn racy_choice_program() -> locus::lang::LocusProgram {
    locus::lang::parse(
        r#"CodeReg matmul {
            target = enum("0", "0.0.0");
            Pragma.OMPFor(loop=target);
        }"#,
    )
    .expect("program parses")
}

#[test]
fn racy_points_are_pruned_before_simulation() {
    let source = dgemm_program(8);
    let locus = racy_choice_program();
    let system = tiny_system();

    let mut search = ExhaustiveSearch::default();
    let (result, report) = system
        .tune_parallel_with_report(&source, &locus, &mut search, 8, 2)
        .unwrap();

    assert_eq!(result.space_size, 2, "two parallelization choices");
    assert_eq!(report.pruned_illegal, 1, "the k-loop choice is refused");
    assert_eq!(
        report.evaluations(),
        1,
        "only the legal choice reaches the machine"
    );
    assert_eq!(result.outcome.invalid, 1, "the pruned point reads invalid");
    let (best, _, m) = result.best.as_ref().expect("legal choice wins");
    assert_eq!(best.canonical_key(), "target=c0;", "outer loop chosen");
    assert_eq!(m.checksum, result.baseline.checksum);
}

#[test]
fn pruning_preserves_the_sequential_result_bit_for_bit() {
    let source = dgemm_program(8);
    let locus = racy_choice_program();
    let system = tiny_system();

    let mut search = ExhaustiveSearch::default();
    let sequential = system.tune(&source, &locus, &mut search, 8).unwrap();

    for threads in [1, 2, 8] {
        let mut search = ExhaustiveSearch::default();
        let (parallel, report) = system
            .tune_parallel_with_report(&source, &locus, &mut search, 8, threads)
            .unwrap();
        assert!(report.pruned_illegal > 0, "threads={threads}: prune fired");
        assert_eq!(
            parallel.best.as_ref().map(|(p, _, _)| p.canonical_key()),
            sequential.best.as_ref().map(|(p, _, _)| p.canonical_key()),
            "threads={threads}: best point diverged"
        );
        assert_eq!(
            parallel.outcome.best.as_ref().map(|(_, v)| v.to_bits()),
            sequential.outcome.best.as_ref().map(|(_, v)| v.to_bits()),
            "threads={threads}: best objective diverged"
        );
        assert_eq!(parallel.outcome.evaluations, sequential.outcome.evaluations);
        assert_eq!(parallel.outcome.invalid, sequential.outcome.invalid);
    }
}

#[test]
fn prunes_replay_from_the_store_without_reanalysis() {
    let source = dgemm_program(8);
    let locus = racy_choice_program();
    let system = tiny_system();
    let path = std::env::temp_dir().join(format!(
        "locus-verify-prune-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_file(&path).ok();

    let (cold, cold_report) = {
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = ExhaustiveSearch::default();
        system
            .tune_parallel_with_store(&source, &locus, &mut search, 8, 2, &mut store)
            .unwrap()
    };
    assert_eq!(cold_report.pruned_illegal, 1);
    assert_eq!(
        cold_report.appended, 2,
        "one evaluation and one prune persisted"
    );

    let (warm, warm_report) = {
        let mut store = TuningStore::open(&path).unwrap();
        let mut search = ExhaustiveSearch::default();
        system
            .tune_parallel_with_store(&source, &locus, &mut search, 8, 2, &mut store)
            .unwrap()
    };
    assert_eq!(warm_report.rehydrated, cold_report.appended);
    assert_eq!(warm_report.evaluations(), 0, "nothing is re-measured");
    assert_eq!(warm_report.pruned_illegal, 0, "nothing is re-analyzed");
    assert_eq!(
        warm_report.store_hits(),
        2,
        "both points answered from disk"
    );

    let (cold_point, _, cold_m) = cold.best.as_ref().expect("cold best");
    let (warm_point, _, warm_m) = warm.best.as_ref().expect("warm best");
    assert_eq!(cold_point.canonical_key(), warm_point.canonical_key());
    assert_eq!(cold_m.time_ms.to_bits(), warm_m.time_ms.to_bits());
    std::fs::remove_file(&path).ok();
}

/// The pruning-aware modules consult the legality oracle *at proposal
/// time*: with MCTS or the trace sampler driving, the racy `k`-loop
/// choice never surfaces as a proposal at all — `pruned_illegal` stays
/// zero because nothing illegal ever reaches the driver, and the racy
/// subtree is never simulated.
#[test]
fn oracle_aware_modules_prune_before_proposing() {
    let source = dgemm_program(8);
    let locus = racy_choice_program();
    let system = tiny_system();

    type MakeSearch = Box<dyn Fn() -> Box<dyn SearchModule>>;
    let make: Vec<(&str, MakeSearch)> = vec![
        (
            "mcts",
            Box::new(|| Box::new(locus::search::MctsTuner::new(3))),
        ),
        (
            "sampler",
            Box::new(|| Box::new(locus::search::TraceSampler::new(3))),
        ),
    ];
    for (name, factory) in &make {
        let mut search = factory();
        let (result, report) = system
            .tune_parallel_with_report(&source, &locus, search.as_mut(), 8, 2)
            .unwrap();
        assert_eq!(
            report.pruned_illegal, 0,
            "{name}: an illegal point slipped past the proposal-time oracle"
        );
        assert_eq!(
            report.evaluations(),
            1,
            "{name}: only the legal choice runs"
        );
        let (best, _, _) = result.best.as_ref().expect("legal choice wins");
        assert_eq!(
            best.canonical_key(),
            "target=c0;",
            "{name}: outer loop chosen"
        );
    }
}

/// Regression: a portfolio member whose whole round comes back refused
/// is demoted below participation — before the fix, the flat `0.1`
/// participation floor kept a 100%-pruned member's credit at 0.8, so it
/// kept winning budget it could only waste.
#[test]
fn portfolio_demotes_members_whose_rounds_are_fully_pruned() {
    use locus::search::{Objective, PortfolioSearch};
    use locus::space::{ParamDef, ParamKind, Point};

    let space: locus::space::Space = vec![
        ParamDef::new("tile", ParamKind::PowerOfTwo { min: 2, max: 64 }),
        ParamDef::new("sched", ParamKind::Enum(vec!["a".into(), "b".into()])),
    ]
    .into_iter()
    .collect();

    let mut portfolio = PortfolioSearch::new(5);
    let mut f = |_: &Point| Objective::Invalid;
    let out = portfolio.search(&space, 40, &mut f);
    assert_eq!(out.evaluations, 0, "nothing legal to evaluate");
    assert!(out.best.is_none());
    for (i, credit) in portfolio.credits().iter().enumerate() {
        assert!(
            *credit < 0.7,
            "member {i}: credit {credit} kept the participation floor \
             despite a 100%-refused round"
        );
    }
}

#[test]
fn loop_carried_recurrence_never_ships() {
    // `A[i] = A[i-1] + A[i]` carries a dependence at distance 1: no
    // parallelization of the space exists, so tuning must fall back to
    // the baseline rather than measure (or worse, ship) a racy variant.
    let source = locus::srcir::parse_program(
        r#"
        double A[64];
        void kernel() {
            int i;
            #pragma @Locus loop=scan
            for (i = 1; i < 64; i++)
                A[i] = A[i - 1] + A[i];
        }
        "#,
    )
    .unwrap();
    let locus = locus::lang::parse(
        r#"CodeReg scan {
            Pragma.OMPFor(loop="0");
        }"#,
    )
    .unwrap();
    let system = tiny_system();
    let mut search = ExhaustiveSearch::default();
    let (result, report) = system
        .tune_parallel_with_report(&source, &locus, &mut search, 4, 2)
        .unwrap();
    assert_eq!(report.pruned_illegal, 1);
    assert_eq!(report.evaluations(), 0, "nothing was ever simulated");
    assert!(result.best.is_none(), "the baseline ships unchanged");
    assert_eq!(result.speedup(), 1.0);
}
