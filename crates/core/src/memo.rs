//! The shared memo cache of the parallel evaluation engine.
//!
//! The paper credits OpenTuner's habit of "keeping track of the
//! variants already assessed" (Sec. IV-B) for finding the best variant
//! in fewer measurements. The parallel engine generalizes that idea
//! with a *two-level* cache shared by every worker:
//!
//! 1. **Point level** — keyed by [`Point::canonical_key`]. A search
//!    module re-proposing an identical assignment never re-measures it.
//! 2. **Variant level** — keyed by an FNV-1a digest of the *direct*
//!    Locus program the point denotes ([`super::system::LocusSystem::direct_program`]).
//!    Two different points that specialize to the same search-free
//!    program (e.g. Fig. 7 points that differ only in the
//!    schedule/chunk parameters of the `OR` branch that was *not*
//!    chosen) produce byte-identical variants, so one measurement
//!    serves them all.
//!
//! The variant level is what a sequential point-keyed memo cannot
//! provide, and on spaces with conditional structure it is where most
//! of the parallel engine's savings come from.
//!
//! Entries carry an *origin*: measured in this session, or rehydrated
//! from the persistent tuning store (`locus-store`). Lookups answered
//! by store-origin entries count separately ([`MemoStats::store_hits`]),
//! so a session report can say exactly how much work prior sessions
//! saved it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use locus_search::Objective;
use locus_space::Point;

/// Where a cache entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Measured during this session.
    Session,
    /// Rehydrated from the persistent tuning store.
    Store,
}

/// Hit/miss counters of a [`MemoCache`], snapshot after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Proposals answered from session-measured point-level entries.
    pub point_hits: usize,
    /// Proposals answered from session-measured variant-level entries
    /// (including within-batch duplicates coalesced before measuring).
    pub variant_hits: usize,
    /// Proposals answered from entries rehydrated out of the persistent
    /// store (either level) — each one a measurement a prior session
    /// paid for.
    pub store_hits: usize,
    /// Proposals that required an actual measurement.
    pub misses: usize,
    /// Distinct points held by the point level.
    pub unique_points: usize,
    /// Distinct variants held by the variant level.
    pub unique_variants: usize,
}

impl MemoStats {
    /// Total hits across both levels and both origins.
    pub fn hits(&self) -> usize {
        self.point_hits + self.variant_hits + self.store_hits
    }
}

/// A thread-safe two-level objective cache. See the module docs.
#[derive(Debug, Default)]
pub struct MemoCache {
    points: Mutex<HashMap<String, (Objective, Origin)>>,
    variants: Mutex<HashMap<u64, (Objective, Origin)>>,
    point_hits: AtomicUsize,
    variant_hits: AtomicUsize,
    store_hits: AtomicUsize,
    misses: AtomicUsize,
}

impl MemoCache {
    /// An empty cache.
    pub fn new() -> MemoCache {
        MemoCache::default()
    }

    fn count_hit(&self, origin: Origin, session_counter: &AtomicUsize) {
        match origin {
            Origin::Session => session_counter.fetch_add(1, Ordering::Relaxed),
            Origin::Store => self.store_hits.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Looks a point up in the point level, counting a hit when found.
    pub fn lookup_point(&self, point: &Point) -> Option<Objective> {
        let found = self
            .points
            .lock()
            .expect("memo lock")
            .get(&point.canonical_key())
            .copied();
        if let Some((_, origin)) = found {
            self.count_hit(origin, &self.point_hits);
        }
        found.map(|(objective, _)| objective)
    }

    /// Looks a variant digest up, counting a hit when found.
    pub fn lookup_variant(&self, variant: u64) -> Option<Objective> {
        let found = self
            .variants
            .lock()
            .expect("memo lock")
            .get(&variant)
            .copied();
        if let Some((_, origin)) = found {
            self.count_hit(origin, &self.variant_hits);
        }
        found.map(|(objective, _)| objective)
    }

    /// Reads a point entry without counting a hit (merge path).
    pub fn peek_point(&self, point: &Point) -> Option<Objective> {
        self.points
            .lock()
            .expect("memo lock")
            .get(&point.canonical_key())
            .map(|(objective, _)| *objective)
    }

    /// Reads a variant entry without counting a hit (merge path).
    pub fn peek_variant(&self, variant: u64) -> Option<Objective> {
        self.variants
            .lock()
            .expect("memo lock")
            .get(&variant)
            .map(|(objective, _)| *objective)
    }

    /// Records the objective of a point measured this session under
    /// both levels.
    pub fn insert(&self, point: &Point, variant: u64, objective: Objective) {
        self.points
            .lock()
            .expect("memo lock")
            .insert(point.canonical_key(), (objective, Origin::Session));
        self.variants
            .lock()
            .expect("memo lock")
            .insert(variant, (objective, Origin::Session));
    }

    /// Records a point-level alias of an already-known variant. An
    /// existing entry keeps its origin (a store-rehydrated point is not
    /// demoted by the merge loop's alias insertion).
    pub fn insert_point(&self, point: &Point, objective: Objective) {
        self.points
            .lock()
            .expect("memo lock")
            .entry(point.canonical_key())
            .or_insert((objective, Origin::Session));
    }

    /// Rehydrates one record from the persistent store: both levels,
    /// store origin, never overwriting session measurements. The point
    /// is addressed by its canonical key directly — rehydration needs no
    /// [`Point`] round-trip.
    pub fn seed(&self, point_key: &str, variant: u64, objective: Objective) {
        self.points
            .lock()
            .expect("memo lock")
            .entry(point_key.to_string())
            .or_insert((objective, Origin::Store));
        self.variants
            .lock()
            .expect("memo lock")
            .entry(variant)
            .or_insert((objective, Origin::Store));
    }

    /// Reports where the entry answering a lookup for this point (or,
    /// failing that, this variant digest) came from: `"session"` for
    /// entries measured this run, `"store"` for entries rehydrated from
    /// the persistent store. Does not count a hit — this is the tracing
    /// path, called only after [`MemoCache::lookup_point`] /
    /// [`MemoCache::lookup_variant`] already answered the proposal.
    pub fn peek_origin(&self, point: &Point, variant: u64) -> Option<&'static str> {
        let origin = self
            .points
            .lock()
            .expect("memo lock")
            .get(&point.canonical_key())
            .map(|(_, origin)| *origin)
            .or_else(|| {
                self.variants
                    .lock()
                    .expect("memo lock")
                    .get(&variant)
                    .map(|(_, origin)| *origin)
            })?;
        Some(match origin {
            Origin::Session => "session",
            Origin::Store => "store",
        })
    }

    /// Counts one within-batch coalesced duplicate as a variant hit.
    pub fn note_coalesced(&self) {
        self.variant_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one actual measurement.
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots the counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            point_hits: self.point_hits.load(Ordering::Relaxed),
            variant_hits: self.variant_hits.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            unique_points: self.points.lock().expect("memo lock").len(),
            unique_variants: self.variants.lock().expect("memo lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_space::ParamValue;

    fn point(v: i64) -> Point {
        let mut p = Point::new();
        p.set("x", ParamValue::Int(v));
        p
    }

    #[test]
    fn point_level_round_trip() {
        let cache = MemoCache::new();
        assert!(cache.lookup_point(&point(1)).is_none());
        cache.insert(&point(1), 0xabcd, Objective::Value(2.5));
        assert_eq!(cache.lookup_point(&point(1)), Some(Objective::Value(2.5)));
        let stats = cache.stats();
        assert_eq!(stats.point_hits, 1);
        assert_eq!(stats.unique_points, 1);
        assert_eq!(stats.unique_variants, 1);
    }

    #[test]
    fn variant_level_serves_aliasing_points() {
        let cache = MemoCache::new();
        cache.insert(&point(1), 7, Objective::Value(1.0));
        // A different point, same variant digest: answered by level 2.
        assert!(cache.lookup_point(&point(2)).is_none());
        assert_eq!(cache.lookup_variant(7), Some(Objective::Value(1.0)));
        cache.insert_point(&point(2), Objective::Value(1.0));
        assert_eq!(cache.lookup_point(&point(2)), Some(Objective::Value(1.0)));
        let stats = cache.stats();
        assert_eq!(stats.variant_hits, 1);
        assert_eq!(stats.unique_points, 2);
        assert_eq!(stats.unique_variants, 1);
    }

    #[test]
    fn peeks_do_not_count() {
        let cache = MemoCache::new();
        cache.insert(&point(1), 7, Objective::Invalid);
        assert!(cache.peek_point(&point(1)).is_some());
        assert!(cache.peek_variant(7).is_some());
        assert_eq!(cache.stats().hits(), 0);
    }

    #[test]
    fn store_seeded_entries_count_as_store_hits() {
        let cache = MemoCache::new();
        cache.seed(&point(1).canonical_key(), 7, Objective::Value(1.0));
        assert_eq!(cache.lookup_point(&point(1)), Some(Objective::Value(1.0)));
        assert_eq!(cache.lookup_variant(7), Some(Objective::Value(1.0)));
        let stats = cache.stats();
        assert_eq!(stats.store_hits, 2, "both levels answered from the store");
        assert_eq!(stats.point_hits, 0);
        assert_eq!(stats.variant_hits, 0);
        assert_eq!(stats.hits(), 2);
    }

    #[test]
    fn seeding_never_overwrites_session_measurements() {
        let cache = MemoCache::new();
        cache.insert(&point(1), 7, Objective::Value(1.0));
        cache.seed(&point(1).canonical_key(), 7, Objective::Value(9.0));
        assert_eq!(cache.lookup_point(&point(1)), Some(Objective::Value(1.0)));
        assert_eq!(cache.stats().point_hits, 1, "session origin preserved");
    }

    #[test]
    fn alias_insert_keeps_store_origin() {
        let cache = MemoCache::new();
        cache.seed(&point(1).canonical_key(), 7, Objective::Value(1.0));
        cache.insert_point(&point(1), Objective::Value(1.0));
        cache.lookup_point(&point(1));
        assert_eq!(cache.stats().store_hits, 1);
    }
}
