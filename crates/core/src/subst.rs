//! Selective query pre-evaluation (Sec. IV-C of the paper).
//!
//! "The parameters of the search constructs need to be known when the
//! search is defined. Therefore, these Query operations are executed and
//! their values replace their calls" — *these* being the queries whose
//! results are used by search constructs (directly or through
//! variables) or by the control flow that decides which constructs
//! exist. Queries whose results only parameterize transformations (like
//! Fig. 13's `innerloops = BuiltIn.ListInnerLoops()`) stay live and are
//! re-executed per variant, so they observe earlier transformations.

use std::collections::HashSet;

use locus_lang::ast::{LArg, LBlock, LExpr, LStmt};
use locus_lang::Value;

/// Substitutes the *needed* query calls in a `CodeReg` body.
///
/// `resolve(module, func)` returns the query's value (queries in the
/// paper's figures take no arguments) or `None` for non-queries.
pub fn substitute_needed_queries(
    body: &mut LBlock,
    resolve: &mut dyn FnMut(&str, &str) -> Option<Value>,
) {
    // 1. Names whose values must be static: used in search-construct
    //    arguments or branch conditions.
    let mut needed: HashSet<String> = HashSet::new();
    collect_needed_block(body, &mut needed);
    // 2. Propagate backwards through assignments to a fixpoint.
    for _ in 0..16 {
        let before = needed.len();
        propagate_block(body, &mut needed);
        if needed.len() == before {
            break;
        }
    }
    // 3. Rewrite.
    rewrite_block(body, &needed, resolve);
}

// ---- step 1: seeds ---------------------------------------------------------

fn collect_needed_block(block: &LBlock, needed: &mut HashSet<String>) {
    for alt in &block.alternatives {
        for stmt in alt {
            collect_needed_stmt(stmt, needed);
        }
    }
}

fn collect_needed_stmt(stmt: &LStmt, needed: &mut HashSet<String>) {
    match stmt {
        LStmt::Expr(e) | LStmt::Print(e) | LStmt::Return(Some(e)) => collect_search_args(e, needed),
        LStmt::Assign { value, .. } => collect_search_args(value, needed),
        LStmt::Optional { stmt, .. } => collect_needed_stmt(stmt, needed),
        LStmt::Block(b) => collect_needed_block(b, needed),
        LStmt::If {
            cond,
            then,
            elifs,
            els,
        } => {
            collect_idents(cond, needed);
            collect_search_args(cond, needed);
            collect_needed_block(then, needed);
            for (c, b) in elifs {
                collect_idents(c, needed);
                collect_search_args(c, needed);
                collect_needed_block(b, needed);
            }
            if let Some(b) = els {
                collect_needed_block(b, needed);
            }
        }
        LStmt::For {
            init,
            cond,
            step,
            body,
        } => {
            collect_needed_stmt(init, needed);
            collect_idents(cond, needed);
            collect_needed_stmt(step, needed);
            collect_needed_block(body, needed);
        }
        LStmt::While { cond, body } => {
            collect_idents(cond, needed);
            collect_needed_block(body, needed);
        }
        LStmt::Return(None) | LStmt::Pass => {}
    }
}

/// Idents inside search-construct arguments become needed.
fn collect_search_args(e: &LExpr, needed: &mut HashSet<String>) {
    walk_expr(e, &mut |node| {
        if let LExpr::Search { args, .. } = node {
            for a in args {
                collect_idents(a, needed);
            }
        }
    });
}

fn collect_idents(e: &LExpr, needed: &mut HashSet<String>) {
    walk_expr(e, &mut |node| {
        if let LExpr::Ident(name) = node {
            needed.insert(name.clone());
        }
    });
}

// ---- step 2: propagation ----------------------------------------------------

fn propagate_block(block: &LBlock, needed: &mut HashSet<String>) {
    for alt in &block.alternatives {
        for stmt in alt {
            propagate_stmt(stmt, needed);
        }
    }
}

fn propagate_stmt(stmt: &LStmt, needed: &mut HashSet<String>) {
    match stmt {
        LStmt::Assign { targets, value } => {
            let target_needed = targets.iter().any(|t| match t {
                LExpr::Ident(n) => needed.contains(n),
                _ => false,
            });
            if target_needed {
                collect_idents(value, needed);
            }
        }
        LStmt::Optional { stmt, .. } => propagate_stmt(stmt, needed),
        LStmt::Block(b) => propagate_block(b, needed),
        LStmt::If {
            then, elifs, els, ..
        } => {
            propagate_block(then, needed);
            for (_, b) in elifs {
                propagate_block(b, needed);
            }
            if let Some(b) = els {
                propagate_block(b, needed);
            }
        }
        LStmt::For {
            init, step, body, ..
        } => {
            propagate_stmt(init, needed);
            propagate_stmt(step, needed);
            propagate_block(body, needed);
        }
        LStmt::While { body, .. } => propagate_block(body, needed),
        _ => {}
    }
}

// ---- step 3: rewriting -------------------------------------------------------

fn rewrite_block(
    block: &mut LBlock,
    needed: &HashSet<String>,
    resolve: &mut dyn FnMut(&str, &str) -> Option<Value>,
) {
    for alt in &mut block.alternatives {
        for stmt in alt {
            rewrite_stmt(stmt, needed, resolve);
        }
    }
}

fn rewrite_stmt(
    stmt: &mut LStmt,
    needed: &HashSet<String>,
    resolve: &mut dyn FnMut(&str, &str) -> Option<Value>,
) {
    match stmt {
        LStmt::Assign { targets, value } => {
            let target_needed = targets.iter().any(|t| match t {
                LExpr::Ident(n) => needed.contains(n),
                _ => false,
            });
            if target_needed {
                rewrite_queries(value, resolve);
            }
            // Search-construct arguments always substitute.
            rewrite_in_search_args(value, resolve);
        }
        LStmt::Expr(e) | LStmt::Print(e) | LStmt::Return(Some(e)) => {
            rewrite_in_search_args(e, resolve);
        }
        LStmt::Optional { stmt, .. } => rewrite_stmt(stmt, needed, resolve),
        LStmt::Block(b) => rewrite_block(b, needed, resolve),
        LStmt::If {
            cond,
            then,
            elifs,
            els,
        } => {
            rewrite_queries(cond, resolve);
            rewrite_block(then, needed, resolve);
            for (c, b) in elifs {
                rewrite_queries(c, resolve);
                rewrite_block(b, needed, resolve);
            }
            if let Some(b) = els {
                rewrite_block(b, needed, resolve);
            }
        }
        LStmt::For {
            init,
            cond,
            step,
            body,
        } => {
            rewrite_stmt(init, needed, resolve);
            rewrite_queries(cond, resolve);
            rewrite_stmt(step, needed, resolve);
            rewrite_block(body, needed, resolve);
        }
        LStmt::While { cond, body } => {
            rewrite_queries(cond, resolve);
            rewrite_block(body, needed, resolve);
        }
        LStmt::Return(None) | LStmt::Pass => {}
    }
}

/// Replaces every zero/literal-argument query call in the expression.
fn rewrite_queries(e: &mut LExpr, resolve: &mut dyn FnMut(&str, &str) -> Option<Value>) {
    rewrite_expr(e, &mut |node| {
        if let LExpr::Call { callee, args } = node {
            if !args.is_empty() {
                return;
            }
            if let LExpr::Attr { base, name } = callee.as_ref() {
                if let LExpr::Ident(module) = base.as_ref() {
                    if let Some(value) = resolve(module, name) {
                        *node = locus_lang::optimize::value_to_expr_pub(&value);
                    }
                }
            }
        }
    });
}

/// Substitutes query calls that appear inside search-construct argument
/// positions (range endpoints etc.).
fn rewrite_in_search_args(e: &mut LExpr, resolve: &mut dyn FnMut(&str, &str) -> Option<Value>) {
    rewrite_expr(e, &mut |node| {
        if let LExpr::Search { args, .. } = node {
            for a in args {
                rewrite_queries(a, resolve);
            }
        }
    });
}

// ---- generic walkers --------------------------------------------------------

fn walk_expr<'a>(e: &'a LExpr, f: &mut impl FnMut(&'a LExpr)) {
    f(e);
    match e {
        LExpr::List(items) | LExpr::Tuple(items) => {
            for i in items {
                walk_expr(i, f);
            }
        }
        LExpr::Dict(entries) => {
            for (_, v) in entries {
                walk_expr(v, f);
            }
        }
        LExpr::Attr { base, .. } => walk_expr(base, f),
        LExpr::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        LExpr::Range { lo, hi, step } => {
            walk_expr(lo, f);
            walk_expr(hi, f);
            if let Some(s) = step {
                walk_expr(s, f);
            }
        }
        LExpr::Neg(i) | LExpr::Not(i) => walk_expr(i, f),
        LExpr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        LExpr::Search { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        LExpr::OrExpr { options, .. } => {
            for o in options {
                walk_expr(o, f);
            }
        }
        LExpr::Call { callee, args } => {
            walk_expr(callee, f);
            for LArg { value, .. } in args {
                walk_expr(value, f);
            }
        }
        _ => {}
    }
}

fn rewrite_expr(e: &mut LExpr, f: &mut impl FnMut(&mut LExpr)) {
    match e {
        LExpr::List(items) | LExpr::Tuple(items) => {
            for i in items {
                rewrite_expr(i, f);
            }
        }
        LExpr::Dict(entries) => {
            for (_, v) in entries {
                rewrite_expr(v, f);
            }
        }
        LExpr::Attr { base, .. } => rewrite_expr(base, f),
        LExpr::Index { base, index } => {
            rewrite_expr(base, f);
            rewrite_expr(index, f);
        }
        LExpr::Range { lo, hi, step } => {
            rewrite_expr(lo, f);
            rewrite_expr(hi, f);
            if let Some(s) = step {
                rewrite_expr(s, f);
            }
        }
        LExpr::Neg(i) | LExpr::Not(i) => rewrite_expr(i, f),
        LExpr::Binary { lhs, rhs, .. } => {
            rewrite_expr(lhs, f);
            rewrite_expr(rhs, f);
        }
        LExpr::Search { args, .. } => {
            for a in args {
                rewrite_expr(a, f);
            }
        }
        LExpr::OrExpr { options, .. } => {
            for o in options {
                rewrite_expr(o, f);
            }
        }
        LExpr::Call { callee, args } => {
            rewrite_expr(callee, f);
            for LArg { value, .. } in args {
                rewrite_expr(value, f);
            }
        }
        _ => {}
    }
    f(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_lang::parse;

    fn resolver(module: &str, func: &str) -> Option<Value> {
        match (module, func) {
            ("BuiltIn", "LoopNestDepth") => Some(Value::Int(3)),
            ("BuiltIn", "IsPerfectLoopNest") => Some(Value::from(true)),
            ("RoseLocus", "IsDepAvailable") => Some(Value::from(true)),
            ("BuiltIn", "ListInnerLoops") => Some(Value::List(vec![Value::from("0.0.0")])),
            _ => None,
        }
    }

    fn codereg_body(src: &str) -> LBlock {
        let p = parse(src).unwrap();
        p.codereg("scop").unwrap().clone()
    }

    #[test]
    fn substitutes_condition_and_range_queries_only() {
        let src = r#"
        CodeReg scop {
            perfect = BuiltIn.IsPerfectLoopNest();
            depth = BuiltIn.LoopNestDepth();
            innerloops = BuiltIn.ListInnerLoops();
            if (perfect && depth > 1) {
                indexT1 = integer(1..depth);
            }
            RoseLocus.Unroll(loop=innerloops, factor=2);
        }
        "#;
        let mut body = codereg_body(src);
        substitute_needed_queries(&mut body, &mut |m, f| resolver(m, f));
        let text = format!("{body:?}");
        // depth/perfect feed conditions & ranges: substituted.
        assert!(!text.contains("LoopNestDepth"), "{text}");
        assert!(!text.contains("IsPerfectLoopNest"));
        // innerloops only parameterizes a transformation: stays live.
        assert!(text.contains("ListInnerLoops"));
    }

    #[test]
    fn direct_query_in_condition_is_substituted() {
        let src = r#"
        CodeReg scop {
            if (RoseLocus.IsDepAvailable()) {
                t = poweroftwo(2..8);
            }
        }
        "#;
        let mut body = codereg_body(src);
        substitute_needed_queries(&mut body, &mut |m, f| resolver(m, f));
        let text = format!("{body:?}");
        assert!(!text.contains("IsDepAvailable"));
    }

    #[test]
    fn propagates_through_assignments() {
        let src = r#"
        CodeReg scop {
            depth = BuiltIn.LoopNestDepth();
            d2 = depth - 1;
            x = integer(1..d2);
        }
        "#;
        let mut body = codereg_body(src);
        substitute_needed_queries(&mut body, &mut |m, f| resolver(m, f));
        let text = format!("{body:?}");
        assert!(!text.contains("LoopNestDepth"));
    }
}
