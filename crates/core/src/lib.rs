//! The Locus orchestration system (Sec. II, Fig. 1 and Fig. 2 of the
//! paper).
//!
//! This crate ties the workspace together:
//!
//! * [`registry`] — the transformation-module registry and the wrapper
//!   that lets Locus programs invoke `RoseLocus.*`, `Pips.*`, `Pragma.*`
//!   and `BuiltIn.*` modules on a concrete code region (Sec. IV-A);
//! * [`system`] — the two workflows of Fig. 2:
//!   the **direct** workflow ([`system::LocusSystem::apply_direct`])
//!   applies one transformation sequence and returns the optimized
//!   program, and the **search** workflow
//!   ([`system::LocusSystem::tune`]) converts the optimization space,
//!   repeatedly asks a search module for points, builds each variant,
//!   measures it on the simulated machine, feeds the metric back, and
//!   returns the best variant found;
//! * region-hash coherence checking ([`system::check_coherence`])
//!   warns when the application source drifted under a stored
//!   optimization program.
//!
//! The system is *non-prescriptive* (Sec. II): when no transformation
//! applies or every variant fails, the baseline version remains the
//! result.

#![warn(missing_docs)]

pub mod fleet;
pub mod memo;
pub mod registry;
pub mod report;
pub mod subst;
pub mod suggest;
pub mod system;

pub use fleet::{transfer_recipe, tune_across_machines, MachineTuneResult, TransferOutcome};
pub use memo::{MemoCache, MemoStats};
pub use registry::{RegionHost, SnippetProvider};
pub use report::TuneReport;
pub use suggest::{
    profile_region, suggest_program, suggest_with_sharded_store, suggest_with_store, RegionProfile,
    MAX_SUGGEST_DISTANCE,
};
pub use system::{
    check_coherence, region_hashes, ApplyError, LocusSystem, Prepared, StoreHandle, TuneResult,
    VariantOutcome, PARALLEL_BATCH, WARM_START_K,
};
