//! Optimization-sequence suggestion.
//!
//! The paper's Sec. VII closes with: "Ongoing work aims to help users at
//! designing optimization sequences." This module implements that
//! assistant: given a code region, it runs the analyses and emits a
//! tailored Locus program — the Fig. 13 recipe specialized to what the
//! region actually supports, so the space contains no statically dead
//! constructs and the user has a meaningful starting point to edit.

use std::fmt::Write as _;

use locus_lang::ast::LItem;
use locus_srcir::ast::Stmt;
use locus_store::{RegionShape, SessionRecord, ShardedStore, TuningStore};

use locus_transform::queries;

/// Maximum structural distance ([`RegionShape::distance`]) at which a
/// stored session still counts as "similar enough" for recipe
/// retrieval.
pub const MAX_SUGGEST_DISTANCE: u32 = 3;

/// What the suggester learned about a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionProfile {
    /// Loop nest depth.
    pub depth: usize,
    /// Whether the nest is perfect.
    pub perfect: bool,
    /// Whether dependence analysis succeeded.
    pub deps_available: bool,
    /// Number of innermost loops.
    pub inner_loops: usize,
    /// Whether every innermost loop is already provably vectorizable
    /// (pragmas would be redundant).
    pub vectorizable: bool,
}

impl RegionProfile {
    /// The store's serialized form of this profile — the retrieval key
    /// of persisted session records.
    pub fn shape(&self) -> RegionShape {
        RegionShape {
            depth: self.depth,
            perfect: self.perfect,
            deps_available: self.deps_available,
            inner_loops: self.inner_loops,
            vectorizable: self.vectorizable,
        }
    }
}

/// Analyzes a region root.
pub fn profile_region(stmt: &Stmt) -> RegionProfile {
    let info = locus_analysis::loops::loop_nest_info(stmt);
    let deps_available = queries::is_dep_available(stmt);
    let vectorizable = deps_available
        && info.inner_loops.iter().all(|idx| {
            idx.resolve(stmt)
                .map(|l| locus_analysis::deps::analyze_region(l).vectorizable())
                .unwrap_or(false)
        });
    RegionProfile {
        depth: info.depth,
        perfect: info.perfect,
        deps_available,
        inner_loops: info.inner_loops.len(),
        vectorizable,
    }
}

/// Generates a Locus program source for the region named `region_id`,
/// tailored to the region's profile:
///
/// * perfect nests of depth ≥ 2 get an interchange permutation and a
///   tiling-vs-unroll-and-jam `OR`;
/// * imperfect multi-loop regions get optional distribution;
/// * non-vectorizable innermost loops get an *optional* `ivdep`/`vector`
///   pair (the expert decides whether forcing is legal);
/// * everything gets a final innermost unroll;
/// * regions without dependence information fall back to unrolling only,
///   exactly like Fig. 13's outer conditional.
///
/// The returned text parses with [`locus_lang::parse`] and is meant to be
/// edited by the user — it is a starting recipe, not an oracle.
pub fn suggest_program(region_id: &str, stmt: &Stmt) -> String {
    let profile = profile_region(stmt);
    let mut body = String::new();
    let mut push = |line: &str| {
        let _ = writeln!(body, "    {line}");
    };

    push(&format!(
        "# auto-generated recipe: depth={}, perfect={}, deps={}",
        profile.depth, profile.perfect, profile.deps_available
    ));
    if profile.deps_available {
        if profile.perfect && profile.depth > 1 {
            push(&format!(
                "permorder = permutation(seq(0, {}));",
                profile.depth
            ));
            push("RoseLocus.Interchange(order=permorder);");
        }
        if profile.perfect && profile.depth > 1 {
            push("{");
            push(
                "    indexT1 = integer(1..LoopDepth);"
                    .replace("LoopDepth", &profile.depth.to_string())
                    .as_str(),
            );
            push("    T1fac = poweroftwo(2..32);");
            push("    RoseLocus.Tiling(loop=indexT1, factor=T1fac);");
            push("} OR {");
            push(&format!(
                "    indexUAJ = integer(1..{});",
                (profile.depth - 1).max(1)
            ));
            push("    UAJfac = poweroftwo(2..4);");
            push("    RoseLocus.UnrollAndJam(loop=indexUAJ, factor=UAJfac);");
            push("} OR {");
            push("    None;");
            push("}");
        } else if profile.perfect && profile.depth == 1 {
            push("*RoseLocus.Tiling(loop=1, factor=poweroftwo(8..64));");
        }
        if !profile.perfect && profile.inner_loops >= 1 {
            push("innerloops = BuiltIn.ListInnerLoops();");
            push("*RoseLocus.Distribute(loop=innerloops);");
        }
    }
    if !profile.vectorizable {
        push("# innermost loops are not provably vectorizable; force only");
        push("# if you know the accesses cannot alias:");
        push("*Pragma.Ivdep(loop=innermost);");
        push("*Pragma.Vector(loop=innermost);");
    }
    push("innerloops = BuiltIn.ListInnerLoops();");
    push("RoseLocus.Unroll(loop=innerloops, factor=poweroftwo(2..8));");

    format!("CodeReg {region_id} {{\n{body}}}\n")
}

/// Store-backed suggestion: before falling back to the static
/// [`suggest_program`] recipe, retrieve the winning recipe of the
/// structurally nearest region a prior session tuned
/// ([`TuningStore::nearest_session`], matched on loop depth, perfect
/// nesting, dependence availability, inner-loop count and
/// vectorizability, within [`MAX_SUGGEST_DISTANCE`]), retargeted to
/// `region_id` and prefixed with a provenance comment. The retrieved
/// recipe is *direct* (search-free) — it encodes a known-good outcome,
/// which the user can run as-is or reopen into a search.
pub fn suggest_with_store(region_id: &str, stmt: &Stmt, store: &TuningStore) -> String {
    let profile = profile_region(stmt);
    let retrieved = store
        .nearest_session(&profile.shape(), MAX_SUGGEST_DISTANCE)
        .and_then(|(session, distance)| format_retrieval(region_id, session, distance));
    retrieved.unwrap_or_else(|| suggest_program(region_id, stmt))
}

/// [`suggest_with_store`] against the daemon's shared sharded store:
/// same retrieval, same provenance comment, same fallback — the only
/// difference is that the nearest-session scan crosses every shard.
pub fn suggest_with_sharded_store(region_id: &str, stmt: &Stmt, store: &ShardedStore) -> String {
    let profile = profile_region(stmt);
    let retrieved = store
        .nearest_session(&profile.shape(), MAX_SUGGEST_DISTANCE)
        .and_then(|(session, distance)| format_retrieval(region_id, &session, distance));
    retrieved.unwrap_or_else(|| suggest_program(region_id, stmt))
}

/// Formats a retrieved session as a retargeted recipe with a provenance
/// header; `None` when the stored recipe no longer parses.
fn format_retrieval(region_id: &str, session: &SessionRecord, distance: u32) -> Option<String> {
    retarget_recipe(&session.recipe, region_id).map(|recipe| {
        format!(
            "# retrieved from tuning store: region `{}` (shape distance {}, \
             best {:.6} ms, search `{}`)\n{}",
            session.region, distance, session.best_ms, session.search, recipe
        )
    })
}

/// Re-targets a stored recipe at a new region: parse, rename every
/// `CodeReg`, re-print. `None` when the stored text no longer parses
/// (e.g. written by a newer language version) — callers fall back.
fn retarget_recipe(recipe: &str, region_id: &str) -> Option<String> {
    let mut program = locus_lang::parse(recipe).ok()?;
    let mut renamed = false;
    for item in &mut program.items {
        if let LItem::CodeReg { name, .. } = item {
            *name = region_id.to_string();
            renamed = true;
        }
    }
    renamed.then(|| locus_lang::print_program(&program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;
    use locus_srcir::region::{extract_region, find_regions};

    fn region_of(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let regions = find_regions(&p);
        extract_region(&p, &regions[0]).unwrap().stmt
    }

    #[test]
    fn deep_perfect_nest_gets_the_full_recipe() {
        let stmt = region_of(
            r#"double C[8][8]; double A[8][8]; double B[8][8];
            void kernel() {
                #pragma @Locus loop=mm
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++)
                        for (int k = 0; k < 8; k++)
                            C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        );
        let text = suggest_program("mm", &stmt);
        assert!(text.contains("permutation(seq(0, 3))"), "{text}");
        assert!(text.contains("RoseLocus.Tiling"), "{text}");
        assert!(text.contains("UnrollAndJam"), "{text}");
        // And it parses.
        let program = locus_lang::parse(&text).unwrap();
        assert_eq!(program.codereg_names(), vec!["mm"]);
    }

    #[test]
    fn non_affine_region_gets_unroll_only() {
        let stmt = region_of(
            r#"double A[64]; int idx[64];
            void kernel() {
                #pragma @Locus loop=scatter
                for (int i = 0; i < 64; i++)
                    A[idx[i]] = A[idx[i]] + 1.0;
            }"#,
        );
        let text = suggest_program("scatter", &stmt);
        assert!(!text.contains("Interchange"), "{text}");
        assert!(!text.contains("Tiling"), "{text}");
        assert!(text.contains("RoseLocus.Unroll"), "{text}");
        assert!(text.contains("*Pragma.Ivdep"), "forcing offered: {text}");
        locus_lang::parse(&text).unwrap();
    }

    #[test]
    fn suggested_program_tunes_end_to_end() {
        use crate::system::LocusSystem;
        let src = r#"double C[32][32]; double A[32][32]; double B[32][32];
        void kernel() {
            #pragma @Locus loop=mm
            for (int i = 0; i < 32; i++)
                for (int j = 0; j < 32; j++)
                    for (int k = 0; k < 32; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
        }"#;
        let program = parse_program(src).unwrap();
        let regions = find_regions(&program);
        let stmt = extract_region(&program, &regions[0]).unwrap().stmt;
        let text = suggest_program("mm", &stmt);
        let locus_program = locus_lang::parse(&text).unwrap();
        let system = LocusSystem::new(locus_machine::Machine::new(
            locus_machine::MachineConfig::scaled_small().with_cores(1),
        ));
        let mut search = locus_search::BanditTuner::new(5);
        let result = system
            .tune(&program, &locus_program, &mut search, 8)
            .unwrap();
        assert!(result.best.is_some());
    }

    #[test]
    fn suggest_retrieves_nearest_stored_recipe_and_falls_back() {
        use locus_store::{SessionRecord, StoreKey};

        let stmt = region_of(
            r#"double C[8][8]; double A[8][8]; double B[8][8];
            void kernel() {
                #pragma @Locus loop=mm
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++)
                        for (int k = 0; k < 8; k++)
                            C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        );
        let path = std::env::temp_dir().join(format!(
            "locus-suggest-store-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_file(&path).ok();
        let mut store = TuningStore::open(&path).unwrap();
        let key = StoreKey::new(vec![("mm".into(), 0x1)], 0x2, 0x3);
        store
            .append_session(
                &key,
                SessionRecord {
                    region: "mm".into(),
                    shape: profile_region(&stmt).shape(),
                    best_point: "tileI=i16;".into(),
                    best_ms: 1.25,
                    recipe: "CodeReg mm {\n    RoseLocus.Interchange(order=[0, 2, 1]);\n}\n".into(),
                    search: "bandit".into(),
                },
            )
            .unwrap();

        // A structurally identical region retrieves the stored recipe,
        // retargeted at its own name.
        let text = suggest_with_store("other", &stmt, &store);
        assert!(text.contains("retrieved from tuning store"), "{text}");
        let parsed = locus_lang::parse(&text).unwrap();
        assert_eq!(parsed.codereg_names(), vec!["other"]);
        assert!(text.contains("Interchange"), "{text}");

        // A structurally alien region (flat, non-affine) is farther than
        // MAX_SUGGEST_DISTANCE and falls back to the static recipe.
        let scatter = region_of(
            r#"double A[64]; int idx[64];
            void kernel() {
                #pragma @Locus loop=scatter
                for (int i = 0; i < 64; i++)
                    A[idx[i]] = A[idx[i]] + 1.0;
            }"#,
        );
        let fallback = suggest_with_store("scatter", &scatter, &store);
        assert!(
            !fallback.contains("retrieved from tuning store"),
            "{fallback}"
        );
        assert!(fallback.contains("RoseLocus.Unroll"), "{fallback}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_reports_vectorizability() {
        let stmt = region_of(
            r#"double A[64]; double B[64];
            void kernel() {
                #pragma @Locus loop=saxpy
                for (int i = 0; i < 64; i++)
                    A[i] = A[i] + 2.0 * B[i];
            }"#,
        );
        let p = profile_region(&stmt);
        assert!(p.vectorizable);
        assert_eq!(p.depth, 1);
        let text = suggest_program("saxpy", &stmt);
        assert!(
            !text.contains("Ivdep"),
            "no redundant pragma for provably safe loops: {text}"
        );
    }
}
