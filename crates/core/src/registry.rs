//! The transformation-module registry: dispatches Locus module
//! invocations onto the native transformation crate.
//!
//! Mirrors the module collections of Sec. IV-A:
//!
//! | Collection | Functions |
//! |---|---|
//! | `RoseLocus` | `Unroll`, `Tiling`, `Interchange`, `UnrollAndJam`, `LICM`, `ScalarRepl`, `Distribute`, `IsDepAvailable` |
//! | `Pips` | `Unroll`, `Tiling`, `GenericTiling`, `Fusion`, `UnrollAndJam` |
//! | `Pragma` | `Ivdep`, `Vector`, `OMPFor` |
//! | `BuiltIn` | `IsPerfectLoopNest`, `LoopNestDepth`, `ListInnerLoops`, `ListOuterLoops`, `Altdesc` |
//!
//! The wrapper contract follows the paper: each invocation returns
//! *successful* (a value), *illegal* (legality check refused) or *error*
//! (malformed invocation), surfaced as [`HostError`].

use std::collections::HashMap;

use locus_lang::{HostError, TransformHost, Value};
use locus_srcir::ast::{OmpSchedule, OmpScheduleKind, Stmt};
use locus_srcir::index::HierIndex;
use locus_transform::generic_tiling::ScanDir;
use locus_transform::{self as tx, LoopSel, TransformError};

/// Resolves `Altdesc` snippet paths to source text — the stand-in for
/// the external snippet files of the Kripke experiment.
pub trait SnippetProvider {
    /// Returns the snippet stored under `path`, if any.
    fn snippet(&self, path: &str) -> Option<String>;
}

impl SnippetProvider for HashMap<String, String> {
    fn snippet(&self, path: &str) -> Option<String> {
        self.get(path).cloned()
    }
}

/// An empty snippet store.
impl SnippetProvider for () {
    fn snippet(&self, _path: &str) -> Option<String> {
        None
    }
}

/// A [`TransformHost`] bound to one code region.
pub struct RegionHost<'a> {
    /// The region root being transformed in place.
    pub stmt: &'a mut Stmt,
    /// Snippet resolution for `BuiltIn.Altdesc`.
    pub snippets: &'a dyn SnippetProvider,
    /// Whether modules run their legality checks (the paper lets expert
    /// users force transformations they know to be legal).
    pub check_legality: bool,
    /// Invocation log, for diagnostics and tests.
    pub log: Vec<String>,
}

impl<'a> RegionHost<'a> {
    /// Creates a host over a region root.
    pub fn new(stmt: &'a mut Stmt, snippets: &'a dyn SnippetProvider) -> RegionHost<'a> {
        RegionHost {
            stmt,
            snippets,
            check_legality: true,
            log: Vec::new(),
        }
    }
}

impl TransformHost for RegionHost<'_> {
    fn call(
        &mut self,
        module: &str,
        func: &str,
        args: &[(Option<String>, Value)],
    ) -> Result<Value, HostError> {
        self.log.push(format!("{module}.{func}"));
        let value = dispatch(self, module, func, args).map_err(|e| match e {
            TransformError::Illegal(m) => HostError::Illegal(m),
            TransformError::Error(m) => HostError::Error(m),
        })?;
        // Debug builds validate IR well-formedness after every mutating
        // step, so a transformation that silently produces nonsense fails
        // the tuning run instead of being "measured".
        #[cfg(debug_assertions)]
        if !is_query(module, func) {
            let issues = locus_verify::validate_region(self.stmt);
            if !issues.is_empty() {
                return Err(HostError::Error(format!(
                    "ill-formed IR after {module}.{func}: {}",
                    issues.join("; ")
                )));
            }
        }
        Ok(value)
    }
}

/// The set of (module, function) pairs that are queries — these are
/// pre-evaluated before space conversion (Sec. IV-C).
pub const QUERIES: &[(&str, &str)] = &[
    ("BuiltIn", "IsPerfectLoopNest"),
    ("BuiltIn", "LoopNestDepth"),
    ("BuiltIn", "ListInnerLoops"),
    ("BuiltIn", "ListOuterLoops"),
    ("RoseLocus", "IsDepAvailable"),
];

/// Returns `true` when `(module, func)` is a query.
pub fn is_query(module: &str, func: &str) -> bool {
    QUERIES.iter().any(|(m, f)| *m == module && *f == func)
}

/// Evaluates a query against a region root (used both by the host and by
/// the pre-search substitution pass).
pub fn run_query(stmt: &Stmt, module: &str, func: &str) -> Option<Value> {
    match (module, func) {
        ("BuiltIn", "IsPerfectLoopNest") => {
            Some(Value::from(tx::queries::is_perfect_loop_nest(stmt)))
        }
        ("BuiltIn", "LoopNestDepth") => Some(Value::Int(tx::queries::loop_nest_depth(stmt) as i64)),
        ("BuiltIn", "ListInnerLoops") => Some(Value::List(
            tx::queries::list_inner_loops(stmt)
                .into_iter()
                .map(|i| Value::Str(i.to_string()))
                .collect(),
        )),
        ("BuiltIn", "ListOuterLoops") => Some(Value::List(
            tx::queries::list_outer_loops(stmt)
                .into_iter()
                .map(|i| Value::Str(i.to_string()))
                .collect(),
        )),
        ("RoseLocus", "IsDepAvailable") => Some(Value::from(tx::queries::is_dep_available(stmt))),
        _ => None,
    }
}

fn dispatch(
    host: &mut RegionHost<'_>,
    module: &str,
    func: &str,
    args: &[(Option<String>, Value)],
) -> Result<Value, TransformError> {
    if is_query(module, func) {
        return run_query(host.stmt, module, func)
            .ok_or_else(|| TransformError::error("query dispatch failure"));
    }
    let check = host.check_legality;
    match (module, func) {
        ("RoseLocus" | "Pips", "Unroll") => {
            let targets = arg_loops(host.stmt, args, "loop")?;
            let factor = arg_u64(args, "factor")?;
            tx::unroll::unroll_all(host.stmt, &targets, factor)?;
            Ok(Value::None)
        }
        ("RoseLocus" | "Pips", "Tiling") => {
            let target = arg_single_loop(host.stmt, args, "loop")?;
            let factors = arg_i64_list(args, "factor")?;
            tx::tiling::tile(host.stmt, &target, &factors, check)?;
            Ok(Value::None)
        }
        ("Pips", "GenericTiling") => {
            let target = arg_single_loop(host.stmt, args, "loop")?;
            let matrix = arg_matrix(args, "factor")?;
            let dirs = arg_scan_dirs(args, "tiledir")?;
            tx::generic_tiling::generic_tile(host.stmt, &target, &matrix, dirs.as_deref())?;
            Ok(Value::None)
        }
        ("RoseLocus", "Interchange") => {
            let order = arg_usize_list(args, "order")?;
            tx::interchange::interchange(host.stmt, &order, check)?;
            Ok(Value::None)
        }
        ("RoseLocus" | "Pips", "UnrollAndJam") => {
            let target = arg_single_loop(host.stmt, args, "loop")?;
            let factor = arg_u64(args, "factor")?;
            tx::unroll_jam::unroll_and_jam(host.stmt, &target, factor, check)?;
            Ok(Value::None)
        }
        ("Pips", "Fusion") => {
            let target = arg_single_loop(host.stmt, args, "loop")?;
            tx::fusion::fuse(host.stmt, &target, check)?;
            Ok(Value::None)
        }
        ("RoseLocus", "LICM") => {
            tx::licm::licm(host.stmt)?;
            Ok(Value::None)
        }
        ("RoseLocus", "ScalarRepl") => {
            tx::scalar_repl::scalar_replacement(host.stmt)?;
            Ok(Value::None)
        }
        ("RoseLocus", "Distribute") => {
            let targets = arg_loops(host.stmt, args, "loop")?;
            tx::distribution::distribute_all(host.stmt, &targets, check)?;
            Ok(Value::None)
        }
        ("Pragma", "Ivdep") => {
            let sel = arg_loop_sel(args, "loop")?;
            tx::pragmas::insert_ivdep(host.stmt, &sel)?;
            Ok(Value::None)
        }
        ("Pragma", "Vector") => {
            let sel = arg_loop_sel(args, "loop")?;
            tx::pragmas::insert_vector_always(host.stmt, &sel)?;
            Ok(Value::None)
        }
        ("Pragma", "OMPFor") => {
            let sel = arg_loop_sel(args, "loop")?;
            let schedule = arg_schedule(args)?;
            tx::pragmas::insert_omp_for(host.stmt, &sel, schedule, check)?;
            Ok(Value::None)
        }
        ("BuiltIn", "Altdesc") => {
            let stmt_idx: HierIndex = arg_str(args, "stmt")?
                .parse()
                .map_err(|e| TransformError::error(format!("{e}")))?;
            let path = arg_str(args, "source")?;
            let snippet = host
                .snippets
                .snippet(&path)
                .ok_or_else(|| TransformError::error(format!("no snippet at `{path}`")))?;
            tx::altdesc::altdesc(host.stmt, &stmt_idx, &snippet)?;
            Ok(Value::None)
        }
        _ => Err(TransformError::error(format!(
            "unknown module function `{module}.{func}`"
        ))),
    }
}

// ---- argument conversion --------------------------------------------------

fn find_arg<'v>(
    args: &'v [(Option<String>, Value)],
    name: &str,
    position: usize,
) -> Option<&'v Value> {
    args.iter()
        .find(|(n, _)| n.as_deref() == Some(name))
        .map(|(_, v)| v)
        .or_else(|| {
            args.get(position)
                .filter(|(n, _)| n.is_none())
                .map(|(_, v)| v)
        })
}

fn arg_str(args: &[(Option<String>, Value)], name: &str) -> Result<String, TransformError> {
    match find_arg(args, name, 0) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(TransformError::error(format!(
            "argument `{name}` must be a string, got {}",
            other.type_name()
        ))),
        None => Err(TransformError::error(format!("missing argument `{name}`"))),
    }
}

fn arg_u64(args: &[(Option<String>, Value)], name: &str) -> Result<u64, TransformError> {
    match find_arg(args, name, 1).and_then(Value::as_int) {
        Some(v) if v >= 0 => Ok(v as u64),
        _ => Err(TransformError::error(format!(
            "argument `{name}` must be a non-negative integer"
        ))),
    }
}

fn arg_i64_list(args: &[(Option<String>, Value)], name: &str) -> Result<Vec<i64>, TransformError> {
    match find_arg(args, name, 1) {
        Some(Value::List(items)) | Some(Value::Tuple(items)) => items
            .iter()
            .map(|v| {
                v.as_int()
                    .ok_or_else(|| TransformError::error(format!("`{name}` must hold integers")))
            })
            .collect(),
        Some(Value::Int(v)) => Ok(vec![*v]),
        _ => Err(TransformError::error(format!(
            "argument `{name}` must be an integer list"
        ))),
    }
}

fn arg_usize_list(
    args: &[(Option<String>, Value)],
    name: &str,
) -> Result<Vec<usize>, TransformError> {
    arg_i64_list(args, name)?
        .into_iter()
        .map(|v| {
            usize::try_from(v)
                .map_err(|_| TransformError::error(format!("`{name}` must be non-negative")))
        })
        .collect()
}

fn arg_matrix(
    args: &[(Option<String>, Value)],
    name: &str,
) -> Result<Vec<Vec<i64>>, TransformError> {
    match find_arg(args, name, 1) {
        Some(Value::List(rows)) => rows
            .iter()
            .map(|row| match row {
                Value::List(items) | Value::Tuple(items) => items
                    .iter()
                    .map(|v| {
                        v.as_int()
                            .ok_or_else(|| TransformError::error("matrix entries must be integers"))
                    })
                    .collect(),
                _ => Err(TransformError::error("matrix rows must be lists")),
            })
            .collect(),
        _ => Err(TransformError::error(format!(
            "argument `{name}` must be a matrix (list of lists)"
        ))),
    }
}

fn arg_scan_dirs(
    args: &[(Option<String>, Value)],
    name: &str,
) -> Result<Option<Vec<ScanDir>>, TransformError> {
    match args.iter().find(|(n, _)| n.as_deref() == Some(name)) {
        None => Ok(None),
        Some((_, Value::List(items))) => items
            .iter()
            .map(|v| match v.as_int() {
                Some(v) if v >= 0 => Ok(ScanDir::Forward),
                Some(_) => Ok(ScanDir::Backward),
                None => Err(TransformError::error("tile directions must be integers")),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
        Some(_) => Err(TransformError::error(
            "tile direction must be a list of +-1",
        )),
    }
}

/// Parses a loop selector argument into one or more hierarchical indices.
fn arg_loops(
    stmt: &Stmt,
    args: &[(Option<String>, Value)],
    name: &str,
) -> Result<Vec<HierIndex>, TransformError> {
    let sel = find_arg(args, name, 0)
        .ok_or_else(|| TransformError::error(format!("missing argument `{name}`")))?;
    loops_from_value(stmt, sel)
}

fn loops_from_value(stmt: &Stmt, value: &Value) -> Result<Vec<HierIndex>, TransformError> {
    match value {
        Value::Str(s) => LoopSel::parse(s)?.resolve(stmt),
        Value::Int(level) => LoopSel::Level(
            usize::try_from(*level)
                .map_err(|_| TransformError::error("loop level must be positive"))?,
        )
        .resolve(stmt),
        Value::List(items) | Value::Tuple(items) => {
            let mut out = Vec::new();
            for v in items {
                out.extend(loops_from_value(stmt, v)?);
            }
            Ok(out)
        }
        other => Err(TransformError::error(format!(
            "loop selector must be a string, level or list, got {}",
            other.type_name()
        ))),
    }
}

fn arg_single_loop(
    stmt: &Stmt,
    args: &[(Option<String>, Value)],
    name: &str,
) -> Result<HierIndex, TransformError> {
    let mut loops = arg_loops(stmt, args, name)?;
    if loops.len() != 1 {
        return Err(TransformError::error(format!(
            "`{name}` must select exactly one loop (selected {})",
            loops.len()
        )));
    }
    Ok(loops.remove(0))
}

fn arg_loop_sel(args: &[(Option<String>, Value)], name: &str) -> Result<LoopSel, TransformError> {
    match find_arg(args, name, 0) {
        Some(Value::Str(s)) => LoopSel::parse(s),
        Some(Value::Int(level)) => {
            Ok(LoopSel::Level(usize::try_from(*level).map_err(|_| {
                TransformError::error("loop level must be positive")
            })?))
        }
        Some(other) => Err(TransformError::error(format!(
            "loop selector must be a string or level, got {}",
            other.type_name()
        ))),
        None => Err(TransformError::error(format!("missing argument `{name}`"))),
    }
}

fn arg_schedule(args: &[(Option<String>, Value)]) -> Result<Option<OmpSchedule>, TransformError> {
    let kind = match args.iter().find(|(n, _)| n.as_deref() == Some("schedule")) {
        None => return Ok(None),
        Some((_, Value::Str(s))) => match s.as_str() {
            "static" => OmpScheduleKind::Static,
            "dynamic" => OmpScheduleKind::Dynamic,
            other => return Err(TransformError::error(format!("unknown schedule `{other}`"))),
        },
        Some((_, other)) => {
            return Err(TransformError::error(format!(
                "schedule must be a string, got {}",
                other.type_name()
            )))
        }
    };
    let chunk = match args.iter().find(|(n, _)| n.as_deref() == Some("chunk")) {
        None => None,
        Some((_, v)) => Some(
            v.as_int()
                .and_then(|c| u32::try_from(c).ok())
                .ok_or_else(|| TransformError::error("chunk must be a small integer"))?,
        ),
    };
    Ok(Some(OmpSchedule { kind, chunk }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn matmul() -> Stmt {
        let p = parse_program(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        )
        .unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn call(
        host: &mut RegionHost<'_>,
        module: &str,
        func: &str,
        args: Vec<(Option<&str>, Value)>,
    ) -> Result<Value, HostError> {
        let args: Vec<(Option<String>, Value)> = args
            .into_iter()
            .map(|(n, v)| (n.map(str::to_string), v))
            .collect();
        host.call(module, func, &args)
    }

    #[test]
    fn dispatches_interchange_and_tiling() {
        let mut stmt = matmul();
        let snippets = ();
        let mut host = RegionHost::new(&mut stmt, &snippets);
        call(
            &mut host,
            "RoseLocus",
            "Interchange",
            vec![(
                Some("order"),
                Value::List(vec![0.into(), 2.into(), 1.into()]),
            )],
        )
        .unwrap();
        call(
            &mut host,
            "Pips",
            "Tiling",
            vec![
                (Some("loop"), Value::from("0")),
                (
                    Some("factor"),
                    Value::List(vec![4.into(), 4.into(), 8.into()]),
                ),
            ],
        )
        .unwrap();
        assert_eq!(host.log, vec!["RoseLocus.Interchange", "Pips.Tiling"]);
        assert_eq!(locus_analysis::loops::all_loops(&stmt).len(), 6);
    }

    #[test]
    fn queries_answer_without_mutating() {
        let mut stmt = matmul();
        let before = stmt.clone();
        let snippets = ();
        let mut host = RegionHost::new(&mut stmt, &snippets);
        assert_eq!(
            call(&mut host, "BuiltIn", "LoopNestDepth", vec![]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            call(&mut host, "BuiltIn", "IsPerfectLoopNest", vec![]).unwrap(),
            Value::from(true)
        );
        assert_eq!(
            call(&mut host, "RoseLocus", "IsDepAvailable", vec![]).unwrap(),
            Value::from(true)
        );
        assert_eq!(
            call(&mut host, "BuiltIn", "ListInnerLoops", vec![]).unwrap(),
            Value::List(vec![Value::from("0.0.0")])
        );
        assert_eq!(*host.stmt, before);
    }

    #[test]
    fn illegal_transformations_surface_as_illegal() {
        let p = parse_program(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 0; j < n - 1; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        )
        .unwrap();
        let mut stmt = p.functions().next().unwrap().body[0].clone();
        let snippets = ();
        let mut host = RegionHost::new(&mut stmt, &snippets);
        let err = call(
            &mut host,
            "RoseLocus",
            "Interchange",
            vec![(Some("order"), Value::List(vec![1.into(), 0.into()]))],
        )
        .unwrap_err();
        assert!(matches!(err, HostError::Illegal(_)));
        // Forcing is possible.
        host.check_legality = false;
        call(
            &mut host,
            "RoseLocus",
            "Interchange",
            vec![(Some("order"), Value::List(vec![1.into(), 0.into()]))],
        )
        .unwrap();
    }

    #[test]
    fn unknown_function_is_an_error() {
        let mut stmt = matmul();
        let snippets = ();
        let mut host = RegionHost::new(&mut stmt, &snippets);
        let err = call(&mut host, "RoseLocus", "Nope", vec![]).unwrap_err();
        assert!(matches!(err, HostError::Error(_)));
    }

    #[test]
    fn omp_pragma_with_schedule() {
        let mut stmt = matmul();
        let snippets = ();
        let mut host = RegionHost::new(&mut stmt, &snippets);
        call(
            &mut host,
            "Pragma",
            "OMPFor",
            vec![
                (Some("loop"), Value::from("0")),
                (Some("schedule"), Value::from("dynamic")),
                (Some("chunk"), Value::Int(8)),
            ],
        )
        .unwrap();
        let printed = locus_srcir::print_stmt(&stmt);
        assert!(printed.contains("#pragma omp parallel for schedule(dynamic, 8)"));
    }

    #[test]
    fn altdesc_pulls_from_snippet_provider() {
        let src = r#"void f(int n, double A[64]) {
            for (int i = 0; i < n; i++) {
                ;
                A[i] = 1.0;
            }
        }"#;
        let p = parse_program(src).unwrap();
        let mut stmt = p.functions().next().unwrap().body[0].clone();
        let mut snippets = HashMap::new();
        snippets.insert("addr_DGZ.txt".to_string(), "int off = i * 2;".to_string());
        let mut host = RegionHost::new(&mut stmt, &snippets);
        call(
            &mut host,
            "BuiltIn",
            "Altdesc",
            vec![
                (Some("stmt"), Value::from("0.0")),
                (Some("source"), Value::from("addr_DGZ.txt")),
            ],
        )
        .unwrap();
        assert!(locus_srcir::print_stmt(host.stmt).contains("int off = i * 2"));
        // Missing snippet is an error.
        let err = call(
            &mut host,
            "BuiltIn",
            "Altdesc",
            vec![
                (Some("stmt"), Value::from("0.0")),
                (Some("source"), Value::from("missing.txt")),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, HostError::Error(_)));
    }

    #[test]
    fn loop_selector_forms() {
        // Level selector (Fig. 13's `loop=indexT1`).
        let mut stmt = matmul();
        let snippets = ();
        let mut host = RegionHost::new(&mut stmt, &snippets);
        call(
            &mut host,
            "RoseLocus",
            "Tiling",
            vec![
                (Some("loop"), Value::Int(1)),
                (Some("factor"), Value::Int(4)),
            ],
        )
        .unwrap();
        assert_eq!(locus_analysis::loops::all_loops(host.stmt).len(), 4);

        // List selector (Fig. 13's `loop=innerloops`).
        let mut stmt2 = matmul();
        let mut host2 = RegionHost::new(&mut stmt2, &snippets);
        call(
            &mut host2,
            "RoseLocus",
            "Unroll",
            vec![
                (Some("loop"), Value::List(vec![Value::from("0.0.0")])),
                (Some("factor"), Value::Int(2)),
            ],
        )
        .unwrap();
    }
}
