//! Session accounting for store-backed tuning runs.

use crate::memo::MemoStats;

/// What a store-backed tuning session did, beyond the [`TuneResult`]:
/// how much work the persistent store saved it, and how much it gave
/// back.
///
/// The four mutually exclusive ways a proposal gets an objective are
/// [`TuneReport::evaluations`] (measured now),
/// [`TuneReport::memo_hits`] (measured earlier *this* session),
/// [`TuneReport::store_hits`] (measured in a *prior* session and
/// rehydrated from disk) and [`TuneReport::pruned_illegal`] (statically
/// refused by the safety verifier, never measured at all). A warm
/// repeat of an unchanged session performs zero evaluations — every
/// proposal is a store hit.
///
/// [`TuneResult`]: crate::system::TuneResult
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuneReport {
    /// Counters of the run's shared memo cache.
    pub memo: MemoStats,
    /// Evaluation records rehydrated from the store into the cache
    /// before the search started.
    pub rehydrated: usize,
    /// Prior observations fed to `SearchModule::seed_observations`.
    pub seeded: usize,
    /// Fresh evaluation records appended to the store by this session.
    pub appended: usize,
    /// Stale evaluation records dropped by the coherence check (regions
    /// edited since they were recorded).
    pub invalidated: usize,
    /// Points the static safety verifier refused *before* any
    /// evaluation this session — data races under an inserted
    /// `omp parallel for` or illegal transformation sequences. A pruned
    /// point never reaches the simulated machine; it is recorded as
    /// [`locus_search::Objective::Invalid`] so the search moves on.
    pub pruned_illegal: usize,
    /// Every point the search module proposed, before memoization or
    /// pruning. The accounting invariant — checked by the parallel
    /// determinism suite — is `proposed == accounted()`: each proposal
    /// is answered exactly once, by a memo hit, a store hit, a fresh
    /// measurement, or a static refusal.
    pub proposed: usize,
}

impl TuneReport {
    /// Actual measurements performed this session.
    pub fn evaluations(&self) -> usize {
        self.memo.misses
    }

    /// Proposals answered by this session's own earlier measurements
    /// (either cache level, including within-batch coalescing).
    pub fn memo_hits(&self) -> usize {
        self.memo.point_hits + self.memo.variant_hits
    }

    /// Proposals answered by measurements a prior session persisted.
    pub fn store_hits(&self) -> usize {
        self.memo.store_hits
    }

    /// Proposals accounted for by one of the four outcomes: memo hit,
    /// store hit, fresh measurement, or static refusal. Always equals
    /// [`TuneReport::proposed`].
    pub fn accounted(&self) -> usize {
        self.memo_hits() + self.store_hits() + self.evaluations() + self.pruned_illegal
    }
}
