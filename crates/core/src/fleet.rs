//! Cross-machine tuning: fan one tuning request out over a library of
//! [`MachineProfile`]s, filing every result in one persistent store.
//!
//! The store keys records by [`locus_machine::MachineConfig::digest`],
//! so tuning the same source on N machines through one
//! [`locus_store::TuningStore`] keeps the per-machine results apart
//! automatically while sharing the session log that
//! [`crate::suggest_with_store`] retrieves recipes from. That retrieval
//! is *machine-agnostic* (it matches on region shape, not machine), so
//! a recipe tuned on one profile can be transferred to another and
//! re-measured there — [`transfer_recipe`] packages exactly that
//! experiment, and `bench_corpus` reports cold-search-vs-transferred
//! evaluations-to-best across the whole corpus registry.

use std::sync::Arc;

use locus_lang::LocusProgram;
use locus_machine::{CompiledVariant, Machine, MachineProfile, Measurement};
use locus_search::SearchModule;
use locus_srcir::ast::Program;
use locus_srcir::region::{extract_region, find_regions};
use locus_store::TuningStore;

use crate::report::TuneReport;
use crate::suggest::suggest_with_store;
use crate::system::{ApplyError, LocusSystem, TuneResult};

/// The result of tuning on one machine profile.
#[derive(Debug, Clone)]
pub struct MachineTuneResult {
    /// Profile name (from [`MachineProfile::name`]).
    pub profile: String,
    /// [`locus_machine::MachineConfig::digest`] the store filed this
    /// run's records under.
    pub machine_digest: u64,
    /// The tuning result on this machine.
    pub result: TuneResult,
    /// The per-phase report of this run.
    pub report: TuneReport,
    /// The best point specialized into a direct (search-free) Locus
    /// program — the per-machine recipe. `None` when no valid point was
    /// found within budget.
    pub best_recipe: Option<String>,
}

/// Runs one tuning request over every profile in `profiles`, sharing
/// one persistent `store` (distinct machine digests keep the records
/// apart) and the internally parallel driver (`threads` workers per
/// machine). `make_search` builds a fresh search module per machine —
/// modules are stateful, so each machine must search independently.
///
/// `template` supplies everything but the machine: snippets, legality
/// policy, entry point, verification flags.
///
/// # Errors
///
/// Returns the first [`ApplyError`] any machine's run produces
/// (preparation failure, unmeasurable baseline, or store I/O).
#[allow(clippy::too_many_arguments)]
pub fn tune_across_machines(
    template: &LocusSystem,
    profiles: &[MachineProfile],
    source: &Program,
    locus: &LocusProgram,
    make_search: &mut dyn FnMut(&MachineProfile) -> Box<dyn SearchModule>,
    budget: usize,
    threads: usize,
    store: &mut TuningStore,
) -> Result<Vec<MachineTuneResult>, ApplyError> {
    let mut out = Vec::with_capacity(profiles.len());
    // Batched evaluation of the shared baseline: the untransformed
    // source is measured once per profile, and the profile library
    // varies only runtime knobs (clock, cache geometry, fuel), so one
    // [`CompiledVariant`] lowers it once for the whole fan-out.
    let baseline = Arc::new(CompiledVariant::new(source.clone(), &template.entry));
    for profile in profiles {
        let mut system = template.clone();
        system.machine = Machine::new(profile.config.clone());
        system.set_baseline_variant(Arc::clone(&baseline));
        let mut search = make_search(profile);
        let (result, report) = system.tune_parallel_with_store(
            source,
            locus,
            search.as_mut(),
            budget,
            threads,
            store,
        )?;
        let best_recipe = result.best.as_ref().map(|(point, _, _)| {
            // Re-prepare to specialize the best point; preparation is
            // deterministic, so the space and ids match the tuning run.
            system
                .prepare(source, locus)
                .map(|prepared| system.direct_program(&prepared, point))
                .unwrap_or_default()
        });
        out.push(MachineTuneResult {
            profile: profile.name.to_string(),
            machine_digest: profile.config.digest(),
            result,
            report,
            best_recipe,
        });
    }
    Ok(out)
}

/// The outcome of transferring a stored recipe onto a target machine.
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// The suggested Locus program (retrieved from the store, or the
    /// static fallback when nothing close enough was stored).
    pub recipe: String,
    /// Whether the recipe came from a stored session (as opposed to the
    /// static [`crate::suggest_program`] fallback).
    pub from_store: bool,
    /// Measurement of the transferred variant on the target machine —
    /// exactly one evaluation. `None` when the recipe could not be
    /// applied or the variant failed to run there.
    pub measurement: Option<Measurement>,
    /// Baseline measurement of the untransformed source on the target.
    pub baseline: Measurement,
}

impl TransferOutcome {
    /// Speedup of the transferred variant over the target baseline
    /// (1.0 when the transfer failed — the baseline ships).
    pub fn speedup(&self) -> f64 {
        match &self.measurement {
            Some(m) if m.time_ms > 1e-12 => (self.baseline.time_ms / m.time_ms).max(1.0),
            _ => 1.0,
        }
    }
}

/// Transfers the store's nearest recipe for `region_id` of `source`
/// onto `target`'s machine: retrieve via [`suggest_with_store`] (shape
/// matched, machine-agnostic), apply directly (search-free), and
/// measure once. This is the one-evaluation alternative to a cold
/// search on the target.
///
/// # Errors
///
/// Returns [`ApplyError::Locus`] when `region_id` does not exist in
/// `source` or the target cannot measure the baseline.
pub fn transfer_recipe(
    target: &LocusSystem,
    source: &Program,
    region_id: &str,
    store: &TuningStore,
) -> Result<TransferOutcome, ApplyError> {
    let regions = find_regions(source);
    let region = regions
        .iter()
        .find(|r| r.id == region_id)
        .ok_or_else(|| ApplyError::Locus(format!("no region `{region_id}` in source")))?;
    let stmt = extract_region(source, region)
        .ok_or_else(|| ApplyError::Locus(format!("region `{region_id}` is not extractable")))?
        .stmt;
    let baseline = target
        .measure(source)
        .map_err(|e| ApplyError::Locus(format!("baseline run failed on target: {e}")))?;

    let recipe = suggest_with_store(region_id, &stmt, store);
    let from_store = recipe.starts_with("# retrieved from tuning store");

    let measurement = locus_lang::parse(&recipe)
        .ok()
        .and_then(|locus| target.apply_direct(source, &locus).ok())
        .and_then(|variant| target.measure(&variant).ok())
        // A transferred variant must still be semantically equivalent;
        // refuse silently-wrong transfers just like the tuner does.
        .filter(|m| !target.verify_results || m.checksum == baseline.checksum);

    Ok(TransferOutcome {
        recipe,
        from_store,
        measurement,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_corpus::all_programs;
    use locus_machine::all_profiles;
    use locus_search::ExhaustiveSearch;

    fn temp_store(name: &str) -> TuningStore {
        let path =
            std::env::temp_dir().join(format!("locus-fleet-{name}-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        TuningStore::open(&path).unwrap()
    }

    #[test]
    fn fan_out_files_results_per_machine_digest() {
        let entry = &all_programs()[0]; // dgemm
        let locus = entry.locus_program();
        let profiles = all_profiles();
        let template = LocusSystem::new(Machine::new(profiles[0].config.clone()));
        let mut store = temp_store("fanout");
        let results = tune_across_machines(
            &template,
            &profiles[..2],
            &entry.program,
            &locus,
            &mut |_| Box::new(ExhaustiveSearch::default()),
            6,
            2,
            &mut store,
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        let digests: std::collections::HashSet<u64> =
            results.iter().map(|r| r.machine_digest).collect();
        assert_eq!(digests.len(), 2, "profiles must key separately");
        for r in &results {
            assert!(r.result.outcome.evaluations > 0, "{}", r.profile);
        }
        // Both machines' sessions landed in one store.
        assert!(store.sessions().count() >= 2);
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn transfer_reuses_a_recipe_tuned_on_another_machine() {
        let entry = &all_programs()[0];
        let locus = entry.locus_program();
        let profiles = all_profiles();
        let mut store = temp_store("transfer");

        // Tune on the first profile only.
        let template = LocusSystem::new(Machine::new(profiles[0].config.clone()));
        tune_across_machines(
            &template,
            &profiles[..1],
            &entry.program,
            &locus,
            &mut |_| Box::new(ExhaustiveSearch::default()),
            8,
            2,
            &mut store,
        )
        .unwrap();

        // Transfer to a different machine: one evaluation, no search.
        let target = LocusSystem::new(Machine::new(profiles[1].config.clone()));
        let outcome = transfer_recipe(&target, &entry.program, entry.region, &store).unwrap();
        assert!(
            outcome.from_store,
            "expected a store hit:\n{}",
            outcome.recipe
        );
        assert!(outcome.speedup() >= 1.0);
        let _ = std::fs::remove_file(store.path());
    }
}
