//! The Locus system: direct and search workflows (Fig. 2 of the paper).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Mutex;

use locus_lang::ast::{LItem, LocusProgram};
use locus_lang::interp::{HostError, LocusError};
use locus_lang::{extract_space, Interp};
use locus_machine::{CompiledVariant, Machine, Measurement};
use locus_search::{Objective, SearchModule, SearchOutcome};
use locus_space::{Point, Space};
use locus_srcir::ast::Program;
use locus_srcir::hash::{hash_region, RegionHash};
use locus_srcir::region::{extract_region, find_regions, replace_region};
use locus_trace::{kv, Tracer};

use locus_store::{EvalRecord, PruneRecord, SessionRecord, ShardedStore, StoreKey, TuningStore};

use crate::memo::{MemoCache, MemoStats};
use crate::registry::{is_query, run_query, RegionHost};
use crate::report::TuneReport;

/// Number of proposals drawn per batch by the parallel engine. Fixed —
/// independent of the worker count — so a run's proposal stream, and
/// with it the tuning result, is identical for 1, 2 or 8 threads.
///
/// Defined as [`locus_search::OBSERVATION_BLOCK`]: the block-buffering
/// modules (MCTS, the trace sampler) integrate observations at exactly
/// this granularity, which makes their proposal streams bit-identical
/// between the sequential and the batch-parallel drivers.
pub const PARALLEL_BATCH: usize = locus_search::OBSERVATION_BLOCK;

/// How many prior points a store-backed session feeds to
/// [`SearchModule::seed_observations`] when warm-starting.
pub const WARM_START_K: usize = 8;

/// Errors of the orchestration layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ApplyError {
    /// The Locus program references no region present in the source.
    NoMatchingRegion,
    /// Space extraction failed (e.g. unsubstitutable constructs).
    Extract(String),
    /// Interpreting the optimization program failed.
    Locus(String),
    /// The persistent tuning store could not be read or written.
    Store(String),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::NoMatchingRegion => {
                write!(f, "no code region matches any CodeReg of the program")
            }
            ApplyError::Extract(m) => write!(f, "space extraction failed: {m}"),
            ApplyError::Locus(m) => write!(f, "optimization program failed: {m}"),
            ApplyError::Store(m) => write!(f, "tuning store failed: {m}"),
        }
    }
}

impl Error for ApplyError {}

/// The store a tuning session runs against: either an exclusively
/// owned single-file [`TuningStore`], or the shared lock-striped
/// [`ShardedStore`] many concurrent sessions (the `locusd` daemon's
/// workers) multiplex onto. The driver is indifferent — rehydration,
/// warm start and append-back go through this handle — which is what
/// makes daemon results bit-identical to the library path.
pub enum StoreHandle<'a> {
    /// A caller-owned single-file store (the classic library path).
    Single(&'a mut TuningStore),
    /// A shared sharded store; locking is internal and per stripe.
    Sharded(&'a ShardedStore),
}

impl StoreHandle<'_> {
    fn invalidate_stale(&mut self, current: &HashMap<String, u64>) -> usize {
        match self {
            StoreHandle::Single(s) => s.invalidate_stale(current),
            StoreHandle::Sharded(s) => s.invalidate_stale(current),
        }
    }

    fn for_each_eval(&self, key: &StoreKey, mut f: impl FnMut(&EvalRecord)) {
        match self {
            StoreHandle::Single(s) => s.evals(key).iter().for_each(&mut f),
            StoreHandle::Sharded(s) => s.for_each_eval(key, f),
        }
    }

    fn for_each_prune(&self, key: &StoreKey, mut f: impl FnMut(&PruneRecord)) {
        match self {
            StoreHandle::Single(s) => s.prunes(key).iter().for_each(&mut f),
            StoreHandle::Sharded(s) => s.for_each_prune(key, f),
        }
    }

    fn top_k(&self, key: &StoreKey, k: usize) -> Vec<(Point, f64)> {
        match self {
            StoreHandle::Single(s) => s.top_k(key, k),
            StoreHandle::Sharded(s) => s.top_k(key, k),
        }
    }

    fn append_evals(&mut self, key: &StoreKey, records: &[EvalRecord]) -> std::io::Result<usize> {
        match self {
            StoreHandle::Single(s) => s.append_evals(key, records),
            StoreHandle::Sharded(s) => s.append_evals(key, records),
        }
    }

    fn append_prunes(&mut self, key: &StoreKey, records: &[PruneRecord]) -> std::io::Result<usize> {
        match self {
            StoreHandle::Single(s) => s.append_prunes(key, records),
            StoreHandle::Sharded(s) => s.append_prunes(key, records),
        }
    }

    fn append_session(&mut self, key: &StoreKey, record: SessionRecord) -> std::io::Result<()> {
        match self {
            StoreHandle::Single(s) => s.append_session(key, record),
            StoreHandle::Sharded(s) => s.append_session(key, record),
        }
    }
}

/// A prepared (query-substituted, optimized) Locus program together with
/// its extracted optimization space.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The optimized Locus program all variants are generated from.
    pub locus: LocusProgram,
    /// The optimization space (the `convertOptUniverse` result).
    pub space: Space,
    /// Serial-to-parameter-id mapping for the interpreter.
    pub ids: HashMap<usize, String>,
}

/// The result of building and measuring one variant.
#[derive(Debug, Clone)]
pub enum VariantOutcome {
    /// The variant was built and measured.
    Measured(Box<(Program, Measurement)>),
    /// The point violates a dependent-range constraint.
    Invalid(String),
    /// The static safety verifier refused the point: a transformation's
    /// legality check failed, or an inserted `omp parallel for` races.
    /// The payload is the verifier's reason. Illegal points are *pruned*
    /// — excluded from the search without ever being simulated.
    Illegal(String),
    /// A module failed outright, the variant crashed, or the result
    /// diverged from the baseline.
    Failed(String),
}

/// Result of the search workflow.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Search statistics and best point.
    pub outcome: SearchOutcome,
    /// Measurement of the untransformed baseline.
    pub baseline: Measurement,
    /// Best variant: point, transformed program, and its measurement.
    pub best: Option<(Point, Program, Measurement)>,
    /// Size of the optimization space.
    pub space_size: u128,
}

impl TuneResult {
    /// Speedup of the shipped result over the baseline. The system is
    /// non-prescriptive (Sec. II): when the best variant does not beat
    /// the baseline, the baseline itself ships, so the speedup never
    /// drops below 1.0. Degenerate measurements — a zero or near-zero
    /// time on either side, as an empty kernel produces — report 1.0
    /// rather than infinity, and the ratio is clamped so the value is
    /// always finite.
    pub fn speedup(&self) -> f64 {
        const EPS: f64 = 1e-12;
        const MAX_SPEEDUP: f64 = 1e12;
        match &self.best {
            Some((_, _, m)) if m.time_ms > EPS && self.baseline.time_ms.is_finite() => {
                (self.baseline.time_ms / m.time_ms).clamp(1.0, MAX_SPEEDUP)
            }
            _ => 1.0,
        }
    }
}

/// The Locus system: a simulated machine plus orchestration policy.
#[derive(Debug, Clone)]
pub struct LocusSystem {
    /// The machine variants are measured on.
    pub machine: Machine,
    /// Snippet store for `BuiltIn.Altdesc`.
    pub snippets: HashMap<String, String>,
    /// Whether transformation modules run their legality checks.
    pub check_legality: bool,
    /// Entry function executed to measure a variant.
    pub entry: String,
    /// Whether variants must reproduce the baseline's checksum.
    pub verify_results: bool,
    /// Whether the Sec. IV-C program optimizer (constant propagation,
    /// folding, DCE) runs during [`LocusSystem::prepare`]. On by
    /// default; the ablation benches turn it off to measure its effect
    /// on space size and search time.
    pub optimize_programs: bool,
    /// Pre-compiled handle for the tuning *source* (batched
    /// evaluation): when set and it wraps exactly the source and entry
    /// a driver is about to baseline, the measurement goes through the
    /// handle's compile memo instead of re-lowering. The fleet driver
    /// shares one across machine profiles — the source compiles once
    /// for the whole fan-out. Ignored (with a fresh lowering) whenever
    /// the wrapped program differs from the measured one.
    baseline_variant: Option<std::sync::Arc<CompiledVariant>>,
}

impl LocusSystem {
    /// Creates a system over a machine with default policy: legality
    /// checks on, result verification on, entry point `kernel`.
    pub fn new(machine: Machine) -> LocusSystem {
        LocusSystem {
            machine,
            snippets: HashMap::new(),
            check_legality: true,
            entry: "kernel".to_string(),
            verify_results: true,
            optimize_programs: true,
            baseline_variant: None,
        }
    }

    /// Shares a pre-compiled source handle with this system (see the
    /// `baseline_variant` field): subsequent baseline measurements of
    /// that exact program reuse its compiled code across machine
    /// configurations instead of re-lowering per run.
    pub fn set_baseline_variant(&mut self, variant: std::sync::Arc<CompiledVariant>) {
        self.baseline_variant = Some(variant);
    }

    /// Prepares a Locus program for a given source: substitutes queries
    /// per `CodeReg` (Sec. IV-C), runs the program optimizer, and
    /// extracts the space.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError::Extract`] when a search construct cannot be
    /// statically bounded even after query substitution.
    pub fn prepare(&self, source: &Program, locus: &LocusProgram) -> Result<Prepared, ApplyError> {
        let mut locus = locus.clone();
        let regions = find_regions(source);

        // Per-CodeReg selective query substitution against the first
        // matching region: only queries whose results reach search
        // constructs or control flow are pre-evaluated (Sec. IV-C); the
        // rest (e.g. Fig. 13's `innerloops`) run live per variant so
        // they observe earlier transformations.
        for item in &mut locus.items {
            let LItem::CodeReg { name, body } = item else {
                continue;
            };
            let Some(region) = regions.iter().find(|r| &r.id == name) else {
                continue;
            };
            let Some(code) = extract_region(source, region) else {
                continue;
            };
            crate::subst::substitute_needed_queries(body, &mut |module, func| {
                if is_query(module, func) {
                    run_query(&code.stmt, module, func)
                } else {
                    None
                }
            });
        }

        if self.optimize_programs {
            locus_lang::optimize::optimize(&mut locus);
        }
        let info = extract_space(&locus).map_err(|e| ApplyError::Extract(e.to_string()))?;
        Ok(Prepared {
            locus,
            space: info.space,
            ids: info.ids,
        })
    }

    /// A [`locus_search::LegalityOracle`] over this system: `true` iff
    /// the point decodes and passes verification (`verify::legal`).
    /// Both tuning drivers attach the same oracle on every path, so
    /// pruning-aware modules behave identically under each; the oracle
    /// is an optimization hook only — a module must also cope with
    /// `Objective::Invalid` feedback for points that slip through.
    fn legality_oracle(
        &self,
        source: &Program,
        prepared: &Prepared,
    ) -> locus_search::LegalityOracle {
        let sys = self.clone();
        let source = source.clone();
        let prepared = prepared.clone();
        std::sync::Arc::new(move |point: &Point| {
            sys.build_variant(&source, &prepared, point).is_ok()
        })
    }

    /// Builds the variant a point denotes: runs the optimization program
    /// on every matching region of (a clone of) the source.
    pub fn build_variant(
        &self,
        source: &Program,
        prepared: &Prepared,
        point: &Point,
    ) -> Result<Program, VariantOutcome> {
        let mut program = source.clone();
        let regions = find_regions(&program);
        let mut matched = false;
        for region in &regions {
            if prepared.locus.codereg(&region.id).is_none() {
                continue;
            }
            matched = true;
            let Some(code) = extract_region(&program, region) else {
                continue;
            };
            let mut stmt = code.stmt;
            {
                let mut host = RegionHost::new(&mut stmt, &self.snippets);
                host.check_legality = self.check_legality;
                let mut interp = Interp::new(&prepared.locus, &mut host, point, &prepared.ids);
                match interp.run_codereg(&region.id) {
                    Ok(()) => {}
                    Err(LocusError::InvalidPoint(m)) => {
                        return Err(VariantOutcome::Invalid(m));
                    }
                    Err(LocusError::Host(HostError::Illegal(m))) => {
                        return Err(VariantOutcome::Illegal(m));
                    }
                    Err(e) => return Err(VariantOutcome::Failed(e.to_string())),
                }
            }
            replace_region(&mut program, region, stmt);
        }
        if !matched {
            return Err(VariantOutcome::Failed(
                ApplyError::NoMatchingRegion.to_string(),
            ));
        }
        Ok(program)
    }

    /// Measures a program on the system's machine.
    ///
    /// # Errors
    ///
    /// Propagates the interpreter's runtime errors.
    pub fn measure(&self, program: &Program) -> Result<Measurement, locus_machine::RuntimeError> {
        self.machine.run(program, &self.entry)
    }

    /// Measures `source` for a baseline, routing through the shared
    /// [`CompiledVariant`] when one is set for exactly this program and
    /// entry (bit-identical to [`LocusSystem::measure`] either way —
    /// the batched path's contract).
    fn measure_baseline(
        &self,
        source: &Program,
    ) -> Result<Measurement, locus_machine::RuntimeError> {
        if let Some(v) = &self.baseline_variant {
            if v.entry() == self.entry && v.program() == source {
                return v.run(self.machine.config());
            }
        }
        self.measure(source)
    }

    /// Builds and measures the variant of one point, verifying the
    /// result against `expected_checksum` when verification is on.
    pub fn evaluate_point(
        &self,
        source: &Program,
        prepared: &Prepared,
        point: &Point,
        expected_checksum: Option<u64>,
    ) -> VariantOutcome {
        let program = match self.build_variant(source, prepared, point) {
            Ok(p) => p,
            Err(outcome) => return outcome,
        };
        match self.measure(&program) {
            Ok(m) => {
                if self.verify_results {
                    if let Some(expect) = expected_checksum {
                        if m.checksum != expect {
                            return VariantOutcome::Failed(format!(
                                "variant checksum {:016x} diverged from baseline {expect:016x}",
                                m.checksum
                            ));
                        }
                    }
                }
                VariantOutcome::Measured(Box::new((program, m)))
            }
            Err(e) => VariantOutcome::Failed(e.to_string()),
        }
    }

    /// Renders the *direct* Locus program a chosen point denotes — the
    /// artifact the paper ships alongside the baseline source so the
    /// tuning result can be reused "for machines with similar
    /// environments" (Sec. II). The result contains no search
    /// constructs; running it through [`LocusSystem::apply_direct`]
    /// reproduces the winning variant.
    pub fn direct_program(&self, prepared: &Prepared, point: &Point) -> String {
        let specialized = locus_lang::specialize(&prepared.locus, point, &prepared.ids);
        locus_lang::print_program(&specialized)
    }

    /// The direct workflow (Fig. 2, top): applies the program with
    /// default choices for any search construct and returns the
    /// optimized source.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when the program cannot be prepared or a
    /// module invocation fails.
    pub fn apply_direct(
        &self,
        source: &Program,
        locus: &LocusProgram,
    ) -> Result<Program, ApplyError> {
        let prepared = self.prepare(source, locus)?;
        match self.build_variant(source, &prepared, &Point::new()) {
            Ok(p) => Ok(p),
            Err(VariantOutcome::Invalid(m))
            | Err(VariantOutcome::Illegal(m))
            | Err(VariantOutcome::Failed(m)) => Err(ApplyError::Locus(m)),
            Err(VariantOutcome::Measured(_)) => unreachable!("build never measures"),
        }
    }

    /// The search workflow (Fig. 2, bottom): converts the space, drives
    /// the search module for `budget` evaluations, and returns the best
    /// variant together with the baseline measurement.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when preparation fails or the baseline
    /// cannot be measured.
    pub fn tune(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
    ) -> Result<TuneResult, ApplyError> {
        let prepared = self.prepare(source, locus)?;
        let baseline = self
            .measure(source)
            .map_err(|e| ApplyError::Locus(format!("baseline run failed: {e}")))?;
        let expected = baseline.checksum;

        search.attach_pruner(&self.legality_oracle(source, &prepared));
        let mut evaluate = |point: &Point| -> Objective {
            match self.evaluate_point(source, &prepared, point, Some(expected)) {
                VariantOutcome::Measured(boxed) => Objective::Value(boxed.1.time_ms),
                // Statically refused points are invalid like
                // constraint-violating ones: the search skips them.
                VariantOutcome::Invalid(_) | VariantOutcome::Illegal(_) => Objective::Invalid,
                VariantOutcome::Failed(_) => Objective::Error,
            }
        };
        let outcome = search.search(&prepared.space, budget, &mut evaluate);

        let best = outcome.best.clone().and_then(|(point, _)| {
            match self.evaluate_point(source, &prepared, &point, Some(expected)) {
                VariantOutcome::Measured(boxed) => {
                    let (program, m) = *boxed;
                    Some((point, program, m))
                }
                _ => None,
            }
        });

        Ok(TuneResult {
            outcome,
            baseline,
            best,
            space_size: prepared.space.size(),
        })
    }

    /// The parallel search workflow: like [`LocusSystem::tune`], but
    /// each batch of proposals is evaluated by a pool of `threads`
    /// worker threads sharing a two-level [`MemoCache`], so duplicate
    /// points — and distinct points denoting the *same* variant — are
    /// measured exactly once.
    ///
    /// Determinism: proposals are drawn in batches of
    /// [`PARALLEL_BATCH`] regardless of `threads`, workers only compute
    /// objectives (the simulated machine is deterministic), and results
    /// are merged back in proposal order through the same
    /// [`locus_search::Bookkeeper`] the sequential driver uses. For
    /// search modules whose proposals do not depend on observations
    /// (exhaustive, seeded random) the outcome is bit-identical to
    /// [`LocusSystem::tune`]; for every module it is bit-identical
    /// across thread counts.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when preparation fails or the baseline
    /// cannot be measured.
    pub fn tune_parallel(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
        threads: usize,
    ) -> Result<TuneResult, ApplyError> {
        self.tune_parallel_with_cache(source, locus, search, budget, threads)
            .map(|(result, _)| result)
    }

    /// [`LocusSystem::tune_parallel`], additionally reporting the memo
    /// cache statistics of the run.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when preparation fails or the baseline
    /// cannot be measured.
    pub fn tune_parallel_with_cache(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
        threads: usize,
    ) -> Result<(TuneResult, MemoStats), ApplyError> {
        let cache = MemoCache::new();
        let result = self.tune_parallel_shared(source, locus, search, budget, threads, &cache)?;
        Ok((result, cache.stats()))
    }

    /// [`LocusSystem::tune_parallel`] returning the full session
    /// [`TuneReport`] — most importantly
    /// [`TuneReport::pruned_illegal`], the number of proposals the
    /// static safety verifier rejected *before* simulation. Store-less
    /// sessions that want pruning visibility use this; store-backed
    /// ones get the same report from
    /// [`LocusSystem::tune_parallel_with_store`].
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when preparation fails or the baseline
    /// cannot be measured.
    pub fn tune_parallel_with_report(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
        threads: usize,
    ) -> Result<(TuneResult, TuneReport), ApplyError> {
        let cache = MemoCache::new();
        self.tune_parallel_driver(
            source,
            locus,
            search,
            budget,
            threads,
            &cache,
            None,
            &Tracer::disabled(),
        )
    }

    /// [`LocusSystem::tune_parallel_with_report`] with a
    /// [`locus_trace::Tracer`] attached. When the tracer is enabled the
    /// driver emits, into it:
    ///
    /// * `phase` spans bracketing every pipeline stage — prepare,
    ///   baseline, store rehydration, warm start, and per batch the
    ///   propose / build-verify / measure / merge stages, then
    ///   finalize-best and store-append;
    /// * one `eval` instant event per merged proposal, carrying the
    ///   point's canonical key, its variant digest, where the objective
    ///   came from (fresh measurement, session memo, store, coalesced,
    ///   pruned), the verdict and the measured milliseconds;
    /// * `verify` events for every statically pruned point (with the
    ///   verifier's reason), `machine` spans from the worker threads
    ///   (merged deterministically in evaluation-slot order), `search`
    ///   events from the module's own decisions, and a final `session`
    ///   summary with the complete [`TuneReport`] accounting.
    ///
    /// Tracing is observation-only: for the same inputs the returned
    /// [`TuneResult`] is bit-identical whether the tracer is enabled,
    /// disabled, or absent (asserted by the parallel determinism suite).
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when preparation fails or the baseline
    /// cannot be measured.
    pub fn tune_parallel_with_tracer(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
        threads: usize,
        tracer: &Tracer,
    ) -> Result<(TuneResult, TuneReport), ApplyError> {
        let cache = MemoCache::new();
        self.tune_parallel_driver(source, locus, search, budget, threads, &cache, None, tracer)
    }

    /// The store-backed search workflow: [`LocusSystem::tune_parallel`]
    /// against a persistent [`TuningStore`], closing the loop the paper
    /// opens in Sec. II (shipping tuning results for reuse). Before the
    /// search starts the driver:
    ///
    /// 1. **checks coherence** — store entries recorded for region
    ///    contents that have since been edited are invalidated
    ///    ([`TuningStore::invalidate_stale`]); entries of unchanged
    ///    sibling regions stay live;
    /// 2. **rehydrates** the session's [`MemoCache`] with every prior
    ///    evaluation of this exact `(regions, machine, space)` context,
    ///    so previously assessed proposals are answered from disk — a
    ///    repeat session over unchanged code re-measures nothing;
    /// 3. **warm-starts** the search module with the store's
    ///    [`WARM_START_K`] best prior points via
    ///    [`SearchModule::seed_observations`].
    ///
    /// Every fresh measurement is appended to the store — as is every
    /// *prune* (a point the static safety verifier refused before
    /// simulation), so warm sessions replay refusals from disk — along
    /// with a session summary (region profile, winning point, and the
    /// direct recipe it denotes) that
    /// [`crate::suggest::suggest_with_store`] retrieves for structurally
    /// similar regions.
    ///
    /// Determinism: prior points are fed best-first with canonical-key
    /// tie-breaks and objectives are persisted bit-exactly, so the same
    /// store file plus the same search seed reproduce the same
    /// trajectory and the same best point.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when preparation fails, the baseline
    /// cannot be measured, or ([`ApplyError::Store`]) the store cannot
    /// be written.
    pub fn tune_parallel_with_store(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
        threads: usize,
        store: &mut TuningStore,
    ) -> Result<(TuneResult, TuneReport), ApplyError> {
        let cache = MemoCache::new();
        self.tune_parallel_driver(
            source,
            locus,
            search,
            budget,
            threads,
            &cache,
            Some(StoreHandle::Single(store)),
            &Tracer::disabled(),
        )
    }

    /// [`LocusSystem::tune_parallel_with_store`] against the shared
    /// lock-striped [`ShardedStore`] of a tuning service: the store is
    /// taken by `&self`, so any number of concurrent sessions — the
    /// `locusd` daemon's worker threads — run against one process-wide
    /// store at once. Each session locks only the stripe holding its
    /// own `(regions, machine, space)` records, during rehydration,
    /// warm start and append-back; the batch loop in between holds no
    /// store lock at all.
    ///
    /// For the same inputs over the same store contents, the result is
    /// bit-identical to the single-store path — the driver behind both
    /// is the same, only the handle differs.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when preparation fails, the baseline
    /// cannot be measured, or ([`ApplyError::Store`]) a shard cannot be
    /// written.
    #[allow(clippy::too_many_arguments)]
    pub fn tune_parallel_with_sharded_store(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
        threads: usize,
        store: &ShardedStore,
        tracer: &Tracer,
    ) -> Result<(TuneResult, TuneReport), ApplyError> {
        let cache = MemoCache::new();
        self.tune_parallel_driver(
            source,
            locus,
            search,
            budget,
            threads,
            &cache,
            Some(StoreHandle::Sharded(store)),
            tracer,
        )
    }

    /// [`LocusSystem::tune_parallel_with_store`] with a
    /// [`locus_trace::Tracer`] attached — the store workflow's analogue
    /// of [`LocusSystem::tune_parallel_with_tracer`], emitting the same
    /// phase spans and per-evaluation events plus the store rehydration
    /// and append-back stages.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when preparation fails, the baseline
    /// cannot be measured, or ([`ApplyError::Store`]) the store cannot
    /// be written.
    #[allow(clippy::too_many_arguments)]
    pub fn tune_parallel_with_store_and_tracer(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
        threads: usize,
        store: &mut TuningStore,
        tracer: &Tracer,
    ) -> Result<(TuneResult, TuneReport), ApplyError> {
        let cache = MemoCache::new();
        self.tune_parallel_driver(
            source,
            locus,
            search,
            budget,
            threads,
            &cache,
            Some(StoreHandle::Single(store)),
            tracer,
        )
    }

    /// The [`StoreKey`] a tuning session of `source` under `prepared`
    /// files its records under: the hashes of the regions the program
    /// actually matches, plus machine and space digests.
    pub fn store_key(&self, source: &Program, prepared: &Prepared) -> StoreKey {
        let regions = matched_regions(source, prepared);
        StoreKey::new(
            regions
                .into_iter()
                .map(|(id, hash, _)| (id, hash))
                .collect(),
            self.machine.digest(),
            prepared.space.digest(),
        )
    }

    /// [`LocusSystem::tune_parallel`] against a caller-owned
    /// [`MemoCache`], so several tuning runs of one session — different
    /// search modules or seeds over the same source and machine — share
    /// measurements: a variant assessed by any earlier run is never
    /// measured again (the OpenTuner-memoization effect the paper
    /// credits in Sec. IV-B).
    ///
    /// Cache entries record objectives of *this* system's machine;
    /// sharing a cache between systems with different machine
    /// configurations would return stale measurements. Use one cache per
    /// (source, machine) pair.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyError`] when preparation fails or the baseline
    /// cannot be measured.
    pub fn tune_parallel_shared(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
        threads: usize,
        cache: &MemoCache,
    ) -> Result<TuneResult, ApplyError> {
        self.tune_parallel_driver(
            source,
            locus,
            search,
            budget,
            threads,
            cache,
            None,
            &Tracer::disabled(),
        )
        .map(|(result, _)| result)
    }

    /// The shared parallel driver behind every `tune_parallel*` entry
    /// point. With a store, the session is bracketed by rehydration /
    /// warm-start on the way in and append-back on the way out; the
    /// batch loop itself is identical either way.
    #[allow(clippy::too_many_arguments)]
    fn tune_parallel_driver(
        &self,
        source: &Program,
        locus: &LocusProgram,
        search: &mut dyn SearchModule,
        budget: usize,
        threads: usize,
        cache: &MemoCache,
        mut store: Option<StoreHandle<'_>>,
        tracer: &Tracer,
    ) -> Result<(TuneResult, TuneReport), ApplyError> {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let prepared = {
            let _span = tracer.span("phase", "prepare");
            self.prepare(source, locus)?
        };
        let baseline = {
            let _span = tracer.span("phase", "baseline");
            self.measure_baseline(source)
                .map_err(|e| ApplyError::Locus(format!("baseline run failed: {e}")))?
        };
        let expected = baseline.checksum;
        let threads = threads.max(1);
        let mut report = TuneReport::default();

        // Store session prologue: coherence check, cache rehydration.
        let store_key = store.as_ref().map(|_| self.store_key(source, &prepared));
        if let (Some(store), Some(key)) = (store.as_mut(), store_key.as_ref()) {
            let _span = tracer.span("phase", "store-rehydrate");
            let current: HashMap<String, u64> = region_hashes(source)
                .into_iter()
                .map(|(id, hash)| (id, hash.0))
                .collect();
            report.invalidated = store.invalidate_stale(&current);
            store.for_each_eval(key, |record| {
                cache.seed(&record.point_key, record.variant, record.objective);
                report.rehydrated += 1;
            });
            // Prior static refusals replay from disk too: a warm
            // session neither re-analyzes nor re-proposes known-racy
            // points.
            store.for_each_prune(key, |prune| {
                cache.seed(&prune.point_key, prune.variant, Objective::Invalid);
                report.rehydrated += 1;
            });
        }

        search.attach_tracer(tracer);
        search.attach_pruner(&self.legality_oracle(source, &prepared));
        search.begin(&prepared.space, budget);
        if let (Some(store), Some(key)) = (store.as_ref(), store_key.as_ref()) {
            let _span = tracer.span("phase", "warm-start");
            let prior = store.top_k(key, WARM_START_K);
            report.seeded = prior.len();
            if !prior.is_empty() {
                search.seed_observations(&prepared.space, &prior);
            }
        }

        // Tracing-only state: per-point objectives for the top-variant
        // epilogue events. Populated only when the tracer is enabled, so
        // the untraced driver allocates nothing here.
        let mut traced_best: HashMap<String, (f64, Point)> = HashMap::new();
        let mut eval_index: u64 = 0;
        let search_name = search.name().to_string();
        let mut fresh_records: Vec<EvalRecord> = Vec::new();
        // Every variant built this run, keyed by its digest and held as
        // a [`CompiledVariant`]: workers measure through these, and the
        // finalize step reuses the winner's compiled code. The programs
        // are small region kernels, so holding them for the run is
        // cheap next to even one simulation.
        let mut compiled: HashMap<u64, std::sync::Arc<CompiledVariant>> = HashMap::new();
        let mut fresh_prunes: Vec<PruneRecord> = Vec::new();

        let mut book = locus_search::Bookkeeper::new(budget);
        'driver: while !book.done() {
            let batch = {
                let _span = tracer.span("phase", "propose");
                search.propose_batch(&prepared.space, PARALLEL_BATCH)
            };
            if batch.is_empty() {
                break;
            }
            report.proposed += batch.len();

            // Resolve every proposal against the cache, then *build*
            // each new variant on this thread: the build runs the
            // optimization program, and with it every legality check
            // and the race analyzer, so statically refused points are
            // pruned here — before a worker thread ever simulates
            // anything. What reaches the pool is one built program per
            // *new, legal* variant digest.
            let mut batch_variant: Vec<u64> = Vec::with_capacity(batch.len());
            // One origin label per proposal, read back by the merge
            // loop's `eval` events. When the tracer is disabled the
            // labels are never read; pushing `&'static str`s is free.
            let mut batch_origin: Vec<&'static str> = Vec::with_capacity(batch.len());
            let mut to_measure: Vec<(u64, Point, std::sync::Arc<CompiledVariant>)> = Vec::new();
            let mut measuring = std::collections::HashSet::new();
            let build_span = tracer.span("phase", "build-verify");
            for point in &batch {
                let variant =
                    locus_srcir::hash::fnv1a(self.direct_program(&prepared, point).as_bytes());
                batch_variant.push(variant);
                if cache.lookup_point(point).is_some() || cache.lookup_variant(variant).is_some() {
                    batch_origin.push(if tracer.is_enabled() {
                        cache.peek_origin(point, variant).unwrap_or("session")
                    } else {
                        "hit"
                    });
                    continue;
                }
                if !measuring.insert(variant) {
                    cache.note_coalesced();
                    batch_origin.push("coalesced");
                    continue;
                }
                let start = std::time::Instant::now();
                match self.build_variant(source, &prepared, point) {
                    Ok(program) => {
                        batch_origin.push("fresh");
                        // Wrap for batched evaluation: the worker that
                        // measures it compiles it (off the main thread),
                        // and the finalize step below re-measures the
                        // winner through the same memo — no re-lowering.
                        let cv = std::sync::Arc::new(CompiledVariant::new(program, &self.entry));
                        compiled.insert(variant, std::sync::Arc::clone(&cv));
                        to_measure.push((variant, point.clone(), cv));
                    }
                    Err(VariantOutcome::Illegal(reason)) => {
                        // Pruned: no measurement happened, so no
                        // `note_miss` — the point simply never costs an
                        // evaluation.
                        batch_origin.push("pruned");
                        let provenance = locus_verify::refusal_provenance(&reason);
                        tracer.instant("verify", "prune", || {
                            vec![
                                kv("point", point.canonical_key()),
                                kv("category", locus_verify::refusal_category(&reason)),
                                kv("provenance", provenance),
                                kv("reason", reason.clone()),
                            ]
                        });
                        cache.insert(point, variant, Objective::Invalid);
                        report.pruned_illegal += 1;
                        if store.is_some() {
                            fresh_prunes.push(PruneRecord {
                                point_key: point.canonical_key(),
                                variant,
                                reason,
                                provenance: provenance.to_string(),
                                search: search_name.clone(),
                            });
                        }
                    }
                    Err(outcome) => {
                        // Build-time invalid/failed points keep the
                        // ordinary evaluation accounting.
                        let objective = match outcome {
                            VariantOutcome::Invalid(_) => Objective::Invalid,
                            _ => Objective::Error,
                        };
                        batch_origin.push(match objective {
                            Objective::Invalid => "invalid",
                            _ => "error",
                        });
                        cache.note_miss();
                        cache.insert(point, variant, objective);
                        if store.is_some() {
                            fresh_records.push(EvalRecord {
                                point_key: point.canonical_key(),
                                variant,
                                objective,
                                cycles: 0.0,
                                ops: 0,
                                flops: 0,
                                checksum: 0,
                                search: search_name.clone(),
                                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                            });
                        }
                    }
                }
            }
            drop(build_span);

            // Fan the fresh measurements out over the worker pool. Each
            // worker owns a clone of the system (and thus the machine);
            // an atomic cursor deals work out. Workers only *measure* —
            // every program handed to them was built (and statically
            // vetted) on the main thread above.
            if !to_measure.is_empty() {
                let _span = tracer.span("phase", "measure");
                let work = &to_measure;
                let cursor = AtomicUsize::new(0);
                let cursor = &cursor;
                let results: Vec<Mutex<Option<(Objective, MeasureSummary)>>> =
                    work.iter().map(|_| Mutex::new(None)).collect();
                let results = &results;
                // One scoped child tracer per work *slot* (not per worker
                // thread): whichever thread measures slot `i` records into
                // slot `i`'s buffer, so absorbing the buffers in slot order
                // below merges worker-side spans deterministically no
                // matter how the scheduler dealt the work out.
                let slot_tracers: Vec<Tracer> = (0..work.len())
                    .map(|i| tracer.scoped(i as u64 + 1))
                    .collect();
                let slot_tracers = &slot_tracers;
                std::thread::scope(|scope| {
                    for _ in 0..threads.min(work.len()) {
                        let sys = self.clone();
                        scope.spawn(move || loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some((_, _, variant)) = work.get(i) else {
                                break;
                            };
                            let start = std::time::Instant::now();
                            let (objective, mut summary) =
                                match variant.run_traced(sys.machine.config(), &slot_tracers[i]) {
                                    Ok(m) if sys.verify_results && m.checksum != expected => {
                                        (Objective::Error, MeasureSummary::default())
                                    }
                                    Ok(m) => (
                                        Objective::Value(m.time_ms),
                                        MeasureSummary {
                                            cycles: m.cycles,
                                            ops: m.ops,
                                            flops: m.flops,
                                            checksum: m.checksum,
                                            wall_ms: 0.0,
                                        },
                                    ),
                                    Err(_) => (Objective::Error, MeasureSummary::default()),
                                };
                            summary.wall_ms = start.elapsed().as_secs_f64() * 1e3;
                            *results[i].lock().expect("result slot") = Some((objective, summary));
                        });
                    }
                });
                for slot in slot_tracers {
                    tracer.absorb(slot.drain());
                }
                for ((variant, point, _), slot) in work.iter().zip(results) {
                    let (objective, summary) = slot
                        .lock()
                        .expect("result slot")
                        .expect("worker filled every dealt slot");
                    cache.note_miss();
                    cache.insert(point, *variant, objective);
                    if store.is_some() {
                        fresh_records.push(EvalRecord {
                            point_key: point.canonical_key(),
                            variant: *variant,
                            objective,
                            cycles: summary.cycles,
                            ops: summary.ops,
                            flops: summary.flops,
                            checksum: summary.checksum,
                            search: search_name.clone(),
                            wall_ms: summary.wall_ms,
                        });
                    }
                }
            }

            // Deterministic merge: feed results back in proposal order
            // through the same bookkeeping the sequential driver uses.
            let _span = tracer.span("phase", "merge");
            for ((point, variant), origin) in batch.iter().zip(&batch_variant).zip(&batch_origin) {
                if book.done() {
                    break 'driver;
                }
                let objective = cache
                    .peek_variant(*variant)
                    .or_else(|| cache.peek_point(point))
                    .expect("every batch point resolved");
                cache.insert_point(point, objective);
                let (recorded, fresh) = book.record(point, |_| objective);
                if tracer.is_enabled() {
                    eval_index += 1;
                    let (value, verdict) = match recorded {
                        Objective::Value(v) => (Some(v), "ok"),
                        Objective::Invalid => (None, "invalid"),
                        Objective::Error => (None, "error"),
                    };
                    let key = point.canonical_key();
                    if let Some(v) = value {
                        traced_best
                            .entry(key.clone())
                            .or_insert_with(|| (v, point.clone()));
                    }
                    tracer.instant("eval", "point", || {
                        let mut args = vec![
                            kv("index", eval_index),
                            kv("point", key),
                            kv("variant", format!("{variant:016x}")),
                            kv("origin", *origin),
                            kv("verdict", verdict),
                            kv("fresh", fresh),
                        ];
                        if let Some(v) = value {
                            args.push(kv("ms", v));
                        }
                        args
                    });
                }
                search.observe(point, recorded, fresh);
            }
        }
        let outcome = book.finish();

        let best = {
            let _span = tracer.span("phase", "finalize-best");
            outcome.best.clone().and_then(|(point, _)| {
                // When the winner was built (and therefore compiled)
                // this run, re-measure through its memoized code; a
                // winner resolved purely from rehydrated records was
                // never built here and takes the build-and-measure
                // path.
                let digest =
                    locus_srcir::hash::fnv1a(self.direct_program(&prepared, &point).as_bytes());
                if let Some(cv) = compiled.get(&digest) {
                    return match cv.run(self.machine.config()) {
                        Ok(m) if !self.verify_results || m.checksum == expected => {
                            Some((point, cv.program().clone(), m))
                        }
                        _ => None,
                    };
                }
                match self.evaluate_point(source, &prepared, &point, Some(expected)) {
                    VariantOutcome::Measured(boxed) => {
                        let (program, m) = *boxed;
                        Some((point, program, m))
                    }
                    _ => None,
                }
            })
        };

        // Store session epilogue: persist fresh measurements and a
        // session summary (region profile + winning recipe) the
        // suggester can retrieve later.
        if let (Some(mut store), Some(key)) = (store, store_key.as_ref()) {
            let _span = tracer.span("phase", "store-append");
            report.appended = store
                .append_evals(key, &fresh_records)
                .map_err(|e| ApplyError::Store(e.to_string()))?;
            report.appended += store
                .append_prunes(key, &fresh_prunes)
                .map_err(|e| ApplyError::Store(e.to_string()))?;
            if let Some((point, _, m)) = &best {
                let recipe = self.direct_program(&prepared, point);
                for (id, _, stmt) in matched_regions(source, &prepared) {
                    let profile = crate::suggest::profile_region(&stmt);
                    store
                        .append_session(
                            key,
                            SessionRecord {
                                region: id,
                                shape: profile.shape(),
                                best_point: point.canonical_key(),
                                best_ms: m.time_ms,
                                recipe: recipe.clone(),
                                search: search_name.clone(),
                            },
                        )
                        .map_err(|e| ApplyError::Store(e.to_string()))?;
                }
            }
        }
        report.memo = cache.stats();

        // Trace epilogue: the top variants (with their shippable direct
        // recipes) and a session summary carrying the full report
        // accounting — the raw material of `locus-report`.
        if tracer.is_enabled() {
            let mut ranked: Vec<(&String, &(f64, Point))> = traced_best.iter().collect();
            ranked.sort_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then_with(|| a.0.cmp(b.0)));
            for (rank, (key, (ms, point))) in ranked.into_iter().take(3).enumerate() {
                let recipe = self.direct_program(&prepared, point);
                tracer.instant("eval", "top-variant", || {
                    vec![
                        kv("rank", (rank + 1) as u64),
                        kv("point", key.as_str()),
                        kv("ms", *ms),
                        kv("recipe", recipe),
                    ]
                });
            }
            let best_ms = best.as_ref().map(|(_, _, m)| m.time_ms);
            tracer.instant("session", "summary", || {
                let mut args = vec![
                    kv("search", search_name.as_str()),
                    kv("budget", budget as u64),
                    kv("threads", threads as u64),
                    kv("space_size", format!("{}", prepared.space.size())),
                    kv("proposed", report.proposed as u64),
                    kv("evaluations", report.evaluations() as u64),
                    kv("memo_hits", report.memo_hits() as u64),
                    kv("store_hits", report.store_hits() as u64),
                    kv("pruned_illegal", report.pruned_illegal as u64),
                    kv("rehydrated", report.rehydrated as u64),
                    kv("seeded", report.seeded as u64),
                    kv("appended", report.appended as u64),
                    kv("baseline_ms", baseline.time_ms),
                    kv("machine_digest", format!("{:016x}", self.machine.digest())),
                    kv("space_digest", format!("{:016x}", prepared.space.digest())),
                ];
                if let Some(ms) = best_ms {
                    args.push(kv("best_ms", ms));
                }
                args
            });
        }

        Ok((
            TuneResult {
                outcome,
                baseline,
                best,
                space_size: prepared.space.size(),
            },
            report,
        ))
    }
}

/// Measurement summary workers hand back alongside the objective — the
/// payload of the store's evaluation records.
#[derive(Debug, Clone, Copy, Default)]
struct MeasureSummary {
    cycles: f64,
    ops: u64,
    flops: u64,
    checksum: u64,
    wall_ms: f64,
}

/// The regions of `source` the prepared program actually matches, as
/// `(id, content hash, region root)` triples sorted by id — the region
/// component of a session's [`StoreKey`].
fn matched_regions(
    source: &Program,
    prepared: &Prepared,
) -> Vec<(String, u64, locus_srcir::ast::Stmt)> {
    let mut out: Vec<(String, u64, locus_srcir::ast::Stmt)> = Vec::new();
    for region in find_regions(source) {
        if prepared.locus.codereg(&region.id).is_none() {
            continue;
        }
        if out.iter().any(|(id, _, _)| id == &region.id) {
            continue;
        }
        if let Some(code) = extract_region(source, &region) {
            out.push((region.id.clone(), hash_region(&code.stmt).0, code.stmt));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Checks stored region hashes against the current source (the coherence
/// mechanism of Sec. II). Returns a warning per changed or missing
/// region.
pub fn check_coherence(source: &Program, stored: &HashMap<String, RegionHash>) -> Vec<String> {
    let regions = find_regions(source);
    let mut warnings = Vec::new();
    for (id, expected) in stored {
        let found: Vec<_> = regions.iter().filter(|r| &r.id == id).collect();
        if found.is_empty() {
            warnings.push(format!("region `{id}` no longer exists in the source"));
            continue;
        }
        for r in found {
            if let Some(code) = extract_region(source, r) {
                let current = hash_region(&code.stmt);
                if current != *expected {
                    warnings.push(format!(
                        "region `{id}` changed (stored {expected}, current {current}); \
                         stored optimizations may no longer apply"
                    ));
                }
            }
        }
    }
    warnings
}

/// Computes the hashes of every region for storing alongside a Locus
/// program.
pub fn region_hashes(source: &Program) -> HashMap<String, RegionHash> {
    let mut out = HashMap::new();
    for r in find_regions(source) {
        if let Some(code) = extract_region(source, &r) {
            out.entry(r.id.clone())
                .or_insert_with(|| hash_region(&code.stmt));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_machine::MachineConfig;
    use locus_search::BanditTuner;
    use locus_srcir::parse_program;

    const MATMUL_SRC: &str = r#"
    double C[32][32];
    double A[32][32];
    double B[32][32];
    void kernel() {
        int i;
        int j;
        int k;
        #pragma @Locus loop=matmul
        for (i = 0; i < 32; i++)
            for (j = 0; j < 32; j++)
                for (k = 0; k < 32; k++)
                    C[i][j] = C[i][j] + A[i][k] * B[k][j];
    }
    "#;

    fn system() -> LocusSystem {
        LocusSystem::new(Machine::new(MachineConfig::scaled_small().with_cores(1)))
    }

    #[test]
    fn direct_workflow_applies_fixed_sequence() {
        let source = parse_program(MATMUL_SRC).unwrap();
        let locus = locus_lang::parse(
            r#"CodeReg matmul {
                RoseLocus.Interchange(order=[0, 2, 1]);
                Pips.Tiling(loop="0", factor=[8, 8, 8]);
            }"#,
        )
        .unwrap();
        let sys = system();
        let optimized = sys.apply_direct(&source, &locus).unwrap();
        let regions = find_regions(&optimized);
        assert_eq!(regions.len(), 1, "region annotation preserved");
        let stmt = extract_region(&optimized, &regions[0]).unwrap().stmt;
        assert_eq!(locus_analysis::loops::all_loops(&stmt).len(), 6);

        // The transformed program computes the same result.
        let base = sys.measure(&source).unwrap();
        let opt = sys.measure(&optimized).unwrap();
        assert_eq!(base.checksum, opt.checksum);
    }

    #[test]
    fn direct_workflow_reports_missing_region() {
        let source = parse_program(MATMUL_SRC).unwrap();
        let locus = locus_lang::parse("CodeReg other { RoseLocus.LICM(); }").unwrap();
        let sys = system();
        assert!(matches!(
            sys.apply_direct(&source, &locus),
            Err(ApplyError::Locus(_))
        ));
    }

    #[test]
    fn tiling_improves_matmul_locality() {
        let source = parse_program(MATMUL_SRC).unwrap();
        let locus = locus_lang::parse(
            r#"CodeReg matmul {
                RoseLocus.Interchange(order=[0, 2, 1]);
                Pips.Tiling(loop="0", factor=[16, 16, 16]);
            }"#,
        )
        .unwrap();
        let sys = system();
        let optimized = sys.apply_direct(&source, &locus).unwrap();
        let base = sys.measure(&source).unwrap();
        let opt = sys.measure(&optimized).unwrap();
        assert_eq!(base.checksum, opt.checksum);
        // Everything fits in the simulated L3, so DRAM traffic ties; the
        // win shows up as more L1 hits and fewer cycles.
        assert!(
            opt.cycles < base.cycles,
            "tiling+interchange should beat naive ijk: {} vs {}",
            opt.cycles,
            base.cycles
        );
    }

    #[test]
    fn search_workflow_finds_an_improving_variant() {
        let source = parse_program(MATMUL_SRC).unwrap();
        let locus = locus_lang::parse(
            r#"CodeReg matmul {
                RoseLocus.Interchange(order=[0, 2, 1]);
                tileI = poweroftwo(4..16);
                tileK = poweroftwo(4..16);
                tileJ = poweroftwo(4..16);
                Pips.Tiling(loop="0", factor=[tileI, tileK, tileJ]);
            }"#,
        )
        .unwrap();
        let sys = system();
        let mut search = BanditTuner::new(7);
        let result = sys.tune(&source, &locus, &mut search, 12).unwrap();
        assert_eq!(result.space_size, 27);
        let (_, _, best) = result.best.as_ref().expect("a best variant");
        assert_eq!(best.checksum, result.baseline.checksum);
        assert!(
            result.speedup() > 1.0,
            "tiled matmul should beat the naive baseline (speedup {})",
            result.speedup()
        );
    }

    #[test]
    fn invalid_dependent_points_are_skipped_not_fatal() {
        let source = parse_program(MATMUL_SRC).unwrap();
        let locus = locus_lang::parse(
            r#"CodeReg matmul {
                tileI = poweroftwo(4..16);
                tileI_2 = poweroftwo(4..tileI);
                Pips.Tiling(loop="0", factor=[tileI, tileI_2, 8]);
            }"#,
        )
        .unwrap();
        let sys = system();
        let mut search = locus_search::ExhaustiveSearch::default();
        let result = sys.tune(&source, &locus, &mut search, 64).unwrap();
        // 3x3 grid; points with tileI_2 > tileI are invalid.
        assert!(result.outcome.invalid > 0);
        assert!(result.best.is_some());
    }

    #[test]
    fn query_substitution_runs_against_the_region() {
        let source = parse_program(MATMUL_SRC).unwrap();
        let locus = locus_lang::parse(
            r#"CodeReg matmul {
                depth = BuiltIn.LoopNestDepth();
                permorder = permutation(seq(0, depth));
                RoseLocus.Interchange(order=permorder);
            }"#,
        )
        .unwrap();
        let sys = system();
        let prepared = sys.prepare(&source, &locus).unwrap();
        assert_eq!(
            prepared.space.param("permorder").unwrap().kind,
            locus_space::ParamKind::Permutation(3)
        );
        assert_eq!(prepared.space.size(), 6);
        // All six permutations of matmul are legal; exhaustively searching
        // them must yield six valid evaluations.
        let mut search = locus_search::ExhaustiveSearch::default();
        let result = sys.tune(&source, &locus, &mut search, 10).unwrap();
        assert_eq!(result.outcome.evaluations, 6);
    }

    #[test]
    fn coherence_check_detects_source_drift() {
        let source = parse_program(MATMUL_SRC).unwrap();
        let hashes = region_hashes(&source);
        assert!(check_coherence(&source, &hashes).is_empty());

        let drifted = parse_program(&MATMUL_SRC.replace("A[i][k] * B[k][j]", "A[i][k]")).unwrap();
        let warnings = check_coherence(&drifted, &hashes);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("matmul"));

        let removed =
            parse_program(&MATMUL_SRC.replace("#pragma @Locus loop=matmul\n", "")).unwrap();
        let warnings = check_coherence(&removed, &hashes);
        assert!(warnings[0].contains("no longer exists"));
    }

    #[test]
    fn store_backed_sessions_skip_prior_measurements() {
        let source = parse_program(MATMUL_SRC).unwrap();
        let locus = locus_lang::parse(
            r#"CodeReg matmul {
                tileI = poweroftwo(4..16);
                Pips.Tiling(loop="0", factor=[tileI, tileI, tileI]);
            }"#,
        )
        .unwrap();
        let sys = system();
        let path = std::env::temp_dir().join(format!(
            "locus-core-store-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_file(&path).ok();

        let (cold, cold_report) = {
            let mut store = TuningStore::open(&path).unwrap();
            let mut search = locus_search::ExhaustiveSearch::default();
            sys.tune_parallel_with_store(&source, &locus, &mut search, 8, 2, &mut store)
                .unwrap()
        };
        assert!(cold_report.evaluations() > 0);
        assert_eq!(cold_report.store_hits(), 0);
        assert_eq!(cold_report.appended, cold_report.evaluations());

        // Re-open the file cold: a brand-new session must answer every
        // proposal from disk.
        let (warm, warm_report) = {
            let mut store = TuningStore::open(&path).unwrap();
            let mut search = locus_search::ExhaustiveSearch::default();
            sys.tune_parallel_with_store(&source, &locus, &mut search, 8, 2, &mut store)
                .unwrap()
        };
        assert_eq!(
            warm_report.evaluations(),
            0,
            "warm session re-measures nothing"
        );
        assert_eq!(warm_report.store_hits(), cold_report.evaluations());
        assert_eq!(warm_report.rehydrated, cold_report.appended);
        assert_eq!(warm_report.appended, 0);

        let (cold_point, _, cold_m) = cold.best.as_ref().expect("cold best");
        let (warm_point, _, warm_m) = warm.best.as_ref().expect("warm best");
        assert_eq!(cold_point.canonical_key(), warm_point.canonical_key());
        assert_eq!(cold_m.time_ms.to_bits(), warm_m.time_ms.to_bits());
        assert_eq!(
            cold.outcome.best.as_ref().unwrap().1.to_bits(),
            warm.outcome.best.as_ref().unwrap().1.to_bits(),
            "replayed objective is bit-identical"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn speedup_is_finite_for_degenerate_measurements() {
        fn measurement(time_ms: f64) -> Measurement {
            Measurement {
                cycles: time_ms * 1e6,
                time_ms,
                ops: 1,
                flops: 1,
                cache: Default::default(),
                checksum: 0,
            }
        }
        let source = parse_program(MATMUL_SRC).unwrap();
        let result = |baseline_ms: f64, best_ms: f64| TuneResult {
            outcome: locus_search::SearchOutcome {
                best: Some((Point::new(), best_ms)),
                evaluations: 1,
                invalid: 0,
                duplicates: 0,
                history: vec![(1, best_ms)],
            },
            baseline: measurement(baseline_ms),
            best: Some((Point::new(), source.clone(), measurement(best_ms))),
            space_size: 1,
        };

        // Zero-time baseline (empty kernel): no infinity, no panic.
        assert_eq!(result(0.0, 0.0).speedup(), 1.0);
        assert_eq!(result(0.0, 2.0).speedup(), 1.0);
        // Sub-epsilon variant time is degenerate, not an infinite win.
        assert_eq!(result(1.0, 1e-300).speedup(), 1.0);
        // A tiny-but-measurable variant time is clamped, still finite.
        let huge = result(1e3, 1e-11).speedup();
        assert!(huge.is_finite(), "speedup must never be infinite");
        assert_eq!(huge, 1e12, "clamped at the ceiling");
        // Ordinary case unchanged.
        assert_eq!(result(4.0, 2.0).speedup(), 2.0);
        // Slower-than-baseline best still reports 1.0 (baseline ships).
        assert_eq!(result(1.0, 2.0).speedup(), 1.0);
    }

    #[test]
    fn failed_variants_fall_back_to_baseline() {
        let source = parse_program(MATMUL_SRC).unwrap();
        // Interchange with an order that is not a permutation: every
        // variant fails, yet tune still reports the baseline.
        let locus = locus_lang::parse(
            r#"CodeReg matmul {
                RoseLocus.Interchange(order=[0, 0, 1]);
            }"#,
        )
        .unwrap();
        let sys = system();
        let mut search = locus_search::ExhaustiveSearch::default();
        let result = sys.tune(&source, &locus, &mut search, 4).unwrap();
        assert!(result.best.is_none());
        assert_eq!(result.speedup(), 1.0);
        assert!(result.baseline.cycles > 0.0);
    }
}
