//! Points: one concrete assignment of every space parameter.

use std::collections::BTreeMap;

use crate::param::ParamValue;

/// An assignment of values to parameters, keyed by parameter id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Point {
    values: BTreeMap<String, ParamValue>,
}

impl Point {
    /// An empty point.
    pub fn new() -> Point {
        Point::default()
    }

    /// Sets a parameter value.
    pub fn set(&mut self, id: impl Into<String>, value: ParamValue) {
        self.values.insert(id.into(), value);
    }

    /// Reads a parameter value.
    pub fn get(&self, id: &str) -> Option<&ParamValue> {
        self.values.get(id)
    }

    /// Number of assigned parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameter is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A canonical string key for de-duplicating evaluated variants
    /// (the OpenTuner behaviour the paper credits for faster search).
    ///
    /// The key is a pure function of the `(id, value)` assignments —
    /// insertion order never matters — so equal points always collide.
    /// It doubles as the stable tie-break ordering of the parallel
    /// evaluation engine: merged batch results compare by objective
    /// first, canonical key second.
    pub fn canonical_key(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.values {
            out.push_str(k);
            out.push('=');
            match v {
                ParamValue::Choice(c) => out.push_str(&format!("c{c}")),
                ParamValue::Int(i) => out.push_str(&format!("i{i}")),
                ParamValue::Float(f) => out.push_str(&format!("f{f:.9e}")),
                ParamValue::Perm(p) => {
                    out.push('p');
                    for x in p {
                        out.push_str(&format!("{x}."));
                    }
                }
            }
            out.push(';');
        }
        out
    }

    /// [`Point::canonical_key`] under its historical name.
    pub fn dedup_key(&self) -> String {
        self.canonical_key()
    }

    /// A stable 64-bit FNV-1a digest of [`Point::canonical_key`], the
    /// point half of the parallel engine's memo-cache key (the other
    /// half is the variant region-hash computed by the core crate).
    pub fn canonical_hash(&self) -> u64 {
        fnv1a(self.canonical_key().as_bytes())
    }

    /// Parses a string produced by [`Point::canonical_key`] back into a
    /// point. This is the inverse the persistent tuning store relies on:
    /// records carry only the canonical key, and warm-starting a search
    /// module needs the concrete assignment back.
    ///
    /// Returns `None` for malformed input. Floats round-trip through the
    /// key's 9-significant-digit scientific notation, so
    /// `parse_canonical_key(k).canonical_key() == k` for any key this
    /// crate produced.
    pub fn parse_canonical_key(key: &str) -> Option<Point> {
        let mut point = Point::new();
        for entry in key.split(';') {
            if entry.is_empty() {
                continue;
            }
            let (id, encoded) = entry.split_once('=')?;
            let tag = encoded.chars().next()?;
            let payload = &encoded[tag.len_utf8()..];
            let value = match tag {
                'c' => ParamValue::Choice(payload.parse().ok()?),
                'i' => ParamValue::Int(payload.parse().ok()?),
                'f' => ParamValue::Float(payload.parse().ok()?),
                'p' => {
                    let mut perm = Vec::new();
                    for part in payload.split('.') {
                        if part.is_empty() {
                            continue;
                        }
                        perm.push(part.parse().ok()?);
                    }
                    ParamValue::Perm(perm)
                }
                _ => return None,
            };
            point.set(id, value);
        }
        Some(point)
    }
}

/// FNV-1a over arbitrary bytes: the dependency-free stable hash shared
/// by [`Point::canonical_hash`] and [`crate::Space::digest`].
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

impl FromIterator<(String, ParamValue)> for Point {
    fn from_iter<T: IntoIterator<Item = (String, ParamValue)>>(iter: T) -> Point {
        Point {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut p = Point::new();
        assert!(p.is_empty());
        p.set("tileI", ParamValue::Int(32));
        assert_eq!(p.get("tileI"), Some(&ParamValue::Int(32)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn dedup_key_is_stable_and_discriminating() {
        let mut a = Point::new();
        a.set("x", ParamValue::Int(1));
        a.set("y", ParamValue::Choice(0));
        let mut b = Point::new();
        b.set("y", ParamValue::Choice(0));
        b.set("x", ParamValue::Int(1));
        assert_eq!(a.dedup_key(), b.dedup_key(), "insertion order irrelevant");
        let mut c = a.clone();
        c.set("x", ParamValue::Int(2));
        assert_ne!(a.dedup_key(), c.dedup_key());
    }

    #[test]
    fn canonical_hash_tracks_canonical_key() {
        let mut a = Point::new();
        a.set("x", ParamValue::Int(1));
        let mut b = Point::new();
        b.set("x", ParamValue::Int(1));
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        b.set("x", ParamValue::Int(2));
        assert_ne!(a.canonical_hash(), b.canonical_hash());
        assert_eq!(a.dedup_key(), a.canonical_key());
    }

    #[test]
    fn canonical_key_round_trips_through_parse() {
        let mut p = Point::new();
        p.set("tileI", ParamValue::Int(32));
        p.set("or:omp", ParamValue::Choice(1));
        p.set("perm", ParamValue::Perm(vec![2, 0, 1]));
        p.set("ratio", ParamValue::Float(0.125));
        let key = p.canonical_key();
        let parsed = Point::parse_canonical_key(&key).expect("parses");
        assert_eq!(parsed, p);
        assert_eq!(parsed.canonical_key(), key);
    }

    #[test]
    fn parse_rejects_malformed_keys() {
        assert!(
            Point::parse_canonical_key("x=q13;").is_none(),
            "unknown tag"
        );
        assert!(Point::parse_canonical_key("x;").is_none(), "missing =");
        assert!(Point::parse_canonical_key("x=inotanint;").is_none());
        // The empty key is the empty point.
        assert_eq!(Point::parse_canonical_key(""), Some(Point::new()));
    }

    #[test]
    fn collects_from_iterator() {
        let p: Point = vec![("a".to_string(), ParamValue::Int(3))]
            .into_iter()
            .collect();
        assert_eq!(p.get("a"), Some(&ParamValue::Int(3)));
    }
}
