//! Search-space parameters: one per Locus search construct.

use crate::rng::SplitMix64;

/// The kind (and domain) of one search parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// A labeled finite choice: `enum(...)`, `OR` blocks, `OR`
    /// statements.
    Enum(Vec<String>),
    /// A boolean: optional (`*`) statements.
    Bool,
    /// All integers in `[min, max]` (the paper's `integer(min..max)`,
    /// inclusive on both ends).
    Integer {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// Powers of two within `[min, max]`: `poweroftwo(min..max)`.
    PowerOfTwo {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// Like `Integer` but sampled log-uniformly: `loginteger(min..max)`.
    LogInteger {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// A float grid over `[min, max]` with `steps` samples:
    /// `float(min..max)`.
    Float {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
        /// Grid resolution.
        steps: u32,
    },
    /// Log-spaced float grid: `logfloat(min..max)`.
    LogFloat {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
        /// Grid resolution.
        steps: u32,
    },
    /// All permutations of `0..n`: `permutation([...])`.
    Permutation(usize),
}

/// A concrete value for one parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Index into an [`ParamKind::Enum`]'s labels, or 0/1 for `Bool`.
    Choice(usize),
    /// Integer value (`Integer`, `PowerOfTwo`, `LogInteger`).
    Int(i64),
    /// Float value.
    Float(f64),
    /// A permutation of `0..n`.
    Perm(Vec<usize>),
}

impl ParamValue {
    /// The integer payload, if this is an integer-like value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            ParamValue::Choice(c) => Some(*c as i64),
            _ => None,
        }
    }
}

/// A named parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    /// Unique identifier within the space (derived from the Locus
    /// variable or construct position).
    pub id: String,
    /// Domain.
    pub kind: ParamKind,
}

impl ParamDef {
    /// Creates a parameter definition.
    pub fn new(id: impl Into<String>, kind: ParamKind) -> ParamDef {
        ParamDef {
            id: id.into(),
            kind,
        }
    }
}

impl ParamKind {
    /// Number of distinct values (saturating).
    pub fn cardinality(&self) -> u128 {
        match self {
            ParamKind::Enum(labels) => labels.len().max(1) as u128,
            ParamKind::Bool => 2,
            ParamKind::Integer { min, max } | ParamKind::LogInteger { min, max } => {
                if max < min {
                    1
                } else {
                    (max - min) as u128 + 1
                }
            }
            ParamKind::PowerOfTwo { min, max } => pow2_values(*min, *max).len() as u128,
            ParamKind::Float { steps, .. } | ParamKind::LogFloat { steps, .. } => {
                (*steps).max(1) as u128
            }
            ParamKind::Permutation(n) => (1..=*n as u128).product::<u128>().max(1),
        }
    }

    /// The `index`-th value (for exhaustive enumeration). `index` must be
    /// below [`ParamKind::cardinality`].
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn value_at(&self, index: u128) -> ParamValue {
        assert!(
            index < self.cardinality(),
            "index {index} out of range for {self:?}"
        );
        match self {
            ParamKind::Enum(_) | ParamKind::Bool => ParamValue::Choice(index as usize),
            ParamKind::Integer { min, .. } | ParamKind::LogInteger { min, .. } => {
                ParamValue::Int(min + index as i64)
            }
            ParamKind::PowerOfTwo { min, max } => {
                ParamValue::Int(pow2_values(*min, *max)[index as usize])
            }
            ParamKind::Float { min, max, steps } => {
                ParamValue::Float(grid(*min, *max, *steps, index as u32))
            }
            ParamKind::LogFloat { min, max, steps } => {
                let (lmin, lmax) = (min.max(1e-12).ln(), max.max(1e-12).ln());
                ParamValue::Float(grid(lmin, lmax, *steps, index as u32).exp())
            }
            ParamKind::Permutation(n) => ParamValue::Perm(nth_permutation(*n, index)),
        }
    }

    /// The enumeration index of `value` within this domain — the
    /// inverse of [`ParamKind::value_at`]. Exact for on-grid values;
    /// off-grid numeric values (the continuous draws
    /// [`ParamKind::random`] produces for the log kinds) snap to the
    /// nearest grid index, and out-of-range integers clamp to the
    /// domain bounds. Returns `None` when the value's shape does not
    /// match the domain (e.g. a `Perm` for an `Integer`, or a
    /// permutation of the wrong length).
    pub fn index_of(&self, value: &ParamValue) -> Option<u128> {
        match (self, value) {
            (ParamKind::Enum(labels), ParamValue::Choice(c)) => {
                (*c < labels.len().max(1)).then_some(*c as u128)
            }
            (ParamKind::Bool, ParamValue::Choice(c)) => (*c < 2).then_some(*c as u128),
            (ParamKind::Integer { min, max }, ParamValue::Int(v))
            | (ParamKind::LogInteger { min, max }, ParamValue::Int(v)) => {
                if max < min {
                    return Some(0);
                }
                Some(((*v).clamp(*min, *max) - min) as u128)
            }
            (ParamKind::PowerOfTwo { min, max }, ParamValue::Int(v)) => {
                let values = pow2_values(*min, *max);
                let pos = values
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, x)| (*x - *v).unsigned_abs())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                Some(pos as u128)
            }
            (ParamKind::Float { min, max, steps }, ParamValue::Float(v)) => {
                Some(grid_index(*min, *max, *steps, *v))
            }
            (ParamKind::LogFloat { min, max, steps }, ParamValue::Float(v)) => {
                let (lmin, lmax) = (min.max(1e-12).ln(), max.max(1e-12).ln());
                Some(grid_index(lmin, lmax, *steps, v.max(1e-12).ln()))
            }
            (ParamKind::Permutation(n), ParamValue::Perm(p)) if p.len() == *n => perm_rank(p),
            _ => None,
        }
    }

    /// Samples a uniform random value (log-uniform for the log kinds).
    pub fn random(&self, rng: &mut SplitMix64) -> ParamValue {
        match self {
            ParamKind::LogInteger { min, max } => {
                let (lo, hi) = ((*min).max(1) as f64, (*max).max(1) as f64);
                let v = rng.range_f64(lo.ln(), hi.ln()).exp().round() as i64;
                ParamValue::Int(v.clamp(*min, *max))
            }
            ParamKind::LogFloat { min, max, .. } => {
                let (lo, hi) = (min.max(1e-12).ln(), max.max(1e-12).ln());
                ParamValue::Float(rng.range_f64(lo, hi).exp())
            }
            _ => {
                let idx = rng.below(self.cardinality().min(u64::MAX as u128) as u64);
                self.value_at(u128::from(idx))
            }
        }
    }

    /// Perturbs a value to a nearby one (the mutation step used by the
    /// local search techniques).
    pub fn mutate(&self, value: &ParamValue, rng: &mut SplitMix64) -> ParamValue {
        match (self, value) {
            (ParamKind::Integer { min, max }, ParamValue::Int(v))
            | (ParamKind::LogInteger { min, max }, ParamValue::Int(v)) => {
                let span = ((max - min) / 8).max(1);
                let delta = rng.range_i64(-span, span);
                ParamValue::Int((v + delta).clamp(*min, *max))
            }
            (ParamKind::PowerOfTwo { min, max }, ParamValue::Int(v)) => {
                let values = pow2_values(*min, *max);
                let pos = values.iter().position(|x| x == v).unwrap_or(0);
                let next = if rng.chance(0.5) {
                    pos.saturating_sub(1)
                } else {
                    (pos + 1).min(values.len() - 1)
                };
                ParamValue::Int(values[next])
            }
            (ParamKind::Permutation(n), ParamValue::Perm(p)) if *n >= 2 => {
                let mut p = p.clone();
                let a = rng.below_usize(*n);
                let b = rng.below_usize(*n);
                p.swap(a, b);
                ParamValue::Perm(p)
            }
            (ParamKind::Float { min, max, .. }, ParamValue::Float(v)) => {
                let delta = (max - min) / 16.0;
                ParamValue::Float((v + rng.range_f64(-delta, delta)).clamp(*min, *max))
            }
            _ => self.random(rng),
        }
    }
}

/// Powers of two within `[min, max]`, ascending.
pub fn pow2_values(min: i64, max: i64) -> Vec<i64> {
    let mut out = Vec::new();
    let mut v: i64 = 1;
    while v <= max {
        if v >= min {
            out.push(v);
        }
        match v.checked_mul(2) {
            Some(next) => v = next,
            None => break,
        }
    }
    if out.is_empty() {
        out.push(min.max(1));
    }
    out
}

fn grid(min: f64, max: f64, steps: u32, index: u32) -> f64 {
    if steps <= 1 {
        return min;
    }
    min + (max - min) * f64::from(index) / f64::from(steps - 1)
}

/// Nearest grid index of `v` on the [`grid`] of the same bounds — the
/// snapping inverse used by [`ParamKind::index_of`].
fn grid_index(min: f64, max: f64, steps: u32, v: f64) -> u128 {
    if steps <= 1 || max <= min || !v.is_finite() {
        return 0;
    }
    let raw = ((v - min) / (max - min) * f64::from(steps - 1)).round();
    (raw.clamp(0.0, f64::from(steps - 1))) as u128
}

/// Lexicographic rank of a permutation of `0..n` — the inverse of
/// [`nth_permutation`]. `None` when `p` is not a permutation.
fn perm_rank(p: &[usize]) -> Option<u128> {
    let n = p.len();
    let mut items: Vec<usize> = (0..n).collect();
    let mut rank: u128 = 0;
    let mut fact: u128 = (1..n as u128).product::<u128>().max(1); // (n-1)!
    for (k, &x) in p.iter().enumerate() {
        let pos = items.iter().position(|&i| i == x)?;
        rank += pos as u128 * fact;
        items.remove(pos);
        let remaining = n - 1 - k;
        if remaining > 1 {
            fact /= remaining as u128;
        } else {
            fact = 1;
        }
    }
    Some(rank)
}

/// The `index`-th permutation of `0..n` in lexicographic order
/// (factorial number system).
fn nth_permutation(n: usize, mut index: u128) -> Vec<usize> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n);
    let mut fact: u128 = (1..=n.saturating_sub(1) as u128).product::<u128>().max(1);
    for k in (0..n).rev() {
        let pos = (index / fact) as usize;
        index %= fact;
        out.push(items.remove(pos.min(items.len().saturating_sub(1))));
        if k > 0 {
            fact /= k.max(1) as u128;
        }
    }
    out
}

/// Uniformly samples a permutation (kept for symmetry with `random`).
pub fn random_permutation(n: usize, rng: &mut SplitMix64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut p);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(42)
    }

    #[test]
    fn pow2_range_matches_the_paper() {
        // poweroftwo(2..32) — Fig. 5 says tiles 2,4,8,16,32: 5 values.
        assert_eq!(pow2_values(2, 32), vec![2, 4, 8, 16, 32]);
        // poweroftwo(2..512) — Fig. 7's 9 values.
        assert_eq!(pow2_values(2, 512).len(), 9);
    }

    #[test]
    fn cardinalities() {
        assert_eq!(ParamKind::Bool.cardinality(), 2);
        assert_eq!(
            ParamKind::Enum(vec!["a".into(), "b".into(), "c".into()]).cardinality(),
            3
        );
        assert_eq!(ParamKind::Integer { min: 1, max: 32 }.cardinality(), 32);
        assert_eq!(ParamKind::PowerOfTwo { min: 2, max: 512 }.cardinality(), 9);
        assert_eq!(ParamKind::Permutation(5).cardinality(), 120);
        assert_eq!(
            ParamKind::Float {
                min: 0.0,
                max: 1.0,
                steps: 11
            }
            .cardinality(),
            11
        );
    }

    #[test]
    fn value_at_enumerates_domain() {
        let k = ParamKind::PowerOfTwo { min: 2, max: 32 };
        let values: Vec<ParamValue> = (0..k.cardinality()).map(|i| k.value_at(i)).collect();
        assert_eq!(
            values,
            vec![
                ParamValue::Int(2),
                ParamValue::Int(4),
                ParamValue::Int(8),
                ParamValue::Int(16),
                ParamValue::Int(32)
            ]
        );
    }

    #[test]
    fn permutations_enumerate_lexicographically() {
        let k = ParamKind::Permutation(3);
        let all: Vec<Vec<usize>> = (0..6)
            .map(|i| match k.value_at(i) {
                ParamValue::Perm(p) => p,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(all[0], vec![0, 1, 2]);
        assert_eq!(all[5], vec![2, 1, 0]);
        // All distinct.
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn random_respects_domain() {
        let mut rng = rng();
        for _ in 0..100 {
            match (ParamKind::PowerOfTwo { min: 2, max: 64 }).random(&mut rng) {
                ParamValue::Int(v) => {
                    assert!((2..=64).contains(&v) && v.count_ones() == 1);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn mutation_stays_in_domain_and_is_local() {
        let mut rng = rng();
        let k = ParamKind::PowerOfTwo { min: 2, max: 512 };
        let v = ParamValue::Int(32);
        for _ in 0..50 {
            match k.mutate(&v, &mut rng) {
                ParamValue::Int(m) => assert!(m == 16 || m == 64, "got {m}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn float_grid_hits_endpoints() {
        let k = ParamKind::Float {
            min: 1.0,
            max: 2.0,
            steps: 5,
        };
        assert_eq!(k.value_at(0), ParamValue::Float(1.0));
        assert_eq!(k.value_at(4), ParamValue::Float(2.0));
    }

    #[test]
    fn log_integer_sampling_is_in_range() {
        let mut rng = rng();
        let k = ParamKind::LogInteger { min: 1, max: 1000 };
        for _ in 0..100 {
            let ParamValue::Int(v) = k.random(&mut rng) else {
                panic!("expected int")
            };
            assert!((1..=1000).contains(&v));
        }
    }

    #[test]
    fn index_of_inverts_value_at_on_every_kind() {
        let kinds = [
            ParamKind::Enum(vec!["a".into(), "b".into(), "c".into()]),
            ParamKind::Bool,
            ParamKind::Integer { min: -3, max: 9 },
            ParamKind::PowerOfTwo { min: 2, max: 512 },
            ParamKind::LogInteger { min: 1, max: 40 },
            ParamKind::Float {
                min: 0.5,
                max: 4.5,
                steps: 9,
            },
            ParamKind::LogFloat {
                min: 0.1,
                max: 10.0,
                steps: 7,
            },
            ParamKind::Permutation(5),
        ];
        for k in &kinds {
            for i in 0..k.cardinality() {
                assert_eq!(k.index_of(&k.value_at(i)), Some(i), "kind {k:?} index {i}");
            }
        }
    }

    #[test]
    fn index_of_snaps_off_grid_and_rejects_mismatched_shapes() {
        // Off-grid pow2 value snaps to the nearest power.
        let k = ParamKind::PowerOfTwo { min: 2, max: 32 };
        assert_eq!(k.index_of(&ParamValue::Int(9)), Some(2)); // 8
                                                              // Out-of-range integers clamp.
        let k = ParamKind::Integer { min: 1, max: 8 };
        assert_eq!(k.index_of(&ParamValue::Int(99)), Some(7));
        // Continuous log-float draws snap onto the grid.
        let k = ParamKind::LogFloat {
            min: 0.1,
            max: 10.0,
            steps: 7,
        };
        let mut r = rng();
        for _ in 0..50 {
            let idx = k.index_of(&k.random(&mut r)).unwrap();
            assert!(idx < k.cardinality());
        }
        // Shape mismatches are refused, including non-permutations.
        assert_eq!(k.index_of(&ParamValue::Int(3)), None);
        let k = ParamKind::Permutation(3);
        assert_eq!(k.index_of(&ParamValue::Perm(vec![0, 0, 2])), None);
        assert_eq!(k.index_of(&ParamValue::Perm(vec![0, 1])), None);
    }

    #[test]
    fn degenerate_domains_do_not_panic() {
        assert_eq!(ParamKind::Integer { min: 5, max: 5 }.cardinality(), 1);
        assert_eq!(ParamKind::Permutation(0).cardinality(), 1);
        assert_eq!(
            ParamKind::Permutation(1).value_at(0),
            ParamValue::Perm(vec![0])
        );
    }
}
