//! Optimization-space representation (Sec. II-A and IV-B of the paper).
//!
//! A Locus program's search constructs — `OR` blocks and statements,
//! optional (`*`) statements, and the `enum` / `integer` / `float` /
//! `permutation` / `poweroftwo` / `loginteger` / `logfloat` value
//! constructs — each contribute one *parameter* to an optimization
//! space. A [`Point`] assigns a value to every parameter; the system
//! interprets the optimization program under that assignment to produce
//! one program variant.
//!
//! Conditional structure (parameters that only matter under certain
//! values of other parameters, e.g. the schedule/chunk parameters inside
//! one branch of Fig. 7's `OR` block) is handled as OpenTuner does:
//! every parameter always receives a value, and unused assignments are
//! simply ignored by the interpreter. Dependent *ranges* (Fig. 7's
//! `tileI_2 = poweroftwo(2..tileI)`) are declared with their statically
//! inferred outer bounds; the decoder revalidates the dependency at
//! evaluation time and reports the point invalid, exactly as described
//! in Sec. IV-B.1.

#![warn(missing_docs)]

pub mod param;
pub mod point;
pub mod rng;
pub mod space;

pub use param::{ParamDef, ParamKind, ParamValue};
pub use point::Point;
pub use rng::SplitMix64;
pub use space::{DecisionSite, Space};
