//! A tiny, dependency-free, deterministic PRNG.
//!
//! The build environment is offline-only (see the README "Testing"
//! section), so the workspace cannot depend on the `rand` crate. Every
//! randomized component — the space samplers below, the random / bandit
//! / annealing / portfolio search modules, the synthetic corpus
//! generator, and the hand-rolled property tests — draws from this
//! [`SplitMix64`] generator instead.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA'14) is the 64-bit finalizer
//! used to seed xoshiro-family generators: a Weyl sequence pushed
//! through an avalanching bit-mixer. It passes BigCrush, has a full
//! 2^64 period, and — the property this workspace actually relies on —
//! is exactly reproducible from a seed on every platform, which is what
//! makes seeded searches and `tune_parallel` determinism testable.

/// A deterministic SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield identical
    /// streams on every platform.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`. `n` must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SplitMix64::below(0)");
        // Multiply-shift reduction (Lemire); unbiased enough for search
        // heuristics and far cheaper than rejection sampling.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// A uniform float in `[lo, hi)` (degenerate ranges return `lo`).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 1234567 from the canonical
        // SplitMix64 implementation (Vigna).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_i64_is_inclusive() {
        let mut rng = SplitMix64::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..300 {
            let v = rng.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            lo_seen |= v == -2;
            hi_seen |= v == 2;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut xs: Vec<usize> = (0..10).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
