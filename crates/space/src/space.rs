//! The optimization space: an ordered collection of parameters.

use crate::param::ParamDef;
use crate::point::Point;
use crate::rng::SplitMix64;

/// An optimization space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Space {
    params: Vec<ParamDef>,
}

impl Space {
    /// An empty space (a single trivial variant).
    pub fn new() -> Space {
        Space::default()
    }

    /// Adds a parameter. Ids must be unique; re-adding an existing id
    /// replaces its definition (the Locus optimizer uses this when a
    /// range is tightened by constant propagation).
    pub fn add(&mut self, def: ParamDef) {
        match self.params.iter_mut().find(|p| p.id == def.id) {
            Some(slot) => *slot = def,
            None => self.params.push(def),
        }
    }

    /// The parameters in declaration order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Looks up a parameter by id.
    pub fn param(&self, id: &str) -> Option<&ParamDef> {
        self.params.iter().find(|p| p.id == id)
    }

    /// Removes a parameter (dead-space elimination).
    pub fn remove(&mut self, id: &str) -> bool {
        let before = self.params.len();
        self.params.retain(|p| p.id != id);
        before != self.params.len()
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of points (saturating at `u128::MAX`).
    ///
    /// This is the figure the paper quotes for Fig. 7's space
    /// ("34,012,224 possible variants according to OpenTuner") — the
    /// exact count depends on how the search module encodes OR blocks,
    /// so our flattened count may differ by small factors.
    pub fn size(&self) -> u128 {
        self.params
            .iter()
            .map(|p| p.kind.cardinality())
            .fold(1u128, |acc, c| acc.saturating_mul(c))
    }

    /// A stable 64-bit digest of the space: parameter ids, kinds and
    /// bounds in declaration order, hashed with FNV-1a (float bounds via
    /// their bit patterns, so the digest is exact, not format-dependent).
    ///
    /// Two spaces share a digest exactly when they enumerate the same
    /// points in the same order, which is what makes the digest usable as
    /// a persistence key: a stored tuning record is only replayed into a
    /// session whose space decodes canonical keys identically. It also
    /// serves as a provenance line in benchmark reports.
    pub fn digest(&self) -> u64 {
        use crate::param::ParamKind;
        use crate::point::fnv1a;
        let mut desc = String::new();
        for p in &self.params {
            desc.push_str(&p.id);
            desc.push('=');
            match &p.kind {
                ParamKind::Enum(labels) => {
                    desc.push_str("enum:");
                    for l in labels {
                        desc.push_str(l);
                        desc.push(',');
                    }
                }
                ParamKind::Bool => desc.push_str("bool"),
                ParamKind::Integer { min, max } => {
                    desc.push_str(&format!("int:{min}:{max}"));
                }
                ParamKind::PowerOfTwo { min, max } => {
                    desc.push_str(&format!("pow2:{min}:{max}"));
                }
                ParamKind::LogInteger { min, max } => {
                    desc.push_str(&format!("logint:{min}:{max}"));
                }
                ParamKind::Float { min, max, steps } => {
                    desc.push_str(&format!(
                        "float:{:016x}:{:016x}:{steps}",
                        min.to_bits(),
                        max.to_bits()
                    ));
                }
                ParamKind::LogFloat { min, max, steps } => {
                    desc.push_str(&format!(
                        "logfloat:{:016x}:{:016x}:{steps}",
                        min.to_bits(),
                        max.to_bits()
                    ));
                }
                ParamKind::Permutation(n) => desc.push_str(&format!("perm:{n}")),
            }
            desc.push(';');
        }
        fnv1a(desc.as_bytes())
    }

    /// Decodes the `index`-th point in lexicographic order. Useful for
    /// exhaustive search over small spaces.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.size()`.
    pub fn point_at(&self, mut index: u128) -> Point {
        assert!(index < self.size(), "point index out of range");
        let mut point = Point::new();
        for p in self.params.iter().rev() {
            let card = p.kind.cardinality();
            let digit = index % card;
            index /= card;
            point.set(p.id.clone(), p.kind.value_at(digit));
        }
        point
    }

    /// Samples a uniform random point.
    pub fn random_point(&self, rng: &mut SplitMix64) -> Point {
        let mut point = Point::new();
        for p in &self.params {
            point.set(p.id.clone(), p.kind.random(rng));
        }
        point
    }

    /// Mutates `count` randomly chosen parameters of a point.
    pub fn mutate(&self, point: &Point, count: usize, rng: &mut SplitMix64) -> Point {
        if self.params.is_empty() {
            return point.clone();
        }
        let mut out = point.clone();
        for _ in 0..count.max(1) {
            let p = &self.params[rng.below_usize(self.params.len())];
            let current = point
                .get(&p.id)
                .cloned()
                .unwrap_or_else(|| p.kind.random(rng));
            out.set(p.id.clone(), p.kind.mutate(&current, rng));
        }
        out
    }

    /// Uniform crossover of two points.
    pub fn crossover(&self, a: &Point, b: &Point, rng: &mut SplitMix64) -> Point {
        let mut out = Point::new();
        for p in &self.params {
            let pick = if rng.chance(0.5) { a } else { b };
            let value = pick
                .get(&p.id)
                .cloned()
                .unwrap_or_else(|| p.kind.random(rng));
            out.set(p.id.clone(), value);
        }
        out
    }

    /// Fills any missing parameters of `point` with random values (used
    /// when the space gained parameters after a program edit).
    pub fn complete(&self, point: &Point, rng: &mut SplitMix64) -> Point {
        let mut out = point.clone();
        for p in &self.params {
            if out.get(&p.id).is_none() {
                out.set(p.id.clone(), p.kind.random(rng));
            }
        }
        out
    }
}

impl FromIterator<ParamDef> for Space {
    fn from_iter<T: IntoIterator<Item = ParamDef>>(iter: T) -> Space {
        let mut space = Space::new();
        for def in iter {
            space.add(def);
        }
        space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamKind, ParamValue};
    use crate::rng::SplitMix64;

    fn rng() -> SplitMix64 {
        SplitMix64::new(7)
    }

    fn fig5_space() -> Space {
        // Fig. 5: two pow2 tiles 2..32 and a 2-way OR.
        vec![
            ParamDef::new("tileI", ParamKind::PowerOfTwo { min: 2, max: 32 }),
            ParamDef::new("tileJ", ParamKind::PowerOfTwo { min: 2, max: 32 }),
            ParamDef::new(
                "or:tiletype",
                ParamKind::Enum(vec!["2D".into(), "3D".into()]),
            ),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn size_multiplies_cardinalities() {
        // 5 * 5 * 2 = 50.
        assert_eq!(fig5_space().size(), 50);
        assert_eq!(Space::new().size(), 1);
    }

    #[test]
    fn fig7_space_size_is_in_the_tens_of_millions() {
        // The DGEMM space of Fig. 7: six pow2(2..512) tiles, the OMP OR
        // block, schedule enum and chunk integer(1..32).
        let mut space = Space::new();
        for v in ["tileI", "tileK", "tileJ", "tileI_2", "tileK_2", "tileJ_2"] {
            space.add(ParamDef::new(v, ParamKind::PowerOfTwo { min: 2, max: 512 }));
        }
        space.add(ParamDef::new(
            "or:omp",
            ParamKind::Enum(vec!["plain".into(), "sched".into()]),
        ));
        space.add(ParamDef::new(
            "schedule",
            ParamKind::Enum(vec!["static".into(), "dynamic".into()]),
        ));
        space.add(ParamDef::new(
            "chunk",
            ParamKind::Integer { min: 1, max: 32 },
        ));
        // 9^6 * 2 * 2 * 32 = 68,024,448 flattened (the paper's OpenTuner
        // encoding reports 34,012,224 — a factor-2 difference in how the
        // OR block is counted).
        assert_eq!(space.size(), 68_024_448);
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let a = fig5_space();
        let b = fig5_space();
        assert_eq!(a.digest(), b.digest(), "same definition, same digest");

        // Tightening a range changes the digest.
        let mut c = fig5_space();
        c.add(ParamDef::new(
            "tileI",
            ParamKind::PowerOfTwo { min: 2, max: 8 },
        ));
        assert_ne!(a.digest(), c.digest());

        // Declaration order matters: it drives point_at enumeration.
        let mut d = Space::new();
        d.add(ParamDef::new(
            "tileJ",
            ParamKind::PowerOfTwo { min: 2, max: 32 },
        ));
        d.add(ParamDef::new(
            "tileI",
            ParamKind::PowerOfTwo { min: 2, max: 32 },
        ));
        d.add(ParamDef::new(
            "or:tiletype",
            ParamKind::Enum(vec!["2D".into(), "3D".into()]),
        ));
        assert_ne!(a.digest(), d.digest());

        assert_ne!(Space::new().digest(), a.digest());
    }

    #[test]
    fn point_at_enumerates_all_distinct_points() {
        let space = fig5_space();
        let mut seen = std::collections::HashSet::new();
        for i in 0..space.size() {
            seen.insert(space.point_at(i).dedup_key());
        }
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn random_point_assigns_every_param() {
        let space = fig5_space();
        let p = space.random_point(&mut rng());
        assert_eq!(p.len(), 3);
        assert!(p.get("tileI").is_some());
    }

    #[test]
    fn mutate_changes_at_most_requested_params() {
        let space = fig5_space();
        let mut r = rng();
        let p = space.random_point(&mut r);
        let q = space.mutate(&p, 1, &mut r);
        let diff = p.iter().filter(|(k, v)| q.get(k) != Some(*v)).count();
        assert!(diff <= 1);
    }

    #[test]
    fn crossover_takes_values_from_parents() {
        let space = fig5_space();
        let mut r = rng();
        let a = space.random_point(&mut r);
        let b = space.random_point(&mut r);
        let c = space.crossover(&a, &b, &mut r);
        for (k, v) in c.iter() {
            assert!(a.get(k) == Some(v) || b.get(k) == Some(v));
        }
    }

    #[test]
    fn replacing_a_param_updates_definition() {
        let mut space = fig5_space();
        space.add(ParamDef::new(
            "tileI",
            ParamKind::PowerOfTwo { min: 2, max: 8 },
        ));
        assert_eq!(space.len(), 3);
        assert_eq!(
            space.param("tileI").unwrap().kind,
            ParamKind::PowerOfTwo { min: 2, max: 8 }
        );
    }

    #[test]
    fn complete_fills_missing_params() {
        let space = fig5_space();
        let mut r = rng();
        let partial: Point = vec![("tileI".to_string(), ParamValue::Int(4))]
            .into_iter()
            .collect();
        let full = space.complete(&partial, &mut r);
        assert_eq!(full.len(), 3);
        assert_eq!(full.get("tileI"), Some(&ParamValue::Int(4)));
    }

    #[test]
    fn remove_eliminates_dead_params() {
        let mut space = fig5_space();
        assert!(!space.remove("chunk"));
        assert!(space.remove("tileJ"));
        assert_eq!(space.size(), 10);
    }
}
