//! The optimization space: an ordered collection of parameters.

use crate::param::ParamDef;
use crate::point::Point;
use crate::rng::SplitMix64;

/// An optimization space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Space {
    params: Vec<ParamDef>,
}

/// One decision site of a space: a parameter viewed as a node of the
/// decision tree (see [`Space::decision_sites`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionSite {
    /// Position in declaration order — the depth at which a sequential
    /// sampler decides this site.
    pub index: usize,
    /// The parameter id.
    pub id: String,
    /// Number of alternatives at this site (the parameter cardinality).
    pub arity: u128,
}

impl Space {
    /// An empty space (a single trivial variant).
    pub fn new() -> Space {
        Space::default()
    }

    /// Adds a parameter. Ids must be unique; re-adding an existing id
    /// replaces its definition (the Locus optimizer uses this when a
    /// range is tightened by constant propagation).
    pub fn add(&mut self, def: ParamDef) {
        match self.params.iter_mut().find(|p| p.id == def.id) {
            Some(slot) => *slot = def,
            None => self.params.push(def),
        }
    }

    /// The parameters in declaration order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Looks up a parameter by id.
    pub fn param(&self, id: &str) -> Option<&ParamDef> {
        self.params.iter().find(|p| p.id == id)
    }

    /// Removes a parameter (dead-space elimination).
    pub fn remove(&mut self, id: &str) -> bool {
        let before = self.params.len();
        self.params.retain(|p| p.id != id);
        before != self.params.len()
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of points (saturating at `u128::MAX`).
    ///
    /// This is the figure the paper quotes for Fig. 7's space
    /// ("34,012,224 possible variants according to OpenTuner") — the
    /// exact count depends on how the search module encodes OR blocks,
    /// so our flattened count may differ by small factors.
    pub fn size(&self) -> u128 {
        self.params
            .iter()
            .map(|p| p.kind.cardinality())
            .fold(1u128, |acc, c| acc.saturating_mul(c))
    }

    /// A stable 64-bit digest of the space: parameter ids, kinds and
    /// bounds in declaration order, hashed with FNV-1a (float bounds via
    /// their bit patterns, so the digest is exact, not format-dependent).
    ///
    /// Two spaces share a digest exactly when they enumerate the same
    /// points in the same order, which is what makes the digest usable as
    /// a persistence key: a stored tuning record is only replayed into a
    /// session whose space decodes canonical keys identically. It also
    /// serves as a provenance line in benchmark reports.
    pub fn digest(&self) -> u64 {
        use crate::param::ParamKind;
        use crate::point::fnv1a;
        let mut desc = String::new();
        for p in &self.params {
            desc.push_str(&p.id);
            desc.push('=');
            match &p.kind {
                ParamKind::Enum(labels) => {
                    desc.push_str("enum:");
                    for l in labels {
                        desc.push_str(l);
                        desc.push(',');
                    }
                }
                ParamKind::Bool => desc.push_str("bool"),
                ParamKind::Integer { min, max } => {
                    desc.push_str(&format!("int:{min}:{max}"));
                }
                ParamKind::PowerOfTwo { min, max } => {
                    desc.push_str(&format!("pow2:{min}:{max}"));
                }
                ParamKind::LogInteger { min, max } => {
                    desc.push_str(&format!("logint:{min}:{max}"));
                }
                ParamKind::Float { min, max, steps } => {
                    desc.push_str(&format!(
                        "float:{:016x}:{:016x}:{steps}",
                        min.to_bits(),
                        max.to_bits()
                    ));
                }
                ParamKind::LogFloat { min, max, steps } => {
                    desc.push_str(&format!(
                        "logfloat:{:016x}:{:016x}:{steps}",
                        min.to_bits(),
                        max.to_bits()
                    ));
                }
                ParamKind::Permutation(n) => desc.push_str(&format!("perm:{n}")),
            }
            desc.push(';');
        }
        fnv1a(desc.as_bytes())
    }

    /// Decodes the `index`-th point in lexicographic order. Useful for
    /// exhaustive search over small spaces.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.size()`.
    pub fn point_at(&self, mut index: u128) -> Point {
        assert!(index < self.size(), "point index out of range");
        let mut point = Point::new();
        for p in self.params.iter().rev() {
            let card = p.kind.cardinality();
            let digit = index % card;
            index /= card;
            point.set(p.id.clone(), p.kind.value_at(digit));
        }
        point
    }

    /// The decision sites of this space, in declaration order.
    ///
    /// A *decision site* is one parameter viewed as a node of the
    /// decision tree a sequential sampler walks: OR blocks, optional
    /// statements and value constructs each contribute one site whose
    /// arity is the parameter's cardinality. Dependent parameters (a
    /// `poweroftwo(2..tileI)` bounded by an earlier tile) keep their
    /// statically inferred outer arity here; the per-point revalidation
    /// at build time reports out-of-range combinations invalid, so
    /// tree/trace searches learn the true conditional structure from
    /// observed refusals.
    pub fn decision_sites(&self) -> Vec<DecisionSite> {
        self.params
            .iter()
            .enumerate()
            .map(|(index, p)| DecisionSite {
                index,
                id: p.id.clone(),
                arity: p.kind.cardinality(),
            })
            .collect()
    }

    /// Encodes a point as a *trace*: one decision index per site, in
    /// declaration order ([`ParamKind::index_of`](crate::ParamKind::index_of) per parameter, so
    /// off-grid numeric values snap to the nearest grid index).
    /// `None` when the point misses a parameter or a value's shape does
    /// not match its domain.
    pub fn trace_of(&self, point: &Point) -> Option<Vec<u128>> {
        self.params
            .iter()
            .map(|p| p.kind.index_of(point.get(&p.id)?))
            .collect()
    }

    /// Decodes a trace of per-site decision indices back into a point —
    /// the inverse of [`Space::trace_of`] for on-grid points. `None`
    /// when the trace length or any index is out of range.
    pub fn point_from_trace(&self, trace: &[u128]) -> Option<Point> {
        if trace.len() != self.params.len() {
            return None;
        }
        let mut point = Point::new();
        for (p, &idx) in self.params.iter().zip(trace) {
            if idx >= p.kind.cardinality() {
                return None;
            }
            point.set(p.id.clone(), p.kind.value_at(idx));
        }
        Some(point)
    }

    /// Samples a uniform random point.
    pub fn random_point(&self, rng: &mut SplitMix64) -> Point {
        let mut point = Point::new();
        for p in &self.params {
            point.set(p.id.clone(), p.kind.random(rng));
        }
        point
    }

    /// Mutates `count` randomly chosen parameters of a point.
    pub fn mutate(&self, point: &Point, count: usize, rng: &mut SplitMix64) -> Point {
        if self.params.is_empty() {
            return point.clone();
        }
        let mut out = point.clone();
        for _ in 0..count.max(1) {
            let p = &self.params[rng.below_usize(self.params.len())];
            let current = point
                .get(&p.id)
                .cloned()
                .unwrap_or_else(|| p.kind.random(rng));
            out.set(p.id.clone(), p.kind.mutate(&current, rng));
        }
        out
    }

    /// Uniform crossover of two points.
    pub fn crossover(&self, a: &Point, b: &Point, rng: &mut SplitMix64) -> Point {
        let mut out = Point::new();
        for p in &self.params {
            let pick = if rng.chance(0.5) { a } else { b };
            let value = pick
                .get(&p.id)
                .cloned()
                .unwrap_or_else(|| p.kind.random(rng));
            out.set(p.id.clone(), value);
        }
        out
    }

    /// Fills any missing parameters of `point` with random values (used
    /// when the space gained parameters after a program edit).
    pub fn complete(&self, point: &Point, rng: &mut SplitMix64) -> Point {
        let mut out = point.clone();
        for p in &self.params {
            if out.get(&p.id).is_none() {
                out.set(p.id.clone(), p.kind.random(rng));
            }
        }
        out
    }
}

impl FromIterator<ParamDef> for Space {
    fn from_iter<T: IntoIterator<Item = ParamDef>>(iter: T) -> Space {
        let mut space = Space::new();
        for def in iter {
            space.add(def);
        }
        space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamKind, ParamValue};
    use crate::rng::SplitMix64;

    fn rng() -> SplitMix64 {
        SplitMix64::new(7)
    }

    fn fig5_space() -> Space {
        // Fig. 5: two pow2 tiles 2..32 and a 2-way OR.
        vec![
            ParamDef::new("tileI", ParamKind::PowerOfTwo { min: 2, max: 32 }),
            ParamDef::new("tileJ", ParamKind::PowerOfTwo { min: 2, max: 32 }),
            ParamDef::new(
                "or:tiletype",
                ParamKind::Enum(vec!["2D".into(), "3D".into()]),
            ),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn size_multiplies_cardinalities() {
        // 5 * 5 * 2 = 50.
        assert_eq!(fig5_space().size(), 50);
        assert_eq!(Space::new().size(), 1);
    }

    #[test]
    fn fig7_space_size_is_in_the_tens_of_millions() {
        // The DGEMM space of Fig. 7: six pow2(2..512) tiles, the OMP OR
        // block, schedule enum and chunk integer(1..32).
        let mut space = Space::new();
        for v in ["tileI", "tileK", "tileJ", "tileI_2", "tileK_2", "tileJ_2"] {
            space.add(ParamDef::new(v, ParamKind::PowerOfTwo { min: 2, max: 512 }));
        }
        space.add(ParamDef::new(
            "or:omp",
            ParamKind::Enum(vec!["plain".into(), "sched".into()]),
        ));
        space.add(ParamDef::new(
            "schedule",
            ParamKind::Enum(vec!["static".into(), "dynamic".into()]),
        ));
        space.add(ParamDef::new(
            "chunk",
            ParamKind::Integer { min: 1, max: 32 },
        ));
        // 9^6 * 2 * 2 * 32 = 68,024,448 flattened (the paper's OpenTuner
        // encoding reports 34,012,224 — a factor-2 difference in how the
        // OR block is counted).
        assert_eq!(space.size(), 68_024_448);
    }

    #[test]
    fn digest_is_stable_and_discriminating() {
        let a = fig5_space();
        let b = fig5_space();
        assert_eq!(a.digest(), b.digest(), "same definition, same digest");

        // Tightening a range changes the digest.
        let mut c = fig5_space();
        c.add(ParamDef::new(
            "tileI",
            ParamKind::PowerOfTwo { min: 2, max: 8 },
        ));
        assert_ne!(a.digest(), c.digest());

        // Declaration order matters: it drives point_at enumeration.
        let mut d = Space::new();
        d.add(ParamDef::new(
            "tileJ",
            ParamKind::PowerOfTwo { min: 2, max: 32 },
        ));
        d.add(ParamDef::new(
            "tileI",
            ParamKind::PowerOfTwo { min: 2, max: 32 },
        ));
        d.add(ParamDef::new(
            "or:tiletype",
            ParamKind::Enum(vec!["2D".into(), "3D".into()]),
        ));
        assert_ne!(a.digest(), d.digest());

        assert_ne!(Space::new().digest(), a.digest());
    }

    #[test]
    fn point_at_enumerates_all_distinct_points() {
        let space = fig5_space();
        let mut seen = std::collections::HashSet::new();
        for i in 0..space.size() {
            seen.insert(space.point_at(i).dedup_key());
        }
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn random_point_assigns_every_param() {
        let space = fig5_space();
        let p = space.random_point(&mut rng());
        assert_eq!(p.len(), 3);
        assert!(p.get("tileI").is_some());
    }

    #[test]
    fn mutate_changes_at_most_requested_params() {
        let space = fig5_space();
        let mut r = rng();
        let p = space.random_point(&mut r);
        let q = space.mutate(&p, 1, &mut r);
        let diff = p.iter().filter(|(k, v)| q.get(k) != Some(*v)).count();
        assert!(diff <= 1);
    }

    #[test]
    fn crossover_takes_values_from_parents() {
        let space = fig5_space();
        let mut r = rng();
        let a = space.random_point(&mut r);
        let b = space.random_point(&mut r);
        let c = space.crossover(&a, &b, &mut r);
        for (k, v) in c.iter() {
            assert!(a.get(k) == Some(v) || b.get(k) == Some(v));
        }
    }

    #[test]
    fn replacing_a_param_updates_definition() {
        let mut space = fig5_space();
        space.add(ParamDef::new(
            "tileI",
            ParamKind::PowerOfTwo { min: 2, max: 8 },
        ));
        assert_eq!(space.len(), 3);
        assert_eq!(
            space.param("tileI").unwrap().kind,
            ParamKind::PowerOfTwo { min: 2, max: 8 }
        );
    }

    #[test]
    fn complete_fills_missing_params() {
        let space = fig5_space();
        let mut r = rng();
        let partial: Point = vec![("tileI".to_string(), ParamValue::Int(4))]
            .into_iter()
            .collect();
        let full = space.complete(&partial, &mut r);
        assert_eq!(full.len(), 3);
        assert_eq!(full.get("tileI"), Some(&ParamValue::Int(4)));
    }

    #[test]
    fn decision_sites_follow_declaration_order() {
        let sites = fig5_space().decision_sites();
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].id, "tileI");
        assert_eq!(sites[0].index, 0);
        assert_eq!(sites[0].arity, 5);
        assert_eq!(sites[2].id, "or:tiletype");
        assert_eq!(sites[2].arity, 2);
    }

    #[test]
    fn traces_round_trip_through_points() {
        let space = fig5_space();
        for i in 0..space.size() {
            let p = space.point_at(i);
            let trace = space.trace_of(&p).expect("on-grid point encodes");
            let q = space.point_from_trace(&trace).expect("trace decodes");
            assert_eq!(p, q, "index {i}");
        }
        // Random points (possibly off-grid for log kinds) still encode,
        // and the decoded point re-encodes to the same trace.
        let mut r = rng();
        let mut space = fig5_space();
        space.add(ParamDef::new(
            "n",
            ParamKind::LogInteger { min: 1, max: 64 },
        ));
        for _ in 0..50 {
            let p = space.random_point(&mut r);
            let trace = space.trace_of(&p).expect("random point encodes");
            let q = space.point_from_trace(&trace).expect("trace decodes");
            assert_eq!(space.trace_of(&q).unwrap(), trace);
        }
    }

    #[test]
    fn malformed_traces_and_points_are_refused() {
        let space = fig5_space();
        assert_eq!(space.point_from_trace(&[0, 0]), None, "short trace");
        assert_eq!(space.point_from_trace(&[0, 0, 99]), None, "index range");
        let partial: Point = vec![("tileI".to_string(), ParamValue::Int(4))]
            .into_iter()
            .collect();
        assert_eq!(space.trace_of(&partial), None, "missing params");
        assert_eq!(space.trace_of(&Point::new()), None);
        assert_eq!(Space::new().trace_of(&Point::new()), Some(Vec::new()));
        assert_eq!(Space::new().point_from_trace(&[]), Some(Point::new()));
    }

    #[test]
    fn remove_eliminates_dead_params() {
        let mut space = fig5_space();
        assert!(!space.remove("chunk"));
        assert!(space.remove("tileJ"));
        assert_eq!(space.size(), 10);
    }
}
