//! Execution substrate for the Locus reproduction.
//!
//! The paper evaluates program variants by compiling them with ICC and
//! running them on a 10-core Xeon E5-2660 v3. This crate replaces that
//! testbed with a deterministic *simulated machine*:
//!
//! * [`interp`] — an interpreter for the mini-C source IR that executes
//!   the transformed program exactly (so variants can be checked for
//!   semantic equivalence via array checksums), while
//! * [`cache`] — a set-associative, LRU, three-level cache hierarchy —
//!   charges every array access its memory latency, and
//! * [`cost`] — a cost model translating operation counts, vectorization
//!   pragmas and OpenMP parallel-for pragmas (including `schedule` and
//!   `chunk`) into a cycle estimate.
//!
//! Because the cache simulator is faithful to locality, loop tiling,
//! interchange, fusion and skewing genuinely change the measured cost,
//! so empirical search over program variants has the same *shape* as on
//! the paper's hardware: tile sizes matter, bad interchanges lose, and
//! parallel scheduling has measurable overhead. Absolute numbers are, of
//! course, those of the model, not of a Xeon.
//!
//! # Example
//!
//! ```
//! use locus_machine::{Machine, MachineConfig};
//!
//! let src = r#"
//! double A[256];
//! void kernel() {
//!     for (int i = 0; i < 256; i++)
//!         A[i] = 2.0 * (double)i;
//! }
//! "#;
//! let program = locus_srcir::parse_program(src).unwrap();
//! let machine = Machine::new(MachineConfig::scaled_small());
//! let m = machine.run(&program, "kernel").unwrap();
//! assert!(m.cycles > 0.0);
//! ```

#![warn(missing_docs)]

pub mod bytecode;
mod bytecode2;
pub mod cache;
mod compile;
pub mod cost;
pub mod interp;
mod peephole;
pub mod profiles;
mod regalloc;
mod vm;
mod vm2;

pub use bytecode::Exe;
pub use cache::{CacheConfig, CacheHierarchy, CacheStats, Level};
pub use cost::{CostModel, OmpModel};
pub use interp::{Interp, Measurement, RuntimeError};
pub use profiles::{all_profiles, MachineProfile};

use locus_srcir::ast::Program;

/// Which execution engine [`Machine::run`] uses.
///
/// All engines implement the *same* semantics and performance model
/// and produce bit-identical [`Measurement`]s (asserted by the
/// differential suite in `tests/vm_equivalence.rs`); they differ only
/// in wall-clock speed. The tree interpreter remains the reference
/// oracle, the stack VM a second oracle; the register VM is the
/// production path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Walk the AST directly ([`Interp`]): simple, slow, the oracle.
    Tree,
    /// Compile to flat bytecode once, then execute in a stack VM:
    /// scalars become frame slots, array names dense ids, loops jumps.
    Bytecode,
    /// Compile to register-based three-address code and run it in a
    /// direct-threaded VM: operands are pre-decoded virtual registers,
    /// per-iteration cost constants (vector discounts, charge folding)
    /// are hoisted to compile time, and hot compare-branch /
    /// subscript-chain / step-jump sequences are fused into single
    /// dispatches.
    #[default]
    RegisterVm,
}

/// Full machine description: cores, vector units, cache hierarchy and
/// operation costs.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of cores available to `omp parallel for` regions.
    pub cores: usize,
    /// SIMD lanes for double precision (AVX2 = 4).
    pub vector_width: usize,
    /// Clock frequency in GHz, used to convert cycles to milliseconds.
    pub ghz: f64,
    /// The cache hierarchy geometry and latencies.
    pub cache: CacheConfig,
    /// Operation costs and parallel overheads.
    pub cost: CostModel,
    /// Upper bound on interpreted operations, a runaway guard.
    pub max_ops: u64,
    /// Model the compiler's auto-vectorizer (`icc -O3 -xHost`): innermost
    /// loops whose dependences are provably all loop-independent get the
    /// SIMD discount without an explicit pragma. Loops the analysis
    /// cannot prove safe (non-affine subscripts, recurrences) only
    /// vectorize under `#pragma ivdep` / `#pragma vector always` — the
    /// reason the paper's stencil program inserts those pragmas.
    pub auto_vectorize: bool,
    /// Execution engine (defaults to the register VM). Deliberately
    /// *excluded* from [`MachineConfig::digest`]: the engines are
    /// bit-identical, so stored measurements replay across any of them
    /// and persistent-store keys stay stable.
    pub engine: ExecEngine,
}

impl MachineConfig {
    /// The paper's testbed: 10-core Intel Xeon E5-2660 v3 at 2.6 GHz with
    /// 32 KB L1d, 256 KB L2 and a 25 MB shared L3.
    pub fn xeon_e5_2660_v3() -> MachineConfig {
        MachineConfig {
            cores: 10,
            vector_width: 4,
            ghz: 2.6,
            cache: CacheConfig::xeon_e5_2660_v3(),
            cost: CostModel::default(),
            max_ops: 2_000_000_000,
            auto_vectorize: true,
            engine: ExecEngine::RegisterVm,
        }
    }

    /// A proportionally scaled-down machine for laptop-scale experiments:
    /// the cache capacities shrink with the benchmark problem sizes so
    /// the capacity-miss structure (and hence the tiling landscape) of
    /// the paper's full-size runs is preserved.
    pub fn scaled_small() -> MachineConfig {
        MachineConfig {
            cores: 10,
            vector_width: 4,
            ghz: 2.6,
            cache: CacheConfig::scaled_small(),
            cost: CostModel::default(),
            max_ops: 400_000_000,
            auto_vectorize: true,
            engine: ExecEngine::RegisterVm,
        }
    }

    /// Like [`MachineConfig::scaled_small`] but with an aggressively
    /// scaled cache hierarchy (see [`CacheConfig::scaled_tiny`]) for the
    /// most heavily downscaled kernels.
    pub fn scaled_tiny() -> MachineConfig {
        MachineConfig {
            cache: CacheConfig::scaled_tiny(),
            ..MachineConfig::scaled_small()
        }
    }

    /// Returns a copy with a different core count (used for the paper's
    /// 1..10 core sweeps).
    pub fn with_cores(mut self, cores: usize) -> MachineConfig {
        self.cores = cores;
        self
    }

    /// Returns a copy running on a different execution engine.
    pub fn with_engine(mut self, engine: ExecEngine) -> MachineConfig {
        self.engine = engine;
        self
    }

    /// A stable 64-bit FNV-1a digest over every field that influences a
    /// measurement: core count, vector width, clock, the full cache
    /// geometry, every cost-model constant (via float bit patterns, so
    /// the digest is exact), the fuel limit and the auto-vectorizer flag.
    /// The [`ExecEngine`] is deliberately not part of the digest — the
    /// engines produce bit-identical measurements, so records written
    /// under one engine stay valid under any other.
    ///
    /// The persistent tuning store keys records by this digest: a stored
    /// measurement is only replayed onto a machine that would reproduce
    /// it bit for bit. It also serves as a provenance line in BENCH
    /// reports.
    pub fn digest(&self) -> u64 {
        let mut desc = format!(
            "cores:{};vw:{};ghz:{:016x};line:{};memlat:{};maxops:{};autovec:{};",
            self.cores,
            self.vector_width,
            self.ghz.to_bits(),
            self.cache.line,
            self.cache.memory_latency,
            self.max_ops,
            self.auto_vectorize,
        );
        for level in &self.cache.levels {
            desc.push_str(&format!(
                "{}:{}:{}:{};",
                level.name, level.capacity, level.ways, level.latency
            ));
        }
        let c = &self.cost;
        for v in [
            c.add,
            c.mul,
            c.div,
            c.loop_iter,
            c.loop_entry,
            c.omp_fork,
            c.omp_dispatch,
            c.omp_barrier_per_thread,
            c.vector_discount,
        ] {
            desc.push_str(&format!("{:016x};", v.to_bits()));
        }
        locus_srcir::hash::fnv1a(desc.as_bytes())
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::scaled_small()
    }
}

/// A simulated machine that can run programs and report measurements.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(config: MachineConfig) -> Machine {
        Machine { config }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// [`MachineConfig::digest`] of this machine's configuration.
    pub fn digest(&self) -> u64 {
        self.config.digest()
    }

    /// Runs `entry` (a zero-argument function using global arrays) and
    /// returns the measurement.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] for undefined names, out-of-bounds
    /// accesses, unsupported constructs, or fuel exhaustion.
    pub fn run(&self, program: &Program, entry: &str) -> Result<Measurement, RuntimeError> {
        match self.config.engine {
            ExecEngine::Tree => {
                let mut interp = Interp::new(program, &self.config)?;
                interp.run(entry)
            }
            ExecEngine::Bytecode => {
                // Validate the cache geometry *before* compiling so
                // configuration errors take precedence over program
                // errors, matching `Interp::new`'s order.
                let cache = cache::CacheHierarchy::new(&self.config.cache)
                    .map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
                let exe = compile::compile(program, &self.config, entry)?;
                vm::run(&exe, &self.config, cache)
            }
            ExecEngine::RegisterVm => {
                let cache = cache::CacheHierarchy::new(&self.config.cache)
                    .map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
                let exe = regalloc::compile2(program, &self.config, entry)?;
                vm2::run(&exe, &self.config, cache)
            }
        }
    }

    /// Compiles `entry` once and evaluates it under every configuration
    /// in `configs`, reusing the compiled code across all points that
    /// share compile-time parameters (cost constants, vector geometry,
    /// auto-vectorizer setting, parallel lowering). Tuning drivers that
    /// sweep one variant across data sizes or machine profiles pay
    /// lowering once instead of once per point.
    ///
    /// Each element is exactly what `Machine::new(cfg).run(program,
    /// entry)` would return for that configuration — bit-identical
    /// measurement or the same error — so batched and per-variant
    /// evaluation are interchangeable.
    pub fn run_batched(
        program: &Program,
        entry: &str,
        configs: &[MachineConfig],
    ) -> Vec<Result<Measurement, RuntimeError>> {
        let variant = CompiledVariant::new(program.clone(), entry);
        configs.iter().map(|cfg| variant.run(cfg)).collect()
    }

    /// Like [`Machine::run`], but emits `machine`-category spans into
    /// `tracer` around each internal stage (bytecode compilation and VM
    /// execution, or tree interpretation). With a disabled tracer this
    /// is exactly `run` — the span guards compile to no-ops — so the
    /// traced and untraced paths cannot diverge.
    pub fn run_traced(
        &self,
        program: &Program,
        entry: &str,
        tracer: &locus_trace::Tracer,
    ) -> Result<Measurement, RuntimeError> {
        match self.config.engine {
            ExecEngine::Tree => {
                let _span = tracer.span("machine", "tree-interp");
                let mut interp = Interp::new(program, &self.config)?;
                interp.run(entry)
            }
            ExecEngine::Bytecode => {
                let cache = cache::CacheHierarchy::new(&self.config.cache)
                    .map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
                let exe = {
                    let _span = tracer.span("machine", "compile-bytecode");
                    compile::compile(program, &self.config, entry)?
                };
                let _span = tracer.span("machine", "vm-measure");
                vm::run(&exe, &self.config, cache)
            }
            ExecEngine::RegisterVm => {
                let cache = cache::CacheHierarchy::new(&self.config.cache)
                    .map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
                let exe = {
                    let _span = tracer.span("machine", "compile-regvm");
                    regalloc::compile2(program, &self.config, entry)?
                };
                let _span = tracer.span("machine", "vm-measure");
                vm2::run(&exe, &self.config, cache)
            }
        }
    }
}

/// Lowered code for one (variant, engine, compile-parameter) point,
/// memoized inside a [`CompiledVariant`].
#[derive(Clone)]
enum CompiledExe {
    Stack(std::sync::Arc<Exe>),
    Reg(std::sync::Arc<bytecode2::Exe2>),
}

/// A program variant held ready for *batched evaluation*: compile once,
/// then measure under many machine configurations.
///
/// [`Machine::run`] re-lowers the program on every call, which is the
/// right trade for one-off measurements but wasteful for tuning sweeps
/// that evaluate the same variant across data sizes, core counts or
/// whole machine profiles. A `CompiledVariant` memoizes the lowered
/// code keyed by the compile-time slice of the configuration
/// (`compile_key`: cost constants, vector geometry, auto-vectorizer
/// flag, parallel lowering); runtime-only knobs (fuel limit, cache
/// geometry, clock, core *count* beyond the >1 lowering decision) hit
/// the memo. [`CompiledVariant::run`] returns exactly what
/// [`Machine::run`] would — bit-identical measurements, same errors in
/// the same precedence order — so callers may swap freely between the
/// two paths (`bench_interp --check` asserts this across the corpus).
///
/// The memo is behind a mutex, so one variant can be shared across
/// evaluation worker threads (`&self` access).
pub struct CompiledVariant {
    program: Program,
    entry: String,
    memo: std::sync::Mutex<Vec<(u64, ExecEngine, CompiledExe)>>,
}

/// FNV-1a digest of the configuration fields that influence *lowering*
/// (as opposed to execution): the five charge constants baked into
/// emitted code, the vector discount and width (pre-divided into
/// charges by the register compiler), the auto-vectorizer flag, and
/// whether parallel regions lower to parallel code at all
/// (`cores > 1`). Two configurations with equal keys compile to
/// identical code for every program.
fn compile_key(config: &MachineConfig) -> u64 {
    let c = &config.cost;
    let desc = format!(
        "{:016x};{:016x};{:016x};{:016x};{:016x};{:016x};vw:{};av:{};par:{};",
        c.add.to_bits(),
        c.mul.to_bits(),
        c.div.to_bits(),
        c.loop_iter.to_bits(),
        c.loop_entry.to_bits(),
        c.vector_discount.to_bits(),
        config.vector_width,
        config.auto_vectorize,
        config.cores > 1,
    );
    locus_srcir::hash::fnv1a(desc.as_bytes())
}

impl CompiledVariant {
    /// Wraps a program + entry point for batched evaluation. Lowering
    /// is lazy: nothing is compiled until the first [`run`].
    ///
    /// [`run`]: CompiledVariant::run
    pub fn new(program: Program, entry: &str) -> CompiledVariant {
        CompiledVariant {
            program,
            entry: entry.to_string(),
            memo: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The entry point this variant measures.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Measures the variant under `config`, compiling at most once per
    /// distinct `compile_key` × engine. Exactly equivalent to
    /// `Machine::new(config.clone()).run(self.program(), self.entry())`.
    pub fn run(&self, config: &MachineConfig) -> Result<Measurement, RuntimeError> {
        self.run_traced(config, &locus_trace::Tracer::disabled())
    }

    /// Like [`CompiledVariant::run`], but emits `machine`-category spans
    /// into `tracer` around each internal stage, mirroring
    /// [`Machine::run_traced`]. A memo hit emits no compile span — the
    /// spans reflect the work actually done.
    pub fn run_traced(
        &self,
        config: &MachineConfig,
        tracer: &locus_trace::Tracer,
    ) -> Result<Measurement, RuntimeError> {
        // The tree engine has no compile stage to amortize.
        if config.engine == ExecEngine::Tree {
            let _span = tracer.span("machine", "tree-interp");
            let mut interp = Interp::new(&self.program, config)?;
            return interp.run(&self.entry);
        }
        // Validate the cache geometry *before* touching the memo so
        // error precedence matches `Machine::run` (configuration
        // errors beat program errors even on a memo hit).
        let cache = cache::CacheHierarchy::new(&config.cache)
            .map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
        let key = compile_key(config);
        let exe = {
            let memo = self.memo.lock().expect("compile memo poisoned");
            memo.iter()
                .find(|(k, eng, _)| *k == key && *eng == config.engine)
                .map(|(_, _, exe)| exe.clone())
        };
        let exe = match exe {
            Some(exe) => exe,
            None => {
                // Compile outside the lock; failures are not cached
                // (they are cheap to reproduce and keep the memo to
                // successful entries only).
                let compiled = match config.engine {
                    ExecEngine::Bytecode => {
                        let _span = tracer.span("machine", "compile-bytecode");
                        CompiledExe::Stack(std::sync::Arc::new(compile::compile(
                            &self.program,
                            config,
                            &self.entry,
                        )?))
                    }
                    ExecEngine::RegisterVm => {
                        let _span = tracer.span("machine", "compile-regvm");
                        CompiledExe::Reg(std::sync::Arc::new(regalloc::compile2(
                            &self.program,
                            config,
                            &self.entry,
                        )?))
                    }
                    ExecEngine::Tree => unreachable!("handled above"),
                };
                let mut memo = self.memo.lock().expect("compile memo poisoned");
                if !memo
                    .iter()
                    .any(|(k, eng, _)| *k == key && *eng == config.engine)
                {
                    memo.push((key, config.engine, compiled.clone()));
                }
                compiled
            }
        };
        let _span = tracer.span("machine", "vm-measure");
        match &exe {
            CompiledExe::Stack(exe) => vm::run(exe, config, cache),
            CompiledExe::Reg(exe) => vm2::run(exe, config, cache),
        }
    }
}

impl std::fmt::Debug for CompiledVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledVariant")
            .field("entry", &self.entry)
            .finish_non_exhaustive()
    }
}

/// Compile-time contract of the parallel evaluation engine in the core
/// crate: workers clone the machine and carry it across threads, and
/// share measurements back through the merge. `Machine` is plain data
/// (no interior mutability — [`Machine::run`] takes `&self`), so these
/// bounds hold structurally; this block turns any regression into a
/// build error.
const _: () = {
    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
    assert_send_sync_clone::<Machine>();
    assert_send_sync_clone::<MachineConfig>();
    assert_send_sync_clone::<crate::cache::CacheHierarchy>();
    assert_send_sync_clone::<Measurement>();
    // Batched evaluation shares one compiled variant across worker
    // threads by reference; the memo mutex carries the sync.
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledVariant>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets_differ_in_cache_size() {
        let big = MachineConfig::xeon_e5_2660_v3();
        let small = MachineConfig::scaled_small();
        assert!(big.cache.levels[0].capacity > small.cache.levels[0].capacity);
        assert_eq!(big.cores, 10);
    }

    #[test]
    fn with_cores_overrides() {
        let cfg = MachineConfig::scaled_small().with_cores(4);
        assert_eq!(cfg.cores, 4);
    }

    #[test]
    fn digest_is_stable_and_sensitive_to_every_knob() {
        let a = MachineConfig::scaled_small();
        assert_eq!(a.digest(), MachineConfig::scaled_small().digest());
        assert_eq!(Machine::new(a.clone()).digest(), a.digest());

        // Any field that changes a measurement changes the digest.
        assert_ne!(a.digest(), a.clone().with_cores(4).digest());
        assert_ne!(a.digest(), MachineConfig::scaled_tiny().digest());
        assert_ne!(a.digest(), MachineConfig::xeon_e5_2660_v3().digest());
        let mut b = a.clone();
        b.auto_vectorize = false;
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.cost.omp_fork += 1.0;
        assert_ne!(a.digest(), c.digest());
    }
}
