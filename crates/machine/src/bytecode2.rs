//! Register-based bytecode for the tier-2 execution engine.
//!
//! The `regalloc` module lowers the mini-C AST to three-address
//! instructions over a virtual register frame: scalar slots occupy the
//! low registers, expression temporaries live above them, and every
//! operand is pre-decoded into an [`Opnd`] at lowering time — there is
//! no operand stack, so the dispatch loop in `vm2` touches only the
//! registers an instruction names. Whole subscript chains collapse into
//! one [`RInsn::Nav`] dispatch driven by a [`NavDesc`] side table, and
//! the per-iteration loop overhead (condition, fall-through charge,
//! step, back edge) collapses into [`RInsn::CmpBr`] + [`RInsn::StepJump`].
//!
//! Cost folding happens at lowering: cycle charges inside lexically
//! vectorized regions are stored *pre-divided* by the vector discount
//! (the region structure is static, so `cost / w` is a compile-time
//! constant and the `vector_depth` branch of the other two engines
//! disappears from dispatch). The f64 division is performed once with
//! the same operands the tree interpreter uses per charge, so the
//! accumulated `cycles` stay bit-identical.
//!
//! The bit-identity contract is the same as [`crate::bytecode`]'s:
//! every fuel tick, cycle charge, cache access and flop increment of
//! the tree interpreter happens in the same order with the same values,
//! and errors are raised at the same semantic points with the same
//! payloads. `tests/vm_equivalence.rs` holds all three engines to it.

use locus_srcir::ast::{BinOp, OmpSchedule};

use crate::bytecode::{ArrayCell, ArrayId, Builtin, CastKind, Chain, SlotId, ThrowKind};
use crate::interp::Value;

/// Index into the virtual register frame. Slots (resolved scalars) are
/// the low registers; temporaries start at the lowering pass's
/// pre-scanned slot bound.
pub(crate) type RegId = u32;

/// A pre-decoded instruction operand: a register or an immediate.
/// Immediates carry their tag (`ImmF` behaves as a `double` operand for
/// the flop-counting rules, exactly like a pushed float literal).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Opnd {
    /// Read a register.
    Reg(RegId),
    /// Integer immediate.
    ImmI(i64),
    /// Float immediate.
    ImmF(f64),
}

/// One subscript of a fused navigation chain. Only side-effect-free
/// shapes are eligible (a register holding a resolved scalar, a
/// constant, or `slot ⊕ const`), so evaluating them inside one dispatch
/// cannot reorder effects.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SubIdx {
    /// Subscript read from a register.
    Reg(RegId),
    /// Constant subscript.
    Imm(i64),
    /// `slot ⊕ const` subscript (`B[j-1]`, `A[t % 2]` — the stencil hot
    /// path): charge `bcost`, count a flop for a double lhs, apply.
    RegOff {
        /// Register holding the lhs.
        s: RegId,
        /// Subscript operator.
        op: BinOp,
        /// Constant rhs.
        rhs: i64,
        /// Subscript-computation charge.
        bcost: f64,
    },
    /// `(slot ⊕ x) ⊕ y` subscript (`A[(t + 1) % 2]`, `ell[nm * 6 + d]`
    /// — the stencil time-toggle and flattened-tensor hot paths):
    /// charge/flop/apply the inner op, then the outer, in tree order.
    /// `op1` is restricted to error-free operators at lowering time so
    /// the merged fuel (ticked before the chain step) cannot reorder
    /// against an inner-op error — the outer op is the first possible
    /// error point, by which the tree has ticked every merged tick.
    RegOff2 {
        /// Register holding the innermost lhs.
        s: RegId,
        /// Inner operator (never `Div`/`Rem`).
        op1: BinOp,
        /// Inner rhs.
        r1: Opnd,
        /// Inner-op charge.
        bcost1: f64,
        /// Outer operator.
        op2: BinOp,
        /// Outer rhs.
        r2: Opnd,
        /// Outer-op charge.
        bcost2: f64,
    },
}

/// One dimension step of a [`NavDesc`]: tick the pending fuel, evaluate
/// the subscript, bounds-check against the dimension extent, fold into
/// the flat index, charge the address arithmetic — the tree's `locate`
/// for one subscript.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DimStep {
    /// Fuel ticked before this subscript is evaluated (the merged
    /// pending ticks the stack VM would flush before its `IndexDim`).
    pub(crate) fuel: u32,
    /// The subscript.
    pub(crate) idx: SubIdx,
    /// Address-arithmetic charge after the bounds check.
    pub(crate) cost: f64,
}

/// Maximum rank a subscript chain may have to fuse into one
/// [`RInsn::Nav`]; deeper chains fall back to stepwise [`RInsn::IdxDim`]
/// lowering.
pub(crate) const MAX_NAV_DIMS: usize = 4;

/// The array access fused onto the end of a navigation chain, executed
/// on the flat index the chain produced.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RTail {
    /// Read the element through the cache into `dst`.
    Load {
        /// Destination register.
        dst: RegId,
    },
    /// Read the element as the rhs of a binary op (`lhs ⊕ elem`).
    LoadBin {
        /// Binary operator.
        op: BinOp,
        /// Operator charge.
        cost: f64,
        /// Left operand, evaluated before the chain was entered.
        lhs: Opnd,
        /// Destination register.
        dst: RegId,
    },
    /// Write `val` through the cache (coerced to the element type).
    Store {
        /// The stored value.
        val: Opnd,
    },
    /// Read-modify-write one address: two cache accesses, one chain.
    Rmw {
        /// Combine operator.
        op: BinOp,
        /// Operator charge.
        cost: f64,
        /// Right-hand side of the combine.
        rhs: Opnd,
        /// Destination register for the combined value.
        dst: RegId,
    },
}

/// A whole subscript chain plus its fused access: the operand of
/// [`RInsn::Nav`], stored in a side table so the instruction stays
/// `Copy`-small.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NavDesc {
    /// The array accessed.
    pub(crate) id: ArrayId,
    /// Number of live entries in `steps`.
    pub(crate) n: u32,
    /// Sum of the per-step fuel, for the executor's single up-front
    /// budget check (taken only when it cannot exhaust mid-chain — the
    /// tick *order* is unobservable, only totals and error points are).
    pub(crate) total_fuel: u32,
    /// The per-dimension steps, outermost first.
    pub(crate) steps: [DimStep; MAX_NAV_DIMS],
    /// The access run on the final flat index.
    pub(crate) tail: RTail,
}

/// A fused innermost counted loop. The lowering pass's final fusion
/// step recognizes `CmpBr; straight-line body; StepJump-back` windows
/// and overwrites the `CmpBr` slot with [`RInsn::HotLoop`]; the guard's
/// fields move here (the body and the `StepJump` stay in place and are
/// read through `body`/`step`, so no instruction is duplicated and no
/// index shifts). The executor then runs the whole loop — guard, body
/// scan, step — inside one dispatch, issuing exactly the instruction
/// sequence the unfused loop would, minus the dispatcher round-trips.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotLoopDesc {
    /// Guard fuel (the original `CmpBr`'s leading ticks).
    pub(crate) fuel: u32,
    /// Comparison operator.
    pub(crate) op: BinOp,
    /// Comparison charge.
    pub(crate) cost: f64,
    /// Left operand.
    pub(crate) a: Opnd,
    /// Right operand.
    pub(crate) b: Opnd,
    /// Charge applied after the comparison on both paths.
    pub(crate) post: f64,
    /// Jump target when the guard is falsy.
    pub(crate) exit: u32,
    /// Fall-through (per-iteration) charge.
    pub(crate) pcost: f64,
    /// Body range `code[body.0..body.1]` — straight-line shapes only
    /// (verified at fusion time).
    pub(crate) body: (u32, u32),
    /// Index of the original [`RInsn::StepJump`], whose fields drive
    /// the loop step.
    pub(crate) step: u32,
}

/// A local array allocation: dimension extents were evaluated (and
/// positivity-checked) one by one; the alloc reads their values from
/// these operands. Eligible operands are re-read at alloc time, so the
/// lowering pass shields any that later dimension expressions could
/// mutate.
#[derive(Debug, Clone)]
pub(crate) struct AllocDesc {
    /// Interned name being (re)allocated.
    pub(crate) id: ArrayId,
    /// Dimension extents, outermost first.
    pub(crate) dims: Vec<Opnd>,
    /// Element type.
    pub(crate) is_float: bool,
}

/// One register instruction. All cost constants are baked in at
/// lowering time (pre-divided inside vectorized regions).
#[derive(Debug, Clone, Copy)]
pub(crate) enum RInsn {
    /// `n` fuel ticks (`ops += n`, runaway-guard check).
    Fuel(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Jump when the operand is falsy.
    BrFalsy {
        /// Tested operand.
        src: Opnd,
        /// Branch target.
        t: u32,
    },
    /// Fused comparison-and-branch: tick `fuel`, evaluate, charge
    /// `cost`, count flops, apply; charge `post` (an `if` condition's
    /// trailing add) on both paths; on fall-through charge `pcost` (a
    /// loop's per-iteration charge).
    CmpBr {
        /// Fuel ticked first (merged pending + condition ticks).
        fuel: u32,
        /// Comparison operator.
        op: BinOp,
        /// Comparison charge.
        cost: f64,
        /// Left operand.
        a: Opnd,
        /// Right operand.
        b: Opnd,
        /// Charge applied after the comparison on *both* paths
        /// (0.0 when none).
        post: f64,
        /// Branch target when falsy.
        t: u32,
        /// Fall-through charge (0.0 when none).
        pcost: f64,
    },
    /// Fused loop step and back edge: tick `fuel`, combine the slot
    /// with `rhs` (compound-assignment semantics: flop when the *old*
    /// value is a double), store tag-preserving, jump to `t`.
    StepJump {
        /// Fuel ticked first (merged pending + step ticks).
        fuel: u32,
        /// Combine operator.
        op: BinOp,
        /// Combine charge.
        cost: f64,
        /// Register of the stepped slot.
        slot: RegId,
        /// Step amount.
        rhs: Opnd,
        /// Back-edge target.
        t: u32,
    },
    /// Copy an operand into a register (no charge; a lowering artifact
    /// for shielding values across side effects).
    Mov {
        /// Destination register.
        dst: RegId,
        /// Source operand.
        src: Opnd,
    },
    /// Store into a slot register preserving its current tag (the tree
    /// interpreter's `write_scalar`).
    SetSlot {
        /// Register of the target slot.
        slot: RegId,
        /// Stored value.
        src: Opnd,
    },
    /// Read a dynamically resolved scalar (see [`Chain`]).
    LoadChain {
        /// Chain-table index.
        chain: u32,
        /// Destination register.
        dst: RegId,
    },
    /// Store into a dynamically resolved scalar, tag-preserving.
    StoreChain {
        /// Chain-table index.
        chain: u32,
        /// Stored value.
        src: Opnd,
    },
    /// (Re)initialize a slot from a declaration with the declared
    /// type's coercion (overwrites the tag).
    DeclSlot {
        /// Register of the declared slot.
        slot: RegId,
        /// Declared type's coercion.
        kind: CastKind,
        /// Initializer value.
        src: Opnd,
    },
    /// (Re)initialize a slot to the declared type's default value.
    DeclDefault {
        /// Register of the declared slot.
        slot: RegId,
        /// Whether the declared type is floating.
        is_float: bool,
    },
    /// Charge cycles (already vector-discounted where applicable).
    Charge(f64),
    /// Arithmetic negation: charge, count a flop for doubles.
    Neg {
        /// Charge.
        cost: f64,
        /// Destination register.
        dst: RegId,
        /// Operand.
        src: Opnd,
    },
    /// Logical not: charge.
    Not {
        /// Charge.
        cost: f64,
        /// Destination register.
        dst: RegId,
        /// Operand.
        src: Opnd,
    },
    /// Three-address binary op: charge, count flops, apply.
    Bin {
        /// Operator.
        op: BinOp,
        /// Charge.
        cost: f64,
        /// Destination register.
        dst: RegId,
        /// Left operand.
        a: Opnd,
        /// Right operand.
        b: Opnd,
    },
    /// Compound assignment to a slot in statement position: combine
    /// (flop when the *old* value is a double), store tag-preserving.
    CompoundSet {
        /// Operator.
        op: BinOp,
        /// Charge.
        cost: f64,
        /// Register of the target slot.
        slot: RegId,
        /// Right-hand side.
        rhs: Opnd,
    },
    /// [`RInsn::CompoundSet`] whose combined (uncoerced) value is also
    /// needed: it lands in `dst` before the tag-preserving store.
    CompoundSetVal {
        /// Operator.
        op: BinOp,
        /// Charge.
        cost: f64,
        /// Register of the target slot.
        slot: RegId,
        /// Right-hand side.
        rhs: Opnd,
        /// Destination register for the combined value.
        dst: RegId,
    },
    /// Compound combine without a store (chained or unsupported
    /// targets): flop when the *old* operand is a double.
    CompoundTmp {
        /// Operator.
        op: BinOp,
        /// Charge.
        cost: f64,
        /// Destination register.
        dst: RegId,
        /// The old value.
        old: Opnd,
        /// Right-hand side.
        rhs: Opnd,
    },
    /// `dst = 1` when the operand is truthy else `0`.
    Truthy {
        /// Destination register.
        dst: RegId,
        /// Tested operand.
        src: Opnd,
    },
    /// `&&` left arm: when falsy, set `dst` to `Int(0)` and jump.
    AndSC {
        /// Tested operand.
        src: Opnd,
        /// Destination register (the `&&` expression's result).
        dst: RegId,
        /// Branch target.
        t: u32,
    },
    /// `||` left arm: when truthy, set `dst` to `Int(1)` and jump.
    OrSC {
        /// Tested operand.
        src: Opnd,
        /// Destination register (the `||` expression's result).
        dst: RegId,
        /// Branch target.
        t: u32,
    },
    /// C cast: charge, coerce.
    Cast {
        /// The coercion.
        kind: CastKind,
        /// Charge.
        cost: f64,
        /// Destination register.
        dst: RegId,
        /// Operand.
        src: Opnd,
    },
    /// One-argument builtin call: charge the call overhead, apply
    /// (`sqrt` additionally counts a flop and charges `div_cost`).
    Call1 {
        /// The builtin.
        f: Builtin,
        /// Call-overhead charge.
        cost: f64,
        /// Division charge for `sqrt` (0.0 otherwise).
        div_cost: f64,
        /// Destination register.
        dst: RegId,
        /// Argument.
        a: Opnd,
    },
    /// Two-argument builtin call (`min`/`max`).
    Call2 {
        /// The builtin.
        f: Builtin,
        /// Call-overhead charge.
        cost: f64,
        /// Destination register.
        dst: RegId,
        /// First argument.
        a: Opnd,
        /// Second argument.
        b: Opnd,
    },
    /// Verify the array exists and its rank matches the subscript count
    /// (before any index expression is evaluated, like `locate`).
    ArrayCheck {
        /// The array accessed.
        id: ArrayId,
        /// Subscript count.
        subs: u32,
    },
    /// Stepwise subscript fold (the general path for chains a
    /// [`RInsn::Nav`] cannot express): bounds-check `idx`, fold into
    /// the accumulator register, charge.
    IdxDim {
        /// The array accessed.
        id: ArrayId,
        /// Which dimension this subscript addresses.
        dim: u32,
        /// First subscript of the chain (accumulator not yet live).
        first: bool,
        /// Address-arithmetic charge.
        cost: f64,
        /// The subscript value.
        idx: Opnd,
        /// Flat-index accumulator register.
        acc: RegId,
    },
    /// Run a whole fused subscript chain + access ([`NavDesc`]).
    Nav(u32),
    /// Run a whole fused innermost loop ([`HotLoopDesc`]) in one
    /// dispatch.
    HotLoop(u32),
    /// Error when the just-evaluated dimension extent is `<= 0`.
    DimCheck {
        /// The array being declared.
        id: ArrayId,
        /// The extent value.
        v: Opnd,
    },
    /// Allocate a local array ([`AllocDesc`]), advancing the
    /// allocation cursor.
    AllocArray(u32),
    /// Read an element through the cache ([`RInsn::IdxDim`] tail).
    LoadA {
        /// The array accessed.
        id: ArrayId,
        /// Flat-index accumulator register.
        acc: RegId,
        /// Destination register.
        dst: RegId,
    },
    /// Write an element through the cache ([`RInsn::IdxDim`] tail).
    StoreA {
        /// The array accessed.
        id: ArrayId,
        /// Flat-index accumulator register.
        acc: RegId,
        /// Stored value.
        val: Opnd,
    },
    /// Read-modify-write one element ([`RInsn::IdxDim`] tail).
    RmwA {
        /// Combine operator.
        op: BinOp,
        /// Combine charge.
        cost: f64,
        /// The array accessed.
        id: ArrayId,
        /// Flat-index accumulator register.
        acc: RegId,
        /// Right-hand side.
        rhs: Opnd,
        /// Destination register for the combined value.
        dst: RegId,
    },
    /// Load an element as the rhs of a binary op ([`RInsn::IdxDim`]
    /// tail).
    LoadABin {
        /// Operator.
        op: BinOp,
        /// Operator charge.
        cost: f64,
        /// The array accessed.
        id: ArrayId,
        /// Flat-index accumulator register.
        acc: RegId,
        /// Left operand.
        lhs: Opnd,
        /// Destination register.
        dst: RegId,
    },
    /// Enter an `omp parallel for` loop (nested pragmas serialize).
    ParEnter(Option<OmpSchedule>),
    /// Start-of-iteration timestamp for the active parallel context.
    IterStart,
    /// End-of-iteration: record the iteration's sequential cost.
    IterEnd,
    /// Leave the parallel loop: replace the sequentially accumulated
    /// body time with the scheduled makespan.
    ParExit,
    /// Raise a runtime error whose message lives in the message table.
    Throw(ThrowKind, u32),
    /// Finalize any open parallel contexts and stop.
    Halt,
}

/// A lowered program: flat register code, the initial machine image,
/// and the side tables ([`NavDesc`], [`AllocDesc`], [`Chain`],
/// messages) execution and error reporting need.
#[derive(Debug, Clone)]
pub struct Exe2 {
    pub(crate) code: Vec<RInsn>,
    /// Register-frame size (slots + temporaries).
    pub(crate) n_regs: usize,
    /// Initial values of the global slot prefix.
    pub(crate) global_values: Vec<Value>,
    /// Initial array table (globals allocated, locals `None`).
    pub(crate) arrays: Vec<Option<ArrayCell>>,
    /// Interned array names, for error messages and the checksum.
    pub(crate) array_names: Vec<String>,
    /// Message table for [`RInsn::Throw`] and [`Chain`]s.
    pub(crate) messages: Vec<String>,
    /// Dynamic scalar-resolution chains (conditional bare declarations).
    pub(crate) chains: Vec<Chain>,
    /// Fused navigation chains for [`RInsn::Nav`].
    pub(crate) navs: Vec<NavDesc>,
    /// Fused innermost loops for [`RInsn::HotLoop`].
    pub(crate) hotloops: Vec<HotLoopDesc>,
    /// Local array allocations for [`RInsn::AllocArray`].
    pub(crate) allocs: Vec<AllocDesc>,
    /// Allocation cursor after the globals.
    pub(crate) next_base: u64,
}

// `SlotId` and `RegId` are the same index space for the slot prefix of
// the register frame; keep the alias equivalence checked.
const _: () = {
    const fn same_width(_: SlotId, _: RegId) {}
    same_width(0u32, 0u32);
};
