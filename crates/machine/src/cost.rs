//! Cost model: operation latencies, vectorization discounts, and the
//! OpenMP scheduling model that turns per-iteration costs into a
//! parallel makespan.

use locus_srcir::ast::{OmpSchedule, OmpScheduleKind};

/// Cycle costs of scalar operations plus parallel-region overheads.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Add/sub/compare/logical ops.
    pub add: f64,
    /// Multiplication.
    pub mul: f64,
    /// Division / modulo.
    pub div: f64,
    /// Per-iteration loop overhead (compare + increment + branch).
    pub loop_iter: f64,
    /// One-time loop entry overhead.
    pub loop_entry: f64,
    /// Fork/join overhead of entering an OpenMP parallel region.
    pub omp_fork: f64,
    /// Per-chunk dispatch overhead under dynamic scheduling.
    pub omp_dispatch: f64,
    /// Barrier cost per participating thread at region end.
    pub omp_barrier_per_thread: f64,
    /// Arithmetic-cost divisor granted by `ivdep`/`vector always` on a
    /// loop (capped by the machine's vector width).
    pub vector_discount: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            add: 1.0,
            mul: 3.0,
            div: 20.0,
            loop_iter: 2.0,
            loop_entry: 2.0,
            omp_fork: 2000.0,
            omp_dispatch: 60.0,
            omp_barrier_per_thread: 150.0,
            vector_discount: 4.0,
        }
    }
}

/// The OpenMP loop scheduling model.
///
/// Given the measured sequential cost of each top-level iteration of a
/// `parallel for` loop, computes the parallel makespan in cycles for a
/// given schedule, chunk size and core count — reproducing the
/// static-vs-dynamic and chunk-size trade-offs the paper's Fig. 7
/// explores with an `OR` block.
#[derive(Debug, Clone, Copy)]
pub struct OmpModel<'a> {
    /// The cost model for overheads.
    pub cost: &'a CostModel,
    /// Number of cores.
    pub cores: usize,
}

impl OmpModel<'_> {
    /// Computes the makespan of the region in cycles.
    pub fn makespan(&self, iter_costs: &[f64], schedule: Option<OmpSchedule>) -> f64 {
        let p = self.cores.max(1);
        let n = iter_costs.len();
        if n == 0 {
            return self.cost.omp_fork;
        }
        let (kind, chunk) = match schedule {
            None => (OmpScheduleKind::Static, None),
            Some(s) => (s.kind, s.chunk),
        };
        let body = match kind {
            OmpScheduleKind::Static => {
                let chunk = chunk.map_or_else(|| n.div_ceil(p), |c| c as usize).max(1);
                // Round-robin chunks to threads.
                let mut thread_time = vec![0.0f64; p];
                for (c, chunk_costs) in iter_costs.chunks(chunk).enumerate() {
                    thread_time[c % p] += chunk_costs.iter().sum::<f64>();
                }
                thread_time.into_iter().fold(0.0, f64::max)
            }
            OmpScheduleKind::Dynamic => {
                let chunk = chunk.map_or(1usize, |c| c as usize).max(1);
                // Greedy: each chunk goes to the earliest-available
                // thread, plus a dispatch overhead per chunk.
                let mut thread_time = vec![0.0f64; p];
                for chunk_costs in iter_costs.chunks(chunk) {
                    let (idx, _) = thread_time
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite costs"))
                        .expect("p >= 1");
                    thread_time[idx] += chunk_costs.iter().sum::<f64>() + self.cost.omp_dispatch;
                }
                thread_time.into_iter().fold(0.0, f64::max)
            }
        };
        self.cost.omp_fork + body + self.cost.omp_barrier_per_thread * p as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cores: usize) -> (CostModel, usize) {
        (CostModel::default(), cores)
    }

    #[test]
    fn static_balanced_speedup_is_near_linear() {
        let (cost, cores) = model(4);
        let omp = OmpModel { cost: &cost, cores };
        let iters = vec![1000.0; 64];
        let seq: f64 = iters.iter().sum();
        let par = omp.makespan(&iters, None);
        let speedup = seq / par;
        assert!(speedup > 3.0 && speedup <= 4.0, "speedup {speedup}");
    }

    #[test]
    fn dynamic_helps_imbalanced_loops() {
        let (cost, cores) = model(4);
        let omp = OmpModel { cost: &cost, cores };
        // Costs descending steeply: static contiguous blocks are skewed.
        let iters: Vec<f64> = (0..64)
            .map(|i| if i < 8 { 20_000.0 } else { 100.0 })
            .collect();
        let static_span = omp.makespan(
            &iters,
            Some(OmpSchedule {
                kind: OmpScheduleKind::Static,
                chunk: None,
            }),
        );
        let dynamic_span = omp.makespan(
            &iters,
            Some(OmpSchedule {
                kind: OmpScheduleKind::Dynamic,
                chunk: Some(1),
            }),
        );
        assert!(
            dynamic_span < static_span,
            "dynamic {dynamic_span} should beat static {static_span}"
        );
    }

    #[test]
    fn dynamic_dispatch_overhead_hurts_balanced_loops() {
        let (cost, cores) = model(4);
        let omp = OmpModel { cost: &cost, cores };
        let iters = vec![500.0; 256];
        let static_span = omp.makespan(&iters, None);
        let dynamic_span = omp.makespan(
            &iters,
            Some(OmpSchedule {
                kind: OmpScheduleKind::Dynamic,
                chunk: Some(1),
            }),
        );
        assert!(static_span < dynamic_span);
    }

    #[test]
    fn single_core_makespan_is_total_plus_overhead() {
        let (cost, _) = model(1);
        let omp = OmpModel {
            cost: &cost,
            cores: 1,
        };
        let iters = vec![100.0; 10];
        let span = omp.makespan(&iters, None);
        assert!((span - (cost.omp_fork + 1000.0 + cost.omp_barrier_per_thread)).abs() < 1e-9);
    }

    #[test]
    fn empty_loop_costs_fork_only() {
        let (cost, _) = model(8);
        let omp = OmpModel {
            cost: &cost,
            cores: 8,
        };
        assert_eq!(omp.makespan(&[], None), cost.omp_fork);
    }

    #[test]
    fn static_chunked_round_robin() {
        let (cost, _) = model(2);
        let omp = OmpModel {
            cost: &cost,
            cores: 2,
        };
        // 4 iterations, chunk 1, costs [4,1,4,1]: round robin gives
        // thread0 = 8, thread1 = 2.
        let span = omp.makespan(
            &[4.0, 1.0, 4.0, 1.0],
            Some(OmpSchedule {
                kind: OmpScheduleKind::Static,
                chunk: Some(1),
            }),
        );
        let expected = cost.omp_fork + 8.0 + cost.omp_barrier_per_thread * 2.0;
        assert!((span - expected).abs() < 1e-9);
    }
}
