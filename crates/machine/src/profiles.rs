//! The machine profile library: named [`MachineConfig`] presets spanning
//! the hardware axes the tuner is sensitive to — core count, vector
//! width, cache geometry and memory distance.
//!
//! [`all_profiles`] is the cross-machine analogue of the corpus
//! registry: suites and benches that want "every machine" iterate it
//! instead of hand-listing configurations, and `tune_across_machines`
//! in the core crate fans one tuning request out over it. Each profile
//! has a distinct [`MachineConfig::digest`], so the persistent tuning
//! store keeps their results apart automatically.

use crate::{CacheConfig, MachineConfig};

/// A named machine configuration.
#[derive(Debug, Clone)]
pub struct MachineProfile {
    /// Stable profile name (used as a report key).
    pub name: &'static str,
    /// One-line description of what the profile stresses.
    pub summary: &'static str,
    /// The configuration itself.
    pub config: MachineConfig,
}

impl MachineConfig {
    /// An embedded-class part: 2 slow cores, 2-lane SIMD, the tiny
    /// two-level [`CacheConfig::embedded_small`] hierarchy, and *no*
    /// auto-vectorizer — explicit `ivdep` / `vector always` pragmas are
    /// the only way to the SIMD discount, so recipes that rely on the
    /// compiler stop transferring here.
    pub fn embedded_small_l1() -> MachineConfig {
        MachineConfig {
            cores: 2,
            vector_width: 2,
            ghz: 0.8,
            cache: CacheConfig::embedded_small(),
            auto_vectorize: false,
            ..MachineConfig::scaled_small()
        }
    }

    /// A server-class part: 16 cores, 8-lane SIMD, and the
    /// [`CacheConfig::server_big_llc`] hierarchy whose 4 MB LLC swallows
    /// every scaled working set — tiling matters less, parallelism more.
    pub fn server_big_llc() -> MachineConfig {
        MachineConfig {
            cores: 16,
            vector_width: 8,
            ghz: 2.0,
            cache: CacheConfig::server_big_llc(),
            ..MachineConfig::scaled_small()
        }
    }

    /// A high-core-count throughput part: 32 modest cores at 1.4 GHz on
    /// the standard scaled hierarchy — fork/barrier overheads amortize
    /// differently, so the best OMP schedule shifts.
    pub fn manycore() -> MachineConfig {
        MachineConfig {
            cores: 32,
            ghz: 1.4,
            ..MachineConfig::scaled_small()
        }
    }
}

/// Every named profile: the scaled Xeon baseline plus the embedded,
/// big-LLC server and manycore presets.
pub fn all_profiles() -> Vec<MachineProfile> {
    vec![
        MachineProfile {
            name: "scaled-xeon",
            summary: "10-core scaled Xeon E5-2660 v3 baseline",
            config: MachineConfig::scaled_small(),
        },
        MachineProfile {
            name: "embedded-small-l1",
            summary: "2 slow cores, 1 KB L1, no auto-vectorizer",
            config: MachineConfig::embedded_small_l1(),
        },
        MachineProfile {
            name: "server-big-llc",
            summary: "16 cores, 8-lane SIMD, 4 MB last-level cache",
            config: MachineConfig::server_big_llc(),
        },
        MachineProfile {
            name: "manycore",
            summary: "32 modest cores, standard scaled hierarchy",
            config: MachineConfig::manycore(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheHierarchy, Machine};

    #[test]
    fn profiles_have_distinct_digests_and_valid_geometry() {
        let profiles = all_profiles();
        assert!(profiles.len() >= 3);
        let mut digests = std::collections::HashSet::new();
        for p in &profiles {
            assert!(
                digests.insert(p.config.digest()),
                "duplicate digest for {}",
                p.name
            );
            CacheHierarchy::new(&p.config.cache)
                .unwrap_or_else(|e| panic!("{}: bad cache geometry: {e}", p.name));
        }
    }

    #[test]
    fn every_profile_runs_a_program() {
        let src = r#"
double A[64];
void kernel() {
    for (int i = 0; i < 64; i++)
        A[i] = A[i] * 0.5 + 1.0;
}
"#;
        let program = locus_srcir::parse_program(src).unwrap();
        for p in all_profiles() {
            let m = Machine::new(p.config.clone())
                .run(&program, "kernel")
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(m.cycles > 0.0, "{}", p.name);
        }
    }

    #[test]
    fn embedded_profile_disables_auto_vectorization() {
        let p = MachineConfig::embedded_small_l1();
        assert!(!p.auto_vectorize);
        assert_eq!(p.cache.levels.len(), 2);
    }
}
