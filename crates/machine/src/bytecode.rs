//! Flat bytecode for the compiled execution engine.
//!
//! The `compile` module lowers the mini-C AST into this instruction set
//! in one pass: scalars are resolved to frame slots, array names are
//! interned to dense `ArrayId`s, and structured control flow becomes
//! jumps. The `vm` module executes it while charging the *exact* cost,
//! cache, OpenMP and vectorizer model of the tree interpreter — the two
//! engines produce bit-identical [`crate::Measurement`]s, and the tree
//! interpreter remains the reference oracle (see
//! `tests/vm_equivalence.rs`).
//!
//! Design notes for the bit-identity contract:
//!
//! * every `fuel()` tick of the tree interpreter is accounted by a
//!   `Insn::Fuel` instruction; the compiler merges ticks that are
//!   *adjacent* (no intervening effect or possible error), which keeps
//!   totals and error outcomes identical while shrinking dispatch
//!   counts;
//! * cycle charges are never merged — floating-point accumulation is
//!   order-sensitive, so each `charge()` of the tree interpreter is one
//!   charge here, in the same order;
//! * statically unresolvable constructs (undefined names, unsupported
//!   operators) compile to `Insn::Throw`, so they only error if the
//!   enclosing code path actually executes, exactly like the tree.

use locus_srcir::ast::{BinOp, OmpSchedule};

/// Dense index of an interned array name.
///
/// The tree interpreter keys its array table by `String` in one flat
/// namespace (block scoping does not apply to arrays); interning is a
/// pure renaming of that namespace, so shadowing/redeclaration behave
/// identically.
pub(crate) type ArrayId = u32;

/// Frame-slot index of a statically resolved scalar.
pub(crate) type SlotId = u32;

/// One simulated array (shared by the compiler's global setup and the
/// VM's local allocations).
#[derive(Debug, Clone)]
pub(crate) struct ArrayCell {
    pub(crate) is_float: bool,
    pub(crate) data: Vec<f64>,
    pub(crate) base: u64,
    /// Dimension extents, outermost first.
    pub(crate) dims: Vec<usize>,
    /// Local scratch arrays do not contribute to the checksum.
    pub(crate) local: bool,
}

/// Deterministic, non-trivial initial array contents — the same formula
/// the tree interpreter uses, so checksums agree across engines.
pub(crate) fn array_init_data(len: usize, is_float: bool) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let v = ((i * 7 + 3) % 101) as f64;
            if is_float {
                v * 0.25
            } else {
                (v % 13.0).floor()
            }
        })
        .collect()
}

/// Advances an allocation cursor past `len` 8-byte elements: 4KB-align
/// each array and leave a guard page (the tree interpreter's layout).
pub(crate) fn advance_base(next_base: u64, len: usize) -> u64 {
    next_base + ((len as u64 * 8).div_ceil(4096) + 1) * 4096
}

/// Upper bound on the total element count of one array allocation
/// (2^28 doubles = 2 GiB of simulated payload). Dimension products
/// beyond it — including ones that would overflow `usize` entirely —
/// raise [`crate::RuntimeError::ArrayTooLarge`] instead of wrapping
/// into a small (and silently wrong) allocation.
pub const MAX_ARRAY_ELEMS: usize = 1 << 28;

/// Overflow-checked total element count of an allocation. All engines
/// validate the dimension *product* here, after the per-dimension
/// positivity checks have passed, so the error point is identical
/// across the tree interpreter and both VMs.
pub(crate) fn checked_alloc_len(name: &str, dims: &[usize]) -> Result<usize, crate::RuntimeError> {
    let mut len = 1usize;
    for &d in dims {
        len = len
            .checked_mul(d)
            .filter(|&l| l <= MAX_ARRAY_ELEMS)
            .ok_or_else(|| crate::RuntimeError::ArrayTooLarge(name.to_string()))?;
    }
    Ok(len)
}

/// The kind of coercion a cast or typed declaration performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CastKind {
    /// To `double`/`float`.
    ToFloat,
    /// To `int`/`char`.
    ToInt,
    /// Pointer/void types: the value passes through unchanged.
    Keep,
}

/// Runtime error raised by a [`Insn::Throw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThrowKind {
    /// [`crate::RuntimeError::UndefinedVariable`].
    UndefinedVariable,
    /// [`crate::RuntimeError::UndefinedFunction`].
    UndefinedFunction,
    /// [`crate::RuntimeError::Unsupported`].
    Unsupported,
}

/// The builtin functions of the mini-C runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Builtin {
    /// `min(a, b)`.
    Min,
    /// `max(a, b)`.
    Max,
    /// `abs(a)` / `fabs(a)`.
    Abs,
    /// `sqrt(a)`.
    Sqrt,
    /// `floor(a)`.
    Floor,
    /// `ceil(a)`.
    Ceil,
}

/// A dynamically resolved scalar access.
///
/// Needed only for one pathological construct: a *bare* declaration as
/// an `if` branch (`if (c) int x;`), which the tree interpreter binds
/// into the enclosing scope only when the branch executes. Every guard
/// is a flag slot set by the conditional declaration; the first live
/// guard wins (innermost binding), otherwise the statically visible
/// outer binding (`fallback`), otherwise the access raises
/// `UndefinedVariable` — exactly the tree's dynamic scope walk.
/// Ordinary declarations always resolve statically and never pay for
/// this.
#[derive(Debug, Clone)]
pub(crate) struct Chain {
    /// `(flag slot, value slot)` pairs, innermost binding first.
    pub(crate) guards: Vec<(SlotId, SlotId)>,
    /// Unconditionally bound outer slot, if any.
    pub(crate) fallback: Option<SlotId>,
    /// Message-table index of the variable name.
    pub(crate) msg: u32,
}

/// An array access fused onto the end of a subscript chain: the access
/// the chain's flat index feeds, executed in the same dispatch as the
/// chain's last index step ([`crate::peephole`]). Always accesses the
/// same array the chain indexed.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AccessTail {
    /// No fused access; the flat index stays on the stack.
    None,
    /// A fused [`Insn::LoadArray`].
    Load,
    /// A fused [`Insn::LoadArrayBin`].
    LoadBin(BinOp, f64),
    /// A fused [`Insn::StoreArrayPop`].
    StorePop,
}

/// One bytecode instruction. All cost constants are baked in at compile
/// time from the machine's [`crate::cost::CostModel`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Insn {
    /// `n` fuel ticks (`ops += n`, runaway-guard check).
    Fuel(u32),
    /// Push an integer literal.
    PushInt(i64),
    /// Push a float literal.
    PushFloat(f64),
    /// Drop the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when the value is falsy.
    JumpIfFalse(u32),
    /// Push the value of a scalar slot.
    LoadSlot(SlotId),
    /// Pop and store into a slot, preserving the slot's current tag
    /// (the tree interpreter's `write_scalar`).
    StoreSlot(SlotId),
    /// Push the value of a dynamically resolved scalar (see [`Chain`]).
    LoadChain(u32),
    /// Pop and store into a dynamically resolved scalar (see [`Chain`]).
    StoreChain(u32),
    /// Pop and (re)initialize a slot from a declaration with the
    /// declared type's coercion.
    DeclSlot(SlotId, CastKind),
    /// (Re)initialize a slot to the declared type's default value.
    DeclDefault(SlotId, bool),
    /// Charge cycles through the vector-discount gate.
    Charge(f64),
    /// Arithmetic negation: charge, count a flop for doubles.
    Neg(f64),
    /// Logical not: charge.
    Not(f64),
    /// Pop rhs then lhs, charge, count flops, apply the operator.
    Bin(BinOp, f64),
    /// Compound-assignment combine: pop old then rhs, charge, count a
    /// flop when *old* is a double, apply `old op rhs`.
    CompoundBin(BinOp, f64),
    /// Pop; push `Int(1)` when truthy else `Int(0)`.
    Truthy,
    /// `&&` left arm: pop; when falsy, push `Int(0)` and jump.
    AndShortCircuit(u32),
    /// `||` left arm: pop; when truthy, push `Int(1)` and jump.
    OrShortCircuit(u32),
    /// C cast: charge, coerce.
    Cast(CastKind, f64),
    /// Builtin call: charge the call overhead, pop the arguments, push
    /// the result (`sqrt` additionally counts a flop and charges the
    /// division cost).
    Call(Builtin, f64),
    /// Verify the array exists and its rank matches the subscript count
    /// (before any index expression is evaluated, like `locate`).
    ArrayCheck(ArrayId, u32),
    /// Fold one subscript into the flat index: pop the index (and the
    /// accumulated flat index unless `first`), bounds-check, push the
    /// new flat index, charge the address arithmetic.
    IndexDim {
        /// The array accessed.
        id: ArrayId,
        /// Which dimension this subscript addresses.
        dim: u32,
        /// First subscript of the chain (no accumulated index yet).
        first: bool,
        /// Address-arithmetic charge.
        cost: f64,
    },
    /// Pop the flat index, read the element through the cache, push it.
    LoadArray(ArrayId),
    /// Pop the flat index and the value, write through the cache, push
    /// the (uncoerced) value back.
    StoreArray(ArrayId),
    /// Compound assignment to an array element: pop the flat index and
    /// the rhs, then read-modify-write *one* address (two cache
    /// accesses, one subscript chain); push the new value.
    RmwArray(ArrayId, BinOp, f64),
    /// Peek the just-evaluated dimension extent; error when `<= 0`.
    DimCheck(ArrayId),
    /// Pop `dims` extents (innermost on top) and allocate a local
    /// array, advancing the allocation cursor.
    AllocArray {
        /// Interned name being (re)allocated.
        id: ArrayId,
        /// Number of dimensions to pop.
        dims: u32,
        /// Element type.
        is_float: bool,
    },
    /// Enter a vectorized loop (arithmetic discount on).
    VecEnter,
    /// Leave a vectorized loop.
    VecLeave,
    /// Enter an `omp parallel for` loop: activates a parallel context
    /// unless already inside one (nested pragmas serialize).
    ParEnter(Option<OmpSchedule>),
    /// Start-of-iteration timestamp for the active parallel context.
    IterStart,
    /// End-of-iteration: record the iteration's sequential cost.
    IterEnd,
    /// Leave the parallel loop: replace the sequentially accumulated
    /// body time with the scheduled makespan.
    ParExit,
    /// Raise a runtime error whose message lives in the message table.
    Throw(ThrowKind, u32),
    /// Finalize any open parallel contexts and stop.
    Halt,

    // ---- fused superinstructions ([`crate::peephole`]) -----------------
    //
    // Each is the exact composition of the instructions it replaces —
    // same charges, flop counts and error behavior in the same order —
    // so the peephole pass cannot change a measurement, only shrink
    // dispatch and operand-stack traffic on the hot paths.
    /// `PushInt` + `Bin`: rhs is the constant.
    BinInt(BinOp, f64, i64),
    /// `PushFloat` + `Bin`: rhs is the constant (always counts a flop,
    /// like `Bin` with a double operand).
    BinFloat(BinOp, f64, f64),
    /// `LoadSlot` + `Bin`: rhs comes from the slot.
    BinSlotR(BinOp, f64, SlotId),
    /// `LoadSlot` + `BinInt`: lhs from the slot, rhs constant.
    BinSlotInt(BinOp, f64, SlotId, i64),
    /// `Bin` + `JumpIfFalse`: combine, branch on the unpushed result.
    BinBr(BinOp, f64, u32),
    /// `BinInt` + `JumpIfFalse`.
    BinIntBr(BinOp, f64, i64, u32),
    /// `Fuel` + `BinSlotInt` + `JumpIfFalse` — a whole `i < N` loop
    /// condition, absorbing the fuel the back edge lands on, plus the
    /// fall-through path's leading fuel and charge (the loop body's
    /// prologue, which runs exactly when the branch is not taken).
    BinSlotIntBr {
        /// Fuel ticked before the comparison (0 when none fused).
        fuel: u32,
        /// Comparison operator.
        op: BinOp,
        /// Charge.
        cost: f64,
        /// Slot holding the lhs.
        s: SlotId,
        /// Constant rhs.
        rhs: i64,
        /// Branch target when the comparison is false.
        t: u32,
        /// Fuel ticked on the fall-through path (0 when none fused).
        pfuel: u32,
        /// Charge on the fall-through path (0 when none fused).
        pcost: f64,
    },
    /// `LoadSlot` + `CompoundBin`: the old value comes from the slot.
    CompoundSlot(BinOp, f64, SlotId),
    /// `PushInt` + `CompoundSlot`: constant rhs.
    CompoundSlotInt(BinOp, f64, SlotId, i64),
    /// `CompoundSlot` + `StoreSlot` (src, then dst).
    CompoundSlotStore(BinOp, f64, SlotId, SlotId),
    /// `CompoundSlotInt` + `StoreSlot` — a whole `i += 1` (src, rhs,
    /// dst).
    CompoundSlotIntStore(BinOp, f64, SlotId, i64, SlotId),
    /// `CompoundSlotIntStore` + `Jump` — a loop's step and back edge
    /// (src, rhs, dst, target).
    CompoundSlotIntStoreJump(BinOp, f64, SlotId, i64, SlotId, u32),
    /// `LoadSlot` + `IndexDim`: the subscript comes from the slot.
    IndexDimSlot {
        /// The array accessed.
        id: ArrayId,
        /// Which dimension this subscript addresses.
        dim: u32,
        /// First subscript of the chain.
        first: bool,
        /// Address-arithmetic charge.
        cost: f64,
        /// Slot holding the subscript.
        s: SlotId,
        /// Fuel ticked *after* the index op (a following `Fuel` that
        /// could not commute further left, absorbed here).
        fuel: u32,
        /// Array access fused onto the chain end, run last.
        tail: AccessTail,
    },
    /// `PushInt` + `IndexDim`: constant subscript.
    IndexDimInt {
        /// The array accessed.
        id: ArrayId,
        /// Which dimension this subscript addresses.
        dim: u32,
        /// First subscript of the chain.
        first: bool,
        /// Address-arithmetic charge.
        cost: f64,
        /// The constant subscript.
        v: i64,
        /// Fuel ticked *after* the index op (a following `Fuel` that
        /// could not commute further left, absorbed here).
        fuel: u32,
    },
    /// `LoadArray` + `Bin`: the loaded element is the rhs.
    LoadArrayBin(ArrayId, BinOp, f64),
    /// `StoreArray` + `Pop`: a store in statement position (the pushed
    /// value and its discard cancel out).
    StoreArrayPop(ArrayId),
    /// `BinSlotInt` + `IndexDim` — a `slot ⊕ const` subscript
    /// (`B[j-1]`, `A[t%2]`), the stencil hot path.
    IndexDimBinSlotInt {
        /// The array accessed.
        id: ArrayId,
        /// Which dimension this subscript addresses.
        dim: u32,
        /// First subscript of the chain.
        first: bool,
        /// Address-arithmetic charge.
        cost: f64,
        /// Subscript operator.
        op: BinOp,
        /// Subscript-computation charge.
        bcost: f64,
        /// Slot holding the subscript lhs.
        s: SlotId,
        /// Constant subscript rhs.
        v: i64,
        /// Fuel ticked *after* the index op.
        fuel: u32,
        /// Array access fused onto the chain end, run last.
        tail: AccessTail,
    },
    /// `BinInt` + `IndexDim` — a `<stack> ⊕ const` subscript.
    IndexDimBinInt {
        /// The array accessed.
        id: ArrayId,
        /// Which dimension this subscript addresses.
        dim: u32,
        /// First subscript of the chain.
        first: bool,
        /// Address-arithmetic charge.
        cost: f64,
        /// Subscript operator.
        op: BinOp,
        /// Subscript-computation charge.
        bcost: f64,
        /// Constant subscript rhs.
        v: i64,
        /// Fuel ticked *after* the index op.
        fuel: u32,
    },
    /// Two adjacent `Charge`s — kept as two separate `+=`s so the f64
    /// accumulation order (and hence the bits) is unchanged.
    Charge2(f64, f64),
    /// Two consecutive `IndexDimSlot`s of one subscript chain
    /// (dimensions `dim` and `dim + 1` of the same array): a whole
    /// `[i][j]` pair in one dispatch, with no stack traffic between.
    Index2Slot {
        /// The array accessed.
        id: ArrayId,
        /// Dimension the first subscript addresses; the second is
        /// `dim + 1`.
        dim: u32,
        /// Whether the first subscript starts the chain.
        first: bool,
        /// Address-arithmetic charge of the first subscript.
        c0: f64,
        /// Slot holding the first subscript.
        s0: SlotId,
        /// Fuel ticked between the two index ops.
        f0: u32,
        /// Address-arithmetic charge of the second subscript.
        c1: f64,
        /// Slot holding the second subscript.
        s1: SlotId,
        /// Fuel ticked after the second index op.
        f1: u32,
        /// Array access fused onto the chain end, run last.
        tail: AccessTail,
    },
    /// `IndexDimBinSlotInt` + `Index2Slot` — a whole three-subscript
    /// chain `A[s ⊕ v][s0][s1]` (the time-toggled stencil hot path,
    /// `A[t % 2][i][j]`), with the chain-ending access tail.
    Index3BinSlotInt {
        /// The array accessed.
        id: ArrayId,
        /// Dimension the first subscript addresses; the others are
        /// `dim + 1` and `dim + 2`.
        dim: u32,
        /// Whether the first subscript starts the chain.
        first: bool,
        /// First subscript operator.
        op: BinOp,
        /// First subscript-computation charge.
        bcost: f64,
        /// Slot holding the first subscript's lhs.
        s: SlotId,
        /// Constant first-subscript rhs.
        v: i64,
        /// Address-arithmetic charge of the first subscript.
        cost: f64,
        /// Fuel ticked after the first index op.
        fuel: u32,
        /// Address-arithmetic charge of the second subscript.
        c0: f64,
        /// Slot holding the second subscript.
        s0: SlotId,
        /// Fuel ticked after the second index op.
        f0: u32,
        /// Address-arithmetic charge of the third subscript.
        c1: f64,
        /// Slot holding the third subscript.
        s1: SlotId,
        /// Fuel ticked after the third index op.
        f1: u32,
        /// Array access fused onto the chain end, run last.
        tail: AccessTail,
    },
}

/// A compiled program: flat code plus the initial machine image
/// (global scalars, global arrays, allocation cursor) and the side
/// tables error reporting needs.
#[derive(Debug, Clone)]
pub struct Exe {
    pub(crate) code: Vec<Insn>,
    /// Total scalar slots (globals first).
    pub(crate) n_slots: usize,
    /// Initial values of the global slot prefix.
    pub(crate) global_values: Vec<crate::interp::Value>,
    /// Initial array table (globals allocated, locals `None`).
    pub(crate) arrays: Vec<Option<ArrayCell>>,
    /// Interned array names, for error messages and the checksum.
    pub(crate) array_names: Vec<String>,
    /// Message table for [`Insn::Throw`] and [`Chain`]s.
    pub(crate) messages: Vec<String>,
    /// Dynamic scalar-resolution chains (conditional bare declarations).
    pub(crate) chains: Vec<Chain>,
    /// Allocation cursor after the globals.
    pub(crate) next_base: u64,
}

impl Exe {
    /// Number of instructions in the compiled program (diagnostics).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}
