//! Interpreter for the mini-C source IR with attached performance
//! simulation.
//!
//! The interpreter executes programs *exactly* (so transformed variants
//! can be checked for semantic equivalence via [`Measurement::checksum`])
//! while charging every operation and memory access to a cycle counter:
//! arithmetic through the [`crate::cost::CostModel`], array accesses
//! through the [`crate::cache::CacheHierarchy`], `ivdep`/`vector always`
//! pragmas as arithmetic discounts, and `omp parallel for` pragmas
//! through the scheduling model of [`crate::cost::OmpModel`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use locus_srcir::ast::{BinOp, Expr, Item, Pragma, Program, Stmt, StmtKind, Type, UnOp};

use crate::cache::{CacheHierarchy, CacheStats};
use crate::cost::OmpModel;
use crate::MachineConfig;

/// Errors raised while interpreting a program.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A name was read before being defined.
    UndefinedVariable(String),
    /// A function call target does not exist.
    UndefinedFunction(String),
    /// An array subscript fell outside the declared bounds.
    OutOfBounds {
        /// The array accessed.
        array: String,
        /// The offending (flattened) index.
        index: i64,
        /// The array's total length.
        len: usize,
    },
    /// Division or modulo by zero.
    DivisionByZero,
    /// A language construct the interpreter does not support.
    Unsupported(String),
    /// The configured operation budget was exhausted (runaway guard).
    FuelExhausted,
    /// An array was declared with a non-constant dimension.
    BadArrayDim(String),
    /// An array allocation's total element count overflowed the
    /// simulator's limit (`len *= dim` would wrap, or the product
    /// exceeds [`crate::bytecode::MAX_ARRAY_ELEMS`]).
    ArrayTooLarge(String),
    /// The machine configuration itself is unusable (e.g. a cache level
    /// whose geometry does not yield a power-of-two set count). Machine
    /// descriptions arrive from user configuration, so this surfaces as
    /// an error instead of aborting the process.
    InvalidConfig(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UndefinedVariable(n) => write!(f, "undefined variable `{n}`"),
            RuntimeError::UndefinedFunction(n) => write!(f, "undefined function `{n}`"),
            RuntimeError::OutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}` (len {len})")
            }
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            RuntimeError::FuelExhausted => write!(f, "operation budget exhausted"),
            RuntimeError::BadArrayDim(n) => {
                write!(f, "array `{n}` has a non-constant dimension")
            }
            RuntimeError::ArrayTooLarge(n) => {
                write!(f, "array `{n}` allocation exceeds the simulator size limit")
            }
            RuntimeError::InvalidConfig(m) => {
                write!(f, "invalid machine configuration: {m}")
            }
        }
    }
}

impl Error for RuntimeError {}

/// A runtime value: the interpreter distinguishes integers from doubles
/// with C-like promotion rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A C `int` (modeled as 64-bit).
    Int(i64),
    /// A C `double`.
    Double(f64),
}

impl Value {
    pub(crate) fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Double(v) => v,
        }
    }

    pub(crate) fn as_i64(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Double(v) => v as i64,
        }
    }

    pub(crate) fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Double(v) => v != 0.0,
        }
    }
}

/// The result of running a program on the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Estimated cycles (parallel regions contribute their makespan).
    pub cycles: f64,
    /// `cycles` converted to milliseconds at the configured frequency.
    pub time_ms: f64,
    /// Total interpreted operations.
    pub ops: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Cache statistics.
    pub cache: CacheStats,
    /// Order-sensitive digest of all array contents after execution;
    /// equal checksums mean semantically equivalent variants (on the
    /// deterministic initial data).
    pub checksum: u64,
}

/// One simulated array.
#[derive(Debug, Clone)]
struct ArrayCell {
    is_float: bool,
    data: Vec<f64>,
    base: u64,
    /// Dimension extents, outermost first.
    dims: Vec<usize>,
    /// Function-local scratch arrays do not contribute to the result
    /// checksum (they are not program outputs).
    local: bool,
}

/// The interpreter.
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    config: &'p MachineConfig,
    arrays: HashMap<String, ArrayCell>,
    scopes: Vec<HashMap<String, Value>>,
    cache: CacheHierarchy,
    cycles: f64,
    ops: u64,
    flops: u64,
    /// Nesting depth of vectorized loops (>0 discounts arithmetic).
    vector_depth: usize,
    /// Inside a parallel region already (nested pragmas are serialized).
    in_parallel: bool,
    next_base: u64,
    /// Addresses of `for` statements the auto-vectorizer model proved
    /// safe (innermost + all dependences loop-independent).
    auto_vec: std::collections::HashSet<usize>,
}

enum Flow {
    Normal,
    Return(#[allow(dead_code)] Option<Value>),
}

impl<'p> Interp<'p> {
    /// Prepares an interpreter: allocates and deterministically
    /// initializes all global arrays and scalars.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] when a global declaration cannot be
    /// evaluated (non-constant dimensions, unsupported initializers).
    pub fn new(
        program: &'p Program,
        config: &'p MachineConfig,
    ) -> Result<Interp<'p>, RuntimeError> {
        let cache = CacheHierarchy::new(&config.cache)
            .map_err(|e| RuntimeError::InvalidConfig(e.to_string()))?;
        let mut interp = Interp {
            program,
            config,
            arrays: HashMap::new(),
            scopes: vec![HashMap::new()],
            cache,
            cycles: 0.0,
            ops: 0,
            flops: 0,
            vector_depth: 0,
            in_parallel: false,
            next_base: 4096,
            auto_vec: std::collections::HashSet::new(),
        };
        for item in &program.items {
            if let Item::Global(stmt) = item {
                interp.exec_global(stmt)?;
            }
        }
        if config.auto_vectorize {
            interp.auto_vec = collect_auto_vectorizable(program);
        }
        Ok(interp)
    }

    fn exec_global(&mut self, stmt: &Stmt) -> Result<(), RuntimeError> {
        let StmtKind::Decl {
            ty,
            name,
            dims,
            init,
        } = &stmt.kind
        else {
            return Err(RuntimeError::Unsupported(
                "non-declaration at global scope".into(),
            ));
        };
        if dims.is_empty() {
            let value = match init {
                Some(e) => self.eval_const(e)?,
                None => match ty {
                    Type::Double | Type::Float => Value::Double(0.0),
                    _ => Value::Int(0),
                },
            };
            self.scopes[0].insert(name.clone(), value);
        } else {
            let mut dim_sizes = Vec::new();
            for d in dims {
                let v = self.eval_const(d)?.as_i64();
                if v <= 0 {
                    return Err(RuntimeError::BadArrayDim(name.clone()));
                }
                dim_sizes.push(v as usize);
            }
            let len = crate::bytecode::checked_alloc_len(name, &dim_sizes)?;
            self.alloc_array(name, ty.is_float(), &dim_sizes, len, false);
        }
        Ok(())
    }

    fn alloc_array(&mut self, name: &str, is_float: bool, dims: &[usize], len: usize, local: bool) {
        // Deterministic, non-trivial initial contents so that semantic
        // differences between variants show up in the checksum.
        let data: Vec<f64> = (0..len)
            .map(|i| {
                let v = ((i * 7 + 3) % 101) as f64;
                if is_float {
                    v * 0.25
                } else {
                    (v % 13.0).floor()
                }
            })
            .collect();
        let base = self.next_base;
        // 4KB-align each array and leave a guard page.
        self.next_base += ((len as u64 * 8).div_ceil(4096) + 1) * 4096;
        self.arrays.insert(
            name.to_string(),
            ArrayCell {
                is_float,
                data,
                base,
                dims: dims.to_vec(),
                local,
            },
        );
    }

    /// Evaluates a compile-time-constant expression (global initializers
    /// and array dimensions).
    fn eval_const(&mut self, e: &Expr) -> Result<Value, RuntimeError> {
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::FloatLit(v) => Ok(Value::Double(*v)),
            Expr::Unary {
                op: UnOp::Neg,
                operand,
            } => Ok(match self.eval_const(operand)? {
                Value::Int(v) => Value::Int(-v),
                Value::Double(v) => Value::Double(-v),
            }),
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval_const(lhs)?;
                let r = self.eval_const(rhs)?;
                apply_bin(*op, l, r)
            }
            Expr::Ident(name) => self.scopes[0]
                .get(name)
                .copied()
                .ok_or_else(|| RuntimeError::UndefinedVariable(name.clone())),
            _ => Err(RuntimeError::Unsupported(
                "non-constant global initializer".into(),
            )),
        }
    }

    /// Runs a zero-argument function to completion and reports the
    /// measurement.
    ///
    /// # Errors
    ///
    /// See [`RuntimeError`].
    pub fn run(&mut self, entry: &str) -> Result<Measurement, RuntimeError> {
        let f = self
            .program
            .function(entry)
            .ok_or_else(|| RuntimeError::UndefinedFunction(entry.to_string()))?;
        if !f.params.is_empty() {
            return Err(RuntimeError::Unsupported(format!(
                "entry `{entry}` must take no parameters"
            )));
        }
        self.scopes.push(HashMap::new());
        for stmt in &f.body {
            if let Flow::Return(_) = self.exec(stmt)? {
                break;
            }
        }
        self.scopes.pop();
        Ok(self.measurement())
    }

    /// The measurement accumulated so far.
    pub fn measurement(&self) -> Measurement {
        Measurement {
            cycles: self.cycles,
            time_ms: self.cycles / (self.config.ghz * 1e6),
            ops: self.ops,
            flops: self.flops,
            cache: self.cache.stats().clone(),
            checksum: self.checksum(),
        }
    }

    fn checksum(&self) -> u64 {
        // FNV over quantized array contents, array name order fixed.
        let mut names: Vec<&String> = self.arrays.keys().collect();
        names.sort();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for name in names {
            let cell = &self.arrays[name];
            if cell.local {
                continue;
            }
            for b in name.as_bytes() {
                hash = (hash ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
            }
            for v in &cell.data {
                // Quantize to escape FP association noise from reordered
                // reductions: transformations that only reassociate sums
                // still compare equal.
                let q = (v * 1024.0).round() as i64 as u64;
                hash = (hash ^ q).wrapping_mul(0x100_0000_01b3);
            }
        }
        hash
    }

    fn charge(&mut self, cost: f64) {
        if self.vector_depth > 0 {
            let w = self
                .config
                .cost
                .vector_discount
                .min(self.config.vector_width as f64)
                .max(1.0);
            self.cycles += cost / w;
        } else {
            self.cycles += cost;
        }
    }

    fn fuel(&mut self) -> Result<(), RuntimeError> {
        self.ops += 1;
        if self.ops > self.config.max_ops {
            Err(RuntimeError::FuelExhausted)
        } else {
            Ok(())
        }
    }

    // ---- statements -----------------------------------------------------

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        self.fuel()?;
        match &stmt.kind {
            StmtKind::Empty => Ok(Flow::Normal),
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::Decl {
                ty,
                name,
                dims,
                init,
            } => {
                if dims.is_empty() {
                    let value = match init {
                        Some(e) => {
                            let v = self.eval(e)?;
                            coerce(ty, v)
                        }
                        None => match ty {
                            Type::Double | Type::Float => Value::Double(0.0),
                            _ => Value::Int(0),
                        },
                    };
                    self.scopes
                        .last_mut()
                        .expect("scope stack is never empty")
                        .insert(name.clone(), value);
                } else {
                    let mut dim_sizes = Vec::new();
                    for d in dims {
                        let v = self.eval(d)?.as_i64();
                        if v <= 0 {
                            return Err(RuntimeError::BadArrayDim(name.clone()));
                        }
                        dim_sizes.push(v as usize);
                    }
                    let len = crate::bytecode::checked_alloc_len(name, &dim_sizes)?;
                    self.alloc_array(name, ty.is_float(), &dim_sizes, len, true);
                }
                Ok(Flow::Normal)
            }
            StmtKind::Block(stmts) => {
                self.scopes.push(HashMap::new());
                let mut flow = Flow::Normal;
                for s in stmts {
                    flow = self.exec(s)?;
                    if matches!(flow, Flow::Return(_)) {
                        break;
                    }
                }
                self.scopes.pop();
                Ok(flow)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval(cond)?;
                self.charge(self.config.cost.add);
                if c.truthy() {
                    self.exec(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                self.charge(self.config.cost.loop_entry);
                loop {
                    self.fuel()?;
                    let c = self.eval(cond)?;
                    if !c.truthy() {
                        break;
                    }
                    self.charge(self.config.cost.loop_iter);
                    if let Flow::Return(v) = self.exec(body)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For(_) => self.exec_for(stmt),
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
        }
    }

    fn exec_for(&mut self, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        let StmtKind::For(f) = &stmt.kind else {
            unreachable!("exec_for called on a for loop")
        };
        let omp = stmt.pragmas.iter().find_map(|p| match p {
            Pragma::OmpParallelFor { schedule, .. } => Some(*schedule),
            _ => None,
        });
        let vectorized = stmt
            .pragmas
            .iter()
            .any(|p| matches!(p, Pragma::Ivdep | Pragma::VectorAlways))
            || self.auto_vec.contains(&(stmt as *const Stmt as usize));

        let parallel = omp.is_some() && !self.in_parallel && self.config.cores > 1;
        let mut iter_costs: Vec<f64> = Vec::new();

        self.scopes.push(HashMap::new());
        self.charge(self.config.cost.loop_entry);
        if let Some(init) = &f.init {
            self.exec(init)?;
        }
        if vectorized {
            self.vector_depth += 1;
        }
        if parallel {
            self.in_parallel = true;
        }
        let result = (|| -> Result<Flow, RuntimeError> {
            loop {
                self.fuel()?;
                if let Some(cond) = &f.cond {
                    let c = self.eval(cond)?;
                    if !c.truthy() {
                        break;
                    }
                }
                let iter_start = self.cycles;
                self.charge(self.config.cost.loop_iter);
                if let Flow::Return(v) = self.exec(&f.body)? {
                    return Ok(Flow::Return(v));
                }
                if let Some(step) = &f.step {
                    self.eval(step)?;
                }
                if parallel {
                    iter_costs.push(self.cycles - iter_start);
                }
            }
            Ok(Flow::Normal)
        })();
        if parallel {
            self.in_parallel = false;
        }
        if vectorized {
            self.vector_depth -= 1;
        }
        self.scopes.pop();
        let flow = result?;

        if parallel {
            // Replace the sequentially accumulated body time with the
            // scheduled makespan.
            let sequential: f64 = iter_costs.iter().sum();
            let model = OmpModel {
                cost: &self.config.cost,
                cores: self.config.cores,
            };
            let makespan = model.makespan(&iter_costs, omp.flatten());
            self.cycles = self.cycles - sequential + makespan;
        }
        Ok(flow)
    }

    // ---- expressions -----------------------------------------------------

    fn eval(&mut self, e: &Expr) -> Result<Value, RuntimeError> {
        self.fuel()?;
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::FloatLit(v) => Ok(Value::Double(*v)),
            Expr::StrLit(_) => Ok(Value::Int(0)),
            Expr::Ident(name) => self.read_scalar(name),
            Expr::Index { .. } => {
                let (name, flat, _) = self.locate(e)?;
                let cell = self
                    .arrays
                    .get(&name)
                    .ok_or_else(|| RuntimeError::UndefinedVariable(name.clone()))?;
                let addr = cell.base + flat as u64 * 8;
                let is_float = cell.is_float;
                let raw = cell.data[flat];
                let (_, latency) = self.cache.access(addr);
                self.cycles += latency as f64;
                Ok(if is_float {
                    Value::Double(raw)
                } else {
                    Value::Int(raw as i64)
                })
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand)?;
                match op {
                    UnOp::Neg => {
                        self.charge(self.config.cost.add);
                        if matches!(v, Value::Double(_)) {
                            self.flops += 1;
                        }
                        Ok(match v {
                            Value::Int(x) => Value::Int(-x),
                            Value::Double(x) => Value::Double(-x),
                        })
                    }
                    UnOp::Not => {
                        self.charge(self.config.cost.add);
                        Ok(Value::Int(i64::from(!v.truthy())))
                    }
                    UnOp::Deref | UnOp::Addr => {
                        Err(RuntimeError::Unsupported("pointer operations".into()))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logicals.
                match op {
                    BinOp::And => {
                        let l = self.eval(lhs)?;
                        self.charge(self.config.cost.add);
                        if !l.truthy() {
                            return Ok(Value::Int(0));
                        }
                        let r = self.eval(rhs)?;
                        return Ok(Value::Int(i64::from(r.truthy())));
                    }
                    BinOp::Or => {
                        let l = self.eval(lhs)?;
                        self.charge(self.config.cost.add);
                        if l.truthy() {
                            return Ok(Value::Int(1));
                        }
                        let r = self.eval(rhs)?;
                        return Ok(Value::Int(i64::from(r.truthy())));
                    }
                    _ => {}
                }
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                let cost = match op {
                    BinOp::Mul => self.config.cost.mul,
                    BinOp::Div | BinOp::Rem => self.config.cost.div,
                    _ => self.config.cost.add,
                };
                self.charge(cost);
                if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
                    self.flops += 1;
                }
                apply_bin(*op, l, r)
            }
            Expr::Assign { op, lhs, rhs } => {
                let rhs_val = self.eval(rhs)?;
                let Some(bin) = op.to_bin_op() else {
                    self.write(lhs, rhs_val)?;
                    return Ok(rhs_val);
                };
                let cost = match bin {
                    BinOp::Mul => self.config.cost.mul,
                    BinOp::Div => self.config.cost.div,
                    _ => self.config.cost.add,
                };
                if matches!(lhs.as_ref(), Expr::Index { .. }) {
                    // Compound assignment to an array element is a
                    // read-modify-write of ONE address: the subscript
                    // chain is located once and its address reused, so
                    // side-effecting indices run once and subscript
                    // arithmetic is charged once.
                    self.fuel()?;
                    let (name, flat, _) = self.locate(lhs)?;
                    let cell = self
                        .arrays
                        .get(&name)
                        .ok_or_else(|| RuntimeError::UndefinedVariable(name.clone()))?;
                    let addr = cell.base + flat as u64 * 8;
                    let is_float = cell.is_float;
                    let raw = cell.data[flat];
                    let (_, latency) = self.cache.access(addr);
                    self.cycles += latency as f64;
                    let old = if is_float {
                        Value::Double(raw)
                    } else {
                        Value::Int(raw as i64)
                    };
                    self.charge(cost);
                    if matches!(old, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let new = apply_bin(bin, old, rhs_val)?;
                    let cell = self.arrays.get_mut(&name).expect("cell looked up above");
                    cell.data[flat] = if is_float {
                        new.as_f64()
                    } else {
                        new.as_i64() as f64
                    };
                    let (_, latency) = self.cache.access(addr);
                    self.cycles += latency as f64;
                    return Ok(new);
                }
                let old = self.eval(lhs)?;
                self.charge(cost);
                if matches!(old, Value::Double(_)) {
                    self.flops += 1;
                }
                let new = apply_bin(bin, old, rhs_val)?;
                self.write(lhs, new)?;
                Ok(new)
            }
            Expr::Call { callee, args } => self.call(callee, args),
            Expr::Cast { ty, expr } => {
                let v = self.eval(expr)?;
                self.charge(self.config.cost.add);
                Ok(coerce(ty, v))
            }
        }
    }

    fn call(&mut self, callee: &str, args: &[Expr]) -> Result<Value, RuntimeError> {
        let mut values = Vec::with_capacity(args.len());
        for a in args {
            values.push(self.eval(a)?);
        }
        self.charge(self.config.cost.add * 2.0);
        match (callee, values.as_slice()) {
            ("min", [a, b]) => Ok(num_binop(*a, *b, i64::min, f64::min)),
            ("max", [a, b]) => Ok(num_binop(*a, *b, i64::max, f64::max)),
            ("abs" | "fabs", [a]) => Ok(match a {
                Value::Int(v) => Value::Int(v.abs()),
                Value::Double(v) => Value::Double(v.abs()),
            }),
            ("sqrt", [a]) => {
                self.flops += 1;
                self.charge(self.config.cost.div);
                Ok(Value::Double(a.as_f64().sqrt()))
            }
            ("floor", [a]) => Ok(Value::Double(a.as_f64().floor())),
            ("ceil", [a]) => Ok(Value::Double(a.as_f64().ceil())),
            _ => Err(RuntimeError::UndefinedFunction(callee.to_string())),
        }
    }

    fn read_scalar(&self, name: &str) -> Result<Value, RuntimeError> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(*v);
            }
        }
        Err(RuntimeError::UndefinedVariable(name.to_string()))
    }

    fn write_scalar(&mut self, name: &str, value: Value) -> Result<(), RuntimeError> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                // Preserve the declared type of the slot.
                *slot = match slot {
                    Value::Int(_) => Value::Int(value.as_i64()),
                    Value::Double(_) => Value::Double(value.as_f64()),
                };
                return Ok(());
            }
        }
        // C-style: assignment to an undeclared name at function scope is
        // rejected.
        Err(RuntimeError::UndefinedVariable(name.to_string()))
    }

    fn write(&mut self, lhs: &Expr, value: Value) -> Result<(), RuntimeError> {
        match lhs {
            Expr::Ident(name) => self.write_scalar(name, value),
            Expr::Index { .. } => {
                let (name, flat, _) = self.locate(lhs)?;
                let cell = self
                    .arrays
                    .get_mut(&name)
                    .ok_or_else(|| RuntimeError::UndefinedVariable(name.clone()))?;
                let addr = cell.base + flat as u64 * 8;
                cell.data[flat] = if cell.is_float {
                    value.as_f64()
                } else {
                    value.as_i64() as f64
                };
                let (_, latency) = self.cache.access(addr);
                self.cycles += latency as f64;
                Ok(())
            }
            other => Err(RuntimeError::Unsupported(format!(
                "assignment target {other:?}"
            ))),
        }
    }

    /// Resolves an index chain to (array name, flat index, ndims),
    /// charging subscript arithmetic.
    fn locate(&mut self, e: &Expr) -> Result<(String, usize, usize), RuntimeError> {
        let mut indices = Vec::new();
        let mut cur = e;
        while let Expr::Index { base, index } = cur {
            indices.push(index.as_ref());
            cur = base;
        }
        indices.reverse();
        let Expr::Ident(name) = cur else {
            return Err(RuntimeError::Unsupported(
                "indexing a non-identifier".into(),
            ));
        };
        let dims = match self.arrays.get(name) {
            Some(cell) => cell.dims.clone(),
            None => return Err(RuntimeError::UndefinedVariable(name.clone())),
        };
        let ndims = dims.len();
        if indices.len() != ndims {
            return Err(RuntimeError::Unsupported(format!(
                "array `{name}` used with {} subscripts but declared with {ndims}",
                indices.len()
            )));
        }
        let name = name.clone();
        let mut flat: i64 = 0;
        for (idx_expr, &dim) in indices.iter().zip(&dims) {
            let idx = self.eval(idx_expr)?.as_i64();
            if idx < 0 || idx >= dim as i64 {
                let len = self.arrays.get(&name).map_or(0, |c| c.data.len());
                return Err(RuntimeError::OutOfBounds {
                    array: name,
                    index: idx,
                    len,
                });
            }
            flat = flat * dim as i64 + idx;
            // Address arithmetic cost.
            self.charge(self.config.cost.add);
        }
        Ok((name, flat as usize, ndims))
    }

    /// Immutable view of an array's contents (for tests and harnesses).
    pub fn array(&self, name: &str) -> Option<&[f64]> {
        self.arrays.get(name).map(|c| c.data.as_slice())
    }
}

/// The auto-vectorizer model: collects innermost loops whose dependence
/// analysis proves every dependence loop-independent. Shared by the
/// tree interpreter and the bytecode compiler so both engines discount
/// exactly the same loops.
pub(crate) fn collect_auto_vectorizable(program: &Program) -> std::collections::HashSet<usize> {
    use locus_srcir::visit::walk_stmts;
    let mut out = std::collections::HashSet::new();
    for f in program.functions() {
        for stmt in &f.body {
            walk_stmts(stmt, &mut |s| {
                if !s.is_for() {
                    return;
                }
                let innermost = !s
                    .as_for()
                    .map(|fl| {
                        let mut has_loop = false;
                        walk_stmts(&fl.body, &mut |inner| has_loop |= inner.is_for());
                        has_loop
                    })
                    .unwrap_or(false);
                if innermost && locus_analysis::deps::analyze_region(s).vectorizable() {
                    out.insert(s as *const Stmt as usize);
                }
            });
        }
    }
    out
}

pub(crate) fn coerce(ty: &Type, v: Value) -> Value {
    match ty {
        Type::Double | Type::Float => Value::Double(v.as_f64()),
        Type::Int | Type::Char => Value::Int(v.as_i64()),
        _ => v,
    }
}

#[inline]
pub(crate) fn num_binop(
    a: Value,
    b: Value,
    fi: fn(i64, i64) -> i64,
    ff: fn(f64, f64) -> f64,
) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(fi(x, y)),
        _ => Value::Double(ff(a.as_f64(), b.as_f64())),
    }
}

#[inline]
pub(crate) fn apply_bin(op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    use Value::{Double, Int};
    let both_int = matches!((l, r), (Int(_), Int(_)));
    Ok(match op {
        BinOp::Add => {
            if both_int {
                Int(l.as_i64().wrapping_add(r.as_i64()))
            } else {
                Double(l.as_f64() + r.as_f64())
            }
        }
        BinOp::Sub => {
            if both_int {
                Int(l.as_i64().wrapping_sub(r.as_i64()))
            } else {
                Double(l.as_f64() - r.as_f64())
            }
        }
        BinOp::Mul => {
            if both_int {
                Int(l.as_i64().wrapping_mul(r.as_i64()))
            } else {
                Double(l.as_f64() * r.as_f64())
            }
        }
        BinOp::Div => {
            if both_int {
                let d = r.as_i64();
                if d == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Int(l.as_i64().wrapping_div(d))
            } else {
                Double(l.as_f64() / r.as_f64())
            }
        }
        BinOp::Rem => {
            let d = r.as_i64();
            if d == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Int(l.as_i64().wrapping_rem(d))
        }
        // Integer operands compare as integers: converting to f64 first
        // loses precision for |v| >= 2^53 and misorders such values.
        BinOp::Lt if both_int => Int(i64::from(l.as_i64() < r.as_i64())),
        BinOp::Le if both_int => Int(i64::from(l.as_i64() <= r.as_i64())),
        BinOp::Gt if both_int => Int(i64::from(l.as_i64() > r.as_i64())),
        BinOp::Ge if both_int => Int(i64::from(l.as_i64() >= r.as_i64())),
        BinOp::Eq if both_int => Int(i64::from(l.as_i64() == r.as_i64())),
        BinOp::Ne if both_int => Int(i64::from(l.as_i64() != r.as_i64())),
        BinOp::Lt => Int(i64::from(l.as_f64() < r.as_f64())),
        BinOp::Le => Int(i64::from(l.as_f64() <= r.as_f64())),
        BinOp::Gt => Int(i64::from(l.as_f64() > r.as_f64())),
        BinOp::Ge => Int(i64::from(l.as_f64() >= r.as_f64())),
        BinOp::Eq => Int(i64::from(l.as_f64() == r.as_f64())),
        BinOp::Ne => Int(i64::from(l.as_f64() != r.as_f64())),
        BinOp::And => Int(i64::from(l.truthy() && r.truthy())),
        BinOp::Or => Int(i64::from(l.truthy() || r.truthy())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    fn run(src: &str) -> Measurement {
        let program = locus_srcir::parse_program(src).unwrap();
        Machine::new(MachineConfig::scaled_small())
            .run(&program, "kernel")
            .unwrap()
    }

    fn run_err(src: &str) -> RuntimeError {
        let program = locus_srcir::parse_program(src).unwrap();
        Machine::new(MachineConfig::scaled_small())
            .run(&program, "kernel")
            .unwrap_err()
    }

    #[test]
    fn computes_and_checksums() {
        let a = run("double A[16];\nvoid kernel() { for (int i = 0; i < 16; i++) A[i] = 1.0; }");
        let b = run("double A[16];\nvoid kernel() { for (int i = 0; i < 16; i++) A[i] = 1.0; }");
        let c = run("double A[16];\nvoid kernel() { for (int i = 0; i < 16; i++) A[i] = 2.0; }");
        assert_eq!(a.checksum, b.checksum);
        assert_ne!(a.checksum, c.checksum);
    }

    #[test]
    fn loop_reversal_of_independent_writes_is_equivalent() {
        let a =
            run("double A[16];\nvoid kernel() { for (int i = 0; i < 16; i++) A[i] = (double)i; }");
        let b = run(
            "double A[16];\nvoid kernel() { int i; for (i = 15; i >= 0; i--) A[i] = (double)i; }",
        );
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn arithmetic_semantics() {
        let m = run(r#"double A[4];
            void kernel() {
                A[0] = (double)(7 / 2);
                A[1] = (double)(7 % 2);
                A[2] = 7.0 / 2.0;
                A[3] = (double)(1 < 2) + (double)(2 <= 2) + (double)(3 > 4);
            }"#);
        // Verified through the checksum of a second, literal program.
        let expect = run(r#"double A[4];
            void kernel() {
                A[0] = 3.0;
                A[1] = 1.0;
                A[2] = 3.5;
                A[3] = 2.0;
            }"#);
        assert_eq!(m.checksum, expect.checksum);
    }

    #[test]
    fn out_of_bounds_is_caught() {
        let err = run_err("double A[4];\nvoid kernel() { A[4] = 1.0; }");
        assert!(matches!(err, RuntimeError::OutOfBounds { .. }));
    }

    #[test]
    fn undefined_variable_is_caught() {
        let err = run_err("void kernel() { x = 1; }");
        assert!(matches!(err, RuntimeError::UndefinedVariable(_)));
    }

    #[test]
    fn division_by_zero_is_caught() {
        let err = run_err("double A[4]; int z;\nvoid kernel() { A[0] = (double)(4 / z); }");
        assert!(matches!(err, RuntimeError::DivisionByZero));
    }

    #[test]
    fn fuel_guard_stops_runaway_loops() {
        let program =
            locus_srcir::parse_program("void kernel() { while (1 > 0) { int x; } }").unwrap();
        let mut cfg = MachineConfig::scaled_small();
        cfg.max_ops = 10_000;
        let err = Machine::new(cfg).run(&program, "kernel").unwrap_err();
        assert_eq!(err, RuntimeError::FuelExhausted);
    }

    #[test]
    fn tiled_access_has_fewer_misses_than_column_scan() {
        // Column-major scan of a row-major array thrashes; row scan does
        // not. The cache must reflect that.
        let row = run(r#"double A[128][128];
            void kernel() {
                for (int i = 0; i < 128; i++)
                    for (int j = 0; j < 128; j++)
                        A[i][j] = A[i][j] + 1.0;
            }"#);
        let col = run(r#"double A[128][128];
            void kernel() {
                for (int j = 0; j < 128; j++)
                    for (int i = 0; i < 128; i++)
                        A[i][j] = A[i][j] + 1.0;
            }"#);
        assert_eq!(row.checksum, col.checksum, "same semantics");
        // Both pay the same cold misses, but the row scan hits L1 almost
        // always while the column scan's per-column working set exceeds
        // L1 and is served by L2 — visibly slower.
        assert!(
            row.cache.hits[0] * 2 > col.cache.hits[0] * 3,
            "L1 hits: row {} vs col {}",
            row.cache.hits[0],
            col.cache.hits[0]
        );
        assert!(row.cycles < col.cycles, "{} vs {}", row.cycles, col.cycles);
    }

    #[test]
    fn omp_parallel_for_reduces_cycles() {
        let src = r#"double A[64][64];
        #pragma @Locus loop=k
        void kernel() {
            #pragma omp parallel for
            for (int i = 0; i < 64; i++)
                for (int j = 0; j < 64; j++)
                    A[i][j] = A[i][j] * 2.0 + 1.0;
        }"#;
        // Strip the misplaced pragma (globals don't take region pragmas
        // in this test source).
        let src = src.replace("#pragma @Locus loop=k\n", "");
        let program = locus_srcir::parse_program(&src).unwrap();
        let seq = Machine::new(MachineConfig::scaled_small().with_cores(1))
            .run(&program, "kernel")
            .unwrap();
        let par = Machine::new(MachineConfig::scaled_small().with_cores(8))
            .run(&program, "kernel")
            .unwrap();
        assert_eq!(seq.checksum, par.checksum);
        let speedup = seq.cycles / par.cycles;
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    #[test]
    fn vector_pragma_discounts_arithmetic() {
        // A[i % 7] accumulation: non-affine, so the auto-vectorizer
        // refuses; the pragma forces the discount, exactly like icc with
        // `#pragma ivdep`.
        let plain = run(r#"double A[256], B[256];
            void kernel() {
                for (int i = 0; i < 256; i++)
                    A[i % 7] = A[i % 7] + B[i] * 3.0 + 1.0;
            }"#);
        let vectorized = run(r#"double A[256], B[256];
            void kernel() {
                #pragma ivdep
                #pragma vector always
                for (int i = 0; i < 256; i++)
                    A[i % 7] = A[i % 7] + B[i] * 3.0 + 1.0;
            }"#);
        assert_eq!(plain.checksum, vectorized.checksum);
        assert!(vectorized.cycles < plain.cycles);
    }

    #[test]
    fn auto_vectorizer_discounts_provably_safe_loops() {
        // Independent updates auto-vectorize (icc -O3 behaviour)...
        let auto = run(r#"double A[256], B[256];
            void kernel() {
                for (int i = 0; i < 256; i++)
                    A[i] = B[i] * 3.0 + 1.0;
            }"#);
        // ...while a carried recurrence of the same length does not.
        let recurrence = run(r#"double A[257], B[256];
            void kernel() {
                for (int i = 0; i < 256; i++)
                    A[i + 1] = A[i] * 3.0 + B[i];
            }"#);
        assert!(
            auto.cycles < recurrence.cycles,
            "auto {} vs recurrence {}",
            auto.cycles,
            recurrence.cycles
        );

        // Turning the model off removes the discount.
        let program = locus_srcir::parse_program(
            "double A[256], B[256];\nvoid kernel() { for (int i = 0; i < 256; i++) A[i] = B[i] * 3.0 + 1.0; }",
        )
        .unwrap();
        let mut cfg = MachineConfig::scaled_small();
        cfg.auto_vectorize = false;
        let scalar = Machine::new(cfg).run(&program, "kernel").unwrap();
        assert!(auto.cycles < scalar.cycles);
    }

    #[test]
    fn min_max_calls_work() {
        let m = run(r#"double A[2];
            void kernel() {
                A[0] = (double)min(3, 5);
                A[1] = max(2.5, 7.5);
            }"#);
        let expect = run("double A[2];\nvoid kernel() { A[0] = 3.0; A[1] = 7.5; }");
        assert_eq!(m.checksum, expect.checksum);
    }

    #[test]
    fn local_arrays_are_supported() {
        let m = run(r#"double Out[4];
            void kernel() {
                double tmp[4];
                for (int i = 0; i < 4; i++) tmp[i] = (double)i;
                for (int i = 0; i < 4; i++) Out[i] = tmp[i] * 2.0;
            }"#);
        assert!(m.cycles > 0.0);
    }

    #[test]
    fn global_scalar_initializers() {
        let m = run(r#"double alpha = 1.5; double beta = 2.0; double A[2];
            void kernel() { A[0] = alpha * beta; }"#);
        let expect = run("double A[2];\nvoid kernel() { A[0] = 3.0; }");
        assert_eq!(m.checksum, expect.checksum);
    }

    #[test]
    fn measurement_reports_flops_and_time() {
        let m =
            run("double A[64];\nvoid kernel() { for (int i = 0; i < 64; i++) A[i] = A[i] * 2.0; }");
        assert!(m.flops >= 64);
        assert!(m.time_ms > 0.0);
        assert!(m.cache.accesses >= 128);
    }

    #[test]
    fn int_comparisons_above_2_53_are_exact() {
        // 2^53 + 1 and 2^53 are equal as f64; as i64 they are not. The
        // old float-routed comparisons got all of these wrong.
        let m = run(r#"double A[3];
            void kernel() {
                A[0] = (double)(9007199254740993 > 9007199254740992);
                A[1] = (double)(9007199254740993 == 9007199254740992);
                A[2] = (double)(9007199254740993 != 9007199254740992);
            }"#);
        let expect = run("double A[3];\nvoid kernel() { A[0] = 1.0; A[1] = 0.0; A[2] = 1.0; }");
        assert_eq!(m.checksum, expect.checksum);
        // Mixed int/double comparisons still promote to f64.
        let mixed = run("double A[1];\nvoid kernel() { A[0] = (double)(1 < 1.5); }");
        let mixed_expect = run("double A[1];\nvoid kernel() { A[0] = 1.0; }");
        assert_eq!(mixed.checksum, mixed_expect.checksum);
    }

    #[test]
    fn compound_assign_runs_side_effecting_index_once() {
        // The old read-modify-write evaluated the subscript chain twice
        // (once to read, once to write): `i` ended up at 2 and the sum
        // landed in A[2] while A[1] held the stale value.
        let m = run(r#"double A[8];
            void kernel() {
                int i = 0;
                A[(i = i + 1)] += 2.0;
                A[0] = (double)i;
            }"#);
        let expect = run(r#"double A[8];
            void kernel() {
                A[1] = A[1] + 2.0;
                A[0] = 1.0;
            }"#);
        assert_eq!(m.checksum, expect.checksum);
    }

    #[test]
    fn compound_assign_charges_subscripts_once() {
        let compound = run("double A[8];\nvoid kernel() { A[5] += 1.0; }");
        let expanded = run("double A[8];\nvoid kernel() { A[5] = A[5] + 1.0; }");
        assert_eq!(compound.checksum, expanded.checksum, "same semantics");
        // One located address, one subscript evaluation: strictly fewer
        // interpreted ops and cycles than the expanded spelling, but
        // still both cache accesses of a read-modify-write.
        assert!(
            compound.ops < expanded.ops,
            "ops {} vs {}",
            compound.ops,
            expanded.ops
        );
        assert!(compound.cycles < expanded.cycles);
        assert_eq!(compound.cache.accesses, expanded.cache.accesses);
    }

    #[test]
    fn invalid_cache_geometry_is_an_error_not_a_panic() {
        let program =
            locus_srcir::parse_program("double A[4];\nvoid kernel() { A[0] = 1.0; }").unwrap();
        let mut cfg = MachineConfig::scaled_small();
        // 48 KB / 64 B / 8 ways = 96 sets: not a power of two.
        cfg.cache.levels[0].capacity = 48 * 1024;
        let err = Machine::new(cfg).run(&program, "kernel").unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn while_loops_execute() {
        let m = run(r#"double A[8];
            void kernel() {
                int i = 0;
                while (i < 8) {
                    A[i] = 1.0;
                    i += 1;
                }
            }"#);
        let expect = run("double A[8];\nvoid kernel() { for (int i = 0; i < 8; i++) A[i] = 1.0; }");
        assert_eq!(m.checksum, expect.checksum);
    }
}
