//! Register VM for the tier-2 execution engine.
//!
//! Executes [`crate::bytecode2::Exe2`] while charging the exact cost,
//! cache, OpenMP and vectorizer model of the tree interpreter: every
//! fuel tick, cycle charge, cache access and flop increment happens in
//! the same order with the same values, so `Measurement`s are
//! bit-identical across all three engines (the f64 `cycles`
//! accumulator is sensitive to addition order, so charges are never
//! merged — only pre-divided by the lexical vector discount at
//! lowering, which removes the `vector_depth` branch from this loop
//! entirely). `tests/vm_equivalence.rs` holds the engines to the
//! contract, with the tree interpreter and the stack VM as oracles.

use locus_srcir::ast::{BinOp, OmpSchedule};

use crate::bytecode::{advance_base, array_init_data, ArrayCell, Builtin, CastKind, ThrowKind};
use crate::bytecode2::{Exe2, HotLoopDesc, NavDesc, Opnd, RInsn, RTail, SubIdx};
use crate::cache::CacheHierarchy;
use crate::cost::OmpModel;
use crate::interp::{apply_bin, num_binop, Measurement, RuntimeError, Value};
use crate::MachineConfig;

/// One `omp parallel for` region in flight (see [`crate::vm`]).
struct ParCtx {
    active: bool,
    schedule: Option<OmpSchedule>,
    iter_start: f64,
    iter_costs: Vec<f64>,
}

/// Executes a lowered program. The caller supplies the (already
/// validated) cache hierarchy so configuration errors surface before
/// compilation, in the same order as `Interp::new`.
pub(crate) fn run(
    exe: &Exe2,
    config: &MachineConfig,
    cache: CacheHierarchy,
) -> Result<Measurement, RuntimeError> {
    let mut regs = vec![Value::Int(0); exe.n_regs];
    regs[..exe.global_values.len()].copy_from_slice(&exe.global_values);
    let mut vm = Vm2 {
        exe,
        config,
        regs,
        arrays: exe.arrays.clone(),
        next_base: exe.next_base,
        cache,
        cycles: 0.0,
        ops: 0,
        flops: 0,
        in_parallel: false,
        par_stack: Vec::new(),
    };
    vm.exec()?;
    Ok(vm.measurement())
}

struct Vm2<'a> {
    exe: &'a Exe2,
    config: &'a MachineConfig,
    regs: Vec<Value>,
    arrays: Vec<Option<ArrayCell>>,
    next_base: u64,
    cache: CacheHierarchy,
    cycles: f64,
    ops: u64,
    flops: u64,
    in_parallel: bool,
    par_stack: Vec<ParCtx>,
}

/// Fast path for the error-free binary ops that dominate hot loops:
/// integer compares and wrapping integer add/sub (loop conditions and
/// induction steps), and double add/sub/mul (stencil arithmetic).
/// Returns `None` for everything else — including mixed-type operands
/// and any op that can fail — which falls back to [`apply_bin`].
/// Results are identical to `apply_bin`'s for every covered case.
#[inline(always)]
fn bin_fast(op: BinOp, l: Value, r: Value) -> Option<Value> {
    use Value::{Double, Int};
    match (l, r) {
        (Int(a), Int(b)) => Some(match op {
            BinOp::Add => Int(a.wrapping_add(b)),
            BinOp::Sub => Int(a.wrapping_sub(b)),
            BinOp::Mul => Int(a.wrapping_mul(b)),
            BinOp::Lt => Int(i64::from(a < b)),
            BinOp::Le => Int(i64::from(a <= b)),
            BinOp::Gt => Int(i64::from(a > b)),
            BinOp::Ge => Int(i64::from(a >= b)),
            BinOp::Eq => Int(i64::from(a == b)),
            BinOp::Ne => Int(i64::from(a != b)),
            _ => return None,
        }),
        (Double(a), Double(b)) => Some(match op {
            BinOp::Add => Double(a + b),
            BinOp::Sub => Double(a - b),
            BinOp::Mul => Double(a * b),
            BinOp::Div => Double(a / b),
            BinOp::Lt => Int(i64::from(a < b)),
            BinOp::Le => Int(i64::from(a <= b)),
            BinOp::Gt => Int(i64::from(a > b)),
            BinOp::Ge => Int(i64::from(a >= b)),
            BinOp::Eq => Int(i64::from(a == b)),
            BinOp::Ne => Int(i64::from(a != b)),
            _ => return None,
        }),
        _ => None,
    }
}

/// [`bin_fast`] with the [`apply_bin`] fallback folded in.
#[inline(always)]
fn bin_any(op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    match bin_fast(op, l, r) {
        Some(v) => Ok(v),
        None => apply_bin(op, l, r),
    }
}

impl Vm2<'_> {
    #[inline]
    fn val(&self, o: Opnd) -> Value {
        match o {
            Opnd::Reg(r) => self.regs[r as usize],
            Opnd::ImmI(v) => Value::Int(v),
            Opnd::ImmF(v) => Value::Double(v),
        }
    }

    #[inline]
    fn fuel(&mut self, n: u32) -> Result<(), RuntimeError> {
        self.ops += u64::from(n);
        if self.ops > self.config.max_ops {
            return Err(RuntimeError::FuelExhausted);
        }
        Ok(())
    }

    // ---- shared instruction bodies --------------------------------------
    // Used verbatim by both the main dispatcher and the fused hot-loop
    // runner, so the two paths cannot drift apart.

    #[inline(always)]
    fn do_bin(
        &mut self,
        op: BinOp,
        cost: f64,
        dst: u32,
        a: Opnd,
        b: Opnd,
    ) -> Result<(), RuntimeError> {
        let l = self.val(a);
        let r = self.val(b);
        self.cycles += cost;
        if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
            self.flops += 1;
        }
        self.regs[dst as usize] = bin_any(op, l, r)?;
        Ok(())
    }

    #[inline(always)]
    fn do_compound_set(
        &mut self,
        op: BinOp,
        cost: f64,
        slot: u32,
        rhs: Opnd,
    ) -> Result<(), RuntimeError> {
        let old = self.regs[slot as usize];
        let r = self.val(rhs);
        self.cycles += cost;
        if matches!(old, Value::Double(_)) {
            self.flops += 1;
        }
        let v = bin_any(op, old, r)?;
        self.write_slot(slot as usize, v);
        Ok(())
    }

    #[inline(always)]
    fn do_compound_set_val(
        &mut self,
        op: BinOp,
        cost: f64,
        slot: u32,
        rhs: Opnd,
        dst: u32,
    ) -> Result<(), RuntimeError> {
        let old = self.regs[slot as usize];
        let r = self.val(rhs);
        self.cycles += cost;
        if matches!(old, Value::Double(_)) {
            self.flops += 1;
        }
        let v = bin_any(op, old, r)?;
        self.regs[dst as usize] = v;
        self.write_slot(slot as usize, v);
        Ok(())
    }

    #[inline(always)]
    fn do_compound_tmp(
        &mut self,
        op: BinOp,
        cost: f64,
        dst: u32,
        old: Opnd,
        rhs: Opnd,
    ) -> Result<(), RuntimeError> {
        let o = self.val(old);
        let r = self.val(rhs);
        self.cycles += cost;
        if matches!(o, Value::Double(_)) {
            self.flops += 1;
        }
        self.regs[dst as usize] = bin_any(op, o, r)?;
        Ok(())
    }

    #[inline(always)]
    fn do_neg(&mut self, cost: f64, dst: u32, src: Opnd) {
        let v = self.val(src);
        self.cycles += cost;
        if matches!(v, Value::Double(_)) {
            self.flops += 1;
        }
        self.regs[dst as usize] = match v {
            Value::Int(x) => Value::Int(-x),
            Value::Double(x) => Value::Double(-x),
        };
    }

    #[inline(always)]
    fn do_not(&mut self, cost: f64, dst: u32, src: Opnd) {
        let v = self.val(src);
        self.cycles += cost;
        self.regs[dst as usize] = Value::Int(i64::from(!v.truthy()));
    }

    #[inline(always)]
    fn do_cast(&mut self, kind: CastKind, cost: f64, dst: u32, src: Opnd) {
        let v = self.val(src);
        self.cycles += cost;
        self.regs[dst as usize] = match kind {
            CastKind::ToFloat => Value::Double(v.as_f64()),
            CastKind::ToInt => Value::Int(v.as_i64()),
            CastKind::Keep => v,
        };
    }

    #[inline(always)]
    fn do_decl_slot(&mut self, slot: u32, kind: CastKind, src: Opnd) {
        let v = self.val(src);
        self.regs[slot as usize] = match kind {
            CastKind::ToFloat => Value::Double(v.as_f64()),
            CastKind::ToInt => Value::Int(v.as_i64()),
            CastKind::Keep => v,
        };
    }

    #[inline(always)]
    fn do_call1(&mut self, f: Builtin, cost: f64, div_cost: f64, dst: u32, a: Opnd) {
        self.cycles += cost;
        let a = self.val(a);
        self.regs[dst as usize] = match f {
            Builtin::Abs => match a {
                Value::Int(v) => Value::Int(v.abs()),
                Value::Double(v) => Value::Double(v.abs()),
            },
            Builtin::Sqrt => {
                self.flops += 1;
                self.cycles += div_cost;
                Value::Double(a.as_f64().sqrt())
            }
            Builtin::Floor => Value::Double(a.as_f64().floor()),
            Builtin::Ceil => Value::Double(a.as_f64().ceil()),
            Builtin::Min | Builtin::Max => {
                unreachable!("two-argument builtins lower to Call2")
            }
        };
    }

    #[inline(always)]
    fn do_call2(&mut self, f: Builtin, cost: f64, dst: u32, a: Opnd, b: Opnd) {
        self.cycles += cost;
        let a = self.val(a);
        let b = self.val(b);
        self.regs[dst as usize] = match f {
            Builtin::Min => num_binop(a, b, i64::min, f64::min),
            Builtin::Max => num_binop(a, b, i64::max, f64::max),
            _ => unreachable!("one-argument builtins lower to Call1"),
        };
    }

    #[inline(always)]
    fn do_array_check(&mut self, id: u32, subs: u32) -> Result<(), RuntimeError> {
        let name = &self.exe.array_names[id as usize];
        let Some(cell) = &self.arrays[id as usize] else {
            return Err(RuntimeError::UndefinedVariable(name.clone()));
        };
        let ndims = cell.dims.len();
        if subs as usize != ndims {
            return Err(RuntimeError::Unsupported(format!(
                "array `{name}` used with {subs} subscripts but declared with {ndims}"
            )));
        }
        Ok(())
    }

    #[inline(always)]
    fn do_idx_dim(
        &mut self,
        id: u32,
        dim: u32,
        first: bool,
        cost: f64,
        idx: Opnd,
        acc: u32,
    ) -> Result<(), RuntimeError> {
        let idx = self.val(idx).as_i64();
        let cell = self.arrays[id as usize]
            .as_ref()
            .expect("ArrayCheck precedes IdxDim");
        let extent = cell.dims[dim as usize];
        if idx < 0 || idx >= extent as i64 {
            return Err(RuntimeError::OutOfBounds {
                array: self.exe.array_names[id as usize].clone(),
                index: idx,
                len: cell.data.len(),
            });
        }
        let flat = if first {
            idx
        } else {
            self.regs[acc as usize].as_i64() * extent as i64 + idx
        };
        self.regs[acc as usize] = Value::Int(flat);
        self.cycles += cost;
        Ok(())
    }

    fn exec(&mut self) -> Result<(), RuntimeError> {
        // `exe` is a plain `&'a Exe2` — reading code through the copy
        // keeps the borrow independent of `&mut self` in the arms.
        let exe = self.exe;
        let mut pc = 0usize;
        loop {
            // Match through the place so each arm loads only the
            // fields it names instead of copying the whole `RInsn`.
            let insn = &exe.code[pc];
            pc += 1;
            match *insn {
                RInsn::Fuel(n) => self.fuel(n)?,
                RInsn::Jump(t) => pc = t as usize,
                RInsn::BrFalsy { src, t } => {
                    if !self.val(src).truthy() {
                        pc = t as usize;
                    }
                }
                RInsn::CmpBr {
                    fuel,
                    op,
                    cost,
                    a,
                    b,
                    post,
                    t,
                    pcost,
                } => {
                    if fuel > 0 {
                        self.fuel(fuel)?;
                    }
                    let l = self.val(a);
                    let r = self.val(b);
                    self.cycles += cost;
                    if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = bin_any(op, l, r)?;
                    if post != 0.0 {
                        self.cycles += post;
                    }
                    if !v.truthy() {
                        pc = t as usize;
                    } else if pcost != 0.0 {
                        self.cycles += pcost;
                    }
                }
                RInsn::StepJump {
                    fuel,
                    op,
                    cost,
                    slot,
                    rhs,
                    t,
                } => {
                    if fuel > 0 {
                        self.fuel(fuel)?;
                    }
                    let old = self.regs[slot as usize];
                    let r = self.val(rhs);
                    self.cycles += cost;
                    if matches!(old, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = bin_any(op, old, r)?;
                    self.write_slot(slot as usize, v);
                    pc = t as usize;
                }
                RInsn::Mov { dst, src } => self.regs[dst as usize] = self.val(src),
                RInsn::SetSlot { slot, src } => {
                    let v = self.val(src);
                    self.write_slot(slot as usize, v);
                }
                RInsn::LoadChain { chain, dst } => {
                    let slot = self.resolve_chain(chain)?;
                    self.regs[dst as usize] = self.regs[slot];
                }
                RInsn::StoreChain { chain, src } => {
                    let slot = self.resolve_chain(chain)?;
                    let v = self.val(src);
                    self.write_slot(slot, v);
                }
                RInsn::DeclSlot { slot, kind, src } => self.do_decl_slot(slot, kind, src),
                RInsn::DeclDefault { slot, is_float } => {
                    self.regs[slot as usize] = if is_float {
                        Value::Double(0.0)
                    } else {
                        Value::Int(0)
                    };
                }
                RInsn::Charge(c) => self.cycles += c,
                RInsn::Neg { cost, dst, src } => self.do_neg(cost, dst, src),
                RInsn::Not { cost, dst, src } => self.do_not(cost, dst, src),
                RInsn::Bin {
                    op,
                    cost,
                    dst,
                    a,
                    b,
                } => self.do_bin(op, cost, dst, a, b)?,
                RInsn::CompoundSet {
                    op,
                    cost,
                    slot,
                    rhs,
                } => self.do_compound_set(op, cost, slot, rhs)?,
                RInsn::CompoundSetVal {
                    op,
                    cost,
                    slot,
                    rhs,
                    dst,
                } => self.do_compound_set_val(op, cost, slot, rhs, dst)?,
                RInsn::CompoundTmp {
                    op,
                    cost,
                    dst,
                    old,
                    rhs,
                } => self.do_compound_tmp(op, cost, dst, old, rhs)?,
                RInsn::Truthy { dst, src } => {
                    let v = self.val(src);
                    self.regs[dst as usize] = Value::Int(i64::from(v.truthy()));
                }
                RInsn::AndSC { src, dst, t } => {
                    if !self.val(src).truthy() {
                        self.regs[dst as usize] = Value::Int(0);
                        pc = t as usize;
                    }
                }
                RInsn::OrSC { src, dst, t } => {
                    if self.val(src).truthy() {
                        self.regs[dst as usize] = Value::Int(1);
                        pc = t as usize;
                    }
                }
                RInsn::Cast {
                    kind,
                    cost,
                    dst,
                    src,
                } => self.do_cast(kind, cost, dst, src),
                RInsn::Call1 {
                    f,
                    cost,
                    div_cost,
                    dst,
                    a,
                } => self.do_call1(f, cost, div_cost, dst, a),
                RInsn::Call2 { f, cost, dst, a, b } => self.do_call2(f, cost, dst, a, b),
                RInsn::ArrayCheck { id, subs } => self.do_array_check(id, subs)?,
                RInsn::IdxDim {
                    id,
                    dim,
                    first,
                    cost,
                    idx,
                    acc,
                } => self.do_idx_dim(id, dim, first, cost, idx, acc)?,
                RInsn::Nav(n) => {
                    let d = &exe.navs[n as usize];
                    self.run_nav(d)?;
                }
                RInsn::HotLoop(h) => {
                    let d = &exe.hotloops[h as usize];
                    self.run_hot_loop(d)?;
                    pc = d.exit as usize;
                }
                RInsn::DimCheck { id, v } => {
                    if self.val(v).as_i64() <= 0 {
                        return Err(RuntimeError::BadArrayDim(
                            exe.array_names[id as usize].clone(),
                        ));
                    }
                }
                RInsn::AllocArray(a) => {
                    let desc = &exe.allocs[a as usize];
                    let dim_sizes: Vec<usize> = desc
                        .dims
                        .iter()
                        .map(|&o| self.val(o).as_i64() as usize)
                        .collect();
                    let len = crate::bytecode::checked_alloc_len(
                        &exe.array_names[desc.id as usize],
                        &dim_sizes,
                    )?;
                    let base = self.next_base;
                    self.next_base = advance_base(self.next_base, len);
                    self.arrays[desc.id as usize] = Some(ArrayCell {
                        is_float: desc.is_float,
                        data: array_init_data(len, desc.is_float),
                        base,
                        dims: dim_sizes,
                        local: true,
                    });
                }
                RInsn::LoadA { id, acc, dst } => {
                    let flat = self.regs[acc as usize].as_i64() as usize;
                    self.elem_load(id, flat, dst);
                }
                RInsn::StoreA { id, acc, val } => {
                    let flat = self.regs[acc as usize].as_i64() as usize;
                    let v = self.val(val);
                    self.elem_store(id, flat, v);
                }
                RInsn::RmwA {
                    op,
                    cost,
                    id,
                    acc,
                    rhs,
                    dst,
                } => {
                    let flat = self.regs[acc as usize].as_i64() as usize;
                    let r = self.val(rhs);
                    let v = self.elem_rmw(id, flat, op, cost, r)?;
                    self.regs[dst as usize] = v;
                }
                RInsn::LoadABin {
                    op,
                    cost,
                    id,
                    acc,
                    lhs,
                    dst,
                } => {
                    let flat = self.regs[acc as usize].as_i64() as usize;
                    let l = self.val(lhs);
                    let v = self.elem_load_bin(id, flat, op, cost, l)?;
                    self.regs[dst as usize] = v;
                }
                RInsn::ParEnter(schedule) => {
                    let active = !self.in_parallel;
                    if active {
                        self.in_parallel = true;
                    }
                    self.par_stack.push(ParCtx {
                        active,
                        schedule,
                        iter_start: 0.0,
                        iter_costs: Vec::new(),
                    });
                }
                RInsn::IterStart => {
                    let cycles = self.cycles;
                    if let Some(ctx) = self.par_stack.last_mut() {
                        if ctx.active {
                            ctx.iter_start = cycles;
                        }
                    }
                }
                RInsn::IterEnd => {
                    let cycles = self.cycles;
                    if let Some(ctx) = self.par_stack.last_mut() {
                        if ctx.active {
                            let cost = cycles - ctx.iter_start;
                            ctx.iter_costs.push(cost);
                        }
                    }
                }
                RInsn::ParExit => {
                    let ctx = self.par_stack.pop().expect("ParEnter precedes ParExit");
                    self.finish_parallel(ctx);
                }
                RInsn::Throw(kind, msg) => {
                    let msg = exe.messages[msg as usize].clone();
                    return Err(match kind {
                        ThrowKind::UndefinedVariable => RuntimeError::UndefinedVariable(msg),
                        ThrowKind::UndefinedFunction => RuntimeError::UndefinedFunction(msg),
                        ThrowKind::Unsupported => RuntimeError::Unsupported(msg),
                    });
                }
                RInsn::Halt => {
                    // Early return unwinds through open parallel loops
                    // innermost-first, exactly like the tree's
                    // recursive exec_for unwinding.
                    while let Some(ctx) = self.par_stack.pop() {
                        self.finish_parallel(ctx);
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Runs a whole fused innermost loop to completion: the guard (the
    /// original `CmpBr`), the straight-line body instructions scanned
    /// in place, and the step (the original `StepJump`) — exactly the
    /// instruction sequence the unfused loop dispatches, so cycles,
    /// fuel, flops, cache order and error points stay bit-identical;
    /// only the dispatcher round-trips disappear. On normal return the
    /// caller continues at `d.exit`.
    fn run_hot_loop(&mut self, d: &HotLoopDesc) -> Result<(), RuntimeError> {
        let exe = self.exe;
        let RInsn::StepJump {
            fuel: sfuel,
            op: sop,
            cost: scost,
            slot,
            rhs: srhs,
            ..
        } = exe.code[d.step as usize]
        else {
            unreachable!("HotLoop step slot holds the original StepJump")
        };
        let (body_start, body_end) = (d.body.0 as usize, d.body.1 as usize);
        loop {
            // Guard: the original CmpBr arm.
            if d.fuel > 0 {
                self.fuel(d.fuel)?;
            }
            let l = self.val(d.a);
            let r = self.val(d.b);
            self.cycles += d.cost;
            if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
                self.flops += 1;
            }
            let v = bin_any(d.op, l, r)?;
            if d.post != 0.0 {
                self.cycles += d.post;
            }
            if !v.truthy() {
                return Ok(());
            }
            if d.pcost != 0.0 {
                self.cycles += d.pcost;
            }
            // Body: the whitelisted straight-line instructions, run
            // where they sit.
            for q in body_start..body_end {
                match exe.code[q] {
                    RInsn::Fuel(n) => self.fuel(n)?,
                    RInsn::Charge(c) => self.cycles += c,
                    RInsn::Nav(n) => self.run_nav(&exe.navs[n as usize])?,
                    RInsn::Mov { dst, src } => self.regs[dst as usize] = self.val(src),
                    RInsn::SetSlot { slot, src } => {
                        let v = self.val(src);
                        self.write_slot(slot as usize, v);
                    }
                    RInsn::DeclSlot { slot, kind, src } => self.do_decl_slot(slot, kind, src),
                    RInsn::DeclDefault { slot, is_float } => {
                        self.regs[slot as usize] = if is_float {
                            Value::Double(0.0)
                        } else {
                            Value::Int(0)
                        };
                    }
                    RInsn::Neg { cost, dst, src } => self.do_neg(cost, dst, src),
                    RInsn::Not { cost, dst, src } => self.do_not(cost, dst, src),
                    RInsn::Bin {
                        op,
                        cost,
                        dst,
                        a,
                        b,
                    } => self.do_bin(op, cost, dst, a, b)?,
                    RInsn::CompoundSet {
                        op,
                        cost,
                        slot,
                        rhs,
                    } => self.do_compound_set(op, cost, slot, rhs)?,
                    RInsn::CompoundSetVal {
                        op,
                        cost,
                        slot,
                        rhs,
                        dst,
                    } => self.do_compound_set_val(op, cost, slot, rhs, dst)?,
                    RInsn::CompoundTmp {
                        op,
                        cost,
                        dst,
                        old,
                        rhs,
                    } => self.do_compound_tmp(op, cost, dst, old, rhs)?,
                    RInsn::Truthy { dst, src } => {
                        let v = self.val(src);
                        self.regs[dst as usize] = Value::Int(i64::from(v.truthy()));
                    }
                    RInsn::Cast {
                        kind,
                        cost,
                        dst,
                        src,
                    } => self.do_cast(kind, cost, dst, src),
                    RInsn::Call1 {
                        f,
                        cost,
                        div_cost,
                        dst,
                        a,
                    } => self.do_call1(f, cost, div_cost, dst, a),
                    RInsn::Call2 { f, cost, dst, a, b } => self.do_call2(f, cost, dst, a, b),
                    RInsn::ArrayCheck { id, subs } => self.do_array_check(id, subs)?,
                    RInsn::IdxDim {
                        id,
                        dim,
                        first,
                        cost,
                        idx,
                        acc,
                    } => self.do_idx_dim(id, dim, first, cost, idx, acc)?,
                    RInsn::LoadA { id, acc, dst } => {
                        let flat = self.regs[acc as usize].as_i64() as usize;
                        self.elem_load(id, flat, dst);
                    }
                    RInsn::StoreA { id, acc, val } => {
                        let flat = self.regs[acc as usize].as_i64() as usize;
                        let v = self.val(val);
                        self.elem_store(id, flat, v);
                    }
                    RInsn::RmwA {
                        op,
                        cost,
                        id,
                        acc,
                        rhs,
                        dst,
                    } => {
                        let flat = self.regs[acc as usize].as_i64() as usize;
                        let r = self.val(rhs);
                        let v = self.elem_rmw(id, flat, op, cost, r)?;
                        self.regs[dst as usize] = v;
                    }
                    RInsn::LoadABin {
                        op,
                        cost,
                        id,
                        acc,
                        lhs,
                        dst,
                    } => {
                        let flat = self.regs[acc as usize].as_i64() as usize;
                        let l = self.val(lhs);
                        let v = self.elem_load_bin(id, flat, op, cost, l)?;
                        self.regs[dst as usize] = v;
                    }
                    _ => unreachable!("non-straight-line instruction in a fused hot loop"),
                }
            }
            // Step: the original StepJump arm, minus the jump.
            if sfuel > 0 {
                self.fuel(sfuel)?;
            }
            let old = self.regs[slot as usize];
            let r = self.val(srhs);
            self.cycles += scost;
            if matches!(old, Value::Double(_)) {
                self.flops += 1;
            }
            let v = bin_any(sop, old, r)?;
            self.write_slot(slot as usize, v);
        }
    }

    /// Runs one fused subscript chain + access: per dimension, tick the
    /// pending fuel, evaluate the subscript, bounds-check, fold into
    /// the flat index and charge — then the access tail.
    ///
    /// The whole chain works on one resolution of the array cell
    /// (nothing inside a nav can reallocate arrays) and on split field
    /// borrows, so the per-dimension work compiles down to the index
    /// arithmetic, the bounds test and the two accumulator adds.
    fn run_nav(&mut self, d: &NavDesc) -> Result<(), RuntimeError> {
        let id = d.id as usize;
        let Vm2 {
            exe,
            config,
            regs,
            arrays,
            cache,
            cycles,
            ops,
            flops,
            ..
        } = self;
        let cell = arrays[id].as_mut().expect("checked before Nav");
        let mut flat: i64 = 0;
        // Fast path: when the whole chain's fuel cannot exhaust the
        // budget, tick it at once (tick *order* is unobservable — only
        // totals and error points are). Under the guard FuelExhausted
        // cannot fire mid-chain in either engine, and every non-fuel
        // error point (bounds, subscript ops) is evaluated in the same
        // order with the same payloads, so per-step budget checks are
        // skipped without breaking the contract.
        let batched = *ops + u64::from(d.total_fuel) <= config.max_ops;
        if batched {
            *ops += u64::from(d.total_fuel);
        }
        for (dim, step) in d.steps[..d.n as usize].iter().enumerate() {
            if !batched && step.fuel > 0 {
                *ops += u64::from(step.fuel);
                if *ops > config.max_ops {
                    return Err(RuntimeError::FuelExhausted);
                }
            }
            let idx = match step.idx {
                SubIdx::Reg(r) => regs[r as usize].as_i64(),
                SubIdx::Imm(v) => v,
                SubIdx::RegOff { s, op, rhs, bcost } => {
                    let l = regs[s as usize];
                    *cycles += bcost;
                    if matches!(l, Value::Double(_)) {
                        *flops += 1;
                    }
                    bin_any(op, l, Value::Int(rhs))?.as_i64()
                }
                SubIdx::RegOff2 {
                    s,
                    op1,
                    r1,
                    bcost1,
                    op2,
                    r2,
                    bcost2,
                } => {
                    // Tree order: inner charge/flop/apply, then
                    // outer. `op1` is error-free by construction,
                    // but route through bin_any so the semantics
                    // stay the oracle's by inspection.
                    let l = regs[s as usize];
                    let r1 = match r1 {
                        Opnd::Reg(r) => regs[r as usize],
                        Opnd::ImmI(v) => Value::Int(v),
                        Opnd::ImmF(v) => Value::Double(v),
                    };
                    *cycles += bcost1;
                    if matches!(l, Value::Double(_)) || matches!(r1, Value::Double(_)) {
                        *flops += 1;
                    }
                    let m = bin_any(op1, l, r1)?;
                    let r2 = match r2 {
                        Opnd::Reg(r) => regs[r as usize],
                        Opnd::ImmI(v) => Value::Int(v),
                        Opnd::ImmF(v) => Value::Double(v),
                    };
                    *cycles += bcost2;
                    if matches!(m, Value::Double(_)) || matches!(r2, Value::Double(_)) {
                        *flops += 1;
                    }
                    bin_any(op2, m, r2)?.as_i64()
                }
            };
            let extent = cell.dims[dim];
            if idx < 0 || idx >= extent as i64 {
                return Err(RuntimeError::OutOfBounds {
                    array: exe.array_names[id].clone(),
                    index: idx,
                    len: cell.data.len(),
                });
            }
            flat = if dim == 0 {
                idx
            } else {
                flat * extent as i64 + idx
            };
            *cycles += step.cost;
        }
        let flat = flat as usize;
        let addr = cell.base + flat as u64 * 8;
        let is_float = cell.is_float;
        let from_raw = |raw: f64| {
            if is_float {
                Value::Double(raw)
            } else {
                Value::Int(raw as i64)
            }
        };
        match d.tail {
            RTail::Load { dst } => {
                let raw = cell.data[flat];
                let (_, latency) = cache.access(addr);
                *cycles += latency as f64;
                regs[dst as usize] = from_raw(raw);
            }
            RTail::LoadBin { op, cost, lhs, dst } => {
                let l = match lhs {
                    Opnd::Reg(r) => regs[r as usize],
                    Opnd::ImmI(v) => Value::Int(v),
                    Opnd::ImmF(v) => Value::Double(v),
                };
                let raw = cell.data[flat];
                let (_, latency) = cache.access(addr);
                *cycles += latency as f64;
                let r = from_raw(raw);
                *cycles += cost;
                if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
                    *flops += 1;
                }
                regs[dst as usize] = bin_any(op, l, r)?;
            }
            RTail::Store { val } => {
                let v = match val {
                    Opnd::Reg(r) => regs[r as usize],
                    Opnd::ImmI(v) => Value::Int(v),
                    Opnd::ImmF(v) => Value::Double(v),
                };
                cell.data[flat] = if is_float {
                    v.as_f64()
                } else {
                    v.as_i64() as f64
                };
                let (_, latency) = cache.access(addr);
                *cycles += latency as f64;
            }
            RTail::Rmw { op, cost, rhs, dst } => {
                let r = match rhs {
                    Opnd::Reg(r) => regs[r as usize],
                    Opnd::ImmI(v) => Value::Int(v),
                    Opnd::ImmF(v) => Value::Double(v),
                };
                let raw = cell.data[flat];
                let (_, latency) = cache.access(addr);
                *cycles += latency as f64;
                let old = from_raw(raw);
                *cycles += cost;
                if matches!(old, Value::Double(_)) {
                    *flops += 1;
                }
                let new = bin_any(op, old, r)?;
                cell.data[flat] = if is_float {
                    new.as_f64()
                } else {
                    new.as_i64() as f64
                };
                let (_, latency) = cache.access(addr);
                *cycles += latency as f64;
                regs[dst as usize] = new;
            }
        }
        Ok(())
    }

    /// Read one element through the cache into a register.
    #[inline]
    fn elem_load(&mut self, id: u32, flat: usize, dst: u32) {
        let cell = self.arrays[id as usize]
            .as_ref()
            .expect("validated before array load");
        let addr = cell.base + flat as u64 * 8;
        let is_float = cell.is_float;
        let raw = cell.data[flat];
        let (_, latency) = self.cache.access(addr);
        self.cycles += latency as f64;
        self.regs[dst as usize] = if is_float {
            Value::Double(raw)
        } else {
            Value::Int(raw as i64)
        };
    }

    /// Read one element as the rhs of a binary op.
    #[inline]
    fn elem_load_bin(
        &mut self,
        id: u32,
        flat: usize,
        op: locus_srcir::ast::BinOp,
        cost: f64,
        l: Value,
    ) -> Result<Value, RuntimeError> {
        let cell = self.arrays[id as usize]
            .as_ref()
            .expect("validated before array load");
        let addr = cell.base + flat as u64 * 8;
        let is_float = cell.is_float;
        let raw = cell.data[flat];
        let (_, latency) = self.cache.access(addr);
        self.cycles += latency as f64;
        let r = if is_float {
            Value::Double(raw)
        } else {
            Value::Int(raw as i64)
        };
        self.cycles += cost;
        if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
            self.flops += 1;
        }
        apply_bin(op, l, r)
    }

    /// Write one element through the cache (coerced to the element
    /// type).
    #[inline]
    fn elem_store(&mut self, id: u32, flat: usize, value: Value) {
        let cell = self.arrays[id as usize]
            .as_mut()
            .expect("validated before array store");
        let addr = cell.base + flat as u64 * 8;
        cell.data[flat] = if cell.is_float {
            value.as_f64()
        } else {
            value.as_i64() as f64
        };
        let (_, latency) = self.cache.access(addr);
        self.cycles += latency as f64;
    }

    /// Read-modify-write one element: two cache accesses, one address.
    #[inline]
    fn elem_rmw(
        &mut self,
        id: u32,
        flat: usize,
        op: locus_srcir::ast::BinOp,
        cost: f64,
        rhs: Value,
    ) -> Result<Value, RuntimeError> {
        let cell = self.arrays[id as usize]
            .as_ref()
            .expect("validated before array rmw");
        let addr = cell.base + flat as u64 * 8;
        let is_float = cell.is_float;
        let raw = cell.data[flat];
        let (_, latency) = self.cache.access(addr);
        self.cycles += latency as f64;
        let old = if is_float {
            Value::Double(raw)
        } else {
            Value::Int(raw as i64)
        };
        self.cycles += cost;
        if matches!(old, Value::Double(_)) {
            self.flops += 1;
        }
        let new = bin_any(op, old, rhs)?;
        let cell = self.arrays[id as usize].as_mut().expect("cell read above");
        cell.data[flat] = if is_float {
            new.as_f64()
        } else {
            new.as_i64() as f64
        };
        let (_, latency) = self.cache.access(addr);
        self.cycles += latency as f64;
        Ok(new)
    }

    /// Stores preserving the slot's current tag (the tree's
    /// `write_scalar`).
    fn write_slot(&mut self, slot: usize, value: Value) {
        let cell = &mut self.regs[slot];
        *cell = match cell {
            Value::Int(_) => Value::Int(value.as_i64()),
            Value::Double(_) => Value::Double(value.as_f64()),
        };
    }

    /// Walks a dynamic-resolution chain: first live conditional binding
    /// wins, then the static fallback, then `UndefinedVariable`.
    fn resolve_chain(&self, i: u32) -> Result<usize, RuntimeError> {
        let chain = &self.exe.chains[i as usize];
        for &(flag, slot) in &chain.guards {
            if self.regs[flag as usize].truthy() {
                return Ok(slot as usize);
            }
        }
        match chain.fallback {
            Some(slot) => Ok(slot as usize),
            None => Err(RuntimeError::UndefinedVariable(
                self.exe.messages[chain.msg as usize].clone(),
            )),
        }
    }

    /// Replaces the sequentially accumulated body time of a parallel
    /// loop with the scheduled makespan.
    fn finish_parallel(&mut self, ctx: ParCtx) {
        if !ctx.active {
            return;
        }
        let sequential: f64 = ctx.iter_costs.iter().sum();
        let model = OmpModel {
            cost: &self.config.cost,
            cores: self.config.cores,
        };
        let makespan = model.makespan(&ctx.iter_costs, ctx.schedule);
        self.cycles = self.cycles - sequential + makespan;
        self.in_parallel = false;
    }

    fn measurement(&self) -> Measurement {
        Measurement {
            cycles: self.cycles,
            time_ms: self.cycles / (self.config.ghz * 1e6),
            ops: self.ops,
            flops: self.flops,
            cache: self.cache.stats().clone(),
            checksum: self.checksum(),
        }
    }

    fn checksum(&self) -> u64 {
        // Identical to the tree interpreter: FNV over quantized array
        // contents, array *name* order fixed, local arrays skipped.
        let mut ids: Vec<usize> = (0..self.arrays.len())
            .filter(|&i| self.arrays[i].is_some())
            .collect();
        ids.sort_by(|&a, &b| self.exe.array_names[a].cmp(&self.exe.array_names[b]));
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for id in ids {
            let cell = self.arrays[id].as_ref().expect("filtered above");
            if cell.local {
                continue;
            }
            for b in self.exe.array_names[id].as_bytes() {
                hash = (hash ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
            }
            for v in &cell.data {
                let q = (v * 1024.0).round() as i64 as u64;
                hash = (hash ^ q).wrapping_mul(0x100_0000_01b3);
            }
        }
        hash
    }
}
