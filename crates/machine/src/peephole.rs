//! Measurement-preserving peephole pass over compiled bytecode.
//!
//! Two rewrites, applied to a fixpoint:
//!
//! 1. **Fuel commuting** — a [`Insn::Fuel`] bubbles leftward across any
//!    instruction that can neither raise an error nor transfer control.
//!    The fuel check's only observable is *which* error a run ends with
//!    (and fuel exhaustion returns no measurement at all), so moving
//!    the tick across error-free straight-line code is invisible; it
//!    exposes adjacent instruction pairs to rule 2.
//! 2. **Pair fusion** — adjacent pairs combine into the superinstructions
//!    of [`crate::bytecode`]: `LoadSlot + Bin` → `BinSlotR`,
//!    `BinSlotInt + JumpIfFalse` → `BinSlotIntBr` (a whole `i < N`), …
//!    Each superinstruction performs the exact composition of the pair —
//!    same charges, flops and errors in the same order — so
//!    measurements stay bit-identical (held to by
//!    `tests/vm_equivalence.rs`).
//!
//! Both rewrites refuse to touch a position that is a jump target: a
//! jump may never land *inside* a fused pair or skip a commuted tick.
//! Fusion changes instruction indices, so every pass rebuilds an
//! old-to-new index map and rewrites all jump targets through it.

use locus_srcir::ast::BinOp;

use crate::bytecode::{AccessTail, Insn};

/// Optimizes a compiled instruction sequence.
pub(crate) fn optimize(mut code: Vec<Insn>) -> Vec<Insn> {
    // Each round strictly shrinks the code or swaps fuel leftward (which
    // itself terminates); the explicit bound is belt and braces.
    for _ in 0..16 {
        let targets = jump_targets(&code);
        // Commute to a fixpoint before fusing: the fuel must fully clear
        // a pair (e.g. `PushInt, Fuel, Bin`) or the early `Bin +
        // JumpIfFalse` fusion shadows the richer `PushInt + Bin` one.
        let mut commuted = false;
        while commute_fuel(&mut code, &targets) {
            commuted = true;
        }
        let fused = fuse_pairs(&mut code, &targets);
        if !commuted && !fused {
            break;
        }
    }
    code
}

fn jump_targets(code: &[Insn]) -> Vec<bool> {
    let mut t = vec![false; code.len() + 1];
    for insn in code {
        if let Some(target) = jump_target(insn) {
            t[target as usize] = true;
        }
    }
    t
}

fn jump_target(insn: &Insn) -> Option<u32> {
    match insn {
        Insn::Jump(t)
        | Insn::JumpIfFalse(t)
        | Insn::AndShortCircuit(t)
        | Insn::OrShortCircuit(t)
        | Insn::BinBr(_, _, t)
        | Insn::BinIntBr(_, _, _, t)
        | Insn::BinSlotIntBr { t, .. }
        | Insn::CompoundSlotIntStoreJump(_, _, _, _, _, t) => Some(*t),
        _ => None,
    }
}

fn set_jump_target(insn: &mut Insn, target: u32) {
    match insn {
        Insn::Jump(t)
        | Insn::JumpIfFalse(t)
        | Insn::AndShortCircuit(t)
        | Insn::OrShortCircuit(t)
        | Insn::BinBr(_, _, t)
        | Insn::BinIntBr(_, _, _, t)
        | Insn::BinSlotIntBr { t, .. }
        | Insn::CompoundSlotIntStoreJump(_, _, _, _, _, t) => *t = target,
        _ => unreachable!("not a jump"),
    }
}

/// Whether a fuel tick may move from after `insn` to before it: the
/// instruction must not error (else the tick's position picks which
/// error surfaces first) and must not jump (else the tick could be
/// skipped or double-counted).
fn commutes_with_fuel(insn: &Insn) -> bool {
    match insn {
        Insn::PushInt(_)
        | Insn::PushFloat(_)
        | Insn::Pop
        | Insn::Dup
        | Insn::LoadSlot(_)
        | Insn::StoreSlot(_)
        | Insn::DeclSlot(..)
        | Insn::DeclDefault(..)
        | Insn::Charge(_)
        | Insn::Charge2(..)
        | Insn::Neg(_)
        | Insn::Not(_)
        | Insn::Truthy
        | Insn::Cast(..)
        // Array loads/stores touch the cache and cycles but cannot
        // error: the preceding `IndexDim`s bounds-checked the flat
        // offset.
        | Insn::LoadArray(_)
        | Insn::StoreArray(_)
        | Insn::StoreArrayPop(_) => true,
        Insn::Bin(op, _)
        | Insn::CompoundBin(op, _)
        | Insn::BinInt(op, ..)
        | Insn::BinFloat(op, ..)
        | Insn::BinSlotR(op, ..)
        | Insn::BinSlotInt(op, ..)
        | Insn::CompoundSlot(op, ..)
        | Insn::CompoundSlotInt(op, ..)
        | Insn::CompoundSlotStore(op, ..)
        | Insn::CompoundSlotIntStore(op, ..)
        | Insn::LoadArrayBin(_, op, _) => !matches!(op, BinOp::Div | BinOp::Rem),
        _ => false,
    }
}

/// Bubbles `Fuel` instructions leftward over commuting instructions.
/// Swapping positions `i-1, i` is refused when `i` is a jump target (a
/// jump to `i` must keep executing exactly the instructions it did).
fn commute_fuel(code: &mut [Insn], targets: &[bool]) -> bool {
    let mut changed = false;
    for i in 1..code.len() {
        if matches!(code[i], Insn::Fuel(_)) && !targets[i] && commutes_with_fuel(&code[i - 1]) {
            code.swap(i - 1, i);
            changed = true;
        }
    }
    changed
}

/// One greedy left-to-right fusion pass; returns whether anything fused.
fn fuse_pairs(code: &mut Vec<Insn>, targets: &[bool]) -> bool {
    let mut out: Vec<Insn> = Vec::with_capacity(code.len());
    let mut map: Vec<u32> = vec![0; code.len() + 1];
    let mut changed = false;
    let mut i = 0;
    while i < code.len() {
        map[i] = out.len() as u32;
        if i + 1 < code.len() && !targets[i + 1] {
            if let Some(fused) = fuse_pair(&code[i], &code[i + 1]) {
                // No jump targets the consumed second element, but keep
                // the map total.
                map[i + 1] = out.len() as u32;
                out.push(fused);
                changed = true;
                i += 2;
                continue;
            }
        }
        out.push(code[i]);
        i += 1;
    }
    map[code.len()] = out.len() as u32;
    if changed {
        for insn in &mut out {
            if let Some(t) = jump_target(insn) {
                set_jump_target(insn, map[t as usize]);
            }
        }
        *code = out;
    }
    changed
}

/// The chain-ending index steps that can carry an [`AccessTail`]:
/// returns the indexed array and the current tail.
fn step_tail(insn: &Insn) -> Option<(u32, AccessTail)> {
    match insn {
        Insn::IndexDimSlot { id, tail, .. }
        | Insn::IndexDimBinSlotInt { id, tail, .. }
        | Insn::Index2Slot { id, tail, .. }
        | Insn::Index3BinSlotInt { id, tail, .. } => Some((*id, *tail)),
        _ => None,
    }
}

/// Copies a chain-ending step, replacing its tail.
fn with_tail(insn: &Insn, tail: AccessTail) -> Insn {
    let mut out = *insn;
    match &mut out {
        Insn::IndexDimSlot { tail: t, .. }
        | Insn::IndexDimBinSlotInt { tail: t, .. }
        | Insn::Index2Slot { tail: t, .. }
        | Insn::Index3BinSlotInt { tail: t, .. } => *t = tail,
        _ => unreachable!("not a chain-ending step"),
    }
    out
}

/// Copies a chain-ending step, adding `n` to its trailing fuel field.
fn add_step_fuel(insn: &Insn, n: u32) -> Insn {
    let mut out = *insn;
    match &mut out {
        Insn::IndexDimSlot { fuel, .. } | Insn::IndexDimBinSlotInt { fuel, .. } => *fuel += n,
        Insn::Index2Slot { f1, .. } | Insn::Index3BinSlotInt { f1, .. } => *f1 += n,
        _ => unreachable!("not a chain-ending step"),
    }
    out
}

/// Whether a fuel tick may move from after a fused access tail to
/// before it (the step's trailing fuel runs before the tail). Same
/// criterion as [`commutes_with_fuel`]: the access itself cannot
/// error, only a `Div`/`Rem` in a `LoadBin` can.
fn fuel_commutes_with_tail(tail: AccessTail) -> bool {
    match tail {
        AccessTail::None | AccessTail::Load | AccessTail::StorePop => true,
        AccessTail::LoadBin(op, _) => !matches!(op, BinOp::Div | BinOp::Rem),
    }
}

fn fuse_pair(a: &Insn, b: &Insn) -> Option<Insn> {
    // Chain-ending fusions: the access the chain's flat index feeds
    // joins the last index step as its tail, and a fuel trapped after
    // the step is absorbed into the step's trailing fuel field (when a
    // tail is already fused, the tick moves before the access — legal
    // exactly when fuel commutes with that access).
    if let Some((id, tail)) = step_tail(a) {
        if let Insn::Fuel(n) = *b {
            if fuel_commutes_with_tail(tail) {
                return Some(add_step_fuel(a, n));
            }
            return None;
        }
        if matches!(tail, AccessTail::None) {
            let fused_tail = match *b {
                Insn::LoadArray(id2) if id2 == id => Some(AccessTail::Load),
                Insn::LoadArrayBin(id2, op, c) if id2 == id => Some(AccessTail::LoadBin(op, c)),
                Insn::StoreArrayPop(id2) if id2 == id => Some(AccessTail::StorePop),
                _ => None,
            };
            if let Some(fused_tail) = fused_tail {
                return Some(with_tail(a, fused_tail));
            }
        }
    }
    Some(match (*a, *b) {
        (Insn::Fuel(m), Insn::Fuel(n)) => Insn::Fuel(m + n),
        (Insn::PushInt(v), Insn::Bin(op, c)) => Insn::BinInt(op, c, v),
        (Insn::PushFloat(v), Insn::Bin(op, c)) => Insn::BinFloat(op, c, v),
        (Insn::LoadSlot(s), Insn::Bin(op, c)) => Insn::BinSlotR(op, c, s),
        (Insn::LoadSlot(s), Insn::BinInt(op, c, v)) => Insn::BinSlotInt(op, c, s, v),
        (Insn::Bin(op, c), Insn::JumpIfFalse(t)) => Insn::BinBr(op, c, t),
        (Insn::BinInt(op, c, v), Insn::JumpIfFalse(t)) => Insn::BinIntBr(op, c, v, t),
        (Insn::BinSlotInt(op, c, s, v), Insn::JumpIfFalse(t)) => Insn::BinSlotIntBr {
            fuel: 0,
            op,
            cost: c,
            s,
            rhs: v,
            t,
            pfuel: 0,
            pcost: 0.0,
        },
        // A fuel the back edge lands on (so it cannot commute away) is
        // absorbed as the condition's prefix: the fused insn still ticks
        // before comparing.
        (
            Insn::Fuel(n),
            Insn::BinSlotIntBr {
                fuel,
                op,
                cost,
                s,
                rhs,
                t,
                pfuel,
                pcost,
            },
        ) => Insn::BinSlotIntBr {
            fuel: fuel + n,
            op,
            cost,
            s,
            rhs,
            t,
            pfuel,
            pcost,
        },
        // The loop body's prologue — the fuel and charge the branch
        // falls through to — runs exactly when the branch is not taken,
        // so it folds into the branch's fall-through suffix. (An
        // already-absorbed charge keeps its place: fuel commutes with a
        // charge, which cannot error.)
        (
            Insn::BinSlotIntBr {
                fuel,
                op,
                cost,
                s,
                rhs,
                t,
                pfuel,
                pcost,
            },
            Insn::Fuel(n),
        ) => Insn::BinSlotIntBr {
            fuel,
            op,
            cost,
            s,
            rhs,
            t,
            pfuel: pfuel + n,
            pcost,
        },
        (
            Insn::BinSlotIntBr {
                fuel,
                op,
                cost,
                s,
                rhs,
                t,
                pfuel,
                pcost: 0.0,
            },
            Insn::Charge(c),
        ) => Insn::BinSlotIntBr {
            fuel,
            op,
            cost,
            s,
            rhs,
            t,
            pfuel,
            pcost: c,
        },
        (Insn::LoadSlot(s), Insn::CompoundBin(op, c)) => Insn::CompoundSlot(op, c, s),
        (Insn::PushInt(v), Insn::CompoundSlot(op, c, s)) => Insn::CompoundSlotInt(op, c, s, v),
        (Insn::CompoundSlot(op, c, s), Insn::StoreSlot(d)) => Insn::CompoundSlotStore(op, c, s, d),
        (Insn::CompoundSlotInt(op, c, s, v), Insn::StoreSlot(d)) => {
            Insn::CompoundSlotIntStore(op, c, s, v, d)
        }
        // A loop's step and its back edge: the jump is unconditional,
        // so gluing it onto the store changes nothing observable.
        (Insn::CompoundSlotIntStore(op, c, s, v, d), Insn::Jump(t)) => {
            Insn::CompoundSlotIntStoreJump(op, c, s, v, d, t)
        }
        (
            Insn::LoadSlot(s),
            Insn::IndexDim {
                id,
                dim,
                first,
                cost,
            },
        ) => Insn::IndexDimSlot {
            id,
            dim,
            first,
            cost,
            s,
            fuel: 0,
            tail: AccessTail::None,
        },
        (
            Insn::PushInt(v),
            Insn::IndexDim {
                id,
                dim,
                first,
                cost,
            },
        ) => Insn::IndexDimInt {
            id,
            dim,
            first,
            cost,
            v,
            fuel: 0,
        },
        // A fuel trapped behind the index op (it cannot commute across
        // something that errors) is absorbed as its suffix: the fused
        // insn indexes first, then ticks — the original order. (The
        // chain-ending steps get the same treatment in the generic
        // block above.)
        (
            Insn::IndexDimInt {
                id,
                dim,
                first,
                cost,
                v,
                fuel,
            },
            Insn::Fuel(n),
        ) => Insn::IndexDimInt {
            id,
            dim,
            first,
            cost,
            v,
            fuel: fuel + n,
        },
        (Insn::LoadArray(id), Insn::Bin(op, c)) => Insn::LoadArrayBin(id, op, c),
        (Insn::StoreArray(id), Insn::Pop) => Insn::StoreArrayPop(id),
        (
            Insn::BinSlotInt(op, bcost, s, v),
            Insn::IndexDim {
                id,
                dim,
                first,
                cost,
            },
        ) => Insn::IndexDimBinSlotInt {
            id,
            dim,
            first,
            cost,
            op,
            bcost,
            s,
            v,
            fuel: 0,
            tail: AccessTail::None,
        },
        (
            Insn::BinInt(op, bcost, v),
            Insn::IndexDim {
                id,
                dim,
                first,
                cost,
            },
        ) => Insn::IndexDimBinInt {
            id,
            dim,
            first,
            cost,
            op,
            bcost,
            v,
            fuel: 0,
        },
        (
            Insn::IndexDimBinInt {
                id,
                dim,
                first,
                cost,
                op,
                bcost,
                v,
                fuel,
            },
            Insn::Fuel(n),
        ) => Insn::IndexDimBinInt {
            id,
            dim,
            first,
            cost,
            op,
            bcost,
            v,
            fuel: fuel + n,
        },
        (Insn::Charge(a), Insn::Charge(b)) => Insn::Charge2(a, b),
        // Two slot subscripts of one chain fuse when they address
        // adjacent dimensions of the same array (a chain's interior
        // subscript always has `first: false`, so a pair never spans
        // two chains — chains end in an array access instruction). The
        // first step must have no access tail (it is mid-chain); the
        // second's tail — possibly already fused — carries over.
        (
            Insn::IndexDimSlot {
                id,
                dim,
                first,
                cost: c0,
                s: s0,
                fuel: f0,
                tail: AccessTail::None,
            },
            Insn::IndexDimSlot {
                id: id2,
                dim: dim2,
                first: false,
                cost: c1,
                s: s1,
                fuel: f1,
                tail,
            },
        ) if id2 == id && dim2 == dim + 1 => Insn::Index2Slot {
            id,
            dim,
            first,
            c0,
            s0,
            f0,
            c1,
            s1,
            f1,
            tail,
        },
        // A `slot ⊕ const` first subscript followed by a slot pair —
        // the whole `A[t % 2][i][j]` chain of a time-toggled stencil.
        // Same chain-adjacency argument as above.
        (
            Insn::IndexDimBinSlotInt {
                id,
                dim,
                first,
                cost,
                op,
                bcost,
                s,
                v,
                fuel,
                tail: AccessTail::None,
            },
            Insn::Index2Slot {
                id: id2,
                dim: dim2,
                first: false,
                c0,
                s0,
                f0,
                c1,
                s1,
                f1,
                tail,
            },
        ) if id2 == id && dim2 == dim + 1 => Insn::Index3BinSlotInt {
            id,
            dim,
            first,
            op,
            bcost,
            s,
            v,
            cost,
            fuel,
            c0,
            s0,
            f0,
            c1,
            s1,
            f1,
            tail,
        },
        _ => return None,
    })
}
