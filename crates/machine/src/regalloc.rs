//! One-pass lowering from the mini-C AST to register bytecode
//! ([`crate::bytecode2`]).
//!
//! Mirrors [`crate::compile`] construct by construct — same fuel ticks,
//! same charge order, same error points — but targets a virtual
//! register frame instead of an operand stack. Scalars resolve to the
//! low registers (slots), expression temporaries are allocated above a
//! pre-scanned slot bound and reset per statement, and operands are
//! pre-decoded ([`Opnd`]) so the executor never touches a stack.
//!
//! Fusion happens here, at lowering time (the stack VM fuses in a
//! separate peephole pass): whole subscript chains with
//! side-effect-free subscripts become one [`RInsn::Nav`]; a loop's
//! `i < N` condition becomes [`RInsn::CmpBr`] carrying the merged fuel
//! and the fall-through iteration charge; a loop's `i += 1` step plus
//! back edge becomes [`RInsn::StepJump`]. Cycle charges inside
//! lexically vectorized regions are pre-divided by the vector discount
//! (see [`Compiler2::eff`]) — the same `cost / w` division the other
//! engines perform per charge, done once.
//!
//! Aliasing discipline: an operand may be a *slot* register, which a
//! later-evaluated subexpression could mutate through an assignment.
//! Whenever a slot operand is held across lowering of an expression
//! that contains any assignment, it is snapshotted into a temporary
//! first ([`Compiler2::shield`]), preserving the tree's left-to-right
//! evaluation of the original value. Temporaries are never mutated by
//! program effects, so they need no shielding.

use std::collections::{HashMap, HashSet};

use locus_srcir::ast::{BinOp, Expr, Item, Pragma, Program, Stmt, StmtKind, Type, UnOp};

use crate::bytecode::{
    advance_base, array_init_data, ArrayCell, ArrayId, Builtin, CastKind, Chain, SlotId, ThrowKind,
};
use crate::bytecode2::{
    AllocDesc, DimStep, Exe2, HotLoopDesc, NavDesc, Opnd, RInsn, RTail, RegId, SubIdx, MAX_NAV_DIMS,
};
use crate::interp::{apply_bin, collect_auto_vectorizable, RuntimeError, Value};
use crate::MachineConfig;

/// Lowers `program` for running `entry`, mirroring the setup work and
/// setup-time errors of `Interp::new` + `Interp::run` (and of
/// [`crate::compile`]'s `compile`, which this pass shadows insn for
/// insn in fuel/charge/error order).
pub(crate) fn compile2(
    program: &Program,
    config: &MachineConfig,
    entry: &str,
) -> Result<Exe2, RuntimeError> {
    let mut c = Compiler2::new(config);
    for item in &program.items {
        if let Item::Global(stmt) = item {
            c.compile_global(stmt)?;
        }
    }
    let f = program
        .function(entry)
        .ok_or_else(|| RuntimeError::UndefinedFunction(entry.to_string()))?;
    if !f.params.is_empty() {
        return Err(RuntimeError::Unsupported(format!(
            "entry `{entry}` must take no parameters"
        )));
    }
    if config.auto_vectorize {
        c.auto_vec = collect_auto_vectorizable(program);
    }
    let mut body_decls = 0;
    for stmt in &f.body {
        collect_local_array_decls(stmt, &mut c.local_array_decls);
        body_decls += count_scalar_decls(stmt);
    }
    // Temporaries live above every slot the body could ever allocate:
    // each scalar declaration binds at most a value slot plus a
    // conditional-flag slot. Overcounting only wastes frame entries.
    c.temp_base = c.n_slots + 2 * body_decls;
    c.next_temp = c.temp_base;
    c.high_water = c.temp_base;
    c.push_scope();
    for stmt in &f.body {
        c.compile_stmt(stmt, false);
    }
    c.pop_scope();
    c.emit(RInsn::Halt);
    Ok(c.finish())
}

/// Counts scalar (dimension-less) declarations inside `stmt`, nested
/// statements included — the pre-scan bounding the slot range.
fn count_scalar_decls(stmt: &Stmt) -> u32 {
    match &stmt.kind {
        StmtKind::Decl { dims, .. } => u32::from(dims.is_empty()),
        StmtKind::Block(stmts) => stmts.iter().map(count_scalar_decls).sum(),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            count_scalar_decls(then_branch)
                + else_branch.as_ref().map_or(0, |e| count_scalar_decls(e))
        }
        StmtKind::For(f) => {
            f.init.as_ref().map_or(0, |i| count_scalar_decls(i)) + count_scalar_decls(&f.body)
        }
        StmtKind::While { body, .. } => count_scalar_decls(body),
        StmtKind::Expr(_) | StmtKind::Return(_) | StmtKind::Empty => 0,
    }
}

/// Collects every name declared with array dimensions inside `stmt`.
fn collect_local_array_decls(stmt: &Stmt, out: &mut HashSet<String>) {
    match &stmt.kind {
        StmtKind::Decl { name, dims, .. } => {
            if !dims.is_empty() {
                out.insert(name.clone());
            }
        }
        StmtKind::Block(stmts) => {
            for s in stmts {
                collect_local_array_decls(s, out);
            }
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_local_array_decls(then_branch, out);
            if let Some(e) = else_branch {
                collect_local_array_decls(e, out);
            }
        }
        StmtKind::For(f) => {
            if let Some(init) = &f.init {
                collect_local_array_decls(init, out);
            }
            collect_local_array_decls(&f.body, out);
        }
        StmtKind::While { body, .. } => collect_local_array_decls(body, out),
        StmtKind::Expr(_) | StmtKind::Return(_) | StmtKind::Empty => {}
    }
}

/// Whether `e` contains any assignment — the only expression form that
/// can mutate a scalar slot. Operands held across such expressions must
/// be shielded into temporaries.
fn expr_writes_scalars(e: &Expr) -> bool {
    match e {
        Expr::Assign { .. } => true,
        Expr::Unary { operand, .. } => expr_writes_scalars(operand),
        Expr::Binary { lhs, rhs, .. } => expr_writes_scalars(lhs) || expr_writes_scalars(rhs),
        Expr::Index { base, index } => expr_writes_scalars(base) || expr_writes_scalars(index),
        Expr::Call { args, .. } => args.iter().any(expr_writes_scalars),
        Expr::Cast { expr, .. } => expr_writes_scalars(expr),
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::StrLit(_) | Expr::Ident(_) => false,
    }
}

/// One statically resolved scalar binding.
#[derive(Debug, Clone, Copy)]
struct Binding {
    slot: SlotId,
    /// Set for conditional bare declarations (`if (c) int x;`).
    flag: Option<SlotId>,
}

/// Result of resolving a scalar name at a program point.
enum Resolution {
    Direct(SlotId),
    Chained(u32),
    Unbound,
}

/// The access a subscript chain feeds, before costs are discounted.
enum TailReq {
    Load,
    LoadBin { op: BinOp, cost_raw: f64, lhs: Opnd },
    Store { val: Opnd },
    Rmw { op: BinOp, cost_raw: f64, rhs: Opnd },
}

/// Cost constants snapshot (raw, undiscounted).
struct Costs {
    add: f64,
    mul: f64,
    div: f64,
    loop_iter: f64,
    loop_entry: f64,
}

struct Compiler2<'p> {
    config: &'p MachineConfig,
    k: Costs,
    /// Vector-discount divisor (pure function of config).
    w: f64,
    /// Lexical vectorized-loop nesting depth at the emission point.
    vec_depth: usize,
    code: Vec<RInsn>,
    /// Fuel ticks not yet materialized (see [`crate::compile`]).
    fuel_pending: u32,
    scopes: Vec<HashMap<String, Vec<Binding>>>,
    n_slots: u32,
    /// First register usable as a temporary (>= every slot).
    temp_base: u32,
    /// Next free temporary; reset to `temp_base` at each statement.
    next_temp: u32,
    /// High-water mark of the register frame.
    high_water: u32,
    global_values: Vec<Value>,
    arrays: Vec<Option<ArrayCell>>,
    array_ids: HashMap<String, ArrayId>,
    array_names: Vec<String>,
    messages: Vec<String>,
    chains: Vec<Chain>,
    navs: Vec<NavDesc>,
    allocs: Vec<AllocDesc>,
    auto_vec: HashSet<usize>,
    local_array_decls: HashSet<String>,
    next_base: u64,
}

impl<'p> Compiler2<'p> {
    fn new(config: &'p MachineConfig) -> Compiler2<'p> {
        Compiler2 {
            config,
            k: Costs {
                add: config.cost.add,
                mul: config.cost.mul,
                div: config.cost.div,
                loop_iter: config.cost.loop_iter,
                loop_entry: config.cost.loop_entry,
            },
            w: config
                .cost
                .vector_discount
                .min(config.vector_width as f64)
                .max(1.0),
            vec_depth: 0,
            code: Vec::new(),
            fuel_pending: 0,
            scopes: vec![HashMap::new()],
            n_slots: 0,
            temp_base: 0,
            next_temp: 0,
            high_water: 0,
            global_values: Vec::new(),
            arrays: Vec::new(),
            array_ids: HashMap::new(),
            array_names: Vec::new(),
            messages: Vec::new(),
            chains: Vec::new(),
            navs: Vec::new(),
            allocs: Vec::new(),
            auto_vec: HashSet::new(),
            local_array_decls: HashSet::new(),
            next_base: 4096,
        }
    }

    fn finish(mut self) -> Exe2 {
        debug_assert_eq!(self.fuel_pending, 0, "Halt flushes pending fuel");
        let hotloops = fuse_hot_loops(&mut self.code);
        Exe2 {
            code: self.code,
            hotloops,
            n_regs: self.high_water as usize,
            global_values: self.global_values,
            arrays: self.arrays,
            array_names: self.array_names,
            messages: self.messages,
            chains: self.chains,
            navs: self.navs,
            allocs: self.allocs,
            next_base: self.next_base,
        }
    }

    /// The effective (possibly vector-discounted) form of a raw charge.
    /// The discount region is lexical, so this is a compile-time fold of
    /// the `vector_depth > 0` branch the other engines take per charge —
    /// the same single f64 division, so the accumulated cycles match
    /// bit for bit.
    fn eff(&self, cost: f64) -> f64 {
        if self.vec_depth > 0 {
            cost / self.w
        } else {
            cost
        }
    }

    // ---- emission -------------------------------------------------------

    /// Whether pending fuel must materialize before `insn` — same rule
    /// as the stack compiler: a tick may only drift across instructions
    /// that cannot raise a different error first and cannot be jumped
    /// over/to. `CmpBr`/`StepJump`/`Nav` never appear here: they fold
    /// the pending ticks into their own leading `fuel` field.
    fn needs_fuel_flush(insn: &RInsn) -> bool {
        match insn {
            RInsn::Jump(_)
            | RInsn::BrFalsy { .. }
            | RInsn::AndSC { .. }
            | RInsn::OrSC { .. }
            | RInsn::Throw(..)
            | RInsn::Halt
            | RInsn::ArrayCheck { .. }
            | RInsn::IdxDim { .. }
            | RInsn::DimCheck { .. }
            | RInsn::AllocArray(_)
            | RInsn::LoadChain { .. }
            | RInsn::StoreChain { .. } => true,
            RInsn::Bin { op, .. }
            | RInsn::CompoundSet { op, .. }
            | RInsn::CompoundSetVal { op, .. }
            | RInsn::CompoundTmp { op, .. }
            | RInsn::RmwA { op, .. }
            | RInsn::LoadABin { op, .. } => matches!(op, BinOp::Div | BinOp::Rem),
            _ => false,
        }
    }

    fn emit(&mut self, insn: RInsn) {
        if Self::needs_fuel_flush(&insn) {
            self.flush_fuel();
        }
        self.code.push(insn);
    }

    fn fuel(&mut self, n: u32) {
        self.fuel_pending += n;
    }

    fn flush_fuel(&mut self) {
        if self.fuel_pending > 0 {
            self.code.push(RInsn::Fuel(self.fuel_pending));
            self.fuel_pending = 0;
        }
    }

    /// Drains the pending fuel for folding into a fused instruction's
    /// leading `fuel` field (equivalent to flushing right before it).
    fn take_fuel(&mut self) -> u32 {
        std::mem::take(&mut self.fuel_pending)
    }

    /// Current position as a jump target (flushes fuel).
    fn here(&mut self) -> u32 {
        self.flush_fuel();
        self.code.len() as u32
    }

    fn placeholder(&mut self, insn: RInsn) -> usize {
        self.emit(insn);
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            RInsn::Jump(t)
            | RInsn::BrFalsy { t, .. }
            | RInsn::CmpBr { t, .. }
            | RInsn::AndSC { t, .. }
            | RInsn::OrSC { t, .. } => *t = target,
            other => unreachable!("patching a non-jump instruction {other:?}"),
        }
    }

    fn intern_msg(&mut self, msg: String) -> u32 {
        if let Some(i) = self.messages.iter().position(|m| *m == msg) {
            return i as u32;
        }
        self.messages.push(msg);
        (self.messages.len() - 1) as u32
    }

    fn throw(&mut self, kind: ThrowKind, msg: String) {
        let m = self.intern_msg(msg);
        self.emit(RInsn::Throw(kind, m));
    }

    // ---- registers ------------------------------------------------------

    fn temp(&mut self) -> RegId {
        let r = self.next_temp;
        self.next_temp += 1;
        self.high_water = self.high_water.max(self.next_temp);
        r
    }

    /// Snapshots a slot operand into a temporary when `hazard` could
    /// mutate the slot before the operand is consumed. Temporaries and
    /// immediates are immune.
    fn shield(&mut self, opnd: Opnd, hazard: &Expr) -> Opnd {
        match opnd {
            Opnd::Reg(r) if r < self.temp_base && expr_writes_scalars(hazard) => {
                let t = self.temp();
                self.emit(RInsn::Mov { dst: t, src: opnd });
                Opnd::Reg(t)
            }
            _ => opnd,
        }
    }

    // ---- scopes and slots ----------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Pops a scope; conditional bindings that die with it get their
    /// flags cleared so a re-execution of the region starts unbound.
    fn pop_scope(&mut self) {
        let scope = self.scopes.pop().expect("scope stack is never empty");
        let mut flags: Vec<SlotId> = scope.values().flatten().filter_map(|b| b.flag).collect();
        flags.sort_unstable();
        for flag in flags {
            self.emit(RInsn::SetSlot {
                slot: flag,
                src: Opnd::ImmI(0),
            });
        }
    }

    fn new_slot(&mut self) -> SlotId {
        let s = self.n_slots;
        self.n_slots += 1;
        s
    }

    /// Binds a scalar declaration (see [`crate::compile`]).
    fn bind_scalar(&mut self, name: &str, conditional: bool) -> (SlotId, Option<SlotId>) {
        if conditional {
            if let Some(vec) = self.scopes.last().expect("scope").get(name) {
                if let Some(last) = vec.last() {
                    if last.flag.is_none() {
                        return (last.slot, None);
                    }
                }
            }
            let slot = self.new_slot();
            let flag = self.new_slot();
            self.scopes
                .last_mut()
                .expect("scope")
                .entry(name.to_string())
                .or_default()
                .push(Binding {
                    slot,
                    flag: Some(flag),
                });
            (slot, Some(flag))
        } else {
            let slot = self.new_slot();
            let vec = self
                .scopes
                .last_mut()
                .expect("scope")
                .entry(name.to_string())
                .or_default();
            vec.clear();
            vec.push(Binding { slot, flag: None });
            (slot, None)
        }
    }

    fn resolve(&mut self, name: &str) -> Resolution {
        let mut guards: Vec<(SlotId, SlotId)> = Vec::new();
        let mut fallback = None;
        'walk: for scope in self.scopes.iter().rev() {
            if let Some(vec) = scope.get(name) {
                for b in vec.iter().rev() {
                    match b.flag {
                        None => {
                            fallback = Some(b.slot);
                            break 'walk;
                        }
                        Some(f) => guards.push((f, b.slot)),
                    }
                }
            }
        }
        match (guards.is_empty(), fallback) {
            (true, Some(slot)) => Resolution::Direct(slot),
            (true, None) => Resolution::Unbound,
            (false, _) => {
                let msg = self.intern_msg(name.to_string());
                self.chains.push(Chain {
                    guards,
                    fallback,
                    msg,
                });
                Resolution::Chained((self.chains.len() - 1) as u32)
            }
        }
    }

    fn array_id(&mut self, name: &str) -> ArrayId {
        if let Some(&id) = self.array_ids.get(name) {
            return id;
        }
        let id = self.array_names.len() as ArrayId;
        self.array_ids.insert(name.to_string(), id);
        self.array_names.push(name.to_string());
        self.arrays.push(None);
        id
    }

    // ---- global setup (compile-time evaluation) -------------------------

    fn compile_global(&mut self, stmt: &Stmt) -> Result<(), RuntimeError> {
        let StmtKind::Decl {
            ty,
            name,
            dims,
            init,
        } = &stmt.kind
        else {
            return Err(RuntimeError::Unsupported(
                "non-declaration at global scope".into(),
            ));
        };
        if dims.is_empty() {
            let value = match init {
                Some(e) => self.eval_const(e)?,
                None => match ty {
                    Type::Double | Type::Float => Value::Double(0.0),
                    _ => Value::Int(0),
                },
            };
            let (slot, _) = self.bind_scalar(name, false);
            debug_assert_eq!(slot as usize, self.global_values.len());
            self.global_values.push(value);
        } else {
            let mut dim_sizes = Vec::new();
            for d in dims {
                let v = self.eval_const(d)?.as_i64();
                if v <= 0 {
                    return Err(RuntimeError::BadArrayDim(name.clone()));
                }
                dim_sizes.push(v as usize);
            }
            let len = crate::bytecode::checked_alloc_len(name, &dim_sizes)?;
            let id = self.array_id(name);
            let is_float = ty.is_float();
            let base = self.next_base;
            self.next_base = advance_base(self.next_base, len);
            self.arrays[id as usize] = Some(ArrayCell {
                is_float,
                data: array_init_data(len, is_float),
                base,
                dims: dim_sizes,
                local: false,
            });
        }
        Ok(())
    }

    fn eval_const(&self, e: &Expr) -> Result<Value, RuntimeError> {
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::FloatLit(v) => Ok(Value::Double(*v)),
            Expr::Unary {
                op: UnOp::Neg,
                operand,
            } => Ok(match self.eval_const(operand)? {
                Value::Int(v) => Value::Int(-v),
                Value::Double(v) => Value::Double(-v),
            }),
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval_const(lhs)?;
                let r = self.eval_const(rhs)?;
                apply_bin(*op, l, r)
            }
            Expr::Ident(name) => self.scopes[0]
                .get(name)
                .and_then(|vec| vec.last())
                .map(|b| self.global_values[b.slot as usize])
                .ok_or_else(|| RuntimeError::UndefinedVariable(name.clone())),
            _ => Err(RuntimeError::Unsupported(
                "non-constant global initializer".into(),
            )),
        }
    }

    // ---- statements -----------------------------------------------------

    fn compile_stmt(&mut self, stmt: &Stmt, in_branch: bool) {
        // Expression temporaries never outlive their statement; nested
        // statements only begin after every enclosing operand has been
        // consumed, so the reset is safe and keeps the frame small.
        self.next_temp = self.temp_base;
        self.fuel(1);
        match &stmt.kind {
            StmtKind::Empty => {}
            StmtKind::Expr(e) => self.lower_expr_drop(e),
            StmtKind::Decl {
                ty,
                name,
                dims,
                init,
            } => self.compile_decl(ty, name, dims, init.as_ref(), in_branch),
            StmtKind::Block(stmts) => {
                self.push_scope();
                for s in stmts {
                    self.compile_stmt(s, false);
                }
                self.pop_scope();
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let post = self.eff(self.k.add);
                let jf = self.lower_cond_branch(cond, post, 0.0);
                self.compile_stmt(then_branch, true);
                match else_branch {
                    Some(e) => {
                        let j = self.placeholder(RInsn::Jump(u32::MAX));
                        let t = self.here();
                        self.patch(jf, t);
                        self.compile_stmt(e, true);
                        let end = self.here();
                        self.patch(j, end);
                    }
                    None => {
                        let t = self.here();
                        self.patch(jf, t);
                    }
                }
            }
            StmtKind::While { cond, body } => {
                let entry = self.eff(self.k.loop_entry);
                self.emit(RInsn::Charge(entry));
                let top = self.here();
                self.fuel(1);
                let pcost = self.eff(self.k.loop_iter);
                let jf = self.lower_cond_branch(cond, 0.0, pcost);
                self.compile_stmt(body, true);
                self.emit(RInsn::Jump(top));
                let end = self.here();
                self.patch(jf, end);
            }
            StmtKind::For(_) => self.compile_for(stmt),
            StmtKind::Return(value) => {
                if let Some(e) = value {
                    self.lower_expr(e);
                }
                self.emit(RInsn::Halt);
            }
        }
    }

    /// Lowers a branch-on-false over `cond`. `post` is charged after
    /// the condition on both paths (an `if`'s trailing add); `pcost` is
    /// charged only on fall-through (a loop's per-iteration charge).
    /// Returns the placeholder index to patch with the false target.
    fn lower_cond_branch(&mut self, cond: &Expr, post: f64, pcost: f64) -> usize {
        // Fused path: a side-effect-free comparison of two simple
        // operands collapses into one CmpBr carrying the merged fuel.
        if let Expr::Binary { op, lhs, rhs } = cond {
            if !matches!(op, BinOp::And | BinOp::Or) {
                if let (Some((a, fa)), Some((b, fb))) =
                    (self.simple_opnd(lhs), self.simple_opnd(rhs))
                {
                    self.fuel(1 + fa + fb);
                    let fuel = self.take_fuel();
                    let cost = self.eff(self.bin_cost(*op));
                    return self.placeholder(RInsn::CmpBr {
                        fuel,
                        op: *op,
                        cost,
                        a,
                        b,
                        post,
                        t: u32::MAX,
                        pcost,
                    });
                }
            }
        }
        let v = self.lower_expr(cond);
        if post != 0.0 {
            self.emit(RInsn::Charge(post));
        }
        let p = self.placeholder(RInsn::BrFalsy {
            src: v,
            t: u32::MAX,
        });
        if pcost != 0.0 {
            self.emit(RInsn::Charge(pcost));
        }
        p
    }

    /// A side-effect-free operand evaluable inside a fused dispatch:
    /// a literal or a directly resolved scalar. Returns the operand and
    /// the fuel ticks its tree evaluation would cost.
    fn simple_opnd(&mut self, e: &Expr) -> Option<(Opnd, u32)> {
        match e {
            Expr::IntLit(v) => Some((Opnd::ImmI(*v), 1)),
            Expr::FloatLit(v) => Some((Opnd::ImmF(*v), 1)),
            Expr::Ident(name) => match self.resolve(name) {
                Resolution::Direct(slot) => Some((Opnd::Reg(slot), 1)),
                _ => None,
            },
            _ => None,
        }
    }

    fn compile_for(&mut self, stmt: &Stmt) {
        let StmtKind::For(f) = &stmt.kind else {
            unreachable!("compile_for called on a for loop")
        };
        let omp = stmt.pragmas.iter().find_map(|p| match p {
            Pragma::OmpParallelFor { schedule, .. } => Some(*schedule),
            _ => None,
        });
        let vectorized = stmt
            .pragmas
            .iter()
            .any(|p| matches!(p, Pragma::Ivdep | Pragma::VectorAlways))
            || self.auto_vec.contains(&(stmt as *const Stmt as usize));
        let par = omp.is_some() && self.config.cores > 1;

        self.push_scope();
        // Entry charge and init run at the *outer* vector depth (the
        // stack compiler emits them before VecEnter).
        let entry = self.eff(self.k.loop_entry);
        self.emit(RInsn::Charge(entry));
        if let Some(init) = &f.init {
            self.compile_stmt(init, false);
        }
        if vectorized {
            self.vec_depth += 1;
        }
        if par {
            self.emit(RInsn::ParEnter(omp.flatten()));
        }
        let top = self.here();
        self.fuel(1);
        // A parallel loop's iteration charge must land *after*
        // IterStart's timestamp, so it cannot ride the branch.
        let iter = self.eff(self.k.loop_iter);
        let jf = f
            .cond
            .as_ref()
            .map(|cond| self.lower_cond_branch(cond, 0.0, if par { 0.0 } else { iter }));
        if par {
            self.emit(RInsn::IterStart);
        }
        if par || jf.is_none() {
            self.emit(RInsn::Charge(iter));
        }
        self.compile_stmt(&f.body, true);
        match &f.step {
            Some(step) if !par => {
                if !self.try_fuse_step(step, top) {
                    self.lower_expr_drop(step);
                    self.emit(RInsn::Jump(top));
                }
            }
            Some(step) => {
                self.lower_expr_drop(step);
                self.emit(RInsn::IterEnd);
                self.emit(RInsn::Jump(top));
            }
            None => {
                if par {
                    self.emit(RInsn::IterEnd);
                }
                self.emit(RInsn::Jump(top));
            }
        }
        if let Some(jf) = jf {
            let end = self.here();
            self.patch(jf, end);
        }
        if par {
            self.emit(RInsn::ParExit);
        }
        if vectorized {
            self.vec_depth -= 1;
        }
        self.pop_scope();
    }

    /// Fuses a loop step of the form `slot ⊕= simple` plus the back
    /// edge into one [`RInsn::StepJump`]. Returns false (emitting
    /// nothing) when the step doesn't match.
    fn try_fuse_step(&mut self, step: &Expr, top: u32) -> bool {
        let Expr::Assign { op, lhs, rhs } = step else {
            return false;
        };
        let Some(bin) = op.to_bin_op() else {
            return false;
        };
        let Expr::Ident(name) = lhs.as_ref() else {
            return false;
        };
        let Some((rhs_opnd, fr)) = self.simple_opnd(rhs) else {
            return false;
        };
        let Resolution::Direct(slot) = self.resolve(name) else {
            return false;
        };
        let cost_raw = match bin {
            BinOp::Mul => self.k.mul,
            BinOp::Div => self.k.div,
            _ => self.k.add,
        };
        // Ticks: the statement-position assign (1) + the rhs (fr) + the
        // compound combine (1), all pending-merged into the dispatch.
        self.fuel(1 + fr + 1);
        let fuel = self.take_fuel();
        let cost = self.eff(cost_raw);
        self.code.push(RInsn::StepJump {
            fuel,
            op: bin,
            cost,
            slot,
            rhs: rhs_opnd,
            t: top,
        });
        true
    }

    fn compile_decl(
        &mut self,
        ty: &Type,
        name: &str,
        dims: &[Expr],
        init: Option<&Expr>,
        in_branch: bool,
    ) {
        if dims.is_empty() {
            // The initializer is evaluated *before* the name binds.
            let flag = match init {
                Some(e) => {
                    let v = self.lower_expr(e);
                    let (slot, flag) = self.bind_scalar(name, in_branch);
                    self.emit(RInsn::DeclSlot {
                        slot,
                        kind: cast_kind(ty),
                        src: v,
                    });
                    flag
                }
                None => {
                    let (slot, flag) = self.bind_scalar(name, in_branch);
                    self.emit(RInsn::DeclDefault {
                        slot,
                        is_float: ty.is_float(),
                    });
                    flag
                }
            };
            if let Some(flag) = flag {
                self.emit(RInsn::SetSlot {
                    slot: flag,
                    src: Opnd::ImmI(1),
                });
            }
        } else {
            let id = self.array_id(name);
            let mut dim_opnds = Vec::with_capacity(dims.len());
            for (i, d) in dims.iter().enumerate() {
                let v = self.lower_expr(d);
                self.emit(RInsn::DimCheck { id, v });
                // The alloc re-reads every extent at the end; shield
                // ones a later dimension expression could mutate.
                let v = match dims[i + 1..].iter().any(expr_writes_scalars) {
                    true => {
                        let t = self.temp();
                        self.emit(RInsn::Mov { dst: t, src: v });
                        Opnd::Reg(t)
                    }
                    false => v,
                };
                dim_opnds.push(v);
            }
            let a = self.allocs.len() as u32;
            self.allocs.push(AllocDesc {
                id,
                dims: dim_opnds,
                is_float: ty.is_float(),
            });
            self.emit(RInsn::AllocArray(a));
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Lowers an expression whose value is discarded.
    fn lower_expr_drop(&mut self, e: &Expr) {
        if matches!(e, Expr::Assign { .. }) {
            self.fuel(1);
            self.lower_assign(e, false);
        } else {
            self.lower_expr(e);
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Opnd {
        self.fuel(1);
        match e {
            Expr::IntLit(v) => Opnd::ImmI(*v),
            Expr::FloatLit(v) => Opnd::ImmF(*v),
            Expr::StrLit(_) => Opnd::ImmI(0),
            Expr::Ident(name) => match self.resolve(name) {
                Resolution::Direct(slot) => Opnd::Reg(slot),
                Resolution::Chained(i) => {
                    let dst = self.temp();
                    self.emit(RInsn::LoadChain { chain: i, dst });
                    Opnd::Reg(dst)
                }
                Resolution::Unbound => {
                    self.throw(ThrowKind::UndefinedVariable, name.clone());
                    Opnd::ImmI(0)
                }
            },
            Expr::Index { .. } => self.lower_access(e, TailReq::Load),
            Expr::Unary { op, operand } => {
                let src = self.lower_expr(operand);
                match op {
                    UnOp::Neg => {
                        let dst = self.temp();
                        let cost = self.eff(self.k.add);
                        self.emit(RInsn::Neg { cost, dst, src });
                        Opnd::Reg(dst)
                    }
                    UnOp::Not => {
                        let dst = self.temp();
                        let cost = self.eff(self.k.add);
                        self.emit(RInsn::Not { cost, dst, src });
                        Opnd::Reg(dst)
                    }
                    UnOp::Deref | UnOp::Addr => {
                        self.throw(ThrowKind::Unsupported, "pointer operations".into());
                        Opnd::ImmI(0)
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            Expr::Assign { .. } => self.lower_assign(e, true),
            Expr::Call { callee, args } => self.lower_call(callee, args),
            Expr::Cast { ty, expr } => {
                let src = self.lower_expr(expr);
                let dst = self.temp();
                let cost = self.eff(self.k.add);
                self.emit(RInsn::Cast {
                    kind: cast_kind(ty),
                    cost,
                    dst,
                    src,
                });
                Opnd::Reg(dst)
            }
        }
    }

    fn lower_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Opnd {
        match op {
            BinOp::And => {
                let l = self.lower_expr(lhs);
                let c = self.eff(self.k.add);
                self.emit(RInsn::Charge(c));
                let dst = self.temp();
                let p = self.placeholder(RInsn::AndSC {
                    src: l,
                    dst,
                    t: u32::MAX,
                });
                let r = self.lower_expr(rhs);
                self.emit(RInsn::Truthy { dst, src: r });
                let end = self.here();
                self.patch(p, end);
                Opnd::Reg(dst)
            }
            BinOp::Or => {
                let l = self.lower_expr(lhs);
                let c = self.eff(self.k.add);
                self.emit(RInsn::Charge(c));
                let dst = self.temp();
                let p = self.placeholder(RInsn::OrSC {
                    src: l,
                    dst,
                    t: u32::MAX,
                });
                let r = self.lower_expr(rhs);
                self.emit(RInsn::Truthy { dst, src: r });
                let end = self.here();
                self.patch(p, end);
                Opnd::Reg(dst)
            }
            _ => {
                let l = self.lower_expr(lhs);
                let l = self.shield(l, rhs);
                // `lhs ⊕ A[...]` fuses the load into the chain's tail.
                if matches!(rhs, Expr::Index { .. }) {
                    self.fuel(1);
                    return self.lower_access(
                        rhs,
                        TailReq::LoadBin {
                            op,
                            cost_raw: self.bin_cost(op),
                            lhs: l,
                        },
                    );
                }
                let r = self.lower_expr(rhs);
                let dst = self.temp();
                let cost = self.eff(self.bin_cost(op));
                self.emit(RInsn::Bin {
                    op,
                    cost,
                    dst,
                    a: l,
                    b: r,
                });
                Opnd::Reg(dst)
            }
        }
    }

    /// Lowers an assignment. The entry fuel for the `Assign` node must
    /// already be accounted by the caller.
    fn lower_assign(&mut self, e: &Expr, need_value: bool) -> Opnd {
        let Expr::Assign { op, lhs, rhs } = e else {
            unreachable!("lower_assign called on an assignment")
        };
        let r = self.lower_expr(rhs);
        let Some(bin) = op.to_bin_op() else {
            // Plain assignment: the expression's value is the
            // *uncoerced* rhs; the store coerces to the target's type.
            return match lhs.as_ref() {
                Expr::Ident(name) => match self.resolve(name) {
                    Resolution::Direct(slot) => {
                        self.emit(RInsn::SetSlot { slot, src: r });
                        r
                    }
                    Resolution::Chained(i) => {
                        self.emit(RInsn::StoreChain { chain: i, src: r });
                        r
                    }
                    Resolution::Unbound => {
                        self.throw(ThrowKind::UndefinedVariable, name.clone());
                        Opnd::ImmI(0)
                    }
                },
                Expr::Index { .. } => {
                    let val = self.shield(r, lhs);
                    self.lower_access(lhs, TailReq::Store { val })
                }
                other => {
                    self.throw(
                        ThrowKind::Unsupported,
                        format!("assignment target {other:?}"),
                    );
                    Opnd::ImmI(0)
                }
            };
        };
        let cost_raw = match bin {
            BinOp::Mul => self.k.mul,
            BinOp::Div => self.k.div,
            _ => self.k.add,
        };
        match lhs.as_ref() {
            Expr::Index { .. } => {
                // Read-modify-write of ONE located address.
                self.fuel(1);
                let rhs_v = self.shield(r, lhs);
                self.lower_access(
                    lhs,
                    TailReq::Rmw {
                        op: bin,
                        cost_raw,
                        rhs: rhs_v,
                    },
                )
            }
            Expr::Ident(name) => {
                self.fuel(1);
                match self.resolve(name) {
                    Resolution::Direct(slot) => {
                        let cost = self.eff(cost_raw);
                        if need_value {
                            let dst = self.temp();
                            self.emit(RInsn::CompoundSetVal {
                                op: bin,
                                cost,
                                slot,
                                rhs: r,
                                dst,
                            });
                            Opnd::Reg(dst)
                        } else {
                            self.emit(RInsn::CompoundSet {
                                op: bin,
                                cost,
                                slot,
                                rhs: r,
                            });
                            Opnd::ImmI(0)
                        }
                    }
                    Resolution::Chained(i) => {
                        let old = self.temp();
                        self.emit(RInsn::LoadChain { chain: i, dst: old });
                        let dst = self.temp();
                        let cost = self.eff(cost_raw);
                        self.emit(RInsn::CompoundTmp {
                            op: bin,
                            cost,
                            dst,
                            old: Opnd::Reg(old),
                            rhs: r,
                        });
                        self.emit(RInsn::StoreChain {
                            chain: i,
                            src: Opnd::Reg(dst),
                        });
                        Opnd::Reg(dst)
                    }
                    Resolution::Unbound => {
                        self.throw(ThrowKind::UndefinedVariable, name.clone());
                        Opnd::ImmI(0)
                    }
                }
            }
            other => {
                // The tree fully evaluates the lhs (side effects and
                // all), combines, and only errors on the write-back.
                self.fuel(1);
                let r2 = self.shield(r, other);
                let old = self.lower_expr(other);
                let dst = self.temp();
                let cost = self.eff(cost_raw);
                self.emit(RInsn::CompoundTmp {
                    op: bin,
                    cost,
                    dst,
                    old,
                    rhs: r2,
                });
                self.throw(
                    ThrowKind::Unsupported,
                    format!("assignment target {other:?}"),
                );
                Opnd::Reg(dst)
            }
        }
    }

    /// Lowers an array access (`locate` + the requested access). The
    /// caller accounts the `Index` expression's own entry fuel where
    /// the tree would (loads yes, store targets no).
    ///
    /// Fast path: rank <= [`MAX_NAV_DIMS`] with all subscripts
    /// side-effect-free collapses into one [`RInsn::Nav`]. General
    /// path: per-dimension [`RInsn::IdxDim`] with each subscript
    /// lowered immediately before its bounds check, preserving the
    /// interleaving of subscript side effects/errors with the checks.
    fn lower_access(&mut self, e: &Expr, req: TailReq) -> Opnd {
        let mut indices = Vec::new();
        let mut cur = e;
        while let Expr::Index { base, index } = cur {
            indices.push(index.as_ref());
            cur = base;
        }
        indices.reverse();
        let Expr::Ident(name) = cur else {
            self.throw(ThrowKind::Unsupported, "indexing a non-identifier".into());
            return Opnd::ImmI(0);
        };
        let id = self.array_id(name);
        let statically_ok = !self.local_array_decls.contains(name)
            && self.arrays[id as usize]
                .as_ref()
                .is_some_and(|cell| cell.dims.len() == indices.len());
        if !statically_ok {
            self.emit(RInsn::ArrayCheck {
                id,
                subs: indices.len() as u32,
            });
        }

        // Probe for the fused path without emitting anything.
        let nav_subs: Option<Vec<(SubIdx, u32)>> = if indices.len() <= MAX_NAV_DIMS {
            indices.iter().map(|idx| self.nav_sub(idx)).collect()
        } else {
            None
        };
        if let Some(subs) = nav_subs {
            let mut steps = [DimStep {
                fuel: 0,
                idx: SubIdx::Imm(0),
                cost: 0.0,
            }; MAX_NAV_DIMS];
            for (i, (sub, ticks)) in subs.into_iter().enumerate() {
                self.fuel(ticks);
                steps[i] = DimStep {
                    fuel: self.take_fuel(),
                    idx: sub,
                    cost: self.eff(self.k.add),
                };
            }
            let tail = match req {
                TailReq::Load => RTail::Load { dst: self.temp() },
                TailReq::LoadBin { op, cost_raw, lhs } => RTail::LoadBin {
                    op,
                    cost: self.eff(cost_raw),
                    lhs,
                    dst: self.temp(),
                },
                TailReq::Store { val } => RTail::Store { val },
                TailReq::Rmw { op, cost_raw, rhs } => RTail::Rmw {
                    op,
                    cost: self.eff(cost_raw),
                    rhs,
                    dst: self.temp(),
                },
            };
            let n = self.navs.len() as u32;
            let live = &steps[..indices.len()];
            let total_fuel = live.iter().map(|s| s.fuel).sum();
            self.navs.push(NavDesc {
                id,
                n: indices.len() as u32,
                total_fuel,
                steps,
                tail,
            });
            // Pending fuel is already folded into steps[0]; push
            // directly so emit's flush cannot double-materialize it.
            self.code.push(RInsn::Nav(n));
            return match self.navs[n as usize].tail {
                RTail::Load { dst } | RTail::LoadBin { dst, .. } | RTail::Rmw { dst, .. } => {
                    Opnd::Reg(dst)
                }
                RTail::Store { val } => val,
            };
        }

        // General stepwise path.
        let acc = self.temp();
        for (i, idx) in indices.iter().enumerate() {
            let v = self.lower_expr(idx);
            let cost = self.eff(self.k.add);
            self.emit(RInsn::IdxDim {
                id,
                dim: i as u32,
                first: i == 0,
                cost,
                idx: v,
                acc,
            });
        }
        match req {
            TailReq::Load => {
                let dst = self.temp();
                self.emit(RInsn::LoadA { id, acc, dst });
                Opnd::Reg(dst)
            }
            TailReq::LoadBin { op, cost_raw, lhs } => {
                let dst = self.temp();
                let cost = self.eff(cost_raw);
                self.emit(RInsn::LoadABin {
                    op,
                    cost,
                    id,
                    acc,
                    lhs,
                    dst,
                });
                Opnd::Reg(dst)
            }
            TailReq::Store { val } => {
                self.emit(RInsn::StoreA { id, acc, val });
                val
            }
            TailReq::Rmw { op, cost_raw, rhs } => {
                let dst = self.temp();
                let cost = self.eff(cost_raw);
                self.emit(RInsn::RmwA {
                    op,
                    cost,
                    id,
                    acc,
                    rhs,
                    dst,
                });
                Opnd::Reg(dst)
            }
        }
    }

    /// A subscript evaluable inside a fused [`RInsn::Nav`] dispatch:
    /// side-effect-free and statically resolvable. Returns the
    /// [`SubIdx`] and its tree-evaluation fuel ticks. Emits nothing.
    fn nav_sub(&mut self, e: &Expr) -> Option<(SubIdx, u32)> {
        match e {
            Expr::IntLit(v) => Some((SubIdx::Imm(*v), 1)),
            Expr::Ident(name) => match self.resolve(name) {
                Resolution::Direct(slot) => Some((SubIdx::Reg(slot), 1)),
                _ => None,
            },
            Expr::Binary { op, lhs, rhs } if !matches!(op, BinOp::And | BinOp::Or) => {
                if let (Expr::Ident(name), Expr::IntLit(v)) = (lhs.as_ref(), rhs.as_ref()) {
                    let Resolution::Direct(s) = self.resolve(name) else {
                        return None;
                    };
                    // Binary entry + lhs + rhs ticks.
                    return Some((
                        SubIdx::RegOff {
                            s,
                            op: *op,
                            rhs: *v,
                            bcost: self.eff(self.bin_cost(*op)),
                        },
                        3,
                    ));
                }
                // Two-level shape `(s ⊕ x) ⊕ y` (`(t + 1) % 2`,
                // `nm * 6 + d`). The inner operator must be error-free:
                // the chain step ticks all five merged fuel ticks up
                // front, which is only exact when the first possible
                // error point (the outer op) comes after the tree has
                // ticked every one of them.
                let Expr::Binary {
                    op: op1,
                    lhs: l1,
                    rhs: r1,
                } = lhs.as_ref()
                else {
                    return None;
                };
                if matches!(op1, BinOp::And | BinOp::Or | BinOp::Div | BinOp::Rem) {
                    return None;
                }
                let Expr::Ident(name) = l1.as_ref() else {
                    return None;
                };
                let Resolution::Direct(s) = self.resolve(name) else {
                    return None;
                };
                let (r1, f1) = self.simple_opnd(r1)?;
                let (r2, f2) = self.simple_opnd(rhs)?;
                // Outer binary + inner binary + lhs ident + r1 + r2.
                Some((
                    SubIdx::RegOff2 {
                        s,
                        op1: *op1,
                        r1,
                        bcost1: self.eff(self.bin_cost(*op1)),
                        op2: *op,
                        r2,
                        bcost2: self.eff(self.bin_cost(*op)),
                    },
                    3 + f1 + f2,
                ))
            }
            _ => None,
        }
    }

    fn lower_call(&mut self, callee: &str, args: &[Expr]) -> Opnd {
        let mut vals: Vec<Opnd> = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let mut v = self.lower_expr(a);
            if let Some(rest) = args.get(i + 1..) {
                if rest.iter().any(expr_writes_scalars) {
                    v = match v {
                        Opnd::Reg(r) if r < self.temp_base => {
                            let t = self.temp();
                            self.emit(RInsn::Mov { dst: t, src: v });
                            Opnd::Reg(t)
                        }
                        other => other,
                    };
                }
            }
            vals.push(v);
        }
        let call_cost = self.eff(self.k.add * 2.0);
        let builtin = match (callee, args.len()) {
            ("min", 2) => Some(Builtin::Min),
            ("max", 2) => Some(Builtin::Max),
            ("abs" | "fabs", 1) => Some(Builtin::Abs),
            ("sqrt", 1) => Some(Builtin::Sqrt),
            ("floor", 1) => Some(Builtin::Floor),
            ("ceil", 1) => Some(Builtin::Ceil),
            _ => None,
        };
        match builtin {
            Some(f) => {
                let dst = self.temp();
                if vals.len() == 2 {
                    self.emit(RInsn::Call2 {
                        f,
                        cost: call_cost,
                        dst,
                        a: vals[0],
                        b: vals[1],
                    });
                } else {
                    let div_cost = self.eff(self.k.div);
                    self.emit(RInsn::Call1 {
                        f,
                        cost: call_cost,
                        div_cost,
                        dst,
                        a: vals[0],
                    });
                }
                Opnd::Reg(dst)
            }
            None => {
                // Unknown name or arity: the call overhead is still
                // charged before the error, like the tree.
                self.emit(RInsn::Charge(call_cost));
                self.throw(ThrowKind::UndefinedFunction, callee.to_string());
                Opnd::ImmI(0)
            }
        }
    }

    fn bin_cost(&self, op: BinOp) -> f64 {
        match op {
            BinOp::Mul => self.k.mul,
            BinOp::Div | BinOp::Rem => self.k.div,
            _ => self.k.add,
        }
    }
}

/// Whether `insn` may appear in a fused hot-loop body: straight-line
/// shapes only — no jumps, no pc-relative behavior, no parallel-loop
/// bookkeeping. (Errors are fine: they propagate out of the fused
/// dispatch exactly as they would out of an unfused one.)
fn hot_body_ok(insn: &RInsn) -> bool {
    matches!(
        insn,
        RInsn::Fuel(_)
            | RInsn::Charge(_)
            | RInsn::Mov { .. }
            | RInsn::SetSlot { .. }
            | RInsn::DeclSlot { .. }
            | RInsn::DeclDefault { .. }
            | RInsn::Neg { .. }
            | RInsn::Not { .. }
            | RInsn::Bin { .. }
            | RInsn::CompoundSet { .. }
            | RInsn::CompoundSetVal { .. }
            | RInsn::CompoundTmp { .. }
            | RInsn::Truthy { .. }
            | RInsn::Cast { .. }
            | RInsn::Call1 { .. }
            | RInsn::Call2 { .. }
            | RInsn::Nav(_)
            | RInsn::ArrayCheck { .. }
            | RInsn::IdxDim { .. }
            | RInsn::LoadA { .. }
            | RInsn::StoreA { .. }
            | RInsn::RmwA { .. }
            | RInsn::LoadABin { .. }
    )
}

/// Final fusion step, run after all jump patching: each innermost
/// counted loop — a `CmpBr` guard whose straight-line body ends in the
/// `StepJump` targeting it, with no jump from anywhere else landing
/// inside the window — collapses into one [`RInsn::HotLoop`] that the
/// executor runs to completion in a single dispatch. Only the guard
/// slot is overwritten (its fields move into the [`HotLoopDesc`]); the
/// body and the `StepJump` stay in place and are read through the
/// descriptor, so every code index stays valid.
fn fuse_hot_loops(code: &mut [RInsn]) -> Vec<HotLoopDesc> {
    let mut is_target = vec![false; code.len()];
    for insn in code.iter() {
        match insn {
            RInsn::Jump(t)
            | RInsn::BrFalsy { t, .. }
            | RInsn::CmpBr { t, .. }
            | RInsn::StepJump { t, .. }
            | RInsn::AndSC { t, .. }
            | RInsn::OrSC { t, .. } => {
                if let Some(slot) = is_target.get_mut(*t as usize) {
                    *slot = true;
                }
            }
            _ => {}
        }
    }
    let mut hotloops = Vec::new();
    for i in 0..code.len() {
        let RInsn::CmpBr {
            fuel,
            op,
            cost,
            a,
            b,
            post,
            t,
            pcost,
        } = code[i]
        else {
            continue;
        };
        let mut j = i + 1;
        while j < code.len() && hot_body_ok(&code[j]) {
            j += 1;
        }
        if j >= code.len() {
            continue;
        }
        let RInsn::StepJump { t: back, .. } = code[j] else {
            continue;
        };
        // A StepJump only ever targets its own loop's head, so
        // `back == i` identifies this CmpBr as that loop's guard.
        if back as usize != i || ((i + 1)..=j).any(|k| is_target[k]) {
            continue;
        }
        let h = hotloops.len() as u32;
        hotloops.push(HotLoopDesc {
            fuel,
            op,
            cost,
            a,
            b,
            post,
            exit: t,
            pcost,
            body: (i as u32 + 1, j as u32),
            step: j as u32,
        });
        code[i] = RInsn::HotLoop(h);
    }
    hotloops
}

fn cast_kind(ty: &Type) -> CastKind {
    match ty {
        Type::Double | Type::Float => CastKind::ToFloat,
        Type::Int | Type::Char => CastKind::ToInt,
        _ => CastKind::Keep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode2::RInsn;

    fn compile_src(src: &str) -> Exe2 {
        let program = locus_srcir::parse_program(src).expect("parses");
        compile2(&program, &crate::MachineConfig::scaled_small(), "kernel").expect("compiles")
    }

    /// The raw-speed contract of the register tier on its hottest
    /// pattern: a DGEMM inner loop must fuse down to a single
    /// [`RInsn::HotLoop`] dispatch whose window is exactly the fused
    /// guard, three fused subscript navigations (load, load+multiply,
    /// read-modify-write) and the fused step-jump back edge. If any of
    /// the fusions regresses, this fails before the benchmark floor
    /// does.
    #[test]
    fn dgemm_inner_loop_is_one_dispatch() {
        let exe = compile_src(
            r#"double A[24][24];
            double B[24][24];
            double C[24][24];
            void kernel() {
                for (int i = 0; i < 24; i++)
                    for (int j = 0; j < 24; j++)
                        for (int k = 0; k < 24; k++)
                            C[i][j] += A[i][k] * B[k][j];
            }"#,
        );
        // Innermost back edge: the first StepJump in the program (the
        // outer loops' step-jumps come after it in emission order).
        let (back, target) = exe
            .code
            .iter()
            .enumerate()
            .find_map(|(i, insn)| match insn {
                RInsn::StepJump { t, .. } => Some((i, *t as usize)),
                _ => None,
            })
            .expect("inner loop ends in a fused StepJump");
        let window = &exe.code[target..=back];
        assert_eq!(
            window.len(),
            5,
            "dgemm inner iteration must be 5 fused instructions, got {window:#?}"
        );
        let RInsn::HotLoop(h) = window[0] else {
            panic!("inner loop head must fuse into HotLoop, got {window:#?}");
        };
        assert!(matches!(window[1], RInsn::Nav(_)), "{window:#?}");
        assert!(matches!(window[2], RInsn::Nav(_)), "{window:#?}");
        assert!(matches!(window[3], RInsn::Nav(_)), "{window:#?}");
        assert!(matches!(window[4], RInsn::StepJump { .. }), "{window:#?}");
        let d = &exe.hotloops[h as usize];
        assert_eq!(d.body, (target as u32 + 1, back as u32), "{d:#?}");
        assert_eq!(d.step, back as u32, "{d:#?}");
        assert_eq!(d.exit, back as u32 + 1, "{d:#?}");
    }
}
