//! One-pass compiler from the mini-C AST to [`crate::bytecode`].
//!
//! The pass mirrors the tree interpreter construct by construct so the
//! VM replays the *exact* sequence of fuel ticks, cycle charges, cache
//! accesses and flop counts (see the module docs of
//! [`crate::bytecode`]). Scalars are resolved to frame slots here,
//! array names are interned to dense ids, and structured control flow
//! becomes jumps. Global setup (constant initializers, global array
//! allocation) is evaluated at compile time into the initial machine
//! image, exactly as `Interp::new` does — including its error cases,
//! which surface as compile errors because the tree interpreter raises
//! them before execution starts.

use std::collections::{HashMap, HashSet};

use locus_srcir::ast::{BinOp, Expr, Item, Pragma, Program, Stmt, StmtKind, Type, UnOp};

use crate::bytecode::{
    advance_base, array_init_data, ArrayCell, ArrayId, Builtin, CastKind, Chain, Exe, Insn, SlotId,
    ThrowKind,
};
use crate::interp::{apply_bin, collect_auto_vectorizable, RuntimeError, Value};
use crate::MachineConfig;

/// Compiles `program` for running `entry`, mirroring the setup work and
/// setup-time errors of `Interp::new` + `Interp::run`.
pub(crate) fn compile(
    program: &Program,
    config: &MachineConfig,
    entry: &str,
) -> Result<Exe, RuntimeError> {
    let mut c = Compiler::new(config);
    for item in &program.items {
        if let Item::Global(stmt) = item {
            c.compile_global(stmt)?;
        }
    }
    let f = program
        .function(entry)
        .ok_or_else(|| RuntimeError::UndefinedFunction(entry.to_string()))?;
    if !f.params.is_empty() {
        return Err(RuntimeError::Unsupported(format!(
            "entry `{entry}` must take no parameters"
        )));
    }
    if config.auto_vectorize {
        c.auto_vec = collect_auto_vectorizable(program);
    }
    for stmt in &f.body {
        collect_local_array_decls(stmt, &mut c.local_array_decls);
    }
    c.push_scope();
    for stmt in &f.body {
        c.compile_stmt(stmt, false);
    }
    c.pop_scope();
    c.emit(Insn::Halt);
    Ok(c.finish())
}

/// One statically resolved scalar binding.
#[derive(Debug, Clone, Copy)]
struct Binding {
    slot: SlotId,
    /// Set for conditional bare declarations (`if (c) int x;`): the
    /// binding only exists at runtime when this flag slot is non-zero.
    flag: Option<SlotId>,
}

/// Result of resolving a scalar name at a program point.
enum Resolution {
    /// Unconditionally bound: direct slot access.
    Direct(SlotId),
    /// At least one conditional binding shadows the path: dynamic chain.
    Chained(u32),
    /// No binding on any path: the access always raises.
    Unbound,
}

/// Cost constants snapshot (avoids re-reading config in every arm).
struct Costs {
    add: f64,
    mul: f64,
    div: f64,
    loop_iter: f64,
    loop_entry: f64,
}

struct Compiler<'p> {
    config: &'p MachineConfig,
    k: Costs,
    code: Vec<Insn>,
    /// Fuel ticks not yet materialized: adjacent ticks merge into one
    /// `Insn::Fuel`, flushed before anything that can error or branch.
    fuel_pending: u32,
    scopes: Vec<HashMap<String, Vec<Binding>>>,
    n_slots: u32,
    global_values: Vec<Value>,
    arrays: Vec<Option<ArrayCell>>,
    array_ids: HashMap<String, ArrayId>,
    array_names: Vec<String>,
    messages: Vec<String>,
    chains: Vec<Chain>,
    auto_vec: HashSet<usize>,
    /// Names declared as *local* arrays anywhere in the entry body.
    /// Accesses to those names keep their runtime `ArrayCheck` — the
    /// cell's rank is only known once `AllocArray` runs (and a local
    /// may share its interned id with a global of the same name).
    local_array_decls: HashSet<String>,
    next_base: u64,
}

/// Collects every name declared with array dimensions inside `stmt`.
fn collect_local_array_decls(stmt: &Stmt, out: &mut HashSet<String>) {
    match &stmt.kind {
        StmtKind::Decl { name, dims, .. } => {
            if !dims.is_empty() {
                out.insert(name.clone());
            }
        }
        StmtKind::Block(stmts) => {
            for s in stmts {
                collect_local_array_decls(s, out);
            }
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_local_array_decls(then_branch, out);
            if let Some(e) = else_branch {
                collect_local_array_decls(e, out);
            }
        }
        StmtKind::For(f) => {
            if let Some(init) = &f.init {
                collect_local_array_decls(init, out);
            }
            collect_local_array_decls(&f.body, out);
        }
        StmtKind::While { body, .. } => collect_local_array_decls(body, out),
        StmtKind::Expr(_) | StmtKind::Return(_) | StmtKind::Empty => {}
    }
}

impl<'p> Compiler<'p> {
    fn new(config: &'p MachineConfig) -> Compiler<'p> {
        Compiler {
            config,
            k: Costs {
                add: config.cost.add,
                mul: config.cost.mul,
                div: config.cost.div,
                loop_iter: config.cost.loop_iter,
                loop_entry: config.cost.loop_entry,
            },
            code: Vec::new(),
            fuel_pending: 0,
            scopes: vec![HashMap::new()],
            n_slots: 0,
            global_values: Vec::new(),
            arrays: Vec::new(),
            array_ids: HashMap::new(),
            array_names: Vec::new(),
            messages: Vec::new(),
            chains: Vec::new(),
            auto_vec: HashSet::new(),
            local_array_decls: HashSet::new(),
            next_base: 4096,
        }
    }

    fn finish(self) -> Exe {
        debug_assert_eq!(self.fuel_pending, 0, "Halt flushes pending fuel");
        Exe {
            code: crate::peephole::optimize(self.code),
            n_slots: self.n_slots as usize,
            global_values: self.global_values,
            arrays: self.arrays,
            array_names: self.array_names,
            messages: self.messages,
            chains: self.chains,
            next_base: self.next_base,
        }
    }

    // ---- emission -------------------------------------------------------

    /// Whether pending fuel must be materialized before `insn`: the tree
    /// interpreter's fuel check can fire *between* any two operations,
    /// so a tick may only drift across instructions that cannot raise a
    /// different error first and cannot be jumped over/to.
    fn needs_fuel_flush(insn: &Insn) -> bool {
        match insn {
            Insn::Jump(_)
            | Insn::JumpIfFalse(_)
            | Insn::AndShortCircuit(_)
            | Insn::OrShortCircuit(_)
            | Insn::Throw(..)
            | Insn::Halt
            | Insn::ArrayCheck(..)
            | Insn::IndexDim { .. }
            | Insn::DimCheck(_)
            | Insn::AllocArray { .. }
            | Insn::LoadChain(_)
            | Insn::StoreChain(_) => true,
            Insn::Bin(op, _) | Insn::CompoundBin(op, _) | Insn::RmwArray(_, op, _) => {
                matches!(op, BinOp::Div | BinOp::Rem)
            }
            _ => false,
        }
    }

    fn emit(&mut self, insn: Insn) {
        if Self::needs_fuel_flush(&insn) {
            self.flush_fuel();
        }
        self.code.push(insn);
    }

    fn fuel(&mut self, n: u32) {
        self.fuel_pending += n;
    }

    fn flush_fuel(&mut self) {
        if self.fuel_pending > 0 {
            self.code.push(Insn::Fuel(self.fuel_pending));
            self.fuel_pending = 0;
        }
    }

    /// Current position as a jump target (flushes fuel: a tick must not
    /// be skipped or double-counted by a jump landing here).
    fn here(&mut self) -> u32 {
        self.flush_fuel();
        self.code.len() as u32
    }

    fn placeholder(&mut self, insn: Insn) -> usize {
        self.emit(insn);
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Insn::Jump(t)
            | Insn::JumpIfFalse(t)
            | Insn::AndShortCircuit(t)
            | Insn::OrShortCircuit(t) => *t = target,
            other => unreachable!("patching a non-jump instruction {other:?}"),
        }
    }

    fn intern_msg(&mut self, msg: String) -> u32 {
        // Linear dedup: the table only holds a handful of messages.
        if let Some(i) = self.messages.iter().position(|m| *m == msg) {
            return i as u32;
        }
        self.messages.push(msg);
        (self.messages.len() - 1) as u32
    }

    fn throw(&mut self, kind: ThrowKind, msg: String) {
        let m = self.intern_msg(msg);
        self.emit(Insn::Throw(kind, m));
    }

    // ---- scopes and slots ----------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Pops a scope; conditional bindings that die with it get their
    /// flags cleared so a re-execution of the region (loop iteration)
    /// starts unbound, exactly like the tree re-pushing a fresh scope.
    fn pop_scope(&mut self) {
        let scope = self.scopes.pop().expect("scope stack is never empty");
        let mut flags: Vec<SlotId> = scope.values().flatten().filter_map(|b| b.flag).collect();
        flags.sort_unstable();
        for flag in flags {
            self.emit(Insn::PushInt(0));
            self.emit(Insn::StoreSlot(flag));
        }
    }

    fn new_slot(&mut self) -> SlotId {
        let s = self.n_slots;
        self.n_slots += 1;
        s
    }

    /// Binds a scalar declaration. `conditional` marks a bare decl in
    /// branch position (execution not guaranteed within its scope).
    /// Returns the value slot and, for fresh conditional bindings, the
    /// flag slot the declaration must set.
    fn bind_scalar(&mut self, name: &str, conditional: bool) -> (SlotId, Option<SlotId>) {
        if conditional {
            // A same-scope unconditional binding is *overwritten* by the
            // tree (one map entry per scope): reuse its slot, keeping
            // the redeclaration conditional for free.
            if let Some(vec) = self.scopes.last().expect("scope").get(name) {
                if let Some(last) = vec.last() {
                    if last.flag.is_none() {
                        return (last.slot, None);
                    }
                }
            }
            let slot = self.new_slot();
            let flag = self.new_slot();
            self.scopes
                .last_mut()
                .expect("scope")
                .entry(name.to_string())
                .or_default()
                .push(Binding {
                    slot,
                    flag: Some(flag),
                });
            (slot, Some(flag))
        } else {
            let slot = self.new_slot();
            let vec = self
                .scopes
                .last_mut()
                .expect("scope")
                .entry(name.to_string())
                .or_default();
            vec.clear();
            vec.push(Binding { slot, flag: None });
            (slot, None)
        }
    }

    fn resolve(&mut self, name: &str) -> Resolution {
        let mut guards: Vec<(SlotId, SlotId)> = Vec::new();
        let mut fallback = None;
        'walk: for scope in self.scopes.iter().rev() {
            if let Some(vec) = scope.get(name) {
                for b in vec.iter().rev() {
                    match b.flag {
                        None => {
                            fallback = Some(b.slot);
                            break 'walk;
                        }
                        Some(f) => guards.push((f, b.slot)),
                    }
                }
            }
        }
        match (guards.is_empty(), fallback) {
            (true, Some(slot)) => Resolution::Direct(slot),
            (true, None) => Resolution::Unbound,
            (false, _) => {
                let msg = self.intern_msg(name.to_string());
                self.chains.push(Chain {
                    guards,
                    fallback,
                    msg,
                });
                Resolution::Chained((self.chains.len() - 1) as u32)
            }
        }
    }

    fn array_id(&mut self, name: &str) -> ArrayId {
        if let Some(&id) = self.array_ids.get(name) {
            return id;
        }
        let id = self.array_names.len() as ArrayId;
        self.array_ids.insert(name.to_string(), id);
        self.array_names.push(name.to_string());
        self.arrays.push(None);
        id
    }

    // ---- global setup (compile-time evaluation) -------------------------

    fn compile_global(&mut self, stmt: &Stmt) -> Result<(), RuntimeError> {
        let StmtKind::Decl {
            ty,
            name,
            dims,
            init,
        } = &stmt.kind
        else {
            return Err(RuntimeError::Unsupported(
                "non-declaration at global scope".into(),
            ));
        };
        if dims.is_empty() {
            let value = match init {
                Some(e) => self.eval_const(e)?,
                None => match ty {
                    Type::Double | Type::Float => Value::Double(0.0),
                    _ => Value::Int(0),
                },
            };
            let (slot, _) = self.bind_scalar(name, false);
            debug_assert_eq!(slot as usize, self.global_values.len());
            self.global_values.push(value);
        } else {
            let mut dim_sizes = Vec::new();
            for d in dims {
                let v = self.eval_const(d)?.as_i64();
                if v <= 0 {
                    return Err(RuntimeError::BadArrayDim(name.clone()));
                }
                dim_sizes.push(v as usize);
            }
            let len = crate::bytecode::checked_alloc_len(name, &dim_sizes)?;
            let id = self.array_id(name);
            let is_float = ty.is_float();
            let base = self.next_base;
            self.next_base = advance_base(self.next_base, len);
            self.arrays[id as usize] = Some(ArrayCell {
                is_float,
                data: array_init_data(len, is_float),
                base,
                dims: dim_sizes,
                local: false,
            });
        }
        Ok(())
    }

    fn eval_const(&self, e: &Expr) -> Result<Value, RuntimeError> {
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::FloatLit(v) => Ok(Value::Double(*v)),
            Expr::Unary {
                op: UnOp::Neg,
                operand,
            } => Ok(match self.eval_const(operand)? {
                Value::Int(v) => Value::Int(-v),
                Value::Double(v) => Value::Double(-v),
            }),
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval_const(lhs)?;
                let r = self.eval_const(rhs)?;
                apply_bin(*op, l, r)
            }
            Expr::Ident(name) => self.scopes[0]
                .get(name)
                .and_then(|vec| vec.last())
                .map(|b| self.global_values[b.slot as usize])
                .ok_or_else(|| RuntimeError::UndefinedVariable(name.clone())),
            _ => Err(RuntimeError::Unsupported(
                "non-constant global initializer".into(),
            )),
        }
    }

    // ---- statements -----------------------------------------------------

    /// Compiles one statement. `in_branch` marks direct (unbraced)
    /// branch/body position, where a bare declaration binds its
    /// enclosing scope conditionally.
    fn compile_stmt(&mut self, stmt: &Stmt, in_branch: bool) {
        self.fuel(1);
        match &stmt.kind {
            StmtKind::Empty => {}
            StmtKind::Expr(e) => self.compile_expr_drop(e),
            StmtKind::Decl {
                ty,
                name,
                dims,
                init,
            } => self.compile_decl(ty, name, dims, init.as_ref(), in_branch),
            StmtKind::Block(stmts) => {
                self.push_scope();
                for s in stmts {
                    self.compile_stmt(s, false);
                }
                self.pop_scope();
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.compile_expr(cond);
                self.emit(Insn::Charge(self.k.add));
                let jf = self.placeholder(Insn::JumpIfFalse(u32::MAX));
                self.compile_stmt(then_branch, true);
                match else_branch {
                    Some(e) => {
                        let j = self.placeholder(Insn::Jump(u32::MAX));
                        let t = self.here();
                        self.patch(jf, t);
                        self.compile_stmt(e, true);
                        let end = self.here();
                        self.patch(j, end);
                    }
                    None => {
                        let t = self.here();
                        self.patch(jf, t);
                    }
                }
            }
            StmtKind::While { cond, body } => {
                self.emit(Insn::Charge(self.k.loop_entry));
                let top = self.here();
                self.fuel(1);
                self.compile_expr(cond);
                let jf = self.placeholder(Insn::JumpIfFalse(u32::MAX));
                self.emit(Insn::Charge(self.k.loop_iter));
                self.compile_stmt(body, true);
                self.emit(Insn::Jump(top));
                let end = self.here();
                self.patch(jf, end);
            }
            StmtKind::For(_) => self.compile_for(stmt),
            StmtKind::Return(value) => {
                if let Some(e) = value {
                    self.compile_expr(e);
                    self.emit(Insn::Pop);
                }
                self.emit(Insn::Halt);
            }
        }
    }

    fn compile_for(&mut self, stmt: &Stmt) {
        let StmtKind::For(f) = &stmt.kind else {
            unreachable!("compile_for called on a for loop")
        };
        let omp = stmt.pragmas.iter().find_map(|p| match p {
            Pragma::OmpParallelFor { schedule, .. } => Some(*schedule),
            _ => None,
        });
        let vectorized = stmt
            .pragmas
            .iter()
            .any(|p| matches!(p, Pragma::Ivdep | Pragma::VectorAlways))
            || self.auto_vec.contains(&(stmt as *const Stmt as usize));
        // Whether a pragma'd loop actually runs parallel still depends
        // on the dynamic `in_parallel` state — ParEnter decides.
        let par = omp.is_some() && self.config.cores > 1;

        self.push_scope();
        self.emit(Insn::Charge(self.k.loop_entry));
        if let Some(init) = &f.init {
            self.compile_stmt(init, false);
        }
        if vectorized {
            self.emit(Insn::VecEnter);
        }
        if par {
            self.emit(Insn::ParEnter(omp.flatten()));
        }
        let top = self.here();
        self.fuel(1);
        let jf = f.cond.as_ref().map(|cond| {
            self.compile_expr(cond);
            self.placeholder(Insn::JumpIfFalse(u32::MAX))
        });
        if par {
            self.emit(Insn::IterStart);
        }
        self.emit(Insn::Charge(self.k.loop_iter));
        self.compile_stmt(&f.body, true);
        if let Some(step) = &f.step {
            self.compile_expr_drop(step);
        }
        if par {
            self.emit(Insn::IterEnd);
        }
        self.emit(Insn::Jump(top));
        if let Some(jf) = jf {
            let end = self.here();
            self.patch(jf, end);
        }
        if par {
            self.emit(Insn::ParExit);
        }
        if vectorized {
            self.emit(Insn::VecLeave);
        }
        self.pop_scope();
    }

    fn compile_decl(
        &mut self,
        ty: &Type,
        name: &str,
        dims: &[Expr],
        init: Option<&Expr>,
        in_branch: bool,
    ) {
        if dims.is_empty() {
            // The initializer is evaluated *before* the name binds, so
            // it sees any outer binding it shadows — compile it first.
            let flag = match init {
                Some(e) => {
                    self.compile_expr(e);
                    let (slot, flag) = self.bind_scalar(name, in_branch);
                    self.emit(Insn::DeclSlot(slot, cast_kind(ty)));
                    flag
                }
                None => {
                    let (slot, flag) = self.bind_scalar(name, in_branch);
                    self.emit(Insn::DeclDefault(slot, ty.is_float()));
                    flag
                }
            };
            if let Some(flag) = flag {
                self.emit(Insn::PushInt(1));
                self.emit(Insn::StoreSlot(flag));
            }
        } else {
            let id = self.array_id(name);
            for d in dims {
                self.compile_expr(d);
                self.emit(Insn::DimCheck(id));
            }
            self.emit(Insn::AllocArray {
                id,
                dims: dims.len() as u32,
                is_float: ty.is_float(),
            });
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Compiles an expression whose value is discarded (expression
    /// statement or for-step): assignments skip the value push instead
    /// of popping it.
    fn compile_expr_drop(&mut self, e: &Expr) {
        if matches!(e, Expr::Assign { .. }) {
            self.fuel(1);
            self.compile_assign(e, false);
        } else {
            self.compile_expr(e);
            self.emit(Insn::Pop);
        }
    }

    fn compile_expr(&mut self, e: &Expr) {
        self.fuel(1);
        match e {
            Expr::IntLit(v) => self.emit(Insn::PushInt(*v)),
            Expr::FloatLit(v) => self.emit(Insn::PushFloat(*v)),
            Expr::StrLit(_) => self.emit(Insn::PushInt(0)),
            Expr::Ident(name) => match self.resolve(name) {
                Resolution::Direct(slot) => self.emit(Insn::LoadSlot(slot)),
                Resolution::Chained(i) => self.emit(Insn::LoadChain(i)),
                Resolution::Unbound => {
                    self.throw(ThrowKind::UndefinedVariable, name.clone());
                }
            },
            Expr::Index { .. } => {
                if let Some(id) = self.compile_locate(e) {
                    self.emit(Insn::LoadArray(id));
                }
            }
            Expr::Unary { op, operand } => {
                self.compile_expr(operand);
                match op {
                    UnOp::Neg => self.emit(Insn::Neg(self.k.add)),
                    UnOp::Not => self.emit(Insn::Not(self.k.add)),
                    UnOp::Deref | UnOp::Addr => {
                        self.throw(ThrowKind::Unsupported, "pointer operations".into());
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.compile_expr(lhs);
                    self.emit(Insn::Charge(self.k.add));
                    let p = self.placeholder(Insn::AndShortCircuit(u32::MAX));
                    self.compile_expr(rhs);
                    self.emit(Insn::Truthy);
                    let end = self.here();
                    self.patch(p, end);
                }
                BinOp::Or => {
                    self.compile_expr(lhs);
                    self.emit(Insn::Charge(self.k.add));
                    let p = self.placeholder(Insn::OrShortCircuit(u32::MAX));
                    self.compile_expr(rhs);
                    self.emit(Insn::Truthy);
                    let end = self.here();
                    self.patch(p, end);
                }
                _ => {
                    self.compile_expr(lhs);
                    self.compile_expr(rhs);
                    self.emit(Insn::Bin(*op, self.bin_cost(*op)));
                }
            },
            Expr::Assign { .. } => self.compile_assign(e, true),
            Expr::Call { callee, args } => self.compile_call(callee, args),
            Expr::Cast { ty, expr } => {
                self.compile_expr(expr);
                self.emit(Insn::Cast(cast_kind(ty), self.k.add));
            }
        }
    }

    /// Compiles an assignment. The entry fuel for the `Assign` node must
    /// already be accounted by the caller.
    fn compile_assign(&mut self, e: &Expr, need_value: bool) {
        let Expr::Assign { op, lhs, rhs } = e else {
            unreachable!("compile_assign called on an assignment")
        };
        self.compile_expr(rhs);
        let Some(bin) = op.to_bin_op() else {
            // Plain assignment: the expression's value is the
            // *uncoerced* rhs; the store coerces to the target's type.
            match lhs.as_ref() {
                Expr::Ident(name) => match self.resolve(name) {
                    Resolution::Direct(slot) => {
                        if need_value {
                            self.emit(Insn::Dup);
                        }
                        self.emit(Insn::StoreSlot(slot));
                    }
                    Resolution::Chained(i) => {
                        if need_value {
                            self.emit(Insn::Dup);
                        }
                        self.emit(Insn::StoreChain(i));
                    }
                    Resolution::Unbound => {
                        self.throw(ThrowKind::UndefinedVariable, name.clone());
                    }
                },
                Expr::Index { .. } => {
                    if let Some(id) = self.compile_locate(lhs) {
                        self.emit(Insn::StoreArray(id));
                        if !need_value {
                            self.emit(Insn::Pop);
                        }
                    }
                }
                other => {
                    self.throw(
                        ThrowKind::Unsupported,
                        format!("assignment target {other:?}"),
                    );
                }
            }
            return;
        };
        let cost = match bin {
            BinOp::Mul => self.k.mul,
            BinOp::Div => self.k.div,
            _ => self.k.add,
        };
        match lhs.as_ref() {
            Expr::Index { .. } => {
                // Read-modify-write of ONE located address: subscripts
                // run once, address arithmetic is charged once.
                self.fuel(1);
                if let Some(id) = self.compile_locate(lhs) {
                    self.emit(Insn::RmwArray(id, bin, cost));
                    if !need_value {
                        self.emit(Insn::Pop);
                    }
                }
            }
            Expr::Ident(name) => {
                self.fuel(1);
                match self.resolve(name) {
                    Resolution::Direct(slot) => {
                        self.emit(Insn::LoadSlot(slot));
                        self.emit(Insn::CompoundBin(bin, cost));
                        if need_value {
                            self.emit(Insn::Dup);
                        }
                        self.emit(Insn::StoreSlot(slot));
                    }
                    Resolution::Chained(i) => {
                        self.emit(Insn::LoadChain(i));
                        self.emit(Insn::CompoundBin(bin, cost));
                        if need_value {
                            self.emit(Insn::Dup);
                        }
                        self.emit(Insn::StoreChain(i));
                    }
                    Resolution::Unbound => {
                        self.throw(ThrowKind::UndefinedVariable, name.clone());
                    }
                }
            }
            other => {
                // The tree fully evaluates the lhs (side effects and
                // all), combines, and only errors on the write-back.
                self.fuel(1);
                self.compile_expr(other);
                self.emit(Insn::CompoundBin(bin, cost));
                self.throw(
                    ThrowKind::Unsupported,
                    format!("assignment target {other:?}"),
                );
            }
        }
    }

    /// Compiles an index chain down to a flat index on the stack:
    /// existence + rank check first, then per-dimension subscript
    /// evaluation, bounds check and address arithmetic — the tree's
    /// `locate`. Returns `None` when the base is not an identifier (a
    /// `Throw` has been emitted and the access instruction must be
    /// skipped).
    fn compile_locate(&mut self, e: &Expr) -> Option<ArrayId> {
        let mut indices = Vec::new();
        let mut cur = e;
        while let Expr::Index { base, index } = cur {
            indices.push(index.as_ref());
            cur = base;
        }
        indices.reverse();
        let Expr::Ident(name) = cur else {
            self.throw(ThrowKind::Unsupported, "indexing a non-identifier".into());
            return None;
        };
        let id = self.array_id(name);
        // The runtime existence + rank check is elided when it provably
        // passes: the name is a global whose declared rank matches the
        // subscript count, and no local declaration can rebind it to a
        // different shape. The check could never fire, so dropping it
        // only regroups fuel (which may drift across non-erroring code).
        let statically_ok = !self.local_array_decls.contains(name)
            && self.arrays[id as usize]
                .as_ref()
                .is_some_and(|cell| cell.dims.len() == indices.len());
        if !statically_ok {
            self.emit(Insn::ArrayCheck(id, indices.len() as u32));
        }
        for (i, idx) in indices.iter().enumerate() {
            self.compile_expr(idx);
            self.emit(Insn::IndexDim {
                id,
                dim: i as u32,
                first: i == 0,
                cost: self.k.add,
            });
        }
        Some(id)
    }

    fn compile_call(&mut self, callee: &str, args: &[Expr]) {
        for a in args {
            self.compile_expr(a);
        }
        let call_cost = self.k.add * 2.0;
        let builtin = match (callee, args.len()) {
            ("min", 2) => Some(Builtin::Min),
            ("max", 2) => Some(Builtin::Max),
            ("abs" | "fabs", 1) => Some(Builtin::Abs),
            ("sqrt", 1) => Some(Builtin::Sqrt),
            ("floor", 1) => Some(Builtin::Floor),
            ("ceil", 1) => Some(Builtin::Ceil),
            _ => None,
        };
        match builtin {
            Some(f) => self.emit(Insn::Call(f, call_cost)),
            None => {
                // Unknown name or arity: the call overhead is still
                // charged before the error, like the tree.
                self.emit(Insn::Charge(call_cost));
                self.throw(ThrowKind::UndefinedFunction, callee.to_string());
            }
        }
    }

    fn bin_cost(&self, op: BinOp) -> f64 {
        match op {
            BinOp::Mul => self.k.mul,
            BinOp::Div | BinOp::Rem => self.k.div,
            _ => self.k.add,
        }
    }
}

fn cast_kind(ty: &Type) -> CastKind {
    match ty {
        Type::Double | Type::Float => CastKind::ToFloat,
        Type::Int | Type::Char => CastKind::ToInt,
        _ => CastKind::Keep,
    }
}
