//! Stack VM for the compiled execution engine.
//!
//! Executes [`crate::bytecode::Exe`] while charging the exact cost,
//! cache, OpenMP and vectorizer model of the tree interpreter: every
//! fuel tick, cycle charge, cache access and flop increment happens in
//! the same order with the same values, so `Measurement`s are
//! bit-identical (including the f64 `cycles` accumulator, which is
//! sensitive to addition order). `tests/vm_equivalence.rs` holds the
//! two engines to that contract.

use locus_srcir::ast::{BinOp, OmpSchedule};

use crate::bytecode::{
    advance_base, array_init_data, AccessTail, ArrayCell, Builtin, CastKind, Exe, Insn, ThrowKind,
};
use crate::cache::CacheHierarchy;
use crate::cost::OmpModel;
use crate::interp::{apply_bin, num_binop, Measurement, RuntimeError, Value};
use crate::MachineConfig;

/// One `omp parallel for` region in flight. Inactive contexts model
/// pragma'd loops nested inside an already-parallel region, which the
/// tree serializes.
struct ParCtx {
    active: bool,
    schedule: Option<OmpSchedule>,
    iter_start: f64,
    iter_costs: Vec<f64>,
}

/// Executes a compiled program. The caller supplies the (already
/// validated) cache hierarchy so configuration errors surface before
/// compilation, in the same order as `Interp::new`.
pub(crate) fn run(
    exe: &Exe,
    config: &MachineConfig,
    cache: CacheHierarchy,
) -> Result<Measurement, RuntimeError> {
    let mut slots = vec![Value::Int(0); exe.n_slots];
    slots[..exe.global_values.len()].copy_from_slice(&exe.global_values);
    let mut vm = Vm {
        exe,
        config,
        w: config
            .cost
            .vector_discount
            .min(config.vector_width as f64)
            .max(1.0),
        slots,
        arrays: exe.arrays.clone(),
        next_base: exe.next_base,
        cache,
        stack: Vec::with_capacity(32),
        cycles: 0.0,
        ops: 0,
        flops: 0,
        vector_depth: 0,
        in_parallel: false,
        par_stack: Vec::new(),
    };
    vm.exec()?;
    Ok(vm.measurement())
}

struct Vm<'a> {
    exe: &'a Exe,
    config: &'a MachineConfig,
    /// Precomputed vector discount divisor (pure function of config).
    w: f64,
    slots: Vec<Value>,
    arrays: Vec<Option<ArrayCell>>,
    next_base: u64,
    cache: CacheHierarchy,
    stack: Vec<Value>,
    cycles: f64,
    ops: u64,
    flops: u64,
    vector_depth: usize,
    in_parallel: bool,
    par_stack: Vec<ParCtx>,
}

impl Vm<'_> {
    fn exec(&mut self) -> Result<(), RuntimeError> {
        // `exe` is a plain `&'a Exe` — reading code through the copy
        // keeps the borrow independent of `&mut self` in the arms.
        let exe = self.exe;
        let mut pc = 0usize;
        loop {
            let insn = exe.code[pc];
            pc += 1;
            match insn {
                Insn::Fuel(n) => {
                    self.ops += u64::from(n);
                    if self.ops > self.config.max_ops {
                        return Err(RuntimeError::FuelExhausted);
                    }
                }
                Insn::PushInt(v) => self.stack.push(Value::Int(v)),
                Insn::PushFloat(v) => self.stack.push(Value::Double(v)),
                Insn::Pop => {
                    self.pop();
                }
                Insn::Dup => {
                    let v = *self.stack.last().expect("Dup on empty stack");
                    self.stack.push(v);
                }
                Insn::Jump(t) => pc = t as usize,
                Insn::JumpIfFalse(t) => {
                    if !self.pop().truthy() {
                        pc = t as usize;
                    }
                }
                Insn::LoadSlot(s) => self.stack.push(self.slots[s as usize]),
                Insn::StoreSlot(s) => {
                    let v = self.pop();
                    self.write_slot(s as usize, v);
                }
                Insn::LoadChain(i) => {
                    let slot = self.resolve_chain(i)?;
                    self.stack.push(self.slots[slot]);
                }
                Insn::StoreChain(i) => {
                    let slot = self.resolve_chain(i)?;
                    let v = self.pop();
                    self.write_slot(slot, v);
                }
                Insn::DeclSlot(s, kind) => {
                    let v = self.pop();
                    self.slots[s as usize] = match kind {
                        CastKind::ToFloat => Value::Double(v.as_f64()),
                        CastKind::ToInt => Value::Int(v.as_i64()),
                        CastKind::Keep => v,
                    };
                }
                Insn::DeclDefault(s, is_float) => {
                    self.slots[s as usize] = if is_float {
                        Value::Double(0.0)
                    } else {
                        Value::Int(0)
                    };
                }
                Insn::Charge(c) => self.charge(c),
                Insn::Neg(cost) => {
                    let v = self.pop();
                    self.charge(cost);
                    if matches!(v, Value::Double(_)) {
                        self.flops += 1;
                    }
                    self.stack.push(match v {
                        Value::Int(x) => Value::Int(-x),
                        Value::Double(x) => Value::Double(-x),
                    });
                }
                Insn::Not(cost) => {
                    let v = self.pop();
                    self.charge(cost);
                    self.stack.push(Value::Int(i64::from(!v.truthy())));
                }
                Insn::Bin(op, cost) => {
                    let r = self.pop();
                    let l = self.pop();
                    self.charge(cost);
                    if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, l, r)?;
                    self.stack.push(v);
                }
                Insn::CompoundBin(op, cost) => {
                    let old = self.pop();
                    let rhs = self.pop();
                    self.charge(cost);
                    if matches!(old, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, old, rhs)?;
                    self.stack.push(v);
                }
                Insn::Truthy => {
                    let v = self.pop();
                    self.stack.push(Value::Int(i64::from(v.truthy())));
                }
                Insn::AndShortCircuit(t) => {
                    if !self.pop().truthy() {
                        self.stack.push(Value::Int(0));
                        pc = t as usize;
                    }
                }
                Insn::OrShortCircuit(t) => {
                    if self.pop().truthy() {
                        self.stack.push(Value::Int(1));
                        pc = t as usize;
                    }
                }
                Insn::Cast(kind, cost) => {
                    let v = self.pop();
                    self.charge(cost);
                    self.stack.push(match kind {
                        CastKind::ToFloat => Value::Double(v.as_f64()),
                        CastKind::ToInt => Value::Int(v.as_i64()),
                        CastKind::Keep => v,
                    });
                }
                Insn::Call(f, cost) => {
                    self.charge(cost);
                    let v = match f {
                        Builtin::Min => {
                            let b = self.pop();
                            let a = self.pop();
                            num_binop(a, b, i64::min, f64::min)
                        }
                        Builtin::Max => {
                            let b = self.pop();
                            let a = self.pop();
                            num_binop(a, b, i64::max, f64::max)
                        }
                        Builtin::Abs => match self.pop() {
                            Value::Int(v) => Value::Int(v.abs()),
                            Value::Double(v) => Value::Double(v.abs()),
                        },
                        Builtin::Sqrt => {
                            let a = self.pop();
                            self.flops += 1;
                            self.charge(self.config.cost.div);
                            Value::Double(a.as_f64().sqrt())
                        }
                        Builtin::Floor => Value::Double(self.pop().as_f64().floor()),
                        Builtin::Ceil => Value::Double(self.pop().as_f64().ceil()),
                    };
                    self.stack.push(v);
                }
                Insn::ArrayCheck(id, subs) => {
                    let name = &self.exe.array_names[id as usize];
                    let Some(cell) = &self.arrays[id as usize] else {
                        return Err(RuntimeError::UndefinedVariable(name.clone()));
                    };
                    let ndims = cell.dims.len();
                    if subs as usize != ndims {
                        return Err(RuntimeError::Unsupported(format!(
                            "array `{name}` used with {subs} subscripts but declared with {ndims}"
                        )));
                    }
                }
                Insn::IndexDim {
                    id,
                    dim,
                    first,
                    cost,
                } => {
                    let idx = self.pop().as_i64();
                    let cell = self.arrays[id as usize]
                        .as_ref()
                        .expect("ArrayCheck precedes IndexDim");
                    let extent = cell.dims[dim as usize];
                    if idx < 0 || idx >= extent as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx,
                            len: cell.data.len(),
                        });
                    }
                    let flat = if first {
                        idx
                    } else {
                        self.pop().as_i64() * extent as i64 + idx
                    };
                    self.stack.push(Value::Int(flat));
                    self.charge(cost);
                }
                Insn::LoadArray(id) => self.load_array(id),
                Insn::StoreArray(id) => {
                    let flat = self.pop().as_i64() as usize;
                    let value = self.pop();
                    let cell = self.arrays[id as usize]
                        .as_mut()
                        .expect("ArrayCheck precedes StoreArray");
                    let addr = cell.base + flat as u64 * 8;
                    cell.data[flat] = if cell.is_float {
                        value.as_f64()
                    } else {
                        value.as_i64() as f64
                    };
                    let (_, latency) = self.cache.access(addr);
                    self.cycles += latency as f64;
                    self.stack.push(value);
                }
                Insn::RmwArray(id, op, cost) => {
                    let flat = self.pop().as_i64() as usize;
                    let rhs = self.pop();
                    let cell = self.arrays[id as usize]
                        .as_ref()
                        .expect("ArrayCheck precedes RmwArray");
                    let addr = cell.base + flat as u64 * 8;
                    let is_float = cell.is_float;
                    let raw = cell.data[flat];
                    let (_, latency) = self.cache.access(addr);
                    self.cycles += latency as f64;
                    let old = if is_float {
                        Value::Double(raw)
                    } else {
                        Value::Int(raw as i64)
                    };
                    self.charge(cost);
                    if matches!(old, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let new = apply_bin(op, old, rhs)?;
                    let cell = self.arrays[id as usize].as_mut().expect("cell read above");
                    cell.data[flat] = if is_float {
                        new.as_f64()
                    } else {
                        new.as_i64() as f64
                    };
                    let (_, latency) = self.cache.access(addr);
                    self.cycles += latency as f64;
                    self.stack.push(new);
                }
                Insn::DimCheck(id) => {
                    let v = *self.stack.last().expect("DimCheck peeks a dimension");
                    if v.as_i64() <= 0 {
                        return Err(RuntimeError::BadArrayDim(
                            self.exe.array_names[id as usize].clone(),
                        ));
                    }
                }
                Insn::AllocArray { id, dims, is_float } => {
                    let n = dims as usize;
                    let at = self.stack.len() - n;
                    let mut dim_sizes = Vec::with_capacity(n);
                    for v in self.stack.drain(at..) {
                        dim_sizes.push(v.as_i64() as usize);
                    }
                    let len = crate::bytecode::checked_alloc_len(
                        &self.exe.array_names[id as usize],
                        &dim_sizes,
                    )?;
                    let base = self.next_base;
                    self.next_base = advance_base(self.next_base, len);
                    self.arrays[id as usize] = Some(ArrayCell {
                        is_float,
                        data: array_init_data(len, is_float),
                        base,
                        dims: dim_sizes,
                        local: true,
                    });
                }
                Insn::VecEnter => self.vector_depth += 1,
                Insn::VecLeave => self.vector_depth -= 1,
                Insn::ParEnter(schedule) => {
                    let active = !self.in_parallel;
                    if active {
                        self.in_parallel = true;
                    }
                    self.par_stack.push(ParCtx {
                        active,
                        schedule,
                        iter_start: 0.0,
                        iter_costs: Vec::new(),
                    });
                }
                Insn::IterStart => {
                    let cycles = self.cycles;
                    if let Some(ctx) = self.par_stack.last_mut() {
                        if ctx.active {
                            ctx.iter_start = cycles;
                        }
                    }
                }
                Insn::IterEnd => {
                    let cycles = self.cycles;
                    if let Some(ctx) = self.par_stack.last_mut() {
                        if ctx.active {
                            let cost = cycles - ctx.iter_start;
                            ctx.iter_costs.push(cost);
                        }
                    }
                }
                Insn::ParExit => {
                    let ctx = self.par_stack.pop().expect("ParEnter precedes ParExit");
                    self.finish_parallel(ctx);
                }
                Insn::Throw(kind, msg) => {
                    let msg = self.exe.messages[msg as usize].clone();
                    return Err(match kind {
                        ThrowKind::UndefinedVariable => RuntimeError::UndefinedVariable(msg),
                        ThrowKind::UndefinedFunction => RuntimeError::UndefinedFunction(msg),
                        ThrowKind::Unsupported => RuntimeError::Unsupported(msg),
                    });
                }
                // Fused superinstructions: each arm is the literal
                // composition of its constituent arms — same charge,
                // flop and error order (see `crate::peephole`).
                Insn::BinInt(op, cost, r) => {
                    let l = self.pop();
                    self.charge(cost);
                    if matches!(l, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, l, Value::Int(r))?;
                    self.stack.push(v);
                }
                Insn::BinFloat(op, cost, r) => {
                    let l = self.pop();
                    self.charge(cost);
                    self.flops += 1;
                    let v = apply_bin(op, l, Value::Double(r))?;
                    self.stack.push(v);
                }
                Insn::BinSlotR(op, cost, s) => {
                    let r = self.slots[s as usize];
                    let l = self.pop();
                    self.charge(cost);
                    if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, l, r)?;
                    self.stack.push(v);
                }
                Insn::BinSlotInt(op, cost, s, r) => {
                    let l = self.slots[s as usize];
                    self.charge(cost);
                    if matches!(l, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, l, Value::Int(r))?;
                    self.stack.push(v);
                }
                Insn::BinBr(op, cost, t) => {
                    let r = self.pop();
                    let l = self.pop();
                    self.charge(cost);
                    if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
                        self.flops += 1;
                    }
                    if !apply_bin(op, l, r)?.truthy() {
                        pc = t as usize;
                    }
                }
                Insn::BinIntBr(op, cost, r, t) => {
                    let l = self.pop();
                    self.charge(cost);
                    if matches!(l, Value::Double(_)) {
                        self.flops += 1;
                    }
                    if !apply_bin(op, l, Value::Int(r))?.truthy() {
                        pc = t as usize;
                    }
                }
                Insn::BinSlotIntBr {
                    fuel,
                    op,
                    cost,
                    s,
                    rhs,
                    t,
                    pfuel,
                    pcost,
                } => {
                    if fuel > 0 {
                        self.ops += u64::from(fuel);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                    let l = self.slots[s as usize];
                    self.charge(cost);
                    if matches!(l, Value::Double(_)) {
                        self.flops += 1;
                    }
                    if !apply_bin(op, l, Value::Int(rhs))?.truthy() {
                        pc = t as usize;
                    } else {
                        // Fall-through prologue absorbed from the loop
                        // body's leading fuel and charge.
                        if pfuel > 0 {
                            self.ops += u64::from(pfuel);
                            if self.ops > self.config.max_ops {
                                return Err(RuntimeError::FuelExhausted);
                            }
                        }
                        if pcost != 0.0 {
                            self.charge(pcost);
                        }
                    }
                }
                Insn::CompoundSlot(op, cost, s) => {
                    let old = self.slots[s as usize];
                    let rhs = self.pop();
                    self.charge(cost);
                    if matches!(old, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, old, rhs)?;
                    self.stack.push(v);
                }
                Insn::CompoundSlotInt(op, cost, s, rhs) => {
                    let old = self.slots[s as usize];
                    self.charge(cost);
                    if matches!(old, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, old, Value::Int(rhs))?;
                    self.stack.push(v);
                }
                Insn::CompoundSlotStore(op, cost, s, d) => {
                    let old = self.slots[s as usize];
                    let rhs = self.pop();
                    self.charge(cost);
                    if matches!(old, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, old, rhs)?;
                    self.write_slot(d as usize, v);
                }
                Insn::CompoundSlotIntStore(op, cost, s, rhs, d) => {
                    let old = self.slots[s as usize];
                    self.charge(cost);
                    if matches!(old, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, old, Value::Int(rhs))?;
                    self.write_slot(d as usize, v);
                }
                Insn::CompoundSlotIntStoreJump(op, cost, s, rhs, d, t) => {
                    let old = self.slots[s as usize];
                    self.charge(cost);
                    if matches!(old, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let v = apply_bin(op, old, Value::Int(rhs))?;
                    self.write_slot(d as usize, v);
                    pc = t as usize;
                }
                Insn::IndexDimSlot {
                    id,
                    dim,
                    first,
                    cost,
                    s,
                    fuel,
                    tail,
                } => {
                    let idx = self.slots[s as usize].as_i64();
                    let cell = self.arrays[id as usize]
                        .as_ref()
                        .expect("validated before IndexDimSlot");
                    let extent = cell.dims[dim as usize];
                    if idx < 0 || idx >= extent as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx,
                            len: cell.data.len(),
                        });
                    }
                    let flat = if first {
                        idx
                    } else {
                        self.pop().as_i64() * extent as i64 + idx
                    };
                    self.stack.push(Value::Int(flat));
                    self.charge(cost);
                    if fuel > 0 {
                        self.ops += u64::from(fuel);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                    self.run_tail(id, tail)?;
                }
                Insn::IndexDimInt {
                    id,
                    dim,
                    first,
                    cost,
                    v,
                    fuel,
                } => {
                    let idx = v;
                    let cell = self.arrays[id as usize]
                        .as_ref()
                        .expect("validated before IndexDimInt");
                    let extent = cell.dims[dim as usize];
                    if idx < 0 || idx >= extent as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx,
                            len: cell.data.len(),
                        });
                    }
                    let flat = if first {
                        idx
                    } else {
                        self.pop().as_i64() * extent as i64 + idx
                    };
                    self.stack.push(Value::Int(flat));
                    self.charge(cost);
                    if fuel > 0 {
                        self.ops += u64::from(fuel);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                }
                Insn::LoadArrayBin(id, op, cost) => self.load_array_bin(id, op, cost)?,
                Insn::IndexDimBinSlotInt {
                    id,
                    dim,
                    first,
                    cost,
                    op,
                    bcost,
                    s,
                    v,
                    fuel,
                    tail,
                } => {
                    let l = self.slots[s as usize];
                    self.charge(bcost);
                    if matches!(l, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let idx = apply_bin(op, l, Value::Int(v))?.as_i64();
                    let cell = self.arrays[id as usize]
                        .as_ref()
                        .expect("validated before IndexDimBinSlotInt");
                    let extent = cell.dims[dim as usize];
                    if idx < 0 || idx >= extent as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx,
                            len: cell.data.len(),
                        });
                    }
                    let flat = if first {
                        idx
                    } else {
                        self.pop().as_i64() * extent as i64 + idx
                    };
                    self.stack.push(Value::Int(flat));
                    self.charge(cost);
                    if fuel > 0 {
                        self.ops += u64::from(fuel);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                    self.run_tail(id, tail)?;
                }
                Insn::IndexDimBinInt {
                    id,
                    dim,
                    first,
                    cost,
                    op,
                    bcost,
                    v,
                    fuel,
                } => {
                    let l = self.pop();
                    self.charge(bcost);
                    if matches!(l, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let idx = apply_bin(op, l, Value::Int(v))?.as_i64();
                    let cell = self.arrays[id as usize]
                        .as_ref()
                        .expect("validated before IndexDimBinInt");
                    let extent = cell.dims[dim as usize];
                    if idx < 0 || idx >= extent as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx,
                            len: cell.data.len(),
                        });
                    }
                    let flat = if first {
                        idx
                    } else {
                        self.pop().as_i64() * extent as i64 + idx
                    };
                    self.stack.push(Value::Int(flat));
                    self.charge(cost);
                    if fuel > 0 {
                        self.ops += u64::from(fuel);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                }
                Insn::Charge2(a, b) => {
                    self.charge(a);
                    self.charge(b);
                }
                Insn::Index2Slot {
                    id,
                    dim,
                    first,
                    c0,
                    s0,
                    f0,
                    c1,
                    s1,
                    f1,
                    tail,
                } => {
                    let (e0, e1, len) = {
                        let cell = self.arrays[id as usize]
                            .as_ref()
                            .expect("validated before Index2Slot");
                        (
                            cell.dims[dim as usize],
                            cell.dims[dim as usize + 1],
                            cell.data.len(),
                        )
                    };
                    let idx0 = self.slots[s0 as usize].as_i64();
                    if idx0 < 0 || idx0 >= e0 as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx0,
                            len,
                        });
                    }
                    let acc = if first {
                        idx0
                    } else {
                        self.pop().as_i64() * e0 as i64 + idx0
                    };
                    self.charge(c0);
                    if f0 > 0 {
                        self.ops += u64::from(f0);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                    let idx1 = self.slots[s1 as usize].as_i64();
                    if idx1 < 0 || idx1 >= e1 as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx1,
                            len,
                        });
                    }
                    self.stack.push(Value::Int(acc * e1 as i64 + idx1));
                    self.charge(c1);
                    if f1 > 0 {
                        self.ops += u64::from(f1);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                    self.run_tail(id, tail)?;
                }
                Insn::Index3BinSlotInt {
                    id,
                    dim,
                    first,
                    op,
                    bcost,
                    s,
                    v,
                    cost,
                    fuel,
                    c0,
                    s0,
                    f0,
                    c1,
                    s1,
                    f1,
                    tail,
                } => {
                    let (e, e0, e1, len) = {
                        let cell = self.arrays[id as usize]
                            .as_ref()
                            .expect("validated before Index3BinSlotInt");
                        (
                            cell.dims[dim as usize],
                            cell.dims[dim as usize + 1],
                            cell.dims[dim as usize + 2],
                            cell.data.len(),
                        )
                    };
                    let l = self.slots[s as usize];
                    self.charge(bcost);
                    if matches!(l, Value::Double(_)) {
                        self.flops += 1;
                    }
                    let idx = apply_bin(op, l, Value::Int(v))?.as_i64();
                    if idx < 0 || idx >= e as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx,
                            len,
                        });
                    }
                    let flat = if first {
                        idx
                    } else {
                        self.pop().as_i64() * e as i64 + idx
                    };
                    self.charge(cost);
                    if fuel > 0 {
                        self.ops += u64::from(fuel);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                    let idx0 = self.slots[s0 as usize].as_i64();
                    if idx0 < 0 || idx0 >= e0 as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx0,
                            len,
                        });
                    }
                    let acc = flat * e0 as i64 + idx0;
                    self.charge(c0);
                    if f0 > 0 {
                        self.ops += u64::from(f0);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                    let idx1 = self.slots[s1 as usize].as_i64();
                    if idx1 < 0 || idx1 >= e1 as i64 {
                        return Err(RuntimeError::OutOfBounds {
                            array: self.exe.array_names[id as usize].clone(),
                            index: idx1,
                            len,
                        });
                    }
                    self.stack.push(Value::Int(acc * e1 as i64 + idx1));
                    self.charge(c1);
                    if f1 > 0 {
                        self.ops += u64::from(f1);
                        if self.ops > self.config.max_ops {
                            return Err(RuntimeError::FuelExhausted);
                        }
                    }
                    self.run_tail(id, tail)?;
                }
                Insn::StoreArrayPop(id) => self.store_array_pop(id),
                Insn::Halt => {
                    // Early return unwinds through open parallel loops
                    // innermost-first, applying each makespan exactly as
                    // the tree's recursive exec_for unwinding does.
                    while let Some(ctx) = self.par_stack.pop() {
                        self.finish_parallel(ctx);
                    }
                    return Ok(());
                }
            }
        }
    }

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("operand stack underflow")
    }

    /// [`Insn::LoadArray`]: pop the flat index, read the element
    /// through the cache, push it.
    #[inline]
    fn load_array(&mut self, id: u32) {
        let flat = self.pop().as_i64() as usize;
        let cell = self.arrays[id as usize]
            .as_ref()
            .expect("validated before array load");
        let addr = cell.base + flat as u64 * 8;
        let is_float = cell.is_float;
        let raw = cell.data[flat];
        let (_, latency) = self.cache.access(addr);
        self.cycles += latency as f64;
        self.stack.push(if is_float {
            Value::Double(raw)
        } else {
            Value::Int(raw as i64)
        });
    }

    /// [`Insn::LoadArrayBin`]: the loaded element is the rhs of a
    /// binary op whose lhs is next on the stack.
    #[inline]
    fn load_array_bin(&mut self, id: u32, op: BinOp, cost: f64) -> Result<(), RuntimeError> {
        let flat = self.pop().as_i64() as usize;
        let cell = self.arrays[id as usize]
            .as_ref()
            .expect("validated before array load");
        let addr = cell.base + flat as u64 * 8;
        let is_float = cell.is_float;
        let raw = cell.data[flat];
        let (_, latency) = self.cache.access(addr);
        self.cycles += latency as f64;
        let r = if is_float {
            Value::Double(raw)
        } else {
            Value::Int(raw as i64)
        };
        let l = self.pop();
        self.charge(cost);
        if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
            self.flops += 1;
        }
        let v = apply_bin(op, l, r)?;
        self.stack.push(v);
        Ok(())
    }

    /// [`Insn::StoreArrayPop`]: pop the flat index and the value, write
    /// through the cache, push nothing.
    #[inline]
    fn store_array_pop(&mut self, id: u32) {
        let flat = self.pop().as_i64() as usize;
        let value = self.pop();
        let cell = self.arrays[id as usize]
            .as_mut()
            .expect("validated before array store");
        let addr = cell.base + flat as u64 * 8;
        cell.data[flat] = if cell.is_float {
            value.as_f64()
        } else {
            value.as_i64() as f64
        };
        let (_, latency) = self.cache.access(addr);
        self.cycles += latency as f64;
    }

    /// Runs the array access fused onto the end of a subscript chain,
    /// right after the chain's last index step pushed the flat index.
    #[inline]
    fn run_tail(&mut self, id: u32, tail: AccessTail) -> Result<(), RuntimeError> {
        match tail {
            AccessTail::None => Ok(()),
            AccessTail::Load => {
                self.load_array(id);
                Ok(())
            }
            AccessTail::LoadBin(op, cost) => self.load_array_bin(id, op, cost),
            AccessTail::StorePop => {
                self.store_array_pop(id);
                Ok(())
            }
        }
    }

    fn charge(&mut self, cost: f64) {
        if self.vector_depth > 0 {
            self.cycles += cost / self.w;
        } else {
            self.cycles += cost;
        }
    }

    /// Stores preserving the slot's current tag (the tree's
    /// `write_scalar` keeps the declared type).
    fn write_slot(&mut self, slot: usize, value: Value) {
        let cell = &mut self.slots[slot];
        *cell = match cell {
            Value::Int(_) => Value::Int(value.as_i64()),
            Value::Double(_) => Value::Double(value.as_f64()),
        };
    }

    /// Walks a dynamic-resolution chain: first live conditional binding
    /// wins, then the static fallback, then `UndefinedVariable`.
    fn resolve_chain(&self, i: u32) -> Result<usize, RuntimeError> {
        let chain = &self.exe.chains[i as usize];
        for &(flag, slot) in &chain.guards {
            if self.slots[flag as usize].truthy() {
                return Ok(slot as usize);
            }
        }
        match chain.fallback {
            Some(slot) => Ok(slot as usize),
            None => Err(RuntimeError::UndefinedVariable(
                self.exe.messages[chain.msg as usize].clone(),
            )),
        }
    }

    /// Replaces the sequentially accumulated body time of a parallel
    /// loop with the scheduled makespan.
    fn finish_parallel(&mut self, ctx: ParCtx) {
        if !ctx.active {
            return;
        }
        let sequential: f64 = ctx.iter_costs.iter().sum();
        let model = OmpModel {
            cost: &self.config.cost,
            cores: self.config.cores,
        };
        let makespan = model.makespan(&ctx.iter_costs, ctx.schedule);
        self.cycles = self.cycles - sequential + makespan;
        self.in_parallel = false;
    }

    fn measurement(&self) -> Measurement {
        Measurement {
            cycles: self.cycles,
            time_ms: self.cycles / (self.config.ghz * 1e6),
            ops: self.ops,
            flops: self.flops,
            cache: self.cache.stats().clone(),
            checksum: self.checksum(),
        }
    }

    fn checksum(&self) -> u64 {
        // Identical to the tree interpreter: FNV over quantized array
        // contents, array *name* order fixed, local arrays skipped.
        let mut ids: Vec<usize> = (0..self.arrays.len())
            .filter(|&i| self.arrays[i].is_some())
            .collect();
        ids.sort_by(|&a, &b| self.exe.array_names[a].cmp(&self.exe.array_names[b]));
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for id in ids {
            let cell = self.arrays[id].as_ref().expect("filtered above");
            if cell.local {
                continue;
            }
            for b in self.exe.array_names[id].as_bytes() {
                hash = (hash ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
            }
            for v in &cell.data {
                let q = (v * 1024.0).round() as i64 as u64;
                hash = (hash ^ q).wrapping_mul(0x100_0000_01b3);
            }
        }
        hash
    }
}
