//! Set-associative, write-allocate, LRU cache hierarchy simulator.
//!
//! Every array access the interpreter performs is charged the latency of
//! the first level that hits; a miss installs the line in every level
//! (inclusive hierarchy). The geometry defaults mirror the paper's Xeon
//! E5-2660 v3.

use std::error::Error;
use std::fmt;

/// A cache configuration the simulator cannot realize.
///
/// Machine descriptions arrive from user-supplied configuration, so a
/// bad geometry must surface as an error the caller can report, not as
/// a process abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfigError(String);

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache configuration: {}", self.0)
    }
}

impl Error for CacheConfigError {}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelConfig {
    /// Human-readable name ("L1", ...).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency in cycles.
    pub latency: u64,
}

/// Hierarchy configuration: ordered levels plus memory latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache line size in bytes.
    pub line: usize,
    /// Levels from closest to furthest.
    pub levels: Vec<LevelConfig>,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
}

impl CacheConfig {
    /// The paper's Xeon: 32 KB L1d (8-way, 4 cycles), 256 KB L2 (8-way,
    /// 12 cycles), 25 MB shared L3 (20-way, 40 cycles), ~200-cycle DRAM.
    pub fn xeon_e5_2660_v3() -> CacheConfig {
        CacheConfig {
            line: 64,
            levels: vec![
                LevelConfig {
                    name: "L1",
                    capacity: 32 * 1024,
                    ways: 8,
                    latency: 4,
                },
                LevelConfig {
                    name: "L2",
                    capacity: 256 * 1024,
                    ways: 8,
                    latency: 12,
                },
                LevelConfig {
                    name: "L3",
                    capacity: 25 * 1024 * 1024,
                    ways: 20,
                    latency: 40,
                },
            ],
            memory_latency: 200,
        }
    }

    /// Scaled-down hierarchy matching the scaled-down benchmark sizes:
    /// same latencies and associativities, capacities divided ~32x.
    pub fn scaled_small() -> CacheConfig {
        CacheConfig {
            line: 64,
            levels: vec![
                LevelConfig {
                    name: "L1",
                    capacity: 4 * 1024,
                    ways: 8,
                    latency: 4,
                },
                LevelConfig {
                    name: "L2",
                    capacity: 32 * 1024,
                    ways: 8,
                    latency: 12,
                },
                LevelConfig {
                    name: "L3",
                    capacity: 512 * 1024,
                    ways: 16,
                    latency: 40,
                },
            ],
            memory_latency: 200,
        }
    }
}

impl CacheConfig {
    /// An aggressively scaled hierarchy for kernels whose grids are
    /// scaled furthest from the paper's (the stencils): keeps the
    /// problem-to-cache ratio, and therefore the tile-size landscape,
    /// closer to the paper's 2000^2-grid-vs-32KB-L1 regime.
    pub fn scaled_tiny() -> CacheConfig {
        CacheConfig {
            line: 64,
            levels: vec![
                LevelConfig {
                    name: "L1",
                    capacity: 1024,
                    ways: 4,
                    latency: 4,
                },
                LevelConfig {
                    name: "L2",
                    capacity: 8 * 1024,
                    ways: 8,
                    latency: 12,
                },
                LevelConfig {
                    name: "L3",
                    capacity: 64 * 1024,
                    ways: 16,
                    latency: 40,
                },
            ],
            memory_latency: 200,
        }
    }
}

impl CacheConfig {
    /// An embedded-class two-level hierarchy: 1 KB 2-way L1 (2 cycles),
    /// 16 KB 4-way L2 (10 cycles), and a comparatively *close* memory
    /// (80 cycles) — small tiles win, but the cliff beyond L1 is gentle.
    pub fn embedded_small() -> CacheConfig {
        CacheConfig {
            line: 32,
            levels: vec![
                LevelConfig {
                    name: "L1",
                    capacity: 1024,
                    ways: 2,
                    latency: 2,
                },
                LevelConfig {
                    name: "L2",
                    capacity: 16 * 1024,
                    ways: 4,
                    latency: 10,
                },
            ],
            memory_latency: 80,
        }
    }

    /// A server-class hierarchy with a large last-level cache relative
    /// to the scaled problem sizes: 4 KB L1, 64 KB L2, 4 MB 16-way L3,
    /// and distant memory (260 cycles). Working sets that thrash the
    /// small profiles fit entirely in this LLC, flattening the tiling
    /// landscape.
    pub fn server_big_llc() -> CacheConfig {
        CacheConfig {
            line: 64,
            levels: vec![
                LevelConfig {
                    name: "L1",
                    capacity: 4 * 1024,
                    ways: 8,
                    latency: 4,
                },
                LevelConfig {
                    name: "L2",
                    capacity: 64 * 1024,
                    ways: 8,
                    latency: 14,
                },
                LevelConfig {
                    name: "L3",
                    capacity: 4 * 1024 * 1024,
                    ways: 16,
                    latency: 50,
                },
            ],
            memory_latency: 260,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig::scaled_small()
    }
}

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Cache level by index (0 = L1).
    Cache(usize),
    /// Main memory.
    Memory,
}

/// Hit/miss counts per level plus memory accesses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `hits[i]` = accesses served by level `i`.
    pub hits: Vec<u64>,
    /// Accesses that went all the way to memory.
    pub memory_accesses: u64,
    /// Total accesses.
    pub accesses: u64,
}

impl CacheStats {
    /// Miss ratio of the first (L1) level.
    pub fn l1_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let l1_hits = self.hits.first().copied().unwrap_or(0);
        1.0 - l1_hits as f64 / self.accesses as f64
    }
}

/// One cache level: per-set LRU stacks of line tags, stored MRU-first in
/// one flat allocation (`ways` slots per set). Hits on recently used
/// lines are found in the first slot or two of the scan, and the LRU
/// reshuffle is a short `copy_within` instead of a `Vec` remove+push.
#[derive(Debug, Clone)]
struct CacheLevel {
    tags: Vec<u64>,
    ways: usize,
    set_shift: u32,
    set_mask: u64,
    tag_shift: u32,
    latency: u64,
}

/// Empty-slot sentinel. A real tag would equal this only for an address
/// near `u64::MAX`, which the allocator (4KB-aligned bases growing from
/// 4096) cannot produce.
const EMPTY_TAG: u64 = u64::MAX;

impl CacheLevel {
    fn new(config: &LevelConfig, line: usize) -> Result<CacheLevel, CacheConfigError> {
        if line == 0 || !line.is_power_of_two() {
            return Err(CacheConfigError(format!(
                "line size must be a nonzero power of two, got {line}"
            )));
        }
        if config.ways == 0 {
            return Err(CacheConfigError(format!(
                "level {} has zero ways",
                config.name
            )));
        }
        let num_sets = (config.capacity / line / config.ways).max(1);
        if !num_sets.is_power_of_two() {
            return Err(CacheConfigError(format!(
                "level {} must have a power-of-two set count: capacity {} / line {line} / ways {} \
                 yields {num_sets} sets",
                config.name, config.capacity, config.ways
            )));
        }
        Ok(CacheLevel {
            tags: vec![EMPTY_TAG; num_sets * config.ways],
            ways: config.ways,
            set_shift: line.trailing_zeros(),
            set_mask: (num_sets - 1) as u64,
            tag_shift: ((num_sets - 1) as u64).count_ones(),
            latency: config.latency,
        })
    }

    /// Returns `true` on hit. Either way the line ends up MRU.
    #[inline]
    fn access(&mut self, addr: u64) -> bool {
        let line_addr = addr >> self.set_shift;
        let set_idx = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.tag_shift;
        let start = set_idx * self.ways;
        let set = &mut self.tags[start..start + self.ways];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU (front); slots before `pos` age by one.
            set.copy_within(..pos, 1);
            set[0] = tag;
            true
        } else {
            // Install at MRU; the LRU tag (or an empty slot) falls off
            // the end.
            set.copy_within(..self.ways - 1, 1);
            set[0] = tag;
            false
        }
    }
}

/// The simulated hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    memory_latency: u64,
    stats: CacheStats,
    line: usize,
}

impl CacheHierarchy {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] when a level's geometry does not
    /// yield a power-of-two set count (the set-index mask would alias)
    /// or the line size is not a power of two.
    pub fn new(config: &CacheConfig) -> Result<CacheHierarchy, CacheConfigError> {
        if config.line == 0 || !config.line.is_power_of_two() {
            return Err(CacheConfigError(format!(
                "line size must be a nonzero power of two, got {}",
                config.line
            )));
        }
        let levels: Vec<CacheLevel> = config
            .levels
            .iter()
            .map(|l| CacheLevel::new(l, config.line))
            .collect::<Result<_, _>>()?;
        Ok(CacheHierarchy {
            stats: CacheStats {
                hits: vec![0; levels.len()],
                ..CacheStats::default()
            },
            levels,
            memory_latency: config.memory_latency,
            line: config.line,
        })
    }

    /// Simulates one access; returns (serving level, latency in cycles).
    ///
    /// The line is installed in every missing level (inclusive).
    pub fn access(&mut self, addr: u64) -> (Level, u64) {
        self.stats.accesses += 1;
        if let Some(first) = self.levels.first() {
            // MRU fast path: the line already sits in the first slot of
            // its L1 set, so this is an L1 hit whose move-to-MRU is a
            // no-op and the lower levels stay untouched — identical
            // stats and latency to the full search below. This covers
            // both same-line repeats and interleaved streams mapping to
            // different sets (the common loop-kernel pattern).
            let line_addr = addr >> first.set_shift;
            let set_idx = (line_addr & first.set_mask) as usize;
            if first.tags[set_idx * first.ways] == line_addr >> first.tag_shift {
                self.stats.hits[0] += 1;
                return (Level::Cache(0), first.latency);
            }
        }
        let mut hit_level = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) {
                hit_level = Some(i);
                break;
            }
        }
        match hit_level {
            Some(i) => {
                self.stats.hits[i] += 1;
                // Charge the hit level's latency (the common
                // simplification: lookup costs of upper levels are part
                // of that latency figure).
                (Level::Cache(i), self.levels[i].latency)
            }
            None => {
                self.stats.memory_accesses += 1;
                (Level::Memory, self.memory_latency)
            }
        }
    }

    /// Cache line size in bytes.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        // 2 sets x 2 ways x 64B lines = 256B L1; 1KB L2.
        CacheHierarchy::new(&CacheConfig {
            line: 64,
            levels: vec![
                LevelConfig {
                    name: "L1",
                    capacity: 256,
                    ways: 2,
                    latency: 4,
                },
                LevelConfig {
                    name: "L2",
                    capacity: 1024,
                    ways: 4,
                    latency: 12,
                },
            ],
            memory_latency: 100,
        })
        .unwrap()
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0), (Level::Memory, 100));
        assert_eq!(c.access(8), (Level::Cache(0), 4)); // same line
        assert_eq!(c.access(64), (Level::Memory, 100));
        assert_eq!(c.access(0), (Level::Cache(0), 4));
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = tiny();
        // Set 0 holds lines with (line_addr & 1) == 0: addrs 0, 128, 256.
        c.access(0);
        c.access(128);
        c.access(256); // evicts line 0 from L1
        let (level, _) = c.access(0);
        assert_eq!(level, Level::Cache(1), "line 0 should fall to L2");
        // And 128 was MRU after miss installation, then 256; so 128 is
        // now LRU: accessing it after 0's reinstall evicts 256... just
        // confirm stats count everything.
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn spatial_locality_within_a_line() {
        let mut c = tiny();
        c.access(0);
        for b in 1..8 {
            let (level, _) = c.access(b * 8);
            assert_eq!(level, Level::Cache(0), "offset {b} same line");
        }
        assert_eq!(c.stats().hits[0], 7);
        assert_eq!(c.stats().memory_accesses, 1);
    }

    #[test]
    fn sequential_scan_beats_random_stride() {
        // A 4KB scan with 64B lines: 1 miss per 8 doubles.
        let mut seq = CacheHierarchy::new(&CacheConfig::scaled_small()).unwrap();
        for i in 0..512u64 {
            seq.access(i * 8);
        }
        let seq_misses = seq.stats().memory_accesses;
        let mut strided = CacheHierarchy::new(&CacheConfig::scaled_small()).unwrap();
        for i in 0..512u64 {
            strided.access((i * 8192) % (1 << 22));
        }
        let strided_misses = strided.stats().memory_accesses;
        assert!(
            seq_misses * 4 < strided_misses,
            "{seq_misses} vs {strided_misses}"
        );
    }

    #[test]
    fn non_power_of_two_sets_is_an_error_not_a_panic() {
        // 48 KB / 64 B line / 8 ways = 96 sets: not a power of two.
        let err = CacheHierarchy::new(&CacheConfig {
            line: 64,
            levels: vec![LevelConfig {
                name: "L1",
                capacity: 48 * 1024,
                ways: 8,
                latency: 4,
            }],
            memory_latency: 100,
        })
        .unwrap_err();
        assert!(err.to_string().contains("power-of-two set count"), "{err}");

        let err = CacheHierarchy::new(&CacheConfig {
            line: 48,
            levels: vec![],
            memory_latency: 100,
        })
        .unwrap_err();
        assert!(err.to_string().contains("line size"), "{err}");
    }

    #[test]
    fn last_line_memo_counts_stats_identically() {
        // Interleave repeats (memo path) with conflicting lines (full
        // path) and check against hand-computed stats.
        let mut c = tiny();
        assert_eq!(c.access(0), (Level::Memory, 100)); // cold miss
        assert_eq!(c.access(8), (Level::Cache(0), 4)); // memo: same line
        assert_eq!(c.access(56), (Level::Cache(0), 4)); // memo again
        assert_eq!(c.access(128), (Level::Memory, 100)); // new line
        assert_eq!(c.access(0), (Level::Cache(0), 4)); // full path L1 hit
        assert_eq!(c.access(0), (Level::Cache(0), 4)); // memo
                                                       // Evict line 0 from L1 (2-way set 0): lines 128 and 256 win.
        c.access(128);
        c.access(256);
        let (level, _) = c.access(0);
        assert_eq!(level, Level::Cache(1), "line 0 fell to L2 despite memo");
        assert_eq!(c.stats().accesses, 9);
        assert_eq!(c.stats().hits[0], 5);
        assert_eq!(c.stats().hits[1], 1);
        assert_eq!(c.stats().memory_accesses, 3);
    }

    #[test]
    fn miss_ratio_is_computed() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert!((c.stats().l1_miss_ratio() - 0.5).abs() < 1e-9);
    }
}
