//! Loop fusion — `Pips.Fusion`.
//!
//! Fuses two adjacent sibling loops with identical iteration spaces into
//! one loop, improving locality when both bodies touch the same data.

use locus_srcir::ast::{Stmt, StmtKind};
use locus_srcir::index::HierIndex;
use locus_srcir::visit::substitute_ident;

use locus_analysis::loops::canonicalize;

use crate::{TransformError, TransformResult};

/// Fuses the loop at `first` with its immediately following sibling.
///
/// Both loops must be canonical with syntactically identical bounds and
/// step; the second loop's induction variable is renamed to the first's.
/// When `check_legality` is set, the module refuses when fusing would
/// create a dependence from the second body back into the first (a
/// fusion-preventing dependence).
///
/// # Errors
///
/// * [`TransformError::Error`] when the target or its sibling is missing
///   or not canonical, or iteration spaces differ.
/// * [`TransformError::Illegal`] when the legality check refuses.
pub fn fuse(root: &mut Stmt, first: &HierIndex, check_legality: bool) -> TransformResult {
    let parent_idx = first
        .parent()
        .ok_or_else(|| TransformError::error("cannot fuse the region root"))?;
    let position = *first.0.last().expect("non-empty index");

    // Validate on immutable data first.
    {
        let parent = parent_idx
            .resolve(root)
            .ok_or_else(|| TransformError::error(format!("no statement at `{parent_idx}`")))?;
        let siblings = parent.body_stmts();
        let a = siblings
            .get(position)
            .ok_or_else(|| TransformError::error(format!("no statement at `{first}`")))?;
        let b = siblings.get(position + 1).ok_or_else(|| {
            TransformError::error("loop to fuse has no following sibling statement")
        })?;
        let ca =
            canonicalize(a).ok_or_else(|| TransformError::error("first loop is not canonical"))?;
        let cb =
            canonicalize(b).ok_or_else(|| TransformError::error("second loop is not canonical"))?;
        if ca.lower != cb.lower
            || ca.upper != cb.upper
            || ca.inclusive != cb.inclusive
            || ca.step != cb.step
        {
            return Err(TransformError::error(
                "loops have different iteration spaces",
            ));
        }
    }

    if check_legality {
        crate::require_legal(locus_verify::legal(
            root,
            &locus_verify::TransformStep::Fuse {
                first: first.clone(),
            },
        ))?;
    }

    // Build the fused loop.
    let fused = {
        let parent = parent_idx.resolve(root).expect("validated");
        let siblings = parent.body_stmts();
        let a = &siblings[position];
        let b = &siblings[position + 1];
        let ca = canonicalize(a).expect("validated");
        let cb = canonicalize(b).expect("validated");

        let mut body = a.as_for().expect("loop").body.body_stmts().to_vec();
        let mut second_body = b.as_for().expect("loop").body.body_stmts().to_vec();
        if ca.var != cb.var {
            for s in &mut second_body {
                substitute_ident(s, &cb.var, &locus_srcir::ast::Expr::ident(&ca.var));
            }
        }
        body.extend(second_body);

        let mut fused = a.clone();
        *fused.as_for_mut().expect("loop").body = Stmt::block(body);
        fused
    };

    // Commit: replace the first loop, remove the second.
    let parent = parent_idx.resolve_mut(root).expect("validated");
    match &mut parent.kind {
        StmtKind::Block(stmts) => {
            stmts[position] = fused;
            stmts.remove(position + 1);
        }
        StmtKind::For(f) => match &mut f.body.kind {
            StmtKind::Block(stmts) => {
                stmts[position] = fused;
                stmts.remove(position + 1);
            }
            _ => unreachable!("sibling existence implies a block body"),
        },
        StmtKind::While { body, .. } => match &mut body.kind {
            StmtKind::Block(stmts) => {
                stmts[position] = fused;
                stmts.remove(position + 1);
            }
            _ => unreachable!("sibling existence implies a block body"),
        },
        _ => {
            return Err(TransformError::error(
                "parent statement cannot hold fused loops",
            ))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_analysis::loops::all_loops;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let f = p.functions().next().unwrap();
        Stmt::block(f.body.clone())
    }

    #[test]
    fn fuses_identical_headers() {
        let mut root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i = 0; i < 64; i++) A[i] = 1.0;
            for (int j = 0; j < 64; j++) B[j] = A[j] * 2.0;
            }"#,
        );
        fuse(&mut root, &"0.0".parse().unwrap(), true).unwrap();
        assert_eq!(all_loops(&root).len(), 1);
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("B[i] = A[i] * 2.0"), "printed:\n{printed}");
    }

    #[test]
    fn refuses_fusion_preventing_dependence() {
        // Second loop reads A[i+1], which the first writes at a later
        // iteration once fused.
        let mut root = region(
            r#"void f(int n, double A[66], double B[64]) {
            for (int i = 0; i < 64; i++) A[i] = 1.0;
            for (int j = 0; j < 64; j++) B[j] = A[j + 1];
            }"#,
        );
        assert!(matches!(
            fuse(&mut root, &"0.0".parse().unwrap(), true),
            Err(TransformError::Illegal(_))
        ));
        // Forced fusion is possible.
        fuse(&mut root, &"0.0".parse().unwrap(), false).unwrap();
        assert_eq!(all_loops(&root).len(), 1);
    }

    #[test]
    fn backward_reads_are_fusable() {
        // Second loop reads A[j - 1]: after fusion the dependence is
        // still forward (write in earlier iteration).
        let mut root = region(
            r#"void f(int n, double A[66], double B[64]) {
            for (int i = 1; i < 64; i++) A[i] = 1.0;
            for (int j = 1; j < 64; j++) B[j] = A[j - 1];
            }"#,
        );
        fuse(&mut root, &"0.0".parse().unwrap(), true).unwrap();
        assert_eq!(all_loops(&root).len(), 1);
    }

    #[test]
    fn rejects_different_spaces() {
        let mut root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i = 0; i < 64; i++) A[i] = 1.0;
            for (int j = 0; j < 32; j++) B[j] = 2.0;
            }"#,
        );
        assert!(matches!(
            fuse(&mut root, &"0.0".parse().unwrap(), true),
            Err(TransformError::Error(_))
        ));
    }

    #[test]
    fn rejects_missing_sibling() {
        let mut root = region(
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < 64; i++) A[i] = 1.0;
            }"#,
        );
        assert!(fuse(&mut root, &"0.0".parse().unwrap(), true).is_err());
    }
}
