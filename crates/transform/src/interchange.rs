//! Loop interchange (permutation) — `RoseLocus.Interchange(order=[...])`.

use locus_srcir::ast::{Stmt, StmtKind};

use locus_analysis::loops::canonicalize;

use crate::{TransformError, TransformResult};

/// Permutes the loops of the perfect nest rooted at `root`.
///
/// `order` lists old 0-based loop levels in their new order, so
/// `order=[0,2,1]` swaps the second and third loops (the paper's Fig. 7
/// turns the `i,j,k` matmul nest into `i,k,j`). The permutation may cover
/// a prefix of the nest: unlisted deeper loops stay in place.
///
/// When `check_legality` is set, the module consults the dependence
/// analysis and refuses permutations that would reverse a dependence; per
/// the paper's philosophy, a caller who knows better may pass `false`.
///
/// # Errors
///
/// * [`TransformError::Error`] when `order` is not a permutation, the
///   nest is not perfect/canonical deep enough, or a loop bound
///   references a loop the permutation would move inside it (triangular
///   bands permute fine as long as every referenced loop stays outer).
/// * [`TransformError::Illegal`] when the legality check refuses.
pub fn interchange(root: &mut Stmt, order: &[usize], check_legality: bool) -> TransformResult {
    let depth = order.len();
    if depth == 0 {
        return Ok(());
    }
    let mut sorted = order.to_vec();
    sorted.sort_unstable();
    if sorted != (0..depth).collect::<Vec<_>>() {
        return Err(TransformError::error(format!(
            "order {order:?} is not a permutation of 0..{depth}"
        )));
    }
    // The identity permutation is a no-op and is always legal — even on
    // nests (triangular, imperfect) the restructuring path rejects.
    if order.iter().enumerate().all(|(i, &o)| i == o) {
        return Ok(());
    }

    // Gather the band: `depth` perfectly nested loops from the root.
    let mut vars = Vec::new();
    {
        let mut cur: &Stmt = root;
        for level in 0..depth {
            let canon = canonicalize(cur).ok_or_else(|| {
                TransformError::error(format!("loop at level {level} is not canonical"))
            })?;
            vars.push(canon.var.clone());
            if level + 1 < depth {
                let f = cur.as_for().expect("canonical loop is a for");
                let body = f.body.body_stmts();
                if body.len() != 1 || !body[0].is_for() {
                    return Err(TransformError::error(format!(
                        "nest is not perfect at level {level}"
                    )));
                }
                cur = &body[0];
            }
        }
    }

    // Constructibility on (possibly triangular) bands: a bound of loop
    // `l` that references loop `m`'s variable is only well-defined after
    // the permutation if `m` stays *outside* `l` — the header move never
    // rewrites bounds. Rectangular bands trivially pass.
    {
        let mut cur: &Stmt = root;
        for level in 0..depth {
            let canon = canonicalize(cur).expect("checked above");
            let pos_l = order.iter().position(|&o| o == level).expect("permutation");
            for bound in [&canon.lower, &canon.upper] {
                let mut refs: Vec<usize> = Vec::new();
                locus_srcir::visit::walk_exprs(bound, &mut |e| {
                    if let locus_srcir::ast::Expr::Ident(n) = e {
                        if let Some(m) = vars.iter().position(|v| v == n && v != &canon.var) {
                            if !refs.contains(&m) {
                                refs.push(m);
                            }
                        }
                    }
                });
                for m in refs {
                    let pos_m = order.iter().position(|&o| o == m).expect("permutation");
                    if pos_m > pos_l {
                        return Err(TransformError::error(format!(
                            "band is not rectangular under permutation {order:?}: the \
                             bound of `{}` references `{}`, which the permutation moves \
                             inside it",
                            canon.var, vars[m]
                        )));
                    }
                }
            }
            if level + 1 < depth {
                cur = &cur.as_for().unwrap().body.body_stmts()[0];
            }
        }
    }

    if check_legality {
        crate::require_legal(locus_verify::legal(
            root,
            &locus_verify::TransformStep::Interchange {
                order: order.to_vec(),
            },
        ))?;
    }

    // Detach the `depth` loop headers and the innermost body, permute,
    // and rebuild.
    let mut headers = Vec::with_capacity(depth);
    let mut cur = std::mem::replace(root, Stmt::new(StmtKind::Empty));
    for level in 0..depth {
        let pragmas = cur.pragmas.clone();
        let StmtKind::For(f) = cur.kind else {
            unreachable!("validated as a loop above")
        };
        let body = *f.body;
        headers.push((
            pragmas,
            locus_srcir::ast::ForLoop {
                init: f.init,
                cond: f.cond,
                step: f.step,
                body: Box::new(Stmt::new(StmtKind::Empty)), // placeholder
            },
        ));
        if level + 1 < depth {
            let StmtKind::Block(mut stmts) = body.kind else {
                unreachable!("perfect nest bodies are blocks")
            };
            cur = stmts.remove(0);
        } else {
            cur = body;
        }
    }
    let innermost_body = cur;

    let mut rebuilt = innermost_body;
    for (new_level, &old_level) in order.iter().enumerate().rev() {
        let (pragmas, mut header) = headers[old_level].clone();
        let body = if matches!(rebuilt.kind, StmtKind::Block(_)) {
            rebuilt
        } else {
            Stmt::block(vec![rebuilt])
        };
        header.body = Box::new(body);
        let mut stmt = Stmt::new(StmtKind::For(header));
        // Region pragmas stay on the (new) outermost loop; every other
        // pragma (ivdep, omp, ...) travels with its own loop.
        let own: Vec<_> = pragmas
            .iter()
            .filter(|p| p.region_id().is_none())
            .cloned()
            .collect();
        stmt.pragmas = if new_level == 0 {
            headers[0]
                .0
                .iter()
                .filter(|p| p.region_id().is_some())
                .cloned()
                .chain(own)
                .collect()
        } else {
            own
        };
        rebuilt = stmt;
    }
    *root = rebuilt;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_analysis::loops::perfect_nest_loops;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn matmul() -> Stmt {
        region(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        )
    }

    #[test]
    fn interchanges_matmul_to_ikj() {
        let mut root = matmul();
        interchange(&mut root, &[0, 2, 1], true).unwrap();
        let vars: Vec<String> = perfect_nest_loops(&root)
            .into_iter()
            .map(|l| l.var)
            .collect();
        assert_eq!(vars, vec!["i", "k", "j"]);
    }

    #[test]
    fn full_reversal() {
        let mut root = matmul();
        interchange(&mut root, &[2, 1, 0], true).unwrap();
        let vars: Vec<String> = perfect_nest_loops(&root)
            .into_iter()
            .map(|l| l.var)
            .collect();
        assert_eq!(vars, vec!["k", "j", "i"]);
    }

    #[test]
    fn body_is_preserved() {
        let mut root = matmul();
        let before = locus_srcir::print_stmt(&root);
        interchange(&mut root, &[1, 0, 2], true).unwrap();
        let after = locus_srcir::print_stmt(&root);
        assert!(after.contains("C[i][j] = C[i][j] + A[i][k] * B[k][j]"));
        assert_ne!(before, after);
    }

    #[test]
    fn identity_permutation_is_noop_semantically() {
        let mut root = matmul();
        let before = locus_srcir::print_stmt(&root);
        interchange(&mut root, &[0, 1, 2], true).unwrap();
        assert_eq!(before, locus_srcir::print_stmt(&root));
    }

    #[test]
    fn identity_permutation_is_legal_on_triangular_nests() {
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = i; j < n; j++)
                    A[i][j] = 1.0;
            }"#,
        );
        interchange(&mut root, &[0, 1], true).unwrap();
        assert!(matches!(
            interchange(&mut root, &[1, 0], true),
            Err(TransformError::Error(_))
        ));
    }

    #[test]
    fn rejects_non_permutation() {
        let mut root = matmul();
        assert!(matches!(
            interchange(&mut root, &[0, 0, 1], true),
            Err(TransformError::Error(_))
        ));
    }

    #[test]
    fn refuses_illegal_interchange() {
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 0; j < n - 1; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        );
        assert!(matches!(
            interchange(&mut root, &[1, 0], true),
            Err(TransformError::Illegal(_))
        ));
        // Forcing skips the check.
        interchange(&mut root, &[1, 0], false).unwrap();
        let vars: Vec<String> = perfect_nest_loops(&root)
            .into_iter()
            .map(|l| l.var)
            .collect();
        assert_eq!(vars, vec!["j", "i"]);
    }

    #[test]
    fn rejects_imperfect_nest() {
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++) {
                A[i][0] = 0.0;
                for (int j = 0; j < n; j++)
                    A[i][j] = 1.0;
            }
            }"#,
        );
        assert!(matches!(
            interchange(&mut root, &[1, 0], true),
            Err(TransformError::Error(_))
        ));
    }

    #[test]
    fn rejects_triangular_band() {
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = i; j < n; j++)
                    A[i][j] = 1.0;
            }"#,
        );
        assert!(matches!(
            interchange(&mut root, &[1, 0], true),
            Err(TransformError::Error(_))
        ));
    }

    #[test]
    fn permutes_triangular_band_when_referenced_loops_stay_outer() {
        // The SYRK recipe shape: `j <= i` references `i`, and the
        // permutation [0, 2, 1] keeps `i` outermost, so the headers move
        // without rewriting any bound.
        let mut root = region(
            r#"void f(int n, double C[8][8], double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j <= i; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * A[j][k];
            }"#,
        );
        interchange(&mut root, &[0, 2, 1], true).unwrap();
        let vars: Vec<String> = perfect_nest_loops(&root)
            .into_iter()
            .map(|l| l.var)
            .collect();
        assert_eq!(vars, vec!["i", "k", "j"]);
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("j <= i"), "{printed}");
    }

    #[test]
    fn region_pragma_stays_on_outermost_loop() {
        let mut root = matmul();
        root.pragmas
            .push(locus_srcir::ast::Pragma::LocusLoop("matmul".into()));
        interchange(&mut root, &[2, 0, 1], true).unwrap();
        assert_eq!(root.region_id(), Some("matmul"));
    }
}
