//! Loop tiling — `RoseLocus.Tiling` / `Pips.Tiling`.
//!
//! Tiles the band of perfectly nested loops rooted at the target: each of
//! the `factors.len()` loops is strip-mined and the strip (tile) loops
//! are interchanged outward, producing the classic
//! `tile-loops... point-loops...` structure. Non-divisible bounds are
//! handled with `min()` guards, so the transformation is exact for any
//! trip count.
//!
//! Non-rectangular (triangular, shifted) bands are tiled over their
//! rectangular *bound hull* (see `locus_analysis::polyhedron::band_hull`):
//! the tile loops sweep the hull, band-variable-free by construction, and
//! the point loops clip each tile back to the true domain with `max()` /
//! `min()` guards — every original iteration runs exactly once, in tile
//! order.

use locus_srcir::ast::{AssignOp, Expr, ForLoop, Stmt, StmtKind};
use locus_srcir::builder::{max_expr, min_expr};
use locus_srcir::index::HierIndex;

use locus_analysis::loops::{canonicalize, CanonLoop};
use locus_analysis::polyhedron::{band_hull, HullBounds};

use crate::selector::fresh_name;
use crate::{TransformError, TransformResult};

/// Tiles `factors.len()` perfectly nested loops starting at `target`.
///
/// `factors[i]` is the tile size of the `i`-th loop of the band
/// (outermost first). When `check_legality` is set, the band must be
/// fully permutable according to the dependence analysis.
///
/// # Errors
///
/// * [`TransformError::Error`] for non-positive factors, non-canonical or
///   imperfect nests, or non-rectangular bands.
/// * [`TransformError::Illegal`] when the legality check refuses.
pub fn tile(
    root: &mut Stmt,
    target: &HierIndex,
    factors: &[i64],
    check_legality: bool,
) -> TransformResult {
    if factors.is_empty() {
        return Ok(());
    }
    if factors.iter().any(|&f| f <= 0) {
        return Err(TransformError::error(format!(
            "tile factors must be positive, got {factors:?}"
        )));
    }

    // Validate and gather the band before mutating anything. A band
    // whose bounds reference other band variables is tiled over its
    // rectangular hull; when no hull is derivable the band stays
    // untileable exactly as before.
    let hull: Option<Vec<HullBounds>> = {
        let loop_stmt = target
            .resolve(root)
            .ok_or_else(|| TransformError::error(format!("no statement at `{target}`")))?;
        let band = collect_band(loop_stmt, factors.len())?;
        let hull = if check_rectangular(&band).is_ok() {
            None
        } else {
            Some(band_hull(&band).ok_or_else(|| {
                TransformError::error(
                    "band is not rectangular: a bound references a band variable \
                     and no affine tile hull is derivable",
                )
            })?)
        };
        if check_legality {
            crate::require_legal(locus_verify::legal(
                root,
                &locus_verify::TransformStep::Tile {
                    target: target.clone(),
                    width: factors.len(),
                },
            ))?;
        }
        hull
    };

    let fresh_names: Vec<String> = {
        let loop_stmt = target.resolve(root).expect("validated above");
        let band = collect_band(loop_stmt, factors.len())?;
        band.iter()
            .map(|l| fresh_name(root, &format!("{}_t", l.var)))
            .collect()
    };

    let loop_stmt = target.resolve_mut(root).expect("validated above");
    let band = collect_band(loop_stmt, factors.len())?;

    // Detach the innermost body of the band.
    let innermost_body = {
        let mut cur: &Stmt = loop_stmt;
        for _ in 0..factors.len() - 1 {
            cur = &cur.as_for().expect("band loop").body.body_stmts()[0];
        }
        (*cur.as_for().expect("band loop").body).clone()
    };

    // Point loops, innermost last. On the hull path a point loop whose
    // original lower bound references another band variable starts at
    // `max(lower, tile_var)` — the tile may begin before the triangular
    // domain does.
    let mut rebuilt = innermost_body;
    for (i, canon) in band.iter().enumerate().rev() {
        let tile_var = &fresh_names[i];
        let size = factors[i] * canon.step;
        let start = if hull.is_some() && refs_band_var(&canon.lower, &band, &canon.var) {
            max_expr(canon.lower.clone(), Expr::ident(tile_var))
        } else {
            Expr::ident(tile_var)
        };
        let init = if canon.declares_var {
            Stmt::new(StmtKind::Decl {
                ty: locus_srcir::ast::Type::Int,
                name: canon.var.clone(),
                dims: Vec::new(),
                init: Some(start),
            })
        } else {
            Stmt::expr(Expr::assign(Expr::ident(&canon.var), start))
        };
        let cond = Expr::bin(
            locus_srcir::ast::BinOp::Lt,
            Expr::ident(&canon.var),
            min_expr(
                canon.exclusive_upper(),
                Expr::bin(
                    locus_srcir::ast::BinOp::Add,
                    Expr::ident(tile_var),
                    Expr::int(size),
                ),
            ),
        );
        let step = Expr::Assign {
            op: AssignOp::AddAssign,
            lhs: Box::new(Expr::ident(&canon.var)),
            rhs: Box::new(Expr::int(canon.step)),
        };
        let body = if matches!(rebuilt.kind, StmtKind::Block(_)) {
            rebuilt
        } else {
            Stmt::block(vec![rebuilt])
        };
        rebuilt = Stmt::new(StmtKind::For(ForLoop {
            init: Some(Box::new(init)),
            cond: Some(cond),
            step: Some(step),
            body: Box::new(body),
        }));
    }

    // Tile loops, outermost first. Levels whose bounds reference another
    // band variable sweep their hull bounds instead — those are free of
    // band variables, so the tile band is always rectangular.
    for (i, canon) in band.iter().enumerate().rev() {
        let tile_var = &fresh_names[i];
        let size = factors[i] * canon.step;
        let (lo, hi) = match &hull {
            Some(h)
                if refs_band_var(&canon.lower, &band, &canon.var)
                    || refs_band_var(&canon.upper, &band, &canon.var) =>
            {
                let lo = h[i]
                    .lowers
                    .iter()
                    .map(|a| a.to_expr())
                    .reduce(max_expr)
                    .expect("hull has a lower bound");
                let hi = h[i]
                    .uppers_excl
                    .iter()
                    .map(|a| a.to_expr())
                    .reduce(min_expr)
                    .expect("hull has an upper bound");
                (lo, hi)
            }
            _ => (canon.lower.clone(), canon.exclusive_upper()),
        };
        let tile = locus_srcir::builder::for_loop(tile_var, lo, hi, size, vec![rebuilt]);
        rebuilt = tile;
    }

    rebuilt.pragmas = loop_stmt.pragmas.clone();
    *loop_stmt = rebuilt;
    Ok(())
}

/// Collects `depth` perfectly nested canonical loops starting at `stmt`.
pub(crate) fn collect_band(stmt: &Stmt, depth: usize) -> TransformResult<Vec<CanonLoop>> {
    let mut out = Vec::with_capacity(depth);
    let mut cur = stmt;
    for level in 0..depth {
        let canon = canonicalize(cur).ok_or_else(|| {
            TransformError::error(format!("loop at band level {level} is not canonical"))
        })?;
        out.push(canon);
        if level + 1 < depth {
            let body = cur.as_for().expect("canonical loop").body.body_stmts();
            if body.len() != 1 || !body[0].is_for() {
                return Err(TransformError::error(format!(
                    "band is not perfectly nested at level {level}"
                )));
            }
            cur = &body[0];
        }
    }
    Ok(out)
}

/// `true` when `bound` references the variable of some band loop other
/// than `own`.
fn refs_band_var(bound: &Expr, band: &[CanonLoop], own: &str) -> bool {
    let mut bad = false;
    locus_srcir::visit::walk_exprs(bound, &mut |e| {
        if let Expr::Ident(n) = e {
            if n != own && band.iter().any(|l| &l.var == n) {
                bad = true;
            }
        }
    });
    bad
}

/// Ensures no band loop bound references another band loop's variable.
pub(crate) fn check_rectangular(band: &[CanonLoop]) -> TransformResult {
    for canon in band {
        for bound in [&canon.lower, &canon.upper] {
            let mut bad = false;
            locus_srcir::visit::walk_exprs(bound, &mut |e| {
                if let Expr::Ident(n) = e {
                    if band.iter().any(|l| &l.var == n) {
                        bad = true;
                    }
                }
            });
            if bad {
                return Err(TransformError::error(
                    "band is not rectangular: a bound references a band variable",
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_analysis::loops::{all_loops, perfect_nest_loops};
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn matmul() -> Stmt {
        region(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        )
    }

    #[test]
    fn tiles_matmul_into_six_loops() {
        let mut root = matmul();
        tile(&mut root, &HierIndex::root(), &[4, 4, 8], true).unwrap();
        assert_eq!(all_loops(&root).len(), 6);
        let nest = perfect_nest_loops(&root);
        assert_eq!(nest.len(), 6);
        assert_eq!(nest[0].var, "i_t");
        assert_eq!(nest[1].var, "j_t");
        assert_eq!(nest[2].var, "k_t");
        assert_eq!(nest[3].var, "i");
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("min("), "guards expected:\n{printed}");
    }

    #[test]
    fn two_level_tiling_as_in_fig7() {
        let mut root = matmul();
        tile(&mut root, &HierIndex::root(), &[16, 16, 16], true).unwrap();
        // The point band starts at "0.0.0.0" exactly as in the paper.
        let point_band: HierIndex = "0.0.0.0".parse().unwrap();
        tile(&mut root, &point_band, &[4, 4, 4], true).unwrap();
        assert_eq!(all_loops(&root).len(), 9);
    }

    #[test]
    fn rejects_illegal_tiling() {
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 0; j < n - 1; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        );
        assert!(matches!(
            tile(&mut root, &HierIndex::root(), &[4, 4], true),
            Err(TransformError::Illegal(_))
        ));
        // Forced tiling proceeds.
        tile(&mut root, &HierIndex::root(), &[4, 4], false).unwrap();
        assert_eq!(all_loops(&root).len(), 4);
    }

    #[test]
    fn rejects_bad_factors() {
        let mut root = matmul();
        assert!(tile(&mut root, &HierIndex::root(), &[0, 4, 4], true).is_err());
        assert!(tile(&mut root, &HierIndex::root(), &[-2], true).is_err());
    }

    #[test]
    fn tiles_triangular_band_over_its_hull() {
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = i; j < n; j++)
                    A[i][j] = 1.0;
            }"#,
        );
        tile(&mut root, &HierIndex::root(), &[4, 4], true).unwrap();
        assert_eq!(all_loops(&root).len(), 4);
        let printed = locus_srcir::print_stmt(&root);
        // The point loop for `j` starts at `max(i, j_t)`; the tile loop
        // for `j_t` sweeps the hull `0 <= j_t < n`, free of `i`.
        assert!(printed.contains("max(i, j_t)"), "{printed}");
        assert!(
            printed.contains("for (int j_t = 0; j_t < n; j_t += 4)"),
            "{printed}"
        );
    }

    #[test]
    fn triangular_tiling_visits_exactly_the_original_points() {
        // Enumerate the (i, j) points both nests visit for a fixed n by
        // walking the loop structure symbolically in Rust.
        let mut root = region(
            r#"void f(int n, double A[16][16]) {
            for (int i = 0; i < 12; i++)
                for (int j = 0; j <= i; j++)
                    A[i][j] = 1.0;
            }"#,
        );
        tile(&mut root, &HierIndex::root(), &[5, 3], true).unwrap();
        let printed = locus_srcir::print_stmt(&root);
        let mut tiled: Vec<(i64, i64)> = Vec::new();
        for i_t in (0..12).step_by(5) {
            for j_t in (0..12).step_by(3) {
                for i in i_t..(i_t + 5).min(12) {
                    let j_hi = (i + 1).min(j_t + 3);
                    for j in j_t.max(0)..j_hi {
                        tiled.push((i, j));
                    }
                }
            }
        }
        let mut orig: Vec<(i64, i64)> = Vec::new();
        for i in 0..12 {
            for j in 0..=i {
                orig.push((i, j));
            }
        }
        tiled.sort_unstable();
        orig.sort_unstable();
        assert_eq!(tiled, orig, "{printed}");
        // And the printed structure matches the model walked above.
        assert!(printed.contains("j < min(i + 1, j_t + 3)"), "{printed}");
    }

    #[test]
    fn rejects_triangular_band_without_a_hull() {
        // A non-unit step keeps the hull underivable, so the refusal is
        // the legacy structural error.
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = i; j < n; j += 2)
                    A[i][j] = 1.0;
            }"#,
        );
        assert!(matches!(
            tile(&mut root, &HierIndex::root(), &[4, 4], false),
            Err(TransformError::Error(_))
        ));
    }

    #[test]
    fn single_loop_tiling_is_strip_mining() {
        let mut root =
            region("void f(int n, double A[64]) { for (int i = 0; i < n; i++) A[i] = 0.0; }");
        tile(&mut root, &HierIndex::root(), &[8], true).unwrap();
        let nest = perfect_nest_loops(&root);
        assert_eq!(nest.len(), 2);
        assert_eq!(nest[0].var, "i_t");
        assert_eq!(nest[0].step, 8);
        assert_eq!(nest[1].var, "i");
    }

    #[test]
    fn region_pragma_is_preserved() {
        let mut root = matmul();
        root.pragmas
            .push(locus_srcir::ast::Pragma::LocusLoop("matmul".into()));
        tile(&mut root, &HierIndex::root(), &[4, 4, 4], true).unwrap();
        assert_eq!(root.region_id(), Some("matmul"));
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let p = parse_program(
            r#"void f(int n, double A[64], int i_t) {
            for (int i = 0; i < n; i++) A[i] = (double)i_t;
            }"#,
        )
        .unwrap();
        let mut root = p.functions().next().unwrap().body[0].clone();
        tile(&mut root, &HierIndex::root(), &[4], true).unwrap();
        let nest = perfect_nest_loops(&root);
        assert_eq!(nest[0].var, "i_t_2");
    }
}
