//! Source-to-source loop transformations for the Locus system.
//!
//! This crate reimplements, natively on the Locus source IR, the four
//! transformation-module collections the paper integrates (Sec. IV-A):
//!
//! * **RoseLocus** equivalents: [`unroll`], [`tiling`], [`interchange`],
//!   [`unroll_jam`], [`licm`] (loop-invariant code motion) and
//!   [`scalar_repl`] (scalar replacement);
//! * **Pips** equivalents: unrolling, rectangular tiling,
//!   [`fusion`], unroll-and-jam, and the matrix-driven
//!   [`generic_tiling`] (used with a skewed matrix for the stencil
//!   experiments);
//! * **Pragmas**: [`pragmas`] inserts `ivdep`, `vector always` and
//!   `omp parallel for` annotations;
//! * **BuiltIn**: [`altdesc`] splices external code snippets into a
//!   region, and [`queries`] exposes `IsPerfectLoopNest`,
//!   `LoopNestDepth`, `ListInnerLoops`, `ListOuterLoops` and
//!   `IsDepAvailable`.
//!
//! Every transformation operates in place on a region root statement and
//! reports one of the paper's wrapper exit statuses through
//! [`TransformError`]: a hard *error* (malformed arguments, target not
//! found) or *illegal* (the legality check refused). Legality itself is
//! delegated to the unified engine in `locus-verify` — each module asks
//! `verify::legal(root, &TransformStep)` before mutating anything. As in
//! the paper, callers may bypass the check with the `force` flags where
//! offered.

#![warn(missing_docs)]

pub mod altdesc;
pub mod distribution;
pub mod fusion;
pub mod generic_tiling;
pub mod interchange;
pub mod licm;
pub mod pragmas;
pub mod queries;
pub mod scalar_repl;
pub mod selector;
pub mod tiling;
pub mod unroll;
pub mod unroll_jam;

use std::error::Error;
use std::fmt;

/// Failure modes of a transformation module, mirroring the wrapper exit
/// statuses of the paper (Sec. II: "successful, error, illegal").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The module refused because its legality check failed.
    Illegal(String),
    /// The invocation itself was malformed (bad target, bad arguments,
    /// unsupported loop shape).
    Error(String),
}

impl TransformError {
    /// Builds an [`TransformError::Illegal`].
    pub fn illegal(msg: impl Into<String>) -> TransformError {
        TransformError::Illegal(msg.into())
    }

    /// Builds an [`TransformError::Error`].
    pub fn error(msg: impl Into<String>) -> TransformError {
        TransformError::Error(msg.into())
    }
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Illegal(msg) => write!(f, "illegal transformation: {msg}"),
            TransformError::Error(msg) => write!(f, "transformation error: {msg}"),
        }
    }
}

impl Error for TransformError {}

/// Convenient result alias for transformation entry points.
pub type TransformResult<T = ()> = Result<T, TransformError>;

/// Maps a verdict of the unified legality engine onto the transform
/// error vocabulary: illegal verdicts become [`TransformError::Illegal`].
pub(crate) fn require_legal(verdict: locus_verify::Verdict) -> TransformResult {
    match verdict {
        locus_verify::Verdict::Legal => Ok(()),
        locus_verify::Verdict::Illegal(msg) => Err(TransformError::Illegal(msg)),
    }
}

pub use selector::LoopSel;
