//! Loop distribution (fission) — `RoseLocus.Distribute`.
//!
//! Splits a loop over its top-level body statements, giving each
//! statement its own copy of the loop. The paper's Fig. 13 applies it
//! (optionally) to inner loops before unrolling.

use locus_srcir::ast::{Stmt, StmtKind};
use locus_srcir::index::HierIndex;

use locus_analysis::loops::canonicalize;

use crate::{TransformError, TransformResult};

/// Distributes the loop at `target` over its body statements.
///
/// Each top-level body statement becomes its own loop with a cloned
/// header, in source order. When `check_legality` is set, the module
/// refuses if any dependence points from a later statement back to an
/// earlier one (which source-order distribution would violate).
///
/// # Errors
///
/// * [`TransformError::Error`] when the target is not a canonical loop,
///   has fewer than two body statements, or declares locals shared
///   between statements.
/// * [`TransformError::Illegal`] when the legality check refuses.
pub fn distribute(root: &mut Stmt, target: &HierIndex, check_legality: bool) -> TransformResult {
    {
        let loop_stmt = target
            .resolve(root)
            .ok_or_else(|| TransformError::error(format!("no statement at `{target}`")))?;
        canonicalize(loop_stmt)
            .ok_or_else(|| TransformError::error("target loop is not canonical"))?;
        let body = loop_stmt.as_for().expect("loop").body.body_stmts();
        if body.len() < 2 {
            return Err(TransformError::error(
                "distribution needs at least two body statements",
            ));
        }
        if body.iter().any(|s| matches!(s.kind, StmtKind::Decl { .. })) {
            return Err(TransformError::error(
                "body declares locals; distribution would break their scope",
            ));
        }
        if check_legality {
            crate::require_legal(locus_verify::legal(
                root,
                &locus_verify::TransformStep::Distribute {
                    target: target.clone(),
                },
            ))?;
        }
    }

    let loop_stmt = target.resolve_mut(root).expect("validated above");
    let body = loop_stmt.as_for().expect("loop").body.body_stmts().to_vec();
    let mut loops = Vec::with_capacity(body.len());
    for (i, stmt) in body.into_iter().enumerate() {
        let mut copy = loop_stmt.clone();
        if i > 0 {
            // Region pragmas stay on the first loop only.
            copy.pragmas.retain(|p| p.region_id().is_none());
        }
        *copy.as_for_mut().expect("loop").body = Stmt::block(vec![stmt]);
        loops.push(copy);
    }
    *loop_stmt = Stmt::block(loops);
    Ok(())
}

/// Distributes every loop in `targets`, deepest-first so indices stay
/// valid. Loops where distribution does not apply (single statement
/// bodies) are skipped silently — matching the forgiving behaviour the
/// generic optimization program of Fig. 13 relies on.
pub fn distribute_all(
    root: &mut Stmt,
    targets: &[HierIndex],
    check_legality: bool,
) -> TransformResult {
    let mut sorted: Vec<&HierIndex> = targets.iter().collect();
    sorted.sort();
    for target in sorted.into_iter().rev() {
        match distribute(root, target, check_legality) {
            Ok(()) => {}
            Err(TransformError::Error(msg)) if msg.contains("at least two") => {}
            Err(other) => return Err(other),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_analysis::loops::all_loops;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn splits_independent_statements() {
        let mut root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                A[i] = 1.0;
                B[i] = 2.0;
            }
            }"#,
        );
        distribute(&mut root, &HierIndex::root(), true).unwrap();
        assert_eq!(all_loops(&root).len(), 2);
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.matches("for (").count() == 2);
    }

    #[test]
    fn forward_dependence_is_fine() {
        let mut root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                A[i] = 1.0;
                B[i] = A[i] * 2.0;
            }
            }"#,
        );
        distribute(&mut root, &HierIndex::root(), true).unwrap();
        assert_eq!(all_loops(&root).len(), 2);
    }

    #[test]
    fn backward_dependence_is_refused() {
        let mut root = region(
            r#"void f(int n, double A[64], double B[64], double C[64]) {
            for (int i = 1; i < n; i++) {
                B[i] = A[i - 1];
                A[i] = C[i] + 1.0;
            }
            }"#,
        );
        assert!(matches!(
            distribute(&mut root, &HierIndex::root(), true),
            Err(TransformError::Illegal(_))
        ));
        distribute(&mut root, &HierIndex::root(), false).unwrap();
        assert_eq!(all_loops(&root).len(), 2);
    }

    #[test]
    fn single_statement_body_is_an_error() {
        let mut root =
            region("void f(int n, double A[64]) { for (int i = 0; i < n; i++) A[i] = 1.0; }");
        assert!(distribute(&mut root, &HierIndex::root(), true).is_err());
        // ... but distribute_all skips it.
        distribute_all(&mut root, &[HierIndex::root()], true).unwrap();
        assert_eq!(all_loops(&root).len(), 1);
    }

    #[test]
    fn local_declarations_block_distribution() {
        let mut root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                double t = A[i];
                B[i] = t;
            }
            }"#,
        );
        assert!(matches!(
            distribute(&mut root, &HierIndex::root(), true),
            Err(TransformError::Error(_))
        ));
    }

    #[test]
    fn region_pragma_only_on_first_loop() {
        let mut root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                A[i] = 1.0;
                B[i] = 2.0;
            }
            }"#,
        );
        root.pragmas
            .push(locus_srcir::ast::Pragma::LocusLoop("r".into()));
        distribute(&mut root, &HierIndex::root(), true).unwrap();
        let StmtKind::Block(stmts) = &root.kind else {
            panic!("expected block")
        };
        assert_eq!(stmts[0].region_id(), Some("r"));
        assert_eq!(stmts[1].region_id(), None);
    }
}
