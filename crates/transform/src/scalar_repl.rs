//! Scalar replacement — `RoseLocus.ScalarRepl`.
//!
//! Replaces array references that are invariant in the innermost loop
//! with scalar temporaries: the value is loaded once before the loop and,
//! when written, stored back once after it. This is the register-reuse
//! transformation the paper's Kripke experiment applies after loop
//! invariant code motion (following Kennedy & Allen).

use std::collections::HashSet;

use locus_srcir::ast::{Expr, Stmt, Type};
use locus_srcir::builder::decl;
use locus_srcir::printer::print_expr;
use locus_srcir::visit::{rewrite_exprs_in_stmt, walk_exprs_in_stmt};

use crate::selector::fresh_name;
use crate::TransformResult;

/// Maximum number of temporaries introduced per loop, a stand-in for
/// register pressure limits.
const MAX_TEMPS: usize = 8;

/// Applies scalar replacement to every innermost loop in the region.
///
/// An array reference qualifies when (a) none of its subscripts uses the
/// innermost loop variable or anything the loop body modifies, and (b)
/// every write to that array inside the loop uses the *same* textual
/// reference (so no aliasing write can bypass the temporary).
///
/// Never fails; loops with no qualifying reference are left unchanged.
pub fn scalar_replacement(root: &mut Stmt) -> TransformResult {
    let inner = locus_analysis::loops::loop_nest_info(root).inner_loops;
    // Deepest-first keeps sibling indices valid as loops become blocks.
    let mut targets = inner;
    targets.sort();
    for idx in targets.into_iter().rev() {
        let taken = fresh_base_names(root);
        let slot = idx.resolve_mut(root).expect("query result resolves");
        replace_in_loop(slot, &taken);
    }
    Ok(())
}

/// Collects identifier names used anywhere in the region so generated
/// temporaries stay unique.
fn fresh_base_names(root: &Stmt) -> HashSet<String> {
    let mut used = HashSet::new();
    walk_exprs_in_stmt(root, &mut |e| {
        if let Expr::Ident(n) = e {
            used.insert(n.clone());
        }
    });
    used
}

fn replace_in_loop(loop_stmt: &mut Stmt, taken: &HashSet<String>) {
    let Some(canon) = locus_analysis::loops::canonicalize(loop_stmt) else {
        return;
    };

    // Variables the loop body modifies (scalars assigned, plus the loop
    // variable itself).
    let mut modified: HashSet<String> = HashSet::new();
    modified.insert(canon.var.clone());
    let mut written_arrays: Vec<(String, String)> = Vec::new(); // (array, printed ref)
    {
        let body = loop_stmt.as_for().expect("loop").body.as_ref();
        // Names declared inside the body take a new value every
        // iteration: they count as modified.
        locus_srcir::visit::walk_stmts(body, &mut |s| {
            if let locus_srcir::ast::StmtKind::Decl { name, .. } = &s.kind {
                modified.insert(name.clone());
            }
        });
        walk_exprs_in_stmt(body, &mut |e| {
            if let Expr::Assign { lhs, .. } = e {
                match lhs.as_ref() {
                    Expr::Ident(n) => {
                        modified.insert(n.clone());
                    }
                    other => {
                        if let Some((name, _)) = other.as_array_access() {
                            written_arrays.push((name.to_string(), print_expr(other)));
                        }
                    }
                }
            }
        });
    }

    // Candidate references: textually grouped array accesses.
    #[derive(Default)]
    struct Candidate {
        expr: Option<Expr>,
        written: bool,
        count: usize,
    }
    let mut candidates: std::collections::BTreeMap<String, Candidate> = Default::default();
    {
        let body = loop_stmt.as_for().expect("loop").body.as_ref();
        // Bases of index chains are sub-accesses (`A[i]` inside
        // `A[i][k]`): only *maximal* chains are replacement candidates.
        let mut sub_accesses: HashSet<*const Expr> = HashSet::new();
        let mut in_subscript: HashSet<String> = HashSet::new();
        walk_exprs_in_stmt(body, &mut |e| {
            if let Expr::Index { base, index } = e {
                sub_accesses.insert(base.as_ref() as *const Expr);
                // Accesses used as subscripts are integer-valued; a
                // floating temporary would change their type.
                locus_srcir::visit::walk_exprs(index, &mut |n| {
                    if n.as_array_access().is_some() {
                        in_subscript.insert(print_expr(n));
                    }
                });
            }
        });
        walk_exprs_in_stmt(body, &mut |e| {
            if sub_accesses.contains(&(e as *const Expr)) {
                return;
            }
            if in_subscript.contains(&print_expr(e)) {
                return;
            }
            let Some((_, subscripts)) = e.as_array_access() else {
                return;
            };
            // Subscripts must not mention anything the loop modifies, and
            // must not contain nested array reads (conservative).
            let mut ok = true;
            for s in &subscripts {
                locus_srcir::visit::walk_exprs(s, &mut |node| match node {
                    Expr::Ident(n) if modified.contains(n) => ok = false,
                    Expr::Index { .. } | Expr::Call { .. } | Expr::Assign { .. } => ok = false,
                    _ => {}
                });
            }
            if !ok {
                return;
            }
            let key = print_expr(e);
            let entry = candidates.entry(key).or_default();
            entry.count += 1;
            entry.expr.get_or_insert_with(|| e.clone());
        });
        // Mark written candidates and poison arrays written through a
        // different reference.
        for (array, printed) in &written_arrays {
            if let Some(c) = candidates.get_mut(printed) {
                c.written = true;
            }
            candidates.retain(|key, _| {
                key == printed || !key_references_array(key, array) || {
                    // A different written reference of the same array:
                    // keep only if this key is not that array at all.
                    !key.starts_with(&format!("{array}["))
                }
            });
        }
    }

    // Any array written through a non-candidate reference invalidates all
    // candidates of that array.
    let written_names: HashSet<&String> = written_arrays.iter().map(|(a, _)| a).collect();
    let survivors: Vec<(String, Expr, bool)> = candidates
        .into_iter()
        .filter(|(key, c)| {
            let Some((name, _)) = c.expr.as_ref().and_then(|e| e.as_array_access()) else {
                return false;
            };
            let name = name.to_string();
            if written_names.contains(&name) {
                // Every write must be this exact reference.
                written_arrays
                    .iter()
                    .filter(|(a, _)| a == &name)
                    .all(|(_, printed)| printed == key)
            } else {
                true
            }
        })
        .map(|(key, c)| (key, c.expr.expect("recorded"), c.written))
        .take(MAX_TEMPS)
        .collect();

    if survivors.is_empty() {
        return;
    }

    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut replaced = loop_stmt.clone();
    for (i, (key, expr, written)) in survivors.iter().enumerate() {
        let base = format!("__t{i}");
        let name = if taken.contains(&base) {
            fresh_name(loop_stmt, &base)
        } else {
            base
        };
        pre.push(decl(Type::Double, &name, Some(expr.clone())));
        if *written {
            post.push(Stmt::expr(Expr::assign(expr.clone(), Expr::ident(&name))));
        }
        let body = replaced.as_for_mut().expect("loop").body.as_mut();
        rewrite_exprs_in_stmt(body, &mut |e| {
            if e.as_array_access().is_some() && print_expr(e) == *key {
                *e = Expr::ident(&name);
            }
        });
    }

    let mut stmts = pre;
    // Move region pragmas from the loop to the enclosing block.
    let pragmas = std::mem::take(&mut replaced.pragmas);
    stmts.push(replaced);
    stmts.extend(post);
    let mut block = Stmt::block(stmts);
    block.pragmas = pragmas;
    *loop_stmt = block;
}

fn key_references_array(key: &str, array: &str) -> bool {
    key.starts_with(&format!("{array}["))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;
    use locus_srcir::print_stmt;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn replaces_invariant_accumulator() {
        let mut root = region(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        );
        scalar_replacement(&mut root).unwrap();
        let printed = print_stmt(&root);
        // C[i][j] is invariant in k: loaded before, stored after.
        assert!(
            printed.contains("double __t0 = C[i][j];"),
            "printed:\n{printed}"
        );
        assert!(printed.contains("C[i][j] = __t0;"), "printed:\n{printed}");
        assert!(printed.contains("__t0 = __t0 + A[i][k] * B[k][j]"));
    }

    #[test]
    fn read_only_reference_gets_no_store_back() {
        let mut root = region(
            r#"void f(int n, double A[8][8], double c[8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    A[i][j] = c[i] * 2.0;
            }"#,
        );
        scalar_replacement(&mut root).unwrap();
        let printed = print_stmt(&root);
        assert!(
            printed.contains("double __t0 = c[i];"),
            "printed:\n{printed}"
        );
        assert!(!printed.contains("c[i] = __t0"));
    }

    #[test]
    fn loop_varying_reference_is_untouched() {
        let mut root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i = 0; i < n; i++)
                A[i] = B[i] * 2.0;
            }"#,
        );
        let before = print_stmt(&root);
        scalar_replacement(&mut root).unwrap();
        assert_eq!(before, print_stmt(&root));
    }

    #[test]
    fn aliasing_write_poisons_candidates() {
        // B[0] is invariant in j, but B[j] is also written: no replacement
        // for B[0] because B[j] may alias it.
        let mut root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int j = 0; j < n; j++) {
                A[j] = B[0];
                B[j] = 1.0;
            }
            }"#,
        );
        let before = print_stmt(&root);
        scalar_replacement(&mut root).unwrap();
        assert_eq!(before, print_stmt(&root));
    }

    #[test]
    fn subscript_reading_an_array_is_skipped() {
        let mut root = region(
            r#"void f(int n, double A[64], int idx[64], double B[64]) {
            for (int j = 0; j < n; j++)
                A[idx[0]] = A[idx[0]] + B[j];
            }"#,
        );
        let before = print_stmt(&root);
        scalar_replacement(&mut root).unwrap();
        assert_eq!(before, print_stmt(&root));
    }
}
