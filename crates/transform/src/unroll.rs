//! Loop unrolling — `RoseLocus.Unroll` / `Pips.Unroll`.

use locus_srcir::ast::{BinOp, Expr, Stmt, StmtKind};
use locus_srcir::builder;
use locus_srcir::index::HierIndex;
use locus_srcir::visit::substitute_ident;

use locus_analysis::loops::{canonicalize, CanonLoop};

use crate::{TransformError, TransformResult};

/// Unrolls the loop at `target` by `factor`.
///
/// * When the trip count is a known constant and `factor >= trip`, the
///   loop is fully unrolled into straight-line copies.
/// * Otherwise the loop is partially unrolled: the main loop advances by
///   `factor * step` with `factor` body copies, and a remainder loop
///   handles leftover iterations (omitted when a constant trip count is
///   known to divide evenly).
///
/// Unrolling is always legal, so there is no legality gate — matching the
/// paper's Fig. 13 where unrolling is applied even when dependence
/// information is unavailable.
///
/// # Errors
///
/// Returns [`TransformError::Error`] when the target is not a canonical
/// loop or the factor is zero.
pub fn unroll(root: &mut Stmt, target: &HierIndex, factor: u64) -> TransformResult {
    if factor == 0 {
        return Err(TransformError::error("unroll factor must be positive"));
    }
    if factor == 1 {
        return Ok(());
    }
    let loop_stmt = target
        .resolve_mut(root)
        .ok_or_else(|| TransformError::error(format!("no statement at `{target}`")))?;
    let canon = canonicalize(loop_stmt)
        .ok_or_else(|| TransformError::error("target loop is not canonical"))?;

    let replacement = match canon.const_trip_count() {
        Some(trip) if factor as i64 >= trip && canon.lower.as_const_int().is_some() => {
            full_unroll(loop_stmt, &canon, trip)
        }
        trip => partial_unroll(loop_stmt, &canon, factor, trip),
    };
    *loop_stmt = replacement;
    Ok(())
}

/// Unrolls every loop in `targets` by `factor`. Targets are processed
/// deepest-first so sibling indices remain valid as loops get replaced.
pub fn unroll_all(root: &mut Stmt, targets: &[HierIndex], factor: u64) -> TransformResult {
    let mut sorted: Vec<&HierIndex> = targets.iter().collect();
    sorted.sort();
    for target in sorted.into_iter().rev() {
        unroll(root, target, factor)?;
    }
    Ok(())
}

fn body_copies(
    loop_stmt: &Stmt,
    canon: &CanonLoop,
    count: u64,
    offset_of: impl Fn(u64) -> Expr,
) -> Vec<Stmt> {
    let body = loop_stmt.as_for().expect("canonical loop").body.clone();
    let mut out = Vec::new();
    for k in 0..count {
        let mut copy = (*body).clone();
        substitute_ident(&mut copy, &canon.var, &offset_of(k));
        // Each copy keeps its own scope so local declarations in the body
        // do not collide between copies.
        out.push(copy);
    }
    out
}

fn full_unroll(loop_stmt: &Stmt, canon: &CanonLoop, trip: i64) -> Stmt {
    let lo = canon.lower.as_const_int().expect("checked by caller");
    let copies = body_copies(loop_stmt, canon, trip.max(0) as u64, |k| {
        Expr::int(lo + k as i64 * canon.step)
    });
    let mut block = Stmt::block(copies);
    block.pragmas = loop_stmt.pragmas.clone();
    block
}

fn partial_unroll(loop_stmt: &Stmt, canon: &CanonLoop, factor: u64, trip: Option<i64>) -> Stmt {
    let f = factor as i64;
    let step = canon.step;
    let hi_excl = canon.exclusive_upper();

    // Main loop: for (v = lo; v < hi - (f-1)*step; v += f*step) { f copies }
    let offset = |k: u64| {
        if k == 0 {
            Expr::ident(&canon.var)
        } else {
            Expr::bin(
                BinOp::Add,
                Expr::ident(&canon.var),
                Expr::int(k as i64 * step),
            )
        }
    };
    let copies = body_copies(loop_stmt, canon, factor, offset);
    let main_cond = Expr::bin(
        BinOp::Lt,
        Expr::ident(&canon.var),
        Expr::bin(BinOp::Sub, hi_excl.clone(), Expr::int((f - 1) * step)),
    );
    let orig = loop_stmt.as_for().expect("canonical loop");
    let mut main = Stmt::new(StmtKind::For(locus_srcir::ast::ForLoop {
        init: orig.init.clone(),
        cond: Some(main_cond),
        step: Some(Expr::Assign {
            op: locus_srcir::ast::AssignOp::AddAssign,
            lhs: Box::new(Expr::ident(&canon.var)),
            rhs: Box::new(Expr::int(f * step)),
        }),
        body: Box::new(Stmt::block(copies)),
    }));
    main.pragmas = loop_stmt.pragmas.clone();

    let needs_remainder = match trip {
        Some(t) => t % f != 0,
        None => true,
    };
    if !needs_remainder {
        return main;
    }

    // Remainder start: lo + (ceil((hi - lo)/step) / f) * f * step.
    let lo = canon.lower.clone();
    let trip_expr = Expr::bin(
        BinOp::Div,
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Sub, hi_excl.clone(), lo.clone()),
            Expr::int(step - 1),
        ),
        Expr::int(step),
    );
    let start = Expr::bin(
        BinOp::Add,
        lo,
        Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Div, trip_expr, Expr::int(f)),
            Expr::int(f * step),
        ),
    );
    let remainder = builder::for_loop(
        &canon.var,
        start,
        hi_excl,
        step,
        loop_stmt
            .as_for()
            .expect("canonical loop")
            .body
            .body_stmts()
            .to_vec(),
    );
    Stmt::block(vec![main, remainder])
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn simple(n: i64) -> Stmt {
        region(&format!(
            "void f(double A[64], double B[64]) {{ for (int i = 0; i < {n}; i++) A[i] = B[i] + 1.0; }}"
        ))
    }

    #[test]
    fn partial_unroll_divisible_has_no_remainder() {
        let mut root = simple(16);
        unroll(&mut root, &HierIndex::root(), 4).unwrap();
        assert!(
            root.is_for(),
            "no remainder expected: {}",
            locus_srcir::print_stmt(&root)
        );
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("i += 4"));
        assert!(printed.contains("A[i + 3] = B[i + 3] + 1.0"));
    }

    #[test]
    fn partial_unroll_nondivisible_adds_remainder() {
        let mut root = simple(10);
        unroll(&mut root, &HierIndex::root(), 4).unwrap();
        match &root.kind {
            StmtKind::Block(stmts) => {
                assert_eq!(stmts.len(), 2);
                assert!(stmts[0].is_for());
                assert!(stmts[1].is_for());
            }
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn full_unroll_small_constant_loop() {
        let mut root = simple(3);
        unroll(&mut root, &HierIndex::root(), 8).unwrap();
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("A[0]"));
        assert!(printed.contains("A[1]"));
        assert!(printed.contains("A[2]"));
        assert!(!printed.contains("for"));
    }

    #[test]
    fn factor_one_is_noop() {
        let mut root = simple(10);
        let before = locus_srcir::print_stmt(&root);
        unroll(&mut root, &HierIndex::root(), 1).unwrap();
        assert_eq!(before, locus_srcir::print_stmt(&root));
    }

    #[test]
    fn factor_zero_is_error() {
        let mut root = simple(10);
        assert!(unroll(&mut root, &HierIndex::root(), 0).is_err());
    }

    #[test]
    fn unrolls_inner_loop_of_nest() {
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < 8; j++)
                    A[i][j] = 0.0;
            }"#,
        );
        unroll(&mut root, &"0.0".parse().unwrap(), 2).unwrap();
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("A[i][j + 1]"));
    }

    #[test]
    fn symbolic_bound_gets_remainder_loop() {
        let mut root = region(
            "void f(int n, double A[64], double B[64]) { for (int i = 0; i < n; i++) A[i] = B[i]; }",
        );
        unroll(&mut root, &HierIndex::root(), 4).unwrap();
        let printed = locus_srcir::print_stmt(&root);
        // Remainder start expression computes completed groups.
        assert!(printed.contains("/ 4 * 4"), "printed:\n{printed}");
    }

    #[test]
    fn unroll_all_processes_sibling_loops() {
        let mut root = region(
            r#"void f(int n, double A[8]) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 8; j++) A[j] = 0.0;
                for (int k = 0; k < 8; k++) A[k] = 1.0;
            }
            }"#,
        );
        let targets: Vec<HierIndex> = vec!["0.0".parse().unwrap(), "0.1".parse().unwrap()];
        unroll_all(&mut root, &targets, 2).unwrap();
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("A[j + 1]"));
        assert!(printed.contains("A[k + 1]"));
    }
}
