//! Loop-invariant code motion — `RoseLocus.LICM`.
//!
//! Hoists declaration statements whose initializers are invariant with
//! respect to the enclosing loop out of that loop, repeating until a
//! fixpoint. This is the transformation the paper's Kripke experiment
//! uses to move per-layout address computations to the cheapest legal
//! level of the five-deep kernel nests.

use std::collections::HashSet;

use locus_srcir::ast::{Expr, Stmt, StmtKind};
use locus_srcir::visit::{walk_exprs, walk_exprs_in_stmt, walk_stmts};

use crate::TransformResult;

/// Calls that are pure and therefore hoistable.
const PURE_CALLS: &[&str] = &["min", "max", "abs", "floor", "ceil", "sqrt"];

/// Applies loop-invariant code motion to every loop in the region.
///
/// Only declaration statements with pure initializers are hoisted; a
/// declaration moves from a loop body to just before the loop when its
/// initializer references neither the loop variable nor anything the
/// loop body may modify (scalars assigned or arrays written anywhere in
/// the body). Hoisting repeats until no statement moves.
///
/// LICM never fails: an empty or loop-free region is simply left alone.
pub fn licm(root: &mut Stmt) -> TransformResult {
    // Iterate to a fixpoint; each pass hoists one level at a time.
    for _ in 0..64 {
        if !hoist_pass(root) {
            break;
        }
    }
    Ok(())
}

/// One bottom-up pass. Returns `true` if anything moved.
fn hoist_pass(stmt: &mut Stmt) -> bool {
    let mut moved = false;
    // Recurse first so inner hoists can cascade outward in later passes.
    match &mut stmt.kind {
        StmtKind::Block(stmts) => {
            let mut i = 0;
            while i < stmts.len() {
                if hoist_pass(&mut stmts[i]) {
                    moved = true;
                }
                // If the child is a loop with hoistable decls, splice them
                // before it.
                if stmts[i].is_for() {
                    let hoisted = extract_invariant_decls(&mut stmts[i]);
                    if !hoisted.is_empty() {
                        moved = true;
                        let at = i;
                        for (k, d) in hoisted.into_iter().enumerate() {
                            stmts.insert(at + k, d);
                            i += 1;
                        }
                    }
                }
                i += 1;
            }
        }
        StmtKind::For(f) => {
            moved |= hoist_pass(&mut f.body);
        }
        StmtKind::While { body, .. } => {
            moved |= hoist_pass(body);
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            moved |= hoist_pass(then_branch);
            if let Some(e) = else_branch {
                moved |= hoist_pass(e);
            }
        }
        _ => {}
    }
    moved
}

/// Removes hoistable declarations from the front region of a loop's body
/// and returns them (in order). Only declarations that appear before any
/// other kind of statement participate, keeping ordering semantics
/// simple and predictable.
fn extract_invariant_decls(loop_stmt: &mut Stmt) -> Vec<Stmt> {
    let loop_var = match locus_analysis::loops::canonicalize(loop_stmt) {
        Some(c) => c.var,
        None => return Vec::new(),
    };

    // Everything the loop may modify through assignments, plus the
    // induction variable.
    let mut modified: HashSet<String> = HashSet::new();
    modified.insert(loop_var);
    collect_modified(loop_stmt, &mut modified);

    // Names declared in the body (with multiplicity): reads of a
    // still-in-place declaration block hoisting, and names declared more
    // than once never hoist.
    let mut declared: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    walk_stmts(loop_stmt.as_for().expect("loop").body.as_ref(), &mut |s| {
        if let StmtKind::Decl { name, .. } = &s.kind {
            *declared.entry(name.clone()).or_insert(0) += 1;
        }
    });

    let f = loop_stmt.as_for_mut().expect("loop");
    let StmtKind::Block(body) = &mut f.body.kind else {
        return Vec::new();
    };

    let mut hoisted = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Only the leading run of declarations participates, so order is
        // trivially preserved.
        let StmtKind::Decl {
            name,
            init: Some(init),
            dims,
            ..
        } = &body[i].kind
        else {
            break;
        };
        let blocked = !dims.is_empty()
            || !is_pure(init)
            || declared.get(name).copied().unwrap_or(0) != 1
            || modified.contains(name)
            || free_vars(init)
                .iter()
                .any(|v| modified.contains(v) || declared.contains_key(v));
        if blocked {
            // Reads of this (skipped) declaration keep blocking later
            // candidates, which `declared` already ensures.
            i += 1;
            continue;
        }
        // Hoist: later declarations reading this one may follow it out.
        declared.remove(name);
        hoisted.push(body.remove(i));
    }
    hoisted
}

/// Collects scalar names assigned and array names written inside a
/// statement (including nested loops), plus loop induction variables.
fn collect_modified(stmt: &Stmt, out: &mut HashSet<String>) {
    walk_exprs_in_stmt(stmt, &mut |e| {
        if let Expr::Assign { lhs, .. } = e {
            match lhs.as_ref() {
                Expr::Ident(n) => {
                    out.insert(n.clone());
                }
                other => {
                    if let Some((name, _)) = other.as_array_access() {
                        out.insert(name.to_string());
                    } else if let Expr::Unary { operand, .. } = other {
                        if let Expr::Ident(n) = operand.as_ref() {
                            out.insert(n.clone());
                        }
                    }
                }
            }
        }
    });
}

/// Free variables of an expression (idents and array base names).
fn free_vars(e: &Expr) -> HashSet<String> {
    let mut out = HashSet::new();
    walk_exprs(e, &mut |node| {
        if let Expr::Ident(n) = node {
            out.insert(n.clone());
        }
    });
    out
}

/// An expression is pure when it contains no assignments and only
/// whitelisted calls.
fn is_pure(e: &Expr) -> bool {
    let mut pure = true;
    walk_exprs(e, &mut |node| match node {
        Expr::Assign { .. } => pure = false,
        Expr::Call { callee, .. } if !PURE_CALLS.contains(&callee.as_str()) => pure = false,
        _ => {}
    });
    pure
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;
    use locus_srcir::print_stmt;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn hoists_invariant_decl_out_of_inner_loop() {
        let mut root = region(
            r#"void f(int n, double A[8][8], double c[8]) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) {
                    double t = c[i] * 2.0;
                    A[i][j] = t;
                }
            }
            }"#,
        );
        licm(&mut root).unwrap();
        let printed = print_stmt(&root);
        // `t` now sits between the loops.
        let t_pos = printed.find("double t").unwrap();
        let j_pos = printed.find("int j").unwrap();
        assert!(t_pos < j_pos, "printed:\n{printed}");
    }

    #[test]
    fn decl_depending_on_inner_var_stays() {
        let mut root = region(
            r#"void f(int n, double A[8][8], double c[8]) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) {
                    double t = c[j];
                    A[i][j] = t;
                }
            }
            }"#,
        );
        let before = print_stmt(&root);
        licm(&mut root).unwrap();
        assert_eq!(before, print_stmt(&root));
    }

    #[test]
    fn cascades_to_the_outermost_legal_level() {
        // `double t = c[0]` is invariant at every level: it should end up
        // hoisted out of both loops.
        let mut root = Stmt::block(vec![region(
            r#"void f(int n, double A[8][8], double c[8]) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) {
                    double t = c[0];
                    A[i][j] = t;
                }
            }
            }"#,
        )]);
        licm(&mut root).unwrap();
        let printed = print_stmt(&root);
        let t_pos = printed.find("double t").unwrap();
        let i_pos = printed.find("int i").unwrap();
        assert!(t_pos < i_pos, "printed:\n{printed}");
    }

    #[test]
    fn array_written_in_loop_blocks_hoisting() {
        let mut root = region(
            r#"void f(int n, double A[8][8], double c[8]) {
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) {
                    double t = c[i];
                    c[j] = t + 1.0;
                    A[i][j] = t;
                }
            }
            }"#,
        );
        let before = print_stmt(&root);
        licm(&mut root).unwrap();
        assert_eq!(before, print_stmt(&root));
    }

    #[test]
    fn impure_initializer_stays() {
        let mut root = region(
            r#"void f(int n, double A[8]) {
            for (int i = 0; i < n; i++) {
                double t = rtclock();
                A[i] = t;
            }
            }"#,
        );
        let before = print_stmt(&root);
        licm(&mut root).unwrap();
        assert_eq!(before, print_stmt(&root));
    }

    #[test]
    fn kripke_style_address_hoisting() {
        let mut root = region(
            r#"void f(int nm_end, int g_end, int z_end, int m2c[8], double phi[512], double out[512]) {
            for (int nm = 0; nm < nm_end; nm++) {
                for (int g = 0; g < g_end; g++) {
                    for (int z = 0; z < z_end; z++) {
                        int n = m2c[nm];
                        out[n * 64 + g * 8 + z] += phi[g * 8 + z];
                    }
                }
            }
            }"#,
        );
        licm(&mut root).unwrap();
        let printed = print_stmt(&root);
        // `int n = m2c[nm]` hoists out of g and z, landing inside nm.
        let n_pos = printed.find("int n =").unwrap();
        let g_pos = printed.find("int g =").unwrap();
        let nm_pos = printed.find("int nm =").unwrap();
        assert!(nm_pos < n_pos && n_pos < g_pos, "printed:\n{printed}");
    }
}
