//! Alternative descriptions — `BuiltIn.Altdesc`.
//!
//! Replaces a statement inside a region with externally provided code
//! (the paper: "used to replace the code region with external code
//! snippets... mostly used to incorporate hand-optimized kernels into an
//! optimization sequence"). The Kripke experiment uses it to splice one
//! of six per-layout address computations into a kernel skeleton.

use locus_srcir::ast::{Stmt, StmtKind};
use locus_srcir::index::HierIndex;
use locus_srcir::parser;

use crate::{TransformError, TransformResult};

/// Parses `snippet` (a sequence of mini-C statements) and replaces the
/// statement at `target` with it.
///
/// Multi-statement snippets are spliced *inline* into the enclosing
/// statement list (so declarations they introduce are visible to later
/// passes such as LICM); hierarchical indices of statements after the
/// target shift by `len - 1`, matching the paper's usage where `Altdesc`
/// runs before any index-based transformation.
///
/// # Errors
///
/// Returns [`TransformError::Error`] when the target does not resolve,
/// the snippet fails to parse, or an inline splice is needed at a
/// position that cannot hold multiple statements.
pub fn altdesc(root: &mut Stmt, target: &HierIndex, snippet: &str) -> TransformResult {
    let mut stmts = parse_snippet(snippet)?;
    if stmts.is_empty() {
        stmts.push(Stmt::new(StmtKind::Empty));
    }
    // Single statement: plain replacement.
    if stmts.len() == 1 {
        let slot = target
            .resolve_mut(root)
            .ok_or_else(|| TransformError::error(format!("no statement at `{target}`")))?;
        let mut replacement = stmts.remove(0);
        for p in slot
            .pragmas
            .iter()
            .filter(|p| p.region_id().is_some())
            .cloned()
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            replacement.pragmas.insert(0, p);
        }
        *slot = replacement;
        return Ok(());
    }
    // Multi-statement: splice into the parent's statement list.
    let parent_idx = target
        .parent()
        .ok_or_else(|| TransformError::error("cannot splice at the region root"))?;
    let position = *target.0.last().expect("non-empty index");
    let parent = parent_idx
        .resolve_mut(root)
        .ok_or_else(|| TransformError::error(format!("no statement at `{parent_idx}`")))?;
    let list = match &mut parent.kind {
        StmtKind::Block(list) => list,
        StmtKind::For(f) => match &mut f.body.kind {
            StmtKind::Block(list) => list,
            _ => {
                return Err(TransformError::error(
                    "loop body cannot hold a spliced snippet",
                ))
            }
        },
        StmtKind::While { body, .. } => match &mut body.kind {
            StmtKind::Block(list) => list,
            _ => {
                return Err(TransformError::error(
                    "loop body cannot hold a spliced snippet",
                ))
            }
        },
        _ => {
            return Err(TransformError::error(
                "parent statement cannot hold a spliced snippet",
            ))
        }
    };
    if position >= list.len() {
        return Err(TransformError::error(format!("no statement at `{target}`")));
    }
    let old = list.remove(position);
    for p in old
        .pragmas
        .iter()
        .filter(|p| p.region_id().is_some())
        .cloned()
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        stmts[0].pragmas.insert(0, p);
    }
    for (k, s) in stmts.into_iter().enumerate() {
        list.insert(position + k, s);
    }
    Ok(())
}

/// Parses a statement-sequence snippet by wrapping it in a dummy
/// function.
pub fn parse_snippet(snippet: &str) -> TransformResult<Vec<Stmt>> {
    let wrapped = format!("void __locus_snippet__() {{\n{snippet}\n}}");
    let program = parser::parse_program(&wrapped)
        .map_err(|e| TransformError::error(format!("snippet parse failure: {e}")))?;
    let f = program
        .function("__locus_snippet__")
        .expect("wrapper function exists");
    // Flatten multi-declarator expansion blocks back to plain statements.
    let mut stmts = Vec::new();
    for s in &f.body {
        match &s.kind {
            StmtKind::Block(inner)
                if s.pragmas.is_empty()
                    && inner
                        .iter()
                        .all(|d| matches!(d.kind, StmtKind::Decl { .. })) =>
            {
                stmts.extend(inner.clone());
            }
            _ => stmts.push(s.clone()),
        }
    }
    Ok(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn replaces_placeholder_statement() {
        let mut root = region(
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < n; i++) {
                ;
                A[i] = 1.0;
            }
            }"#,
        );
        altdesc(&mut root, &"0.0".parse().unwrap(), "int off = i * 4;").unwrap();
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("int off = i * 4"), "printed:\n{printed}");
        assert!(printed.contains("A[i] = 1.0"));
    }

    #[test]
    fn multi_statement_snippet_splices_inline() {
        let mut root = region(
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < n; i++) {
                ;
                A[i] = 1.0;
            }
            }"#,
        );
        altdesc(
            &mut root,
            &"0.0".parse().unwrap(),
            "int a = 1; int b = 2; A[0] = (double)(a + b);",
        )
        .unwrap();
        // Spliced declarations are direct body statements (visible to
        // LICM), and the original statement shifted by len - 1.
        let decl: HierIndex = "0.0".parse().unwrap();
        assert!(matches!(
            decl.resolve(&root).unwrap().kind,
            StmtKind::Decl { .. }
        ));
        let shifted: HierIndex = "0.3".parse().unwrap();
        let printed = locus_srcir::printer::print_stmt(shifted.resolve(&root).unwrap());
        assert!(printed.contains("A[i] = 1.0"));
    }

    #[test]
    fn bad_snippet_is_an_error() {
        let mut root =
            region("void f(int n, double A[64]) { for (int i = 0; i < n; i++) A[i] = 1.0; }");
        assert!(altdesc(&mut root, &"0.0".parse().unwrap(), "int = ;").is_err());
    }

    #[test]
    fn bad_target_is_an_error() {
        let mut root =
            region("void f(int n, double A[64]) { for (int i = 0; i < n; i++) A[i] = 1.0; }");
        assert!(altdesc(&mut root, &"0.9".parse().unwrap(), "int a = 1;").is_err());
    }
}
