//! Loop selectors: how optimization programs name the loop a
//! transformation applies to.
//!
//! The paper uses three spellings interchangeably: a hierarchical index
//! string (`loop="0.0.0.0"`), a 1-based nest level (`loop=indexT1` where
//! `indexT1 = integer(1..depth)` in Fig. 13), and query results such as
//! `loop=innermost` / `loop=innerloops`.

use locus_srcir::ast::Stmt;
use locus_srcir::index::HierIndex;

use crate::{TransformError, TransformResult};
use locus_analysis::loops::{all_loops, loop_nest_info};

/// A loop selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopSel {
    /// A hierarchical index such as `"0.0.1"`.
    Index(HierIndex),
    /// A 1-based perfect-nest level: `1` is the outermost loop.
    Level(usize),
    /// The innermost loop(s) of the region.
    Innermost,
    /// The outermost loop(s) of the region.
    Outermost,
}

impl LoopSel {
    /// Parses the string spelling of a selector.
    ///
    /// # Errors
    ///
    /// Returns an error for anything that is neither a hierarchical index
    /// nor one of the keywords `innermost` / `outermost`.
    pub fn parse(text: &str) -> TransformResult<LoopSel> {
        match text {
            "innermost" => Ok(LoopSel::Innermost),
            "outermost" => Ok(LoopSel::Outermost),
            _ => text
                .parse::<HierIndex>()
                .map(LoopSel::Index)
                .map_err(|e| TransformError::error(e.to_string())),
        }
    }

    /// Resolves the selector to concrete hierarchical indices within the
    /// region rooted at `root`. Multi-loop selectors (`Innermost`,
    /// `Outermost`) may resolve to several indices.
    ///
    /// # Errors
    ///
    /// Returns an error when the selector does not name any loop in the
    /// region.
    pub fn resolve(&self, root: &Stmt) -> TransformResult<Vec<HierIndex>> {
        let found = match self {
            LoopSel::Index(idx) => {
                let stmt = idx
                    .resolve(root)
                    .ok_or_else(|| TransformError::error(format!("no statement at `{idx}`")))?;
                if !stmt.is_for() {
                    return Err(TransformError::error(format!(
                        "statement at `{idx}` is not a loop"
                    )));
                }
                vec![idx.clone()]
            }
            LoopSel::Level(level) => {
                if *level == 0 {
                    return Err(TransformError::error("loop levels are 1-based"));
                }
                let loops = all_loops(root);
                // Level N = the N-th loop on the leftmost nest chain.
                let chain: Vec<&HierIndex> = loops
                    .iter()
                    .filter(|idx| idx.0.iter().all(|&c| c == 0))
                    .collect();
                let idx = chain.get(level - 1).ok_or_else(|| {
                    TransformError::error(format!("nest has no level {level} loop"))
                })?;
                vec![(*idx).clone()]
            }
            LoopSel::Innermost => {
                let info = loop_nest_info(root);
                if info.inner_loops.is_empty() {
                    return Err(TransformError::error("region contains no loops"));
                }
                info.inner_loops
            }
            LoopSel::Outermost => {
                let info = loop_nest_info(root);
                if info.outer_loops.is_empty() {
                    return Err(TransformError::error("region contains no loops"));
                }
                info.outer_loops
            }
        };
        Ok(found)
    }

    /// Resolves a selector that must name exactly one loop.
    ///
    /// # Errors
    ///
    /// Returns an error when the selector names zero or several loops.
    pub fn resolve_single(&self, root: &Stmt) -> TransformResult<HierIndex> {
        let mut found = self.resolve(root)?;
        if found.len() != 1 {
            return Err(TransformError::error(format!(
                "selector names {} loops where exactly one is required",
                found.len()
            )));
        }
        Ok(found.remove(0))
    }
}

impl From<HierIndex> for LoopSel {
    fn from(idx: HierIndex) -> LoopSel {
        LoopSel::Index(idx)
    }
}

/// Generates a fresh variable name based on `base` that does not collide
/// with any identifier used inside `root`.
pub(crate) fn fresh_name(root: &Stmt, base: &str) -> String {
    use locus_srcir::visit::walk_exprs_in_stmt;
    let mut used = std::collections::HashSet::new();
    walk_exprs_in_stmt(root, &mut |e| {
        if let locus_srcir::ast::Expr::Ident(n) = e {
            used.insert(n.clone());
        }
    });
    locus_srcir::visit::walk_stmts(root, &mut |s| {
        if let locus_srcir::ast::StmtKind::Decl { name, .. } = &s.kind {
            used.insert(name.clone());
        }
    });
    if !used.contains(base) {
        return base.to_string();
    }
    for i in 2.. {
        let candidate = format!("{base}_{i}");
        if !used.contains(&candidate) {
            return candidate;
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn matmul() -> Stmt {
        let p = parse_program(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        )
        .unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn parses_keywords_and_indices() {
        assert_eq!(LoopSel::parse("innermost").unwrap(), LoopSel::Innermost);
        assert_eq!(LoopSel::parse("outermost").unwrap(), LoopSel::Outermost);
        assert_eq!(
            LoopSel::parse("0.0").unwrap(),
            LoopSel::Index("0.0".parse().unwrap())
        );
        assert!(LoopSel::parse("wibble").is_err());
    }

    #[test]
    fn resolves_levels_on_the_leftmost_chain() {
        let root = matmul();
        let idx = LoopSel::Level(2).resolve_single(&root).unwrap();
        assert_eq!(idx.to_string(), "0.0");
        assert!(LoopSel::Level(4).resolve(&root).is_err());
        assert!(LoopSel::Level(0).resolve(&root).is_err());
    }

    #[test]
    fn innermost_resolves_to_k_loop() {
        let root = matmul();
        let found = LoopSel::Innermost.resolve(&root).unwrap();
        assert_eq!(found, vec!["0.0.0".parse().unwrap()]);
    }

    #[test]
    fn index_to_non_loop_is_an_error() {
        let root = matmul();
        let sel = LoopSel::Index("0.0.0.0".parse().unwrap());
        assert!(matches!(sel.resolve(&root), Err(TransformError::Error(_))));
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let root = matmul();
        assert_eq!(fresh_name(&root, "ii"), "ii");
        assert_eq!(fresh_name(&root, "i"), "i_2");
    }
}
