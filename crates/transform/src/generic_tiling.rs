//! Matrix-driven tiling — `Pips.GenericTiling(loop, factor=matrix)`.
//!
//! The paper's stencil experiments (Fig. 9) tile with the *Skewing-1*
//! shape: a lower-triangular matrix such as
//!
//! ```text
//! [[ s, 0, 0],
//!  [-s, s, 0],
//!  [-s, 0, s]]
//! ```
//!
//! Row `i` defines the tiling hyperplane of loop `i`: the diagonal entry
//! is the tile size along that dimension and the off-diagonal entries
//! skew the dimension against outer loops. The matrix above gives
//! `u1 = i + t`, `u2 = j + t` (skew factor `-(-s)/s = 1`) with all three
//! dimensions tiled by `s` — classic time skewing.
//!
//! The generated code enumerates tiles of the skewed space
//! lexicographically with exact `max`/`min` guards, and reconstructs the
//! original induction variables inside each point loop, so the
//! transformation is semantics-preserving whenever the matrix is a valid
//! tiling transformation. As with Pips, validity of the matrix is the
//! caller's responsibility — this module checks shape, not legality.

use locus_srcir::ast::{AssignOp, BinOp, Expr, ForLoop, Stmt, StmtKind, Type};
use locus_srcir::builder::{max_expr, min_expr};
use locus_srcir::index::HierIndex;

use crate::selector::fresh_name;
use crate::tiling::{check_rectangular, collect_band};
use crate::{TransformError, TransformResult};

/// Scanning direction of the tile loops (the paper's *tile direction*
/// parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanDir {
    /// Increasing coordinates.
    #[default]
    Forward,
    /// Decreasing coordinates.
    Backward,
}

/// Applies matrix tiling to the perfect nest at `target`.
///
/// * `matrix` must be square and lower-triangular with positive diagonal
///   entries (the tile sizes); each off-diagonal entry must be divisible
///   by its row's diagonal entry (the quotient, negated, is the skew
///   factor).
/// * `tile_dirs`, when provided, sets the scanning direction per tile
///   dimension.
///
/// # Errors
///
/// Returns [`TransformError::Error`] for malformed matrices, imperfect or
/// non-canonical nests, non-unit loop steps, or non-rectangular bands.
pub fn generic_tile(
    root: &mut Stmt,
    target: &HierIndex,
    matrix: &[Vec<i64>],
    tile_dirs: Option<&[ScanDir]>,
) -> TransformResult {
    let n = matrix.len();
    if n == 0 {
        return Ok(());
    }
    for (i, row) in matrix.iter().enumerate() {
        if row.len() != n {
            return Err(TransformError::error("tiling matrix must be square"));
        }
        if row[i] <= 0 {
            return Err(TransformError::error(
                "tiling matrix diagonal entries must be positive tile sizes",
            ));
        }
        for (j, &m) in row.iter().enumerate() {
            if j > i && m != 0 {
                return Err(TransformError::error(
                    "tiling matrix must be lower-triangular",
                ));
            }
            if j < i && m % row[i] != 0 {
                return Err(TransformError::error(
                    "off-diagonal entries must be divisible by the row's tile size",
                ));
            }
        }
    }
    if let Some(dirs) = tile_dirs {
        if dirs.len() != n {
            return Err(TransformError::error(
                "tile direction vector length must match the matrix",
            ));
        }
    }

    // Skew factors: u_i = var_i + sum_{j<i} skew[i][j] * var_j.
    let skew: Vec<Vec<i64>> = matrix
        .iter()
        .enumerate()
        .map(|(i, row)| row[..i].iter().map(|&m| -m / row[i]).collect())
        .collect();
    let sizes: Vec<i64> = matrix.iter().enumerate().map(|(i, row)| row[i]).collect();

    let (band, fresh_tile, fresh_point) = {
        let loop_stmt = target
            .resolve(root)
            .ok_or_else(|| TransformError::error(format!("no statement at `{target}`")))?;
        let band = collect_band(loop_stmt, n)?;
        check_rectangular(&band)?;
        if band.iter().any(|l| l.step != 1) {
            return Err(TransformError::error(
                "generic tiling requires unit-step loops",
            ));
        }
        let fresh_tile: Vec<String> = band
            .iter()
            .map(|l| fresh_name(root, &format!("{}_tt", l.var)))
            .collect();
        let fresh_point: Vec<String> = band
            .iter()
            .map(|l| fresh_name(root, &format!("{}_s", l.var)))
            .collect();
        (band, fresh_tile, fresh_point)
    };

    let loop_stmt = target.resolve_mut(root).expect("validated above");

    // Innermost body of the band.
    let innermost_body = {
        let mut cur: &Stmt = loop_stmt;
        for _ in 0..n - 1 {
            cur = &cur.as_for().expect("band loop").body.body_stmts()[0];
        }
        (*cur.as_for().expect("band loop").body).clone()
    };

    // Static (expanded) bounds of the skewed coordinates:
    //   L_i = lo_i + sum_j min(c*lo_j, c*(hi_j - 1))
    //   U_i = hi_i + sum_j max(c*lo_j, c*(hi_j - 1))   (exclusive)
    let static_lo: Vec<Expr> = (0..n)
        .map(|i| {
            let mut e = band[i].lower.clone();
            for (j, &c) in skew[i].iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let term = if c > 0 {
                    scale(c, band[j].lower.clone())
                } else {
                    scale(c, last_value(&band[j]))
                };
                e = Expr::bin(BinOp::Add, e, term);
            }
            e
        })
        .collect();
    let static_hi: Vec<Expr> = (0..n)
        .map(|i| {
            let mut e = band[i].exclusive_upper();
            for (j, &c) in skew[i].iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let term = if c > 0 {
                    scale(c, last_value(&band[j]))
                } else {
                    scale(c, band[j].lower.clone())
                };
                e = Expr::bin(BinOp::Add, e, term);
            }
            e
        })
        .collect();

    // Dynamic bounds of u_i inside the point nest: lo_i + sum c*var_j.
    let dyn_lo: Vec<Expr> = (0..n)
        .map(|i| {
            let mut e = band[i].lower.clone();
            for (j, &c) in skew[i].iter().enumerate() {
                if c != 0 {
                    e = Expr::bin(BinOp::Add, e, scale(c, Expr::ident(&band[j].var)));
                }
            }
            e
        })
        .collect();
    let dyn_hi: Vec<Expr> = (0..n)
        .map(|i| {
            let mut e = band[i].exclusive_upper();
            for (j, &c) in skew[i].iter().enumerate() {
                if c != 0 {
                    e = Expr::bin(BinOp::Add, e, scale(c, Expr::ident(&band[j].var)));
                }
            }
            e
        })
        .collect();

    // Build the point nest, innermost first.
    let mut rebuilt = innermost_body;
    for i in (0..n).rev() {
        let u = &fresh_point[i];
        // var_i = u_i - sum c*var_j, available because outer point loops
        // already reconstructed var_j.
        let mut recon = Expr::ident(u);
        for (j, &c) in skew[i].iter().enumerate() {
            if c != 0 {
                recon = Expr::bin(BinOp::Sub, recon, scale(c, Expr::ident(&band[j].var)));
            }
        }
        let var_stmt = if band[i].declares_var {
            Stmt::new(StmtKind::Decl {
                ty: Type::Int,
                name: band[i].var.clone(),
                dims: Vec::new(),
                init: Some(recon),
            })
        } else {
            Stmt::expr(Expr::assign(Expr::ident(&band[i].var), recon))
        };
        let mut body_stmts = vec![var_stmt];
        match rebuilt.kind {
            StmtKind::Block(stmts) => body_stmts.extend(stmts),
            _ => body_stmts.push(rebuilt),
        }
        let init = Stmt::new(StmtKind::Decl {
            ty: Type::Int,
            name: u.clone(),
            dims: Vec::new(),
            init: Some(max_expr(dyn_lo[i].clone(), Expr::ident(&fresh_tile[i]))),
        });
        let cond = Expr::bin(
            BinOp::Lt,
            Expr::ident(u),
            min_expr(
                dyn_hi[i].clone(),
                Expr::bin(BinOp::Add, Expr::ident(&fresh_tile[i]), Expr::int(sizes[i])),
            ),
        );
        rebuilt = Stmt::new(StmtKind::For(ForLoop {
            init: Some(Box::new(init)),
            cond: Some(cond),
            step: Some(Expr::Assign {
                op: AssignOp::AddAssign,
                lhs: Box::new(Expr::ident(u)),
                rhs: Box::new(Expr::int(1)),
            }),
            body: Box::new(Stmt::block(body_stmts)),
        }));
    }

    // Tile loops, outermost first.
    for i in (0..n).rev() {
        let dir = tile_dirs.map_or(ScanDir::Forward, |d| d[i]);
        let t = &fresh_tile[i];
        rebuilt = match dir {
            ScanDir::Forward => locus_srcir::builder::for_loop(
                t,
                static_lo[i].clone(),
                static_hi[i].clone(),
                sizes[i],
                vec![rebuilt],
            ),
            ScanDir::Backward => {
                // Start from the last tile origin:
                //   L + floor((U - 1 - L)/s) * s, stepping down by s.
                let span = Expr::bin(
                    BinOp::Sub,
                    Expr::bin(BinOp::Sub, static_hi[i].clone(), Expr::int(1)),
                    static_lo[i].clone(),
                );
                let start = Expr::bin(
                    BinOp::Add,
                    static_lo[i].clone(),
                    Expr::bin(
                        BinOp::Mul,
                        Expr::bin(BinOp::Div, span, Expr::int(sizes[i])),
                        Expr::int(sizes[i]),
                    ),
                );
                let init = Stmt::new(StmtKind::Decl {
                    ty: Type::Int,
                    name: t.clone(),
                    dims: Vec::new(),
                    init: Some(start),
                });
                let cond = Expr::bin(BinOp::Ge, Expr::ident(t), static_lo[i].clone());
                Stmt::new(StmtKind::For(ForLoop {
                    init: Some(Box::new(init)),
                    cond: Some(cond),
                    step: Some(Expr::Assign {
                        op: AssignOp::SubAssign,
                        lhs: Box::new(Expr::ident(t)),
                        rhs: Box::new(Expr::int(sizes[i])),
                    }),
                    body: Box::new(Stmt::block(vec![rebuilt])),
                }))
            }
        };
    }

    rebuilt.pragmas = loop_stmt.pragmas.clone();
    *loop_stmt = rebuilt;
    Ok(())
}

/// `c * e`, simplified for `c == 1` / `c == -1`.
fn scale(c: i64, e: Expr) -> Expr {
    match c {
        1 => e,
        -1 => Expr::Unary {
            op: locus_srcir::ast::UnOp::Neg,
            operand: Box::new(e),
        },
        _ => Expr::bin(BinOp::Mul, Expr::int(c), e),
    }
}

/// The last value an induction variable takes: `upper - 1` for exclusive
/// bounds, `upper` for inclusive ones.
fn last_value(l: &locus_analysis::loops::CanonLoop) -> Expr {
    if l.inclusive {
        l.upper.clone()
    } else {
        Expr::bin(BinOp::Sub, l.upper.clone(), Expr::int(1))
    }
}

/// Builds the Skewing-1 matrix of the paper's Fig. 9 for a nest of
/// `depth` loops and tile size `s`: time dimension first, every spatial
/// dimension skewed by the time dimension.
pub fn skewing1_matrix(depth: usize, s: i64) -> Vec<Vec<i64>> {
    (0..depth)
        .map(|i| {
            (0..depth)
                .map(|j| {
                    if j == i {
                        s
                    } else if i > 0 && j == 0 {
                        -s
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_analysis::loops::all_loops;
    use locus_srcir::parse_program;

    fn heat1d() -> Stmt {
        let p = parse_program(
            r#"void f(double A[2][66]) {
            for (int t = 0; t < 8; t++)
                for (int i = 1; i < 65; i++)
                    A[(t + 1) % 2][i] = 0.125 * (A[t % 2][i + 1] - 2.0 * A[t % 2][i] + A[t % 2][i - 1]) + A[t % 2][i];
            }"#,
        )
        .unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn skewing1_matrix_shape() {
        assert_eq!(
            skewing1_matrix(3, 16),
            vec![vec![16, 0, 0], vec![-16, 16, 0], vec![-16, 0, 16]]
        );
    }

    #[test]
    fn skewed_tiling_produces_double_band() {
        let mut root = heat1d();
        generic_tile(&mut root, &HierIndex::root(), &skewing1_matrix(2, 4), None).unwrap();
        assert_eq!(all_loops(&root).len(), 4);
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("max("), "guards expected:\n{printed}");
        assert!(printed.contains("min("));
        // Original induction variables are reconstructed.
        assert!(printed.contains("int i = i_s - t"), "printed:\n{printed}");
    }

    #[test]
    fn diagonal_matrix_is_rectangular_tiling() {
        let mut root = heat1d();
        generic_tile(
            &mut root,
            &HierIndex::root(),
            &[vec![4, 0], vec![0, 8]],
            None,
        )
        .unwrap();
        assert_eq!(all_loops(&root).len(), 4);
    }

    #[test]
    fn rejects_malformed_matrices() {
        let mut root = heat1d();
        // Not square.
        assert!(generic_tile(&mut root, &HierIndex::root(), &[vec![4, 0]], None).is_err());
        // Upper triangular entry.
        assert!(generic_tile(
            &mut root,
            &HierIndex::root(),
            &[vec![4, 2], vec![0, 4]],
            None
        )
        .is_err());
        // Non-positive diagonal.
        assert!(generic_tile(
            &mut root,
            &HierIndex::root(),
            &[vec![0, 0], vec![0, 4]],
            None
        )
        .is_err());
        // Off-diagonal not divisible by diagonal.
        assert!(generic_tile(
            &mut root,
            &HierIndex::root(),
            &[vec![4, 0], vec![-3, 4]],
            None
        )
        .is_err());
    }

    #[test]
    fn backward_tile_direction_generates_descending_loop() {
        let mut root = heat1d();
        generic_tile(
            &mut root,
            &HierIndex::root(),
            &skewing1_matrix(2, 4),
            Some(&[ScanDir::Forward, ScanDir::Backward]),
        )
        .unwrap();
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("-= 4"), "printed:\n{printed}");
    }

    #[test]
    fn direction_vector_length_is_checked() {
        let mut root = heat1d();
        assert!(generic_tile(
            &mut root,
            &HierIndex::root(),
            &skewing1_matrix(2, 4),
            Some(&[ScanDir::Forward])
        )
        .is_err());
    }
}
