//! Unroll-and-jam — `RoseLocus.UnrollAndJam` / `Pips.UnrollAndJam`.
//!
//! Unrolls an outer loop by a factor and fuses ("jams") the resulting
//! copies of the inner loop body into a single inner loop, increasing
//! register reuse across outer iterations.

use locus_srcir::ast::{AssignOp, BinOp, Expr, ForLoop, Stmt, StmtKind};
use locus_srcir::builder;
use locus_srcir::index::HierIndex;
use locus_srcir::visit::substitute_ident;

use locus_analysis::loops::canonicalize;

use crate::{TransformError, TransformResult};

/// Applies unroll-and-jam to the loop at `target` with the given factor.
///
/// The target loop's body must consist of exactly one inner loop whose
/// bounds do not depend on the target's induction variable. A remainder
/// loop is emitted unless a constant trip count divides evenly.
///
/// Legality: jamming moves outer-iteration copies inside the inner loop,
/// which is valid when the two loops are interchangeable; with
/// `check_legality` set the module requires the 2-loop band to be fully
/// permutable.
///
/// # Errors
///
/// * [`TransformError::Error`] for factor 0, non-canonical loops, bodies
///   that are not a single inner loop, or inner bounds depending on the
///   outer variable.
/// * [`TransformError::Illegal`] when the legality check refuses.
pub fn unroll_and_jam(
    root: &mut Stmt,
    target: &HierIndex,
    factor: u64,
    check_legality: bool,
) -> TransformResult {
    if factor == 0 {
        return Err(TransformError::error(
            "unroll-and-jam factor must be positive",
        ));
    }
    if factor == 1 {
        return Ok(());
    }

    {
        let loop_stmt = target
            .resolve(root)
            .ok_or_else(|| TransformError::error(format!("no statement at `{target}`")))?;
        validate(loop_stmt)?;
        if check_legality {
            crate::require_legal(locus_verify::legal(
                root,
                &locus_verify::TransformStep::UnrollAndJam {
                    target: target.clone(),
                },
            ))?;
        }
    }

    let loop_stmt = target.resolve_mut(root).expect("validated above");
    let outer = canonicalize(loop_stmt).expect("validated above");
    let inner_stmt = loop_stmt.as_for().expect("loop").body.body_stmts()[0].clone();
    let inner_body = inner_stmt.as_for().expect("loop").body.clone();

    let f = factor as i64;
    let step = outer.step;

    // Jammed inner body: f copies with outer var offset by k*step.
    let mut jammed = Vec::new();
    for k in 0..f {
        let mut copy = (*inner_body).clone();
        let replacement = if k == 0 {
            Expr::ident(&outer.var)
        } else {
            Expr::bin(BinOp::Add, Expr::ident(&outer.var), Expr::int(k * step))
        };
        substitute_ident(&mut copy, &outer.var, &replacement);
        jammed.push(copy);
    }

    let new_inner = Stmt::new(StmtKind::For(ForLoop {
        init: inner_stmt.as_for().unwrap().init.clone(),
        cond: inner_stmt.as_for().unwrap().cond.clone(),
        step: inner_stmt.as_for().unwrap().step.clone(),
        body: Box::new(Stmt::block(jammed)),
    }));

    // Main outer loop strides by f*step and stops f-1 iterations early.
    let main_cond = Expr::bin(
        BinOp::Lt,
        Expr::ident(&outer.var),
        Expr::bin(
            BinOp::Sub,
            outer.exclusive_upper(),
            Expr::int((f - 1) * step),
        ),
    );
    let mut main = Stmt::new(StmtKind::For(ForLoop {
        init: loop_stmt.as_for().unwrap().init.clone(),
        cond: Some(main_cond),
        step: Some(Expr::Assign {
            op: AssignOp::AddAssign,
            lhs: Box::new(Expr::ident(&outer.var)),
            rhs: Box::new(Expr::int(f * step)),
        }),
        body: Box::new(Stmt::block(vec![new_inner])),
    }));
    main.pragmas = loop_stmt.pragmas.clone();

    let needs_remainder = match outer.const_trip_count() {
        Some(t) => t % f != 0,
        None => true,
    };
    if !needs_remainder {
        *loop_stmt = main;
        return Ok(());
    }

    // Remainder: original loop restarted at the first uncovered value.
    let trip_expr = Expr::bin(
        BinOp::Div,
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Sub, outer.exclusive_upper(), outer.lower.clone()),
            Expr::int(step - 1),
        ),
        Expr::int(step),
    );
    let start = Expr::bin(
        BinOp::Add,
        outer.lower.clone(),
        Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Div, trip_expr, Expr::int(f)),
            Expr::int(f * step),
        ),
    );
    let remainder = builder::for_loop(
        &outer.var,
        start,
        outer.exclusive_upper(),
        step,
        loop_stmt.as_for().unwrap().body.body_stmts().to_vec(),
    );
    *loop_stmt = Stmt::block(vec![main, remainder]);
    Ok(())
}

fn validate(loop_stmt: &Stmt) -> TransformResult {
    let outer = canonicalize(loop_stmt)
        .ok_or_else(|| TransformError::error("target loop is not canonical"))?;
    let body = loop_stmt.as_for().expect("loop").body.body_stmts();
    if body.len() != 1 || !body[0].is_for() {
        return Err(TransformError::error(
            "unroll-and-jam requires the body to be a single inner loop",
        ));
    }
    let inner = canonicalize(&body[0])
        .ok_or_else(|| TransformError::error("inner loop is not canonical"))?;
    for bound in [&inner.lower, &inner.upper] {
        let mut bad = false;
        locus_srcir::visit::walk_exprs(bound, &mut |e| {
            if matches!(e, Expr::Ident(n) if n == &outer.var) {
                bad = true;
            }
        });
        if bad {
            return Err(TransformError::error(
                "inner loop bounds depend on the outer induction variable",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn matmul_like(n: i64) -> Stmt {
        region(&format!(
            r#"void f(double C[64][64], double A[64][64], double B[64][64]) {{
            for (int i = 0; i < {n}; i++)
                for (int j = 0; j < {n}; j++)
                    C[i][j] = C[i][j] + A[i][j] * B[j][i];
            }}"#
        ))
    }

    #[test]
    fn jams_copies_into_inner_loop() {
        let mut root = matmul_like(16);
        unroll_and_jam(&mut root, &HierIndex::root(), 2, true).unwrap();
        assert!(root.is_for(), "divisible trip needs no remainder");
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("i += 2"));
        assert!(printed.contains("C[i + 1][j]"), "printed:\n{printed}");
        // Only one inner loop (the jam target).
        assert_eq!(locus_analysis::loops::all_loops(&root).len(), 2);
    }

    #[test]
    fn nondivisible_trip_adds_remainder() {
        let mut root = matmul_like(15);
        unroll_and_jam(&mut root, &HierIndex::root(), 4, true).unwrap();
        assert!(matches!(&root.kind, StmtKind::Block(stmts) if stmts.len() == 2));
    }

    #[test]
    fn rejects_imperfect_body() {
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++) {
                A[i][0] = 0.0;
                for (int j = 0; j < n; j++) A[i][j] = 1.0;
            }
            }"#,
        );
        assert!(matches!(
            unroll_and_jam(&mut root, &HierIndex::root(), 2, true),
            Err(TransformError::Error(_))
        ));
    }

    #[test]
    fn refuses_illegal_jam() {
        // A[i][j] = A[i-1][j+1]: interchange illegal, so jam illegal.
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 0; j < n - 1; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        );
        assert!(matches!(
            unroll_and_jam(&mut root, &HierIndex::root(), 2, true),
            Err(TransformError::Illegal(_))
        ));
        unroll_and_jam(&mut root, &HierIndex::root(), 2, false).unwrap();
    }

    #[test]
    fn factor_one_is_noop() {
        let mut root = matmul_like(8);
        let before = locus_srcir::print_stmt(&root);
        unroll_and_jam(&mut root, &HierIndex::root(), 1, true).unwrap();
        assert_eq!(before, locus_srcir::print_stmt(&root));
    }

    #[test]
    fn inner_bounds_depending_on_outer_are_rejected() {
        let mut root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = i; j < n; j++)
                    A[i][j] = 1.0;
            }"#,
        );
        assert!(matches!(
            unroll_and_jam(&mut root, &HierIndex::root(), 2, true),
            Err(TransformError::Error(_))
        ));
    }
}
