//! The `BuiltIn` query modules (Sec. IV-A.4) plus `IsDepAvailable`.
//!
//! Queries analyze a code region without changing it; their results feed
//! the control flow of optimization programs (see the paper's Fig. 13)
//! and, unlike `OptSeq` results, may parameterize search constructs.

use locus_srcir::ast::Stmt;
use locus_srcir::index::HierIndex;

use locus_analysis::deps::analyze_region;
use locus_analysis::loops::loop_nest_info;

/// `BuiltIn.IsPerfectLoopNest()`: whether the region is a perfect nest.
pub fn is_perfect_loop_nest(root: &Stmt) -> bool {
    loop_nest_info(root).perfect
}

/// `BuiltIn.LoopNestDepth()`: maximum loop nesting depth of the region.
pub fn loop_nest_depth(root: &Stmt) -> usize {
    loop_nest_info(root).depth
}

/// `BuiltIn.ListInnerLoops()`: hierarchical indices of all innermost
/// loops.
pub fn list_inner_loops(root: &Stmt) -> Vec<HierIndex> {
    loop_nest_info(root).inner_loops
}

/// `BuiltIn.ListOuterLoops()`: hierarchical indices of all outermost
/// loops.
pub fn list_outer_loops(root: &Stmt) -> Vec<HierIndex> {
    loop_nest_info(root).outer_loops
}

/// `RoseLocus.IsDepAvailable()`: whether dependence information can be
/// computed for the region.
pub fn is_dep_available(root: &Stmt) -> bool {
    analyze_region(root).available
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn queries_agree_on_matmul() {
        let root = region(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        );
        assert!(is_perfect_loop_nest(&root));
        assert_eq!(loop_nest_depth(&root), 3);
        assert_eq!(list_inner_loops(&root), vec!["0.0.0".parse().unwrap()]);
        assert_eq!(list_outer_loops(&root), vec![HierIndex::root()]);
        assert!(is_dep_available(&root));
    }

    #[test]
    fn indirect_access_has_no_dependences_available() {
        let root = region(
            r#"void f(int n, double A[64], int idx[64]) {
            for (int i = 0; i < n; i++)
                A[idx[i]] = 1.0;
            }"#,
        );
        assert!(!is_dep_available(&root));
        assert_eq!(loop_nest_depth(&root), 1);
    }
}
