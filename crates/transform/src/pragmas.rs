//! Pragma insertion — the paper's `Pragma` module collection
//! (Sec. IV-A.3): `ivdep`, `vector always`, and `omp parallel for` with
//! optional schedule and chunk parameters.

use locus_srcir::ast::{OmpSchedule, Pragma, Stmt};

use crate::selector::LoopSel;
use crate::TransformResult;

/// Inserts `#pragma ivdep` before each loop the selector names.
///
/// # Errors
///
/// Returns an error when the selector resolves to no loop.
pub fn insert_ivdep(root: &mut Stmt, sel: &LoopSel) -> TransformResult {
    insert(root, sel, Pragma::Ivdep)
}

/// Inserts `#pragma vector always` before each loop the selector names.
///
/// # Errors
///
/// Returns an error when the selector resolves to no loop.
pub fn insert_vector_always(root: &mut Stmt, sel: &LoopSel) -> TransformResult {
    insert(root, sel, Pragma::VectorAlways)
}

/// Inserts `#pragma omp parallel for` (with an optional schedule clause)
/// before each loop the selector names.
///
/// # Errors
///
/// Returns an error when the selector resolves to no loop.
pub fn insert_omp_for(
    root: &mut Stmt,
    sel: &LoopSel,
    schedule: Option<OmpSchedule>,
) -> TransformResult {
    insert(root, sel, Pragma::OmpParallelFor { schedule })
}

fn insert(root: &mut Stmt, sel: &LoopSel, pragma: Pragma) -> TransformResult {
    let targets = sel.resolve(root)?;
    for idx in targets {
        let stmt = idx.resolve_mut(root).expect("selector resolved");
        if !stmt.pragmas.contains(&pragma) {
            stmt.pragmas.push(pragma.clone());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::ast::{OmpScheduleKind, StmtKind};
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn nest() -> Stmt {
        region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    A[i][j] = 0.0;
            }"#,
        )
    }

    #[test]
    fn inserts_omp_on_outermost() {
        let mut root = nest();
        insert_omp_for(&mut root, &LoopSel::parse("0").unwrap(), None).unwrap();
        assert!(root
            .pragmas
            .contains(&Pragma::OmpParallelFor { schedule: None }));
    }

    #[test]
    fn inserts_vector_pragmas_on_innermost() {
        let mut root = nest();
        insert_ivdep(&mut root, &LoopSel::Innermost).unwrap();
        insert_vector_always(&mut root, &LoopSel::Innermost).unwrap();
        let inner: locus_srcir::HierIndex = "0.0".parse().unwrap();
        let stmt = inner.resolve(&root).unwrap();
        assert_eq!(stmt.pragmas, vec![Pragma::Ivdep, Pragma::VectorAlways]);
    }

    #[test]
    fn schedule_clause_round_trips() {
        let mut root = nest();
        let schedule = OmpSchedule {
            kind: OmpScheduleKind::Dynamic,
            chunk: Some(16),
        };
        insert_omp_for(&mut root, &LoopSel::parse("0").unwrap(), Some(schedule)).unwrap();
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("#pragma omp parallel for schedule(dynamic, 16)"));
    }

    #[test]
    fn duplicate_insertion_is_idempotent() {
        let mut root = nest();
        insert_ivdep(&mut root, &LoopSel::Innermost).unwrap();
        insert_ivdep(&mut root, &LoopSel::Innermost).unwrap();
        let inner: locus_srcir::HierIndex = "0.0".parse().unwrap();
        assert_eq!(inner.resolve(&root).unwrap().pragmas.len(), 1);
    }

    #[test]
    fn selector_to_non_loop_fails() {
        let mut root = Stmt::new(StmtKind::Empty);
        assert!(insert_ivdep(&mut root, &LoopSel::Innermost).is_err());
    }
}
