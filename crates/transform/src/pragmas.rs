//! Pragma insertion — the paper's `Pragma` module collection
//! (Sec. IV-A.3): `ivdep`, `vector always`, and `omp parallel for` with
//! optional schedule and chunk parameters.

use locus_srcir::ast::{OmpSchedule, Pragma, Stmt};

use crate::selector::LoopSel;
use crate::TransformResult;

/// Inserts `#pragma ivdep` before each loop the selector names.
///
/// # Errors
///
/// Returns an error when the selector resolves to no loop.
pub fn insert_ivdep(root: &mut Stmt, sel: &LoopSel) -> TransformResult {
    insert(root, sel, Pragma::Ivdep)
}

/// Inserts `#pragma vector always` before each loop the selector names.
///
/// # Errors
///
/// Returns an error when the selector resolves to no loop.
pub fn insert_vector_always(root: &mut Stmt, sel: &LoopSel) -> TransformResult {
    insert(root, sel, Pragma::VectorAlways)
}

/// Inserts `#pragma omp parallel for` (with an optional schedule clause)
/// before each loop the selector names.
///
/// With `check_legality` set, each target is vetted by the static safety
/// analyzer first: the loop must be race-free (no dependence carried by
/// it, modulo recognized reduction/privatization idioms) and must not
/// create nested parallelism — the simulated machine executes an inner
/// `omp` region sequentially anyway, so nesting would only double-charge
/// fork overhead. When the analyzer names a fixing clause (a
/// `reduction(op:var)` for a recognized reduction idiom, a
/// `private(var)` for a privatizable scalar), the emitted pragma carries
/// it — a clause-less `omp parallel for` over `s = s + A[i]` would be a
/// real data race in any OpenMP consumer of the printed source. Targets
/// are checked and annotated one at a time, so a multi-loop selector
/// cannot sneak a parallel loop inside another.
///
/// With `check_legality` unset (the expert override), the pragma is
/// emitted as given, with no clauses.
///
/// # Errors
///
/// * [`crate::TransformError::Error`] when the selector resolves to no
///   loop.
/// * [`crate::TransformError::Illegal`] when the safety analyzer refuses
///   a target.
pub fn insert_omp_for(
    root: &mut Stmt,
    sel: &LoopSel,
    schedule: Option<OmpSchedule>,
    check_legality: bool,
) -> TransformResult {
    let targets = sel.resolve(root)?;
    for idx in targets {
        let clauses = if check_legality {
            match locus_verify::parallel_for_clauses(root, &idx) {
                Ok(clauses) => clauses,
                Err(verdict) => {
                    crate::require_legal(verdict)?;
                    Vec::new()
                }
            }
        } else {
            Vec::new()
        };
        let stmt = idx.resolve_mut(root).expect("selector resolved");
        attach(stmt, Pragma::OmpParallelFor { schedule, clauses });
    }
    Ok(())
}

fn insert(root: &mut Stmt, sel: &LoopSel, pragma: Pragma) -> TransformResult {
    let targets = sel.resolve(root)?;
    for idx in targets {
        let stmt = idx.resolve_mut(root).expect("selector resolved");
        attach(stmt, pragma.clone());
    }
    Ok(())
}

/// Attaches `pragma` to `stmt`, deduplicating by pragma *kind*: a second
/// `omp parallel for` with a different schedule replaces the first
/// instead of stacking (two parallel-for pragmas on one loop would be
/// ill-formed). `Raw` pragmas are only deduplicated on exact equality.
fn attach(stmt: &mut Stmt, pragma: Pragma) {
    if matches!(pragma, Pragma::Raw(_)) {
        if !stmt.pragmas.contains(&pragma) {
            stmt.pragmas.push(pragma);
        }
        return;
    }
    let kind = std::mem::discriminant(&pragma);
    if let Some(existing) = stmt
        .pragmas
        .iter_mut()
        .find(|p| std::mem::discriminant(&**p) == kind)
    {
        *existing = pragma;
    } else {
        stmt.pragmas.push(pragma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::ast::{OmpClause, OmpScheduleKind, StmtKind};
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn nest() -> Stmt {
        region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    A[i][j] = 0.0;
            }"#,
        )
    }

    #[test]
    fn inserts_omp_on_outermost() {
        let mut root = nest();
        insert_omp_for(&mut root, &LoopSel::parse("0").unwrap(), None, true).unwrap();
        assert!(root.pragmas.contains(&Pragma::OmpParallelFor {
            schedule: None,
            clauses: Vec::new()
        }));
    }

    #[test]
    fn omp_reinsertion_replaces_the_schedule() {
        // Two insertions with different schedules must not stack two
        // parallel-for pragmas on one loop.
        let mut root = nest();
        let sel = LoopSel::parse("0").unwrap();
        insert_omp_for(&mut root, &sel, None, true).unwrap();
        let schedule = OmpSchedule {
            kind: OmpScheduleKind::Dynamic,
            chunk: Some(8),
        };
        insert_omp_for(&mut root, &sel, Some(schedule), true).unwrap();
        let omp: Vec<_> = root
            .pragmas
            .iter()
            .filter(|p| matches!(p, Pragma::OmpParallelFor { .. }))
            .collect();
        assert_eq!(omp.len(), 1);
        assert_eq!(
            omp[0],
            &Pragma::OmpParallelFor {
                schedule: Some(schedule),
                clauses: Vec::new()
            }
        );
    }

    #[test]
    fn refuses_racy_loop_unless_forced() {
        let mut root = region(
            r#"void f(int n, double A[64]) {
            for (int i = 1; i < n; i++)
                A[i] = A[i - 1] + 1.0;
            }"#,
        );
        let sel = LoopSel::parse("0").unwrap();
        assert!(matches!(
            insert_omp_for(&mut root, &sel, None, true),
            Err(crate::TransformError::Illegal(_))
        ));
        assert!(root.pragmas.is_empty());
        // The expert override still works.
        insert_omp_for(&mut root, &sel, None, false).unwrap();
        assert!(root.pragmas.contains(&Pragma::OmpParallelFor {
            schedule: None,
            clauses: Vec::new()
        }));
    }

    #[test]
    fn reduction_loop_gets_the_reduction_clause() {
        // A clause-less `omp parallel for` on `s = s + A[i]` would be a
        // real data race; the inserted pragma must carry the fix the
        // analyzer names.
        let mut root = region(
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++)
                s = s + A[i];
            }"#,
        );
        insert_omp_for(&mut root, &LoopSel::parse("0").unwrap(), None, true).unwrap();
        assert_eq!(
            root.pragmas,
            vec![Pragma::OmpParallelFor {
                schedule: None,
                clauses: vec![OmpClause::Reduction {
                    op: locus_srcir::ast::BinOp::Add,
                    var: "s".to_string()
                }]
            }]
        );
        let printed = locus_srcir::print_stmt(&root);
        assert!(
            printed.contains("#pragma omp parallel for reduction(+:s)"),
            "{printed}"
        );
    }

    #[test]
    fn privatizable_scalar_gets_the_private_clause() {
        let mut root = region(
            r#"void f(int n, double t, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                t = A[i] * 2.0;
                B[i] = t + 1.0;
            }
            }"#,
        );
        insert_omp_for(&mut root, &LoopSel::parse("0").unwrap(), None, true).unwrap();
        assert_eq!(
            root.pragmas,
            vec![Pragma::OmpParallelFor {
                schedule: None,
                clauses: vec![OmpClause::Private {
                    var: "t".to_string()
                }]
            }]
        );
    }

    #[test]
    fn refuses_nested_parallelism() {
        let mut root = nest();
        insert_omp_for(&mut root, &LoopSel::parse("0").unwrap(), None, true).unwrap();
        let err = insert_omp_for(&mut root, &LoopSel::parse("0.0").unwrap(), None, true)
            .expect_err("nested parallelism must be refused");
        assert!(matches!(err, crate::TransformError::Illegal(_)));
        // Forcing allows it (the interpreter runs the inner region
        // sequentially).
        insert_omp_for(&mut root, &LoopSel::parse("0.0").unwrap(), None, false).unwrap();
    }

    #[test]
    fn inserts_vector_pragmas_on_innermost() {
        let mut root = nest();
        insert_ivdep(&mut root, &LoopSel::Innermost).unwrap();
        insert_vector_always(&mut root, &LoopSel::Innermost).unwrap();
        let inner: locus_srcir::HierIndex = "0.0".parse().unwrap();
        let stmt = inner.resolve(&root).unwrap();
        assert_eq!(stmt.pragmas, vec![Pragma::Ivdep, Pragma::VectorAlways]);
    }

    #[test]
    fn schedule_clause_round_trips() {
        let mut root = nest();
        let schedule = OmpSchedule {
            kind: OmpScheduleKind::Dynamic,
            chunk: Some(16),
        };
        insert_omp_for(
            &mut root,
            &LoopSel::parse("0").unwrap(),
            Some(schedule),
            true,
        )
        .unwrap();
        let printed = locus_srcir::print_stmt(&root);
        assert!(printed.contains("#pragma omp parallel for schedule(dynamic, 16)"));
    }

    #[test]
    fn duplicate_insertion_is_idempotent() {
        let mut root = nest();
        insert_ivdep(&mut root, &LoopSel::Innermost).unwrap();
        insert_ivdep(&mut root, &LoopSel::Innermost).unwrap();
        let inner: locus_srcir::HierIndex = "0.0".parse().unwrap();
        assert_eq!(inner.resolve(&root).unwrap().pragmas.len(), 1);
    }

    #[test]
    fn selector_to_non_loop_fails() {
        let mut root = Stmt::new(StmtKind::Empty);
        assert!(insert_ivdep(&mut root, &LoopSel::Innermost).is_err());
    }
}
