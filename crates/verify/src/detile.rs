//! Strip-mine coalescing for the race analyzer.
//!
//! Tiling rewrites `for (i = L; i < U; i += s)` into a *tile* loop
//! `for (i_t = L; i_t < U; i_t += c)` and a *point* loop
//! `for (i = i_t; i < min(U, i_t + c); i += s)`. The tile variable never
//! appears in a subscript, so a direct dependence test reports an
//! unknown (`*`) direction at the tile level and the race detector would
//! refuse every tiled nest. But the point ranges of distinct tile
//! iterations are disjoint (the tile step equals the point width `c`),
//! so a dependence crosses two tile iterations exactly when it crosses
//! two point iterations of the *coalesced* loop
//! `for (i = L; i < U; i += s)`. This module performs that coalescing on
//! an analysis-local clone, mapping "is the tile loop parallelizable?"
//! back to the level-0 question the detector already answers.

use locus_analysis::affine::extract_affine;
use locus_analysis::loops::{all_loops, canonicalize, CanonLoop};
use locus_analysis::polyhedron::{Feasibility, PolySystem};
use locus_srcir::ast::{BinOp, Expr, Stmt, StmtKind, Type};
use locus_srcir::builder::max_expr;
use locus_srcir::visit::walk_exprs_in_stmt;

/// Coalesces every recognizable tile/point pair in the nest rooted at
/// `loop_stmt`, returning the rewritten clone.
///
/// Returns `None` — "analyze the original" — when nothing was
/// coalesced, when a tile variable stays referenced after its pair is
/// rewritten (the rewrite would then be unsound), or when the loop the
/// caller asks about does not end up outermost in the coalesced nest
/// (the level-0 race question would be about a different loop).
pub(crate) fn coalesce_strip_mines(loop_stmt: &Stmt) -> Option<Stmt> {
    let mut region = loop_stmt.clone();
    let mut target_var = canonicalize(loop_stmt)?.var;
    let mut changed = false;
    loop {
        match coalesce_one(&mut region, &mut target_var) {
            Step::Coalesced => changed = true,
            Step::Exhausted => break,
            Step::Poisoned => return None,
        }
    }
    if !changed {
        return None;
    }
    (canonicalize(&region)?.var == target_var).then_some(region)
}

enum Step {
    /// One tile/point pair was coalesced; the loop list is stale.
    Coalesced,
    /// No pair matches; the region is fully coalesced.
    Exhausted,
    /// A tile variable survived its own elimination; give up entirely.
    Poisoned,
}

/// Finds and coalesces one tile/point pair, deepest tile loop first: an
/// inner pair's `min` guard may reference an *outer* tile variable
/// (multi-level tiling), which only matches once the inner pair is gone.
fn coalesce_one(region: &mut Stmt, target_var: &mut String) -> Step {
    let mut loops = all_loops(region);
    loops.sort_by_key(|idx| std::cmp::Reverse(idx.0.len()));
    for t_idx in &loops {
        let Some(t_stmt) = t_idx.resolve(region) else {
            continue;
        };
        let Some(t_canon) = canonicalize(t_stmt) else {
            continue;
        };
        let Some((depth, lower_clamp, new_upper)) = find_point_partner(t_stmt, &t_canon) else {
            continue;
        };

        // The partner sits `depth` single-statement descents below the
        // tile loop, so its hierarchical index appends `depth` zeros.
        let mut p_idx = t_idx.clone();
        for _ in 0..depth {
            p_idx = p_idx.push(0);
        }
        let p_stmt = p_idx.resolve_mut(region).expect("partner was just found");
        let p_canon = canonicalize(p_stmt).expect("partner is canonical");
        let header = p_stmt.as_for_mut().expect("partner is a loop");
        // A `max(L, t)` point lower (hull-tiled triangular band) keeps
        // its clamp: the coalesced loop starts where the domain does.
        let new_lower = match lower_clamp {
            Some(clamp) => max_expr(clamp, t_canon.lower.clone()),
            None => t_canon.lower.clone(),
        };
        header.init = Some(Box::new(if p_canon.declares_var {
            Stmt::new(StmtKind::Decl {
                ty: Type::Int,
                name: p_canon.var.clone(),
                dims: Vec::new(),
                init: Some(new_lower),
            })
        } else {
            Stmt::expr(Expr::assign(Expr::ident(&p_canon.var), new_lower))
        }));
        header.cond = Some(Expr::bin(BinOp::Lt, Expr::ident(&p_canon.var), new_upper));

        // Splice the tile loop out: its (single-statement) body takes
        // its place.
        let t_stmt = t_idx.resolve_mut(region).expect("tile loop resolved");
        let inner = t_stmt.as_for().expect("loop").body.body_stmts()[0].clone();
        *t_stmt = inner;

        // Sound only if the tile variable is gone everywhere.
        let mut leftover = false;
        walk_exprs_in_stmt(region, &mut |e| {
            if matches!(e, Expr::Ident(n) if n == &t_canon.var) {
                leftover = true;
            }
        });
        if leftover {
            return Step::Poisoned;
        }
        if *target_var == t_canon.var {
            *target_var = p_canon.var;
        }
        return Step::Coalesced;
    }
    Step::Exhausted
}

/// Follows the perfect spine under a candidate tile loop looking for its
/// point loop: `for (v = t; v < min(X, t + c); v += s)` — or the
/// hull-tiled triangular form `for (v = max(L, t); ...)` — with `c`
/// equal to the tile step and `s` dividing `c`. Returns how many child-0
/// descents reach it, the lower clamp `L` when present, and the
/// exclusive upper bound of the coalesced loop.
///
/// Only single-statement loop bodies are traversed: a statement between
/// the tile loop and the point loop would execute once per *tile*, and
/// eliminating the tile loop would mis-model its accesses.
fn find_point_partner(t_stmt: &Stmt, t_canon: &CanonLoop) -> Option<(usize, Option<Expr>, Expr)> {
    let mut cur = t_stmt;
    let mut depth = 0;
    loop {
        let body = cur.as_for()?.body.body_stmts();
        if body.len() != 1 || !body[0].is_for() {
            return None;
        }
        cur = &body[0];
        depth += 1;
        let Some(canon) = canonicalize(cur) else {
            continue;
        };
        let Some(lower_clamp) = point_lower(&canon.lower, t_canon) else {
            continue;
        };
        if canon.inclusive || t_canon.step % canon.step != 0 {
            continue;
        }
        if let Some(upper) = coalesced_upper(&canon.upper, t_canon) {
            return Some((depth, lower_clamp, upper));
        }
    }
}

/// Matches a point-loop lower bound against the tile variable: a bare
/// `t` yields no clamp; `max(L, t)` / `max(t, L)` yields the clamp `L`.
/// Anything else is not a strip-mine partner (`None` outer).
#[allow(clippy::option_option)]
fn point_lower(lower: &Expr, t_canon: &CanonLoop) -> Option<Option<Expr>> {
    let is_t = |e: &Expr| matches!(e, Expr::Ident(n) if n == &t_canon.var);
    if is_t(lower) {
        return Some(None);
    }
    if let Expr::Call { callee, args } = lower {
        if callee == "max" && args.len() == 2 {
            if is_t(&args[1]) {
                return Some(Some(args[0].clone()));
            }
            if is_t(&args[0]) {
                return Some(Some(args[1].clone()));
            }
        }
    }
    None
}

/// Matches the point-loop guard against the tile loop: `min(X, t + c)`
/// (either argument order) yields `X`; a bare `t + c` — a point loop
/// without a remainder guard — yields the *rounded-up* upper bound of
/// the iterations such a loop actually executes, and only when the tile
/// loop's bounds are constant. `c` must equal the tile step, or the
/// ranges would not tile the iteration space exactly.
fn coalesced_upper(upper: &Expr, t_canon: &CanonLoop) -> Option<Expr> {
    if let Expr::Call { callee, args } = upper {
        if callee == "min" && args.len() == 2 {
            if tile_offset(&args[1], t_canon) {
                return Some(args[0].clone());
            }
            if tile_offset(&args[0], t_canon) {
                return Some(args[1].clone());
            }
        }
    }
    if tile_offset(upper, t_canon) {
        return unguarded_upper(t_canon);
    }
    None
}

/// The exclusive upper bound an *unguarded* point loop reaches: each
/// tile runs its full width, so when the trip count does not divide the
/// tile step the nest overruns the tile loop's bound and dependences
/// confined to those overrun iterations must stay modeled. With constant
/// tile-loop bounds the rounded-up bound is computed directly; with
/// symbolic affine bounds the polyhedral engine is asked to *prove* that
/// no tile overruns (e.g. `i_t < 8 * m` with width 8) — only then does
/// the guard-free loop coalesce to the tile loop's own bound. Otherwise
/// the pair is conservatively left uncoalesced (the race analysis then
/// refuses the tile loop).
fn unguarded_upper(t_canon: &CanonLoop) -> Option<Expr> {
    if let (Some(lo), Some(up)) = (t_canon.lower.as_const_int(), t_canon.upper.as_const_int()) {
        let hi = up + i64::from(t_canon.inclusive);
        let tiles = if hi <= lo {
            0
        } else {
            (hi - lo + t_canon.step - 1) / t_canon.step
        };
        return Some(Expr::int(lo + tiles * t_canon.step));
    }
    // Symbolic: an overrunning tile is a `q >= 0` with
    // `lo + c*q < U` (the tile starts) and `lo + c*q + c > U` (its last
    // point passes the bound). Provably none -> the unguarded point loop
    // never passes `U`.
    let lo = extract_affine(&t_canon.lower)?;
    let up = extract_affine(&t_canon.exclusive_upper())?;
    let c = t_canon.step;
    let params: Vec<&str> = {
        let mut p: Vec<&str> = lo.vars().chain(up.vars()).collect();
        p.sort_unstable();
        p.dedup();
        p
    };
    let nvars = 1 + params.len();
    let col = |name: &str| 1 + params.iter().position(|p| *p == name).expect("collected");
    let mut sys = PolySystem::new(nvars);
    let mut q_row = vec![0i64; nvars];
    q_row[0] = 1;
    sys.ge0(q_row, 0);
    // U - lo - c*q - 1 >= 0
    let mut row = vec![0i64; nvars];
    row[0] = -c;
    for (name, k) in &up.coeffs {
        row[col(name)] += k;
    }
    for (name, k) in &lo.coeffs {
        row[col(name)] -= k;
    }
    sys.ge0(row.clone(), up.constant - lo.constant - 1);
    // lo + c*q + c - U - 1 >= 0  (negate the difference above, add c)
    let neg: Vec<i64> = row.iter().map(|v| -v).collect();
    sys.ge0(neg, lo.constant - up.constant + c - 1);
    (sys.feasibility() == Feasibility::Empty).then(|| t_canon.exclusive_upper())
}

/// `true` when `e` is exactly `tile_var + tile_step`.
fn tile_offset(e: &Expr, t_canon: &CanonLoop) -> bool {
    if let Expr::Binary {
        op: BinOp::Add,
        lhs,
        rhs,
    } = e
    {
        return matches!(lhs.as_ref(), Expr::Ident(n) if n == &t_canon.var)
            && rhs.as_const_int() == Some(t_canon.step);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn coalesces_one_level_strip_mine() {
        let root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i_t = 0; i_t < n; i_t += 8)
                for (int i = i_t; i < min(n, i_t + 8); i++)
                    A[i] = B[i] * 2.0;
            }"#,
        );
        let coalesced = coalesce_strip_mines(&root).expect("pair recognized");
        let canon = canonicalize(&coalesced).unwrap();
        assert_eq!(canon.var, "i");
        assert_eq!(canon.lower, Expr::int(0));
        assert_eq!(canon.upper, Expr::ident("n"));
        assert_eq!(canon.step, 1);
        // Exactly one loop remains.
        assert_eq!(all_loops(&coalesced).len(), 1);
    }

    #[test]
    fn coalesces_two_level_strip_mine() {
        let root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i_t = 0; i_t < n; i_t += 16)
                for (int i_s = i_t; i_s < min(n, i_t + 16); i_s += 4)
                    for (int i = i_s; i < min(min(n, i_t + 16), i_s + 4); i++)
                        A[i] = B[i];
            }"#,
        );
        let coalesced = coalesce_strip_mines(&root).expect("both pairs recognized");
        let canon = canonicalize(&coalesced).unwrap();
        assert_eq!(canon.var, "i");
        assert_eq!(canon.upper, Expr::ident("n"));
        assert_eq!(all_loops(&coalesced).len(), 1);
    }

    #[test]
    fn unguarded_point_loop_with_exact_division_is_coalesced() {
        // 64 divides by the tile width 8, so `i < i_t + 8` needs no
        // remainder guard and coalesces to the original bound.
        let root = region(
            r#"void f(double A[64], double B[64]) {
            for (int i_t = 0; i_t < 64; i_t += 8)
                for (int i = i_t; i < i_t + 8; i++)
                    A[i] = B[i];
            }"#,
        );
        let coalesced = coalesce_strip_mines(&root).expect("pair recognized");
        let canon = canonicalize(&coalesced).unwrap();
        assert_eq!(canon.upper, Expr::int(64));
    }

    #[test]
    fn unguarded_point_loop_coalesces_to_the_rounded_up_bound() {
        // Tile bound 60 with width 8: the unguarded nest executes i up
        // to 63, so the coalesced bound must be 64, not 60 — otherwise
        // dependences confined to the overrun iterations are missed.
        let root = region(
            r#"void f(double A[64], double B[64]) {
            for (int i_t = 0; i_t < 60; i_t += 8)
                for (int i = i_t; i < i_t + 8; i++)
                    A[i] = B[i];
            }"#,
        );
        let coalesced = coalesce_strip_mines(&root).expect("pair recognized");
        let canon = canonicalize(&coalesced).unwrap();
        assert_eq!(canon.upper, Expr::int(64));
    }

    #[test]
    fn unguarded_point_loop_with_symbolic_bounds_is_not_coalesced() {
        // Without a `min` guard the overrun extent past `n` is unknown,
        // so the pair must be left alone (and conservatively refused by
        // the race analysis).
        let root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i_t = 0; i_t < n; i_t += 8)
                for (int i = i_t; i < i_t + 8; i++)
                    A[i] = B[i];
            }"#,
        );
        assert!(coalesce_strip_mines(&root).is_none());
    }

    #[test]
    fn divisible_symbolic_bound_coalesces_without_a_guard() {
        // `8 * m` is provably a multiple of the tile width, so no tile
        // overruns and the guard-free point loop coalesces to the tile
        // loop's own (symbolic) bound.
        let root = region(
            r#"void f(int m, double A[64], double B[64]) {
            for (int i_t = 0; i_t < 8 * m; i_t += 8)
                for (int i = i_t; i < i_t + 8; i++)
                    A[i] = B[i];
            }"#,
        );
        let coalesced = coalesce_strip_mines(&root).expect("overrun disproven");
        let canon = canonicalize(&coalesced).unwrap();
        assert_eq!(canon.var, "i");
        assert!(locus_srcir::printer::print_expr(&canon.upper).contains('m'));
        assert_eq!(all_loops(&coalesced).len(), 1);
    }

    #[test]
    fn max_clamped_triangular_point_loop_coalesces() {
        // The hull-tiled shifted-bound shape: the point loop starts at
        // `max(i + 1, k_t)` and the tile loop sweeps the hull `1..n`.
        let root = region(
            r#"void f(int n, int i, double A[64]) {
            for (int k_t = 1; k_t < n; k_t += 4)
                for (int k = max(i + 1, k_t); k < min(n, k_t + 4); k++)
                    A[k] = 1.0;
            }"#,
        );
        let coalesced = coalesce_strip_mines(&root).expect("clamped pair recognized");
        let canon = canonicalize(&coalesced).unwrap();
        assert_eq!(canon.var, "k");
        assert_eq!(canon.upper, Expr::ident("n"));
        // The coalesced lower keeps the domain clamp.
        let lower = locus_srcir::printer::print_expr(&canon.lower);
        assert!(lower.contains("max(i + 1, 1)"), "{lower}");
        assert_eq!(all_loops(&coalesced).len(), 1);
    }

    #[test]
    fn untiled_nest_is_left_alone() {
        let root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    A[i][j] = 0.0;
            }"#,
        );
        assert!(coalesce_strip_mines(&root).is_none());
    }

    #[test]
    fn leftover_tile_variable_poisons_the_rewrite() {
        // The body reads `i_t` directly; eliminating the tile loop would
        // leave it undefined, so the analyzer must fall back.
        let root = region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i_t = 0; i_t < n; i_t += 8)
                for (int i = i_t; i < min(n, i_t + 8); i++)
                    A[i] = B[i_t];
            }"#,
        );
        assert!(coalesce_strip_mines(&root).is_none());
    }

    #[test]
    fn mismatched_tile_width_is_not_coalesced() {
        // Guard width 4 but tile step 8: iterations would be skipped,
        // so this is not a strip-mine pair.
        let root = region(
            r#"void f(int n, double A[64]) {
            for (int i_t = 0; i_t < n; i_t += 8)
                for (int i = i_t; i < min(n, i_t + 4); i++)
                    A[i] = 1.0;
            }"#,
        );
        assert!(coalesce_strip_mines(&root).is_none());
    }

    #[test]
    fn statement_beside_the_point_loop_blocks_coalescing() {
        // `A[0] = 0.0` runs once per tile; eliminating the tile loop
        // would drop those executions from the model.
        let root = region(
            r#"void f(int n, double A[64]) {
            for (int i_t = 0; i_t < n; i_t += 8) {
                A[0] = 0.0;
                for (int i = i_t; i < min(n, i_t + 8); i++)
                    A[i] = 1.0;
            }
            }"#,
        );
        assert!(coalesce_strip_mines(&root).is_none());
    }
}
